"""Writing your own VWR2A kernel three ways.

1. Textual assembly through :func:`repro.asm.parse_program`;
2. the :class:`ProgramBuilder` API with the shuffle unit;
3. a raw encode/decode round-trip through the configuration memory.

The kernel computes a fixed-point a*x+b over a vector (the classic axpb),
then demonstrates the shuffle unit's interleave on two vectors.

Run:  python examples/custom_kernel.py
"""

from repro.asm import ProgramBuilder, listing, parse_program
from repro.core import Vwr2a
from repro.isa import KernelConfig, ShuffleMode, Vwr
from repro.isa.encoding import decode_bundle, encode_bundle
from repro.isa.lsu import ld_vwr, shuf, st_vwr
from repro.utils.fixed_point import float_to_fx, fx_to_float

AXPB_ASM = """
; y = a*x + b in 16.15 fixed point; a in SRF3, b as an immediate
.srf 0 0
.srf 1 1
.srf 3 {a}
    LCU SETI R0, 0 | LSU LD.VWR A, 0 | MXCU SETK 31
loop:
    LCU ADDI R0, 1 | MXCU UPD 1 | RC* FXPMUL R0, VWRA, SRF3
    LCU BLT R0, 32, loop | RC* SADD VWRC, R0, #{b}
    LSU ST.VWR C, 1
    LCU EXIT
"""

def axpb_via_assembly() -> None:
    a = float_to_fx(1.5)
    b = float_to_fx(0.25)
    program = parse_program(AXPB_ASM.format(a=a, b=b))
    sim = Vwr2a()
    x = [float_to_fx(v / 64.0) for v in range(128)]
    sim.spm.poke_words(0, x)
    result = sim.execute(KernelConfig(name="axpb", columns={0: program}))
    out = sim.spm.peek_words(128, 128)
    print(f"axpb (assembly): {result.cycles} cycles; "
          f"y[10] = {fx_to_float(out[10]):.4f} "
          f"(expected {1.5 * 10 / 64 + 0.25:.4f})")

def interleave_via_builder() -> None:
    b = ProgramBuilder()
    b.srf(0, 0)
    b.srf(1, 1)
    b.srf(2, 2)
    b.emit(lsu=ld_vwr(Vwr.A, 0))
    b.emit(lsu=ld_vwr(Vwr.B, 1))
    b.emit(lsu=shuf(ShuffleMode.INTERLEAVE_LO))
    b.emit(lsu=st_vwr(Vwr.C, 2))
    b.exit()
    program = b.build()
    sim = Vwr2a()
    sim.spm.poke_words(0, list(range(0, 256, 2)))       # evens
    sim.spm.poke_words(128, list(range(1, 256, 2)))     # odds
    sim.execute(KernelConfig(name="zip", columns={0: program}))
    out = sim.spm.peek_words(256, 128)
    assert out == list(range(128))
    print("shuffle-unit interleave rebuilt 0..127 in "
          f"{len(program.bundles)} bundles")
    print("\nprogram listing:")
    print(listing(program))

def roundtrip_demo() -> None:
    bundle = parse_program(
        "    LCU SETI R1, 7 | RC0 SMAX VWRC, VWRA, #-42\n    LCU EXIT\n"
    ).bundles[0]
    word = encode_bundle(bundle)
    assert decode_bundle(word) == bundle
    print("\nconfiguration word round-trip OK "
          f"({word.bit_length()} bits used)")

if __name__ == "__main__":
    axpb_via_assembly()
    interleave_via_builder()
    roundtrip_demo()
