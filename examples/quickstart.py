"""Quickstart: write a kernel, run it on VWR2A, read cycles and energy.

Builds the simplest complete VWR2A program — an elementwise vector add
with the paper's Table-1 loop shape — stages data through the DMA, runs
it, and prints the instruction listing, cycle ledger and energy estimate.

Run:  python examples/quickstart.py
"""

from repro.arch import DEFAULT_PARAMS
from repro.asm import listing
from repro.energy import default_model
from repro.isa.rc import RCOp
from repro.kernels import KernelRunner, elementwise_kernel

def main() -> None:
    runner = KernelRunner()
    n = 512
    x = [i - 256 for i in range(n)]
    y = [3 * i for i in range(n)]

    # Stage operands into the scratchpad through the DMA (lines 0-3, 4-7).
    before = runner.events_snapshot()
    dma_in = runner.stage_in(x, 0)
    dma_in += runner.stage_in(y, n)

    # z[i] = x[i] + y[i], split across both columns.
    config = elementwise_kernel(
        DEFAULT_PARAMS, RCOp.SADD, n, a_line=0, b_line=4, c_line=8
    )
    result = runner.execute(config)
    z, dma_out = runner.stage_out(8 * 128, n)
    assert z == [a + b for a, b in zip(x, y)]

    print("column 0 program (Table-1 style):")
    print(listing(config.columns[0]))
    print()
    total = dma_in + result.total_cycles + dma_out
    print(f"cycles: dma-in {dma_in} + config {result.config_cycles} "
          f"+ compute {result.cycles} + dma-out {dma_out} = {total}")

    model = default_model()
    report = model.vwr2a_report(runner.events_since(before), total)
    print(f"energy: {report.total_uj * 1000:.2f} nJ "
          f"({report.power_mw():.2f} mW average)")
    for component, pj in sorted(report.by_component.items()):
        print(f"  {component:10s} {pj / 1000:.1f} nJ")

if __name__ == "__main__":
    main()
