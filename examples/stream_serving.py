"""Batched window-stream serving of a long respiration trace.

Mirrors docs/serving.md: slice a multi-minute synthetic recording into
512-sample windows, serve them through one StreamScheduler (kernels
stored once, SRAM staging double-buffered), read the per-window and
aggregate report, then sweep the same trace across application variants
on the same runner.

Run:  python examples/stream_serving.py
"""

from repro.app import WINDOW, AppParams, high_workload_config, respiration_signal
from repro.kernels import KernelRunner
from repro.serve import ParameterSweep, SweepCase, serve_trace

N_WINDOWS = 8

def main() -> None:
    trace = respiration_signal(N_WINDOWS * WINDOW, high_workload_config())
    print(f"trace: {len(trace)} samples "
          f"({N_WINDOWS} windows of {WINDOW})\n")

    # -- one stream through one runner ----------------------------------
    runner = KernelRunner()
    report = serve_trace(trace, "cpu_vwr2a", runner=runner)
    print(report.summary())
    print("\nper window:")
    for win in report.windows:
        print(f"  #{win.index} @{win.start:>5}  {win.cycles:>6} cycles  "
              f"{win.energy_uj:>5.2f} uJ  "
              f"label {'HIGH' if win.label > 0 else 'LOW'}  "
              f"launches {sum(win.engine_counts.values())}")

    saved = report.overlap_saved_cycles
    print(f"\ndouble-buffer overlap: {saved} cycles hidden "
          f"({report.pipelined_total_cycles} pipelined vs "
          f"{report.total_cycles} sequential)")

    # -- the same trace under four application variants ------------------
    sweep = ParameterSweep(
        cases=[
            SweepCase(name="paper", config="cpu_vwr2a"),
            SweepCase(name="short_fir", config="cpu_vwr2a",
                      params=AppParams(fir_taps=7)),
            SweepCase(name="loose_thresh", config="cpu_vwr2a",
                      params=AppParams(delineation_threshold=1800)),
            "cpu",
        ],
        runner=runner,  # reuse: encodings + compiled programs carry over
    )
    result = sweep.run(trace[:4 * WINDOW])
    print("\nparameter sweep (4 windows/case, one shared runner):")
    print(result.table())
    print(f"cheapest case: {result.best()}")

if __name__ == "__main__":
    main()
