"""The MBioTracker application in all three platform configurations.

Reproduces the paper's central experiment (Table 5): the same cognitive
workload pipeline — FIR preprocessing, delineation, feature extraction
with a 512-point FFT, SVM prediction — on the CPU alone, CPU + FFT
accelerator, and CPU + VWR2A.

Run:  python examples/biosignal_app.py
"""

from repro.app import (
    WINDOW,
    high_workload_config,
    respiration_signal,
    run_application,
)
from repro.energy import default_model
from repro.kernels import KernelRunner
from repro.serve import step_energy_uj

def main() -> None:
    model = default_model()
    signal = respiration_signal(WINDOW, high_workload_config())
    print(f"window: {WINDOW} samples of synthetic respiration "
          "(high-workload breathing pattern)\n")

    totals = {}
    for config in ("cpu", "cpu_fft_accel", "cpu_vwr2a"):
        result = run_application(signal, config, KernelRunner())
        print(f"== {config} ==")
        total_uj = 0.0
        for name, step in result.steps.items():
            uj = step_energy_uj(model, config, step)
            total_uj += uj
            print(f"  {name:<14} {step.cycles:>7} cycles  {uj:>6.2f} uJ")
        totals[config] = (result.total_cycles, total_uj)
        print(f"  {'TOTAL':<14} {result.total_cycles:>7} cycles  "
              f"{total_uj:>6.2f} uJ   -> predicted workload: "
              f"{'HIGH' if result.label > 0 else 'LOW'}\n")

    cpu_c, cpu_e = totals["cpu"]
    for config in ("cpu_fft_accel", "cpu_vwr2a"):
        c, e = totals[config]
        print(f"{config}: cycle savings {(1 - c / cpu_c) * 100:.1f}%  "
              f"energy savings {(1 - e / cpu_e) * 100:.1f}%")
    print("(paper: accelerator 9.8% / 3.9%; VWR2A 90.9% / 66.3%)")

if __name__ == "__main__":
    main()
