"""Fault-tolerant fleet serving: chaos, a server restart, and a resume.

Serves one respiration trace through the full MBioTracker ``cpu_vwr2a``
pipeline three ways — a sequential :class:`StreamScheduler` baseline, a
clean loopback TCP fleet, and a fleet under injected network chaos that
is stopped mid-stream and resumed from its checkpoint by a second
server — and shows that every merged report is **bit-identical** to
the baseline, with the recoveries visible only in the resilience
counters.

Workers run as real processes (``multiprocessing``) dialing loopback
TCP, exactly like a production fleet minus the distance.

Run with: ``PYTHONPATH=src python examples/fleet_serving.py``
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time

from repro.app import WINDOW, respiration_signal
from repro.faults import FaultPlan, FaultSpec
from repro.serve import StreamCheckpoint, StreamScheduler, WindowStream
from repro.serve.net import FleetServer, run_worker
from repro.serve.pool import _default_start_method

N_WINDOWS = 6
WORKERS = 2


def spawn_workers(host: str, port: int, n: int) -> list:
    ctx = multiprocessing.get_context(_default_start_method())
    procs = []
    for i in range(n):
        proc = ctx.Process(
            target=run_worker,
            args=(host, port),
            kwargs={
                "name": f"fleet-{i}",
                "heartbeat_interval": 0.25,
                "reconnect_timeout": 60.0,
            },
            daemon=True,
        )
        proc.start()
        procs.append(proc)
    return procs


def reap(procs) -> None:
    for proc in procs:
        proc.join(timeout=10.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=10.0)


def main() -> None:
    trace = respiration_signal(N_WINDOWS * WINDOW)
    stream = WindowStream(trace, window=WINDOW)

    print(f"== sequential baseline ({N_WINDOWS} windows) ==")
    start = time.perf_counter()
    baseline = StreamScheduler(config="cpu_vwr2a").run(stream)
    print(f"{baseline.summary()}")
    print(f"wall: {time.perf_counter() - start:.2f}s")

    print(f"\n== clean fleet: {WORKERS} worker processes on loopback ==")
    server = FleetServer(config="cpu_vwr2a", local_fallback=False,
                         register_timeout=60.0)
    host, port = server.bind()
    procs = spawn_workers(host, port, WORKERS)
    try:
        clean = server.run(stream)
    finally:
        reap(procs)
    assert clean.identical_to(baseline, engines=False) is None
    print("fleet report is bit-identical to the baseline")

    print("\n== chaos + mid-stream server stop + checkpoint resume ==")
    plan = FaultPlan(specs=(
        FaultSpec(kind="net_drop", window=0, persist=1),
        FaultSpec(kind="net_corrupt", window=2, persist=1,
                  offset=32, xor_mask=0x08),
    ))

    def chaos_server(stop_after=None, port=0):
        return FleetServer(
            config="cpu_vwr2a", port=port, fault_plan=plan,
            max_retries=2, task_deadline=4.0, heartbeat_timeout=15.0,
            register_timeout=60.0, local_fallback=False,
            stop_after=stop_after,
        )

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "fleet.ckpt")
        first = chaos_server(stop_after=N_WINDOWS // 2)
        host, port = first.bind()
        procs = spawn_workers(host, port, WORKERS)
        try:
            partial = first.run(stream, StreamCheckpoint(path, every=1))
            print(f"session 1 stopped early: {partial.n_windows} of "
                  f"{N_WINDOWS} windows on disk")

            # A second server on the same port: the workers' reconnect
            # loop finds it and the checkpoint supplies the history.
            resumed = chaos_server(port=port).run(
                stream, StreamCheckpoint(path, every=1)
            )
        finally:
            reap(procs)

    assert resumed.identical_to(baseline, engines=False) is None
    assert resumed.n_windows == N_WINDOWS
    print(f"session 2 resumed to completion: {resumed.n_windows} windows")
    print(f"resilience: {dict(sorted(resumed.resilience.items()))}")
    print("chaos + restart were invisible in the results — "
          "bit-identical to the baseline")


if __name__ == "__main__":
    main()
