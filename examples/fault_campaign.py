"""Chaos serving: fault injection, self-healing, and a campaign sweep.

Three acts over the full MBioTracker ``cpu_vwr2a`` pipeline:

1. a seeded :class:`~repro.faults.FaultPlan` SIGKILLs a pool worker and
   flips SPM bits mid-stream — the supervised pool respawns, retries,
   and the merged report is bit-identical to an uninjected baseline;
2. a hard (persistent) fault exhausts the retry ladder — the window is
   quarantined into ``failed_windows`` instead of aborting the stream;
3. a :class:`~repro.faults.FaultCampaign` sweeps fault kinds and prints
   its contract verdict (the same sweep CI runs via
   ``python -m repro.faults``).

Run with: ``PYTHONPATH=src python examples/fault_campaign.py``
"""

from __future__ import annotations

from repro.app import WINDOW, respiration_signal
from repro.faults import FaultCampaign, FaultPlan, FaultSpec
from repro.serve import PoolScheduler, StreamScheduler, WindowStream

N_WINDOWS = 4
WORKERS = 2
SEED = 2021


def main() -> None:
    trace = respiration_signal(N_WINDOWS * WINDOW)
    stream = WindowStream(trace, window=WINDOW)

    print("== uninjected baseline (sequential) ==")
    baseline = StreamScheduler(config="cpu_vwr2a", energy_model=True) \
        .run(stream)
    print(baseline.summary())

    print("\n== chaos: seeded worker kills + SPM bit-flips, "
          f"{WORKERS}-worker pool ==")
    plan = FaultPlan.generate(
        SEED, stream.n_windows,
        {"worker_kill": 0.4, "spm_bitflip": 0.8},
    )
    print(f"plan: {plan!r}")
    report = PoolScheduler(
        config="cpu_vwr2a", workers=WORKERS, energy_model=True,
        fault_plan=plan, max_retries=2, respawn_limit=4,
    ).run(stream)
    print(report.summary())
    print(f"bit-identical to baseline: "
          f"{report.identical_to(baseline) is None}")

    print("\n== a hard fault: persistent stuck-at word, retries "
          "exhausted ==")
    hard = FaultPlan(specs=(
        FaultSpec(kind="spm_stuck", window=1, addr=8, value=-1,
                  persist=99),
    ))
    survived = StreamScheduler(
        config="cpu_vwr2a", energy_model=True,
        fault_plan=hard, max_retries=1, reference_fallback=False,
    ).run(stream)
    print(survived.summary())
    for failed in survived.failed_windows:
        print(f"quarantined window {failed.index}: {failed.detail}")

    print("\n== campaign sweep (what CI's chaos job runs) ==")
    campaign = FaultCampaign(
        kinds=("spm_bitflip", "chunk_corrupt", "worker_kill"),
        rates=(0.5,), seed=SEED, workers=WORKERS, max_retries=2,
    )
    print(campaign.run(trace).summary())


if __name__ == "__main__":
    main()
