"""Live observability: metrics bus, scrape endpoint, snapshot digest.

Three acts over a pooled MBioTracker stream (docs/observability.md):

1. install a :class:`~repro.obs.MetricsBus` and serve a pooled stream —
   every window, engine decision, cache hit and µJ lands on the bus;
2. expose the bus through the Prometheus text endpoint
   (:class:`~repro.obs.MetricsExporter`) and scrape it over HTTP —
   exactly what ``curl http://host:port/metrics`` (or a real Prometheus
   server) would see;
3. feed a snapshot into the monitoring :class:`~repro.obs.MonitorModel`
   and print the text dashboard (``python -m repro.obs`` shows the same
   live, full-screen).

Run with: ``PYTHONPATH=src python examples/monitoring.py``
"""

from __future__ import annotations

import time
import urllib.request

from repro.app import WINDOW, respiration_signal
from repro.obs import (
    MetricsExporter,
    MonitorModel,
    default_bus,
    recording,
    render_text,
    snapshot_samples,
)
from repro.serve import serve_trace

N_WINDOWS = 4
WORKERS = 2


def main() -> None:
    trace = respiration_signal(N_WINDOWS * WINDOW)

    print("== act 1: serve a pooled stream with the bus installed ==")
    with recording(default_bus()) as bus:
        exporter = MetricsExporter(bus)
        url = exporter.start()
        report = serve_trace(trace, workers=WORKERS)
    print(report.summary())
    snap = bus.snapshot()
    print(f"bus: {snap.counter('repro_windows_served_total'):.0f} windows, "
          f"{snap.counter('repro_window_cycles_total'):.0f} cycles, "
          f"{snap.counter('repro_energy_uj_total'):.2f} uJ")

    print(f"\n== act 2: scrape the endpoint ({url}) ==")
    with urllib.request.urlopen(url, timeout=10.0) as response:
        exposition = response.read().decode()
    interesting = (
        "repro_stream_windows_per_second",
        "repro_launches_total",
        "repro_pool_worker_windows_total",
        "repro_energy_uj_total",
    )
    for line in exposition.splitlines():
        if line.startswith(interesting):
            print(f"  {line}")
    print(f"  ... ({len(exposition.splitlines())} lines total)")
    exporter.stop()

    print("\n== act 3: the monitor dashboard over one snapshot ==")
    model = MonitorModel()
    model.ingest(snapshot_samples(snap), now=time.monotonic())
    print(render_text(model))


if __name__ == "__main__":
    main()
