"""Architecture design-space exploration with ArchSpec.

Walks the three layers of the exploration stack:

1. an :class:`~repro.arch.ArchSpec` variation running a kernel on an
   off-default geometry, bit-exact against the golden model;
2. a :class:`~repro.serve.ParameterSweep` with an ``arch`` axis — same
   trace, several design points, spec-calibrated energy;
3. the :class:`~repro.explore.ExplorationCampaign` Pareto report over
   the default grid (also ``python -m repro.explore``).

Run:  python examples/design_space.py
"""

from repro.app import WINDOW, respiration_signal
from repro.arch import DEFAULT_SPEC
from repro.baselines import lowpass_taps_q15
from repro.explore import ExplorationCampaign
from repro.kernels import KernelRunner
from repro.kernels.fir import fir_fx_reference, run_fir
from repro.serve import ParameterSweep, SweepCase


def main() -> None:
    # -- 1. one off-default geometry, bit-exact -----------------------------
    narrow = DEFAULT_SPEC.vary("narrow", vwr_words=64)
    print(f"paper point:  {DEFAULT_SPEC.describe()}")
    print(f"variation:    {narrow.describe()}\n")

    samples = respiration_signal(WINDOW)
    taps = lowpass_taps_q15(11, 0.08)
    for spec in (DEFAULT_SPEC, narrow):
        runner = KernelRunner(spec=spec)
        fir = run_fir(runner, taps, samples)
        assert fir.samples == fir_fx_reference(samples, taps)
        print(f"  {spec.name:<8} FIR-11: {fir.run.total_cycles:>6} cycles "
              f"(engine decisions: {runner.soc.vwr2a.engine_decisions})")

    # -- 2. a sweep with an arch axis ---------------------------------------
    print("\nsweep: one trace, three design points")
    sweep = ParameterSweep(
        cases=[
            SweepCase(name="paper"),
            SweepCase(name="1col",
                      arch=DEFAULT_SPEC.vary("1col", n_columns=1)),
            SweepCase(name="narrow", arch=narrow),
        ],
    )
    print(sweep.run(respiration_signal(2 * WINDOW)).table())

    # -- 3. the Pareto campaign ---------------------------------------------
    print("\nexploration campaign (default grid, pooled)")
    report = ExplorationCampaign(windows=1, workers=2).run()
    print(report.summary())


if __name__ == "__main__":
    main()
