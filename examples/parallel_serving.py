"""Parallel multi-instance serving: pool vs single scheduler + resume.

Serves one long respiration trace through the full MBioTracker
``cpu_vwr2a`` pipeline twice — on one ``StreamScheduler`` and on a
4-worker ``PoolScheduler`` — shows the reports are bit-identical, then
demonstrates checkpointed serving with a mid-stream resume.

Run with: ``PYTHONPATH=src python examples/parallel_serving.py``
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.app import WINDOW, respiration_signal
from repro.serve import (
    PoolScheduler,
    StreamCheckpoint,
    StreamScheduler,
    WindowStream,
)

N_WINDOWS = 8
WORKERS = 4


def main() -> None:
    trace = respiration_signal(N_WINDOWS * WINDOW)
    stream = WindowStream(trace, window=WINDOW)

    print(f"== serving {N_WINDOWS} windows single-process ==")
    start = time.perf_counter()
    single = StreamScheduler(config="cpu_vwr2a", energy_model=True) \
        .run(stream)
    single_wall = time.perf_counter() - start
    print(single.summary())

    print(f"\n== same stream, {WORKERS}-worker process pool ==")
    start = time.perf_counter()
    pooled = PoolScheduler(
        config="cpu_vwr2a", workers=WORKERS, energy_model=True,
    ).run(stream)
    pooled_wall = time.perf_counter() - start
    print(pooled.summary())

    identical = (
        [w.cycles for w in single.windows]
        == [w.cycles for w in pooled.windows]
        and [w.events for w in single.windows]
        == [w.events for w in pooled.windows]
        and single.labels == pooled.labels
        and single.total_energy_uj == pooled.total_energy_uj
    )
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else os.cpu_count()
    print(f"\nbit-identical reports: {identical}")
    print(f"wall: single {single_wall:.2f}s, pool {pooled_wall:.2f}s "
          f"on {cpus} usable CPU(s)")

    print("\n== checkpointed serving and resume ==")
    path = os.path.join(tempfile.mkdtemp(), "stream.ckpt")
    PoolScheduler(config="cpu_vwr2a", workers=2, energy_model=True).run(
        stream, checkpoint=StreamCheckpoint(path, every=2))
    state = StreamCheckpoint(path).load()
    print(f"checkpoint holds {state.n_done}/{state.n_windows} windows "
          f"at {path}")
    # After a kill, rerunning the same command resumes mid-stream; here
    # the checkpoint is already complete, so the resume rebuilds the
    # bit-identical report without serving a single window.
    start = time.perf_counter()
    resumed = PoolScheduler(config="cpu_vwr2a", workers=2,
                            energy_model=True) \
        .run(stream, checkpoint=StreamCheckpoint(path))
    print(f"resume: {resumed.n_windows} windows in "
          f"{time.perf_counter() - start:.3f}s (nothing left to serve)")
    print(f"labels: {resumed.labels}")
    os.unlink(path)


if __name__ == "__main__":
    main()
