"""FFT showdown: CPU vs fixed-function accelerator vs VWR2A (Table 2 live).

Runs the 512-point real-valued FFT — the paper's Table 3 anchor — on all
three engines, checks they agree on the spectrum, and prints the
cycles/energy comparison.

Run:  python examples/fft_showdown.py
"""

import math

from repro.baselines import rfft_q15
from repro.energy import default_model
from repro.core.events import EventCounters
from repro.kernels import KernelRunner, RfftEngine
from repro.soc.fft_accel import FftAccelerator

def main() -> None:
    n = 512
    # Two tones the engines must all resolve.
    signal = [
        int(9000 * math.sin(2 * math.pi * 10 * i / n)
            + 4000 * math.sin(2 * math.pi * 40 * i / n))
        for i in range(n)
    ]
    model = default_model()

    cpu = rfft_q15(signal)
    cpu_uj = model.cpu_energy_uj(cpu.cycles)

    accel_events = EventCounters()
    accel = FftAccelerator(accel_events).real_fft(signal)
    accel_uj = model.accel_report(
        accel_events.snapshot(), accel.cycles
    ).total_uj

    runner = KernelRunner()
    engine = RfftEngine(runner, n)
    engine.prepare()
    before = runner.events_snapshot()
    ours = engine.run(signal)
    vwr2a_uj = model.vwr2a_report(
        runner.events_since(before), ours.run.total_cycles
    ).total_uj

    def peaks(re, im):
        mags = [r * r + i * i for r, i in zip(re, im)]
        return sorted(range(len(mags)), key=mags.__getitem__)[-2:]

    assert set(peaks(cpu.re, cpu.im)) == set(peaks(ours.re, ours.im)) \
        == set(peaks(accel.re, accel.im)) == {10, 40}
    print("all three engines agree: spectral peaks at bins 10 and 40\n")

    rows = [
        ("Cortex-M4 (CMSIS q15)", cpu.cycles, cpu_uj),
        ("FFT accelerator", accel.cycles, accel_uj),
        ("VWR2A", ours.run.total_cycles, vwr2a_uj),
    ]
    print(f"{'engine':<24} {'cycles':>8} {'time us':>8} {'energy uJ':>10}")
    for name, cycles, uj in rows:
        print(f"{name:<24} {cycles:>8} {cycles / 80:>8.1f} {uj:>10.3f}")
    print(f"\nVWR2A vs CPU speed-up: {cpu.cycles / ours.run.total_cycles:.1f}x"
          "  |  accelerator-to-VWR2A energy gap: "
          f"{vwr2a_uj / accel_uj:.1f}x (paper: ~5.5x)")

if __name__ == "__main__":
    main()
