"""The default VWR2A design space around the paper's synthesized point.

Every spec here is valid under :class:`~repro.arch.ArchParams` validation
(power-of-two slices, whole SPM lines, the MXCU's 5-bit k-field bound of
32 words per slice) and window-512 capable (the real-FFT engine needs
``n >= 4 * line_words``, so RC-count variations scale ``vwr_words``
with them).
"""

from __future__ import annotations

from repro.arch import DEFAULT_SPEC, ArchSpec


def design_space() -> list[ArchSpec]:
    """The default exploration grid: the paper point plus 8 neighbors.

    One axis moves per point (column count, SPM capacity, RC/VWR shape,
    SRF depth) so the Pareto frontier reads as a sensitivity study; the
    one combined point (``1col-spm16K``) probes the minimal corner.
    """
    return [
        DEFAULT_SPEC,
        DEFAULT_SPEC.vary("1col", n_columns=1),
        DEFAULT_SPEC.vary("4col", n_columns=4),
        DEFAULT_SPEC.vary("spm16K", spm_bytes=16 * 1024),
        DEFAULT_SPEC.vary("spm64K", spm_bytes=64 * 1024),
        DEFAULT_SPEC.vary("2rc", rcs_per_column=2, vwr_words=64),
        DEFAULT_SPEC.vary("vwr64", vwr_words=64),
        DEFAULT_SPEC.vary("srf16", srf_entries=16),
        DEFAULT_SPEC.vary("1col-spm16K", n_columns=1,
                          spm_bytes=16 * 1024),
    ]


def smoke_space() -> list[ArchSpec]:
    """The 4-spec subset the CI smoke job explores."""
    space = {spec.name: spec for spec in design_space()}
    return [space[name] for name in ("paper", "1col", "spm16K", "vwr64")]
