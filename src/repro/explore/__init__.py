"""Architecture design-space exploration (the ROADMAP's pool-scale item).

Three pieces on top of the :class:`~repro.arch.ArchSpec` refactor:

* :mod:`repro.explore.space` — the default grid of valid design points
  around the paper's synthesized geometry;
* :mod:`repro.explore.kernels` — picklable single-kernel window
  workloads (real FFT, FIR) that pool workers serve per design point;
* :mod:`repro.explore.campaign` — the campaign sharding specs × kernels
  across the pooled :class:`~repro.serve.ParameterSweep` and folding the
  stream reports into a cycles-vs-energy
  :class:`~repro.explore.pareto.ParetoReport` (also
  ``python -m repro.explore`` for the CI smoke job).
"""

from repro.explore.campaign import ExplorationCampaign
from repro.explore.kernels import KERNELS, KernelPipeline, KernelWindowResult
from repro.explore.pareto import DesignPoint, ParetoReport, pareto_front
from repro.explore.space import design_space, smoke_space

__all__ = [
    "KERNELS",
    "DesignPoint",
    "ExplorationCampaign",
    "KernelPipeline",
    "KernelWindowResult",
    "ParetoReport",
    "design_space",
    "pareto_front",
    "smoke_space",
]
