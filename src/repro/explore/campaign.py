"""Pool-scale architecture exploration: specs × kernels → Pareto report.

An :class:`ExplorationCampaign` shards a grid of
:class:`~repro.arch.ArchSpec` design points × single-kernel workloads
(:mod:`repro.explore.kernels`) across the pooled
:class:`~repro.serve.ParameterSweep` — every (spec, kernel) case serves
the same synthetic trace on its own platform, energy auto-calibrated per
design point (:func:`repro.energy.model_for`) — and folds the per-case
stream reports into a :class:`~repro.explore.pareto.ParetoReport` of
cycles vs energy per window.

The module doubles as the CI smoke job::

    python -m repro.explore --smoke --json pareto.json

which exits non-zero when any case fails to serve its stream.
"""

from __future__ import annotations

import argparse
import time

from repro.arch import ArchSpec
from repro.core.errors import ConfigurationError
from repro.explore.kernels import KERNELS, KernelPipeline
from repro.explore.pareto import DesignPoint, ParetoReport
from repro.explore.space import design_space, smoke_space
from repro.serve.report import StreamReport, merge_counts
from repro.serve.sweep import ParameterSweep, SweepCase


class ExplorationCampaign:
    """Measures every design point on every kernel workload.

    ``specs`` defaults to :func:`~repro.explore.space.design_space`;
    ``kernels`` names workloads from :data:`~repro.explore.kernels.KERNELS`;
    ``windows`` sizes the served stream (each window is one kernel
    invocation); ``workers > 1`` shards the (spec, kernel) cases across a
    process pool.
    """

    def __init__(self, specs: list[ArchSpec] | None = None,
                 kernels: tuple[str, ...] = KERNELS,
                 windows: int = 2, window: int | None = None,
                 workers: int | None = 2) -> None:
        self.specs = list(specs) if specs is not None else design_space()
        if not self.specs:
            raise ConfigurationError("exploration needs at least one spec")
        names = [spec.name or spec.fingerprint for spec in self.specs]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"exploration specs need unique names, got {names}"
            )
        self.kernels = tuple(kernels)
        if not self.kernels:
            raise ConfigurationError("exploration needs at least one kernel")
        for kernel in self.kernels:
            if kernel not in KERNELS:
                raise ConfigurationError(
                    f"unknown exploration kernel {kernel!r} "
                    f"(choose from {KERNELS})"
                )
        if windows < 1:
            raise ConfigurationError("exploration needs at least one window")
        if window is None:
            from repro.app.mbiotracker import WINDOW

            window = WINDOW
        self.windows = windows
        self.window = window
        self.workers = workers

    def _cases(self) -> list[SweepCase]:
        return [
            SweepCase(
                name=f"{spec.name or spec.fingerprint}:{kernel}",
                arch=spec,
                pipeline=KernelPipeline(kernel),
            )
            for spec in self.specs
            for kernel in self.kernels
        ]

    def run(self, trace=None) -> ParetoReport:
        """Explore the grid; returns the Pareto report over all specs."""
        if trace is None:
            from repro.app.signals import respiration_signal

            trace = respiration_signal(self.windows * self.window)
        start = time.perf_counter()
        sweep = ParameterSweep(
            cases=self._cases(),
            window=self.window,
            hop=self.window,
            workers=self.workers,
        )
        results = sweep.run(trace)
        wall = time.perf_counter() - start

        points = []
        complete = True
        for spec in self.specs:
            label = spec.name or spec.fingerprint
            cycles = 0.0
            energy = 0.0
            kernel_cycles: dict[str, float] = {}
            engine_counts: dict[str, int] = {}
            for kernel in self.kernels:
                report: StreamReport = results[f"{label}:{kernel}"]
                if report.n_failed or not report.n_windows:
                    complete = False
                    if not report.n_windows:
                        continue
                n = report.n_windows
                kernel_cycles[kernel] = report.total_cycles / n
                cycles += report.total_cycles / n
                total_uj = report.total_energy_uj
                if total_uj is None:
                    complete = False
                else:
                    energy += total_uj / n
                merge_counts(engine_counts, report.engine_counts)
            points.append(DesignPoint(
                name=label,
                fingerprint=spec.fingerprint,
                geometry=spec.describe(),
                cycles_per_window=cycles,
                energy_uj_per_window=energy,
                kernel_cycles=kernel_cycles,
                engine_counts=engine_counts,
            ))
        return ParetoReport(
            points=points,
            meta={
                "kernels": list(self.kernels),
                "windows": self.windows,
                "window": self.window,
                "workers": self.workers,
                "wall_seconds": wall,
                "complete": complete,
            },
        )


# -- CLI (the CI smoke job) ---------------------------------------------------

def main(argv=None) -> int:
    """Explore the design grid on synthetic respiration; 0 iff complete."""
    parser = argparse.ArgumentParser(
        description=(
            "Architecture design-space exploration: cycles vs energy "
            "Pareto report over VWR2A geometries (see docs/architecture.md)."
        )
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI smoke grid: 4 specs x 1 kernel, 1 window",
    )
    parser.add_argument(
        "--windows", type=int, default=None,
        help="stream length in windows per case (default 2; smoke 1)",
    )
    parser.add_argument(
        "--kernels", default=None,
        help=f"comma-separated kernel workloads from {KERNELS}",
    )
    parser.add_argument(
        "--specs", default=None,
        help="comma-separated spec names from the default design space",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the Pareto report as JSON",
    )
    args = parser.parse_args(argv)

    specs = smoke_space() if args.smoke else design_space()
    if args.specs:
        wanted = [name for name in args.specs.split(",") if name]
        by_name = {spec.name: spec for spec in design_space()}
        missing = [name for name in wanted if name not in by_name]
        if missing:
            parser.error(
                f"unknown specs {missing}; choose from "
                f"{sorted(by_name)}"
            )
        specs = [by_name[name] for name in wanted]
    if args.kernels:
        kernels = tuple(k for k in args.kernels.split(",") if k)
    else:
        kernels = ("rfft",) if args.smoke else KERNELS
    windows = args.windows if args.windows is not None \
        else (1 if args.smoke else 2)

    campaign = ExplorationCampaign(
        specs=specs, kernels=kernels, windows=windows,
        workers=args.workers,
    )
    report = campaign.run()
    print(report.summary())
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(report.to_json())
        print(f"report written to {args.json}")
    return 0 if report.meta.get("complete") else 1


if __name__ == "__main__":
    raise SystemExit(main())
