"""Single-kernel window workloads for architecture exploration.

The exploration campaign measures each design point on isolated paper
kernels rather than only the fused MBioTracker window: a
:class:`KernelPipeline` is a picklable ``(runner, samples) -> result``
callable (the :class:`~repro.serve.StreamScheduler` pipeline contract)
that stages one window, runs exactly one VWR2A kernel, and captures the
cycle/event delta as a :class:`~repro.app.StepResult` — the same shape
application steps use, so the serving layer's energy model attributes
the window without special cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.app.mbiotracker import StepResult
from repro.baselines import lowpass_taps_q15
from repro.core.errors import ConfigurationError
from repro.kernels.fir import run_fir
from repro.kernels.rfft import RfftEngine
from repro.kernels.runner import KernelRunner

#: Kernel workloads the exploration campaign can shard across the pool.
KERNELS = ("rfft", "fir")


@dataclass
class KernelWindowResult:
    """AppResult-shaped return value of a single-kernel workload.

    Carrying ``steps`` lets :func:`repro.serve.report.app_energy_uj`
    model the window's energy exactly as it models application steps;
    ``checksum`` folds the kernel output so cross-engine and cross-run
    identity stays checkable without shipping whole spectra around.
    """

    kernel: str                      #: which kernel produced the window
    steps: dict[str, StepResult]     #: one step: the kernel itself
    checksum: int                    #: folded output words (identity proof)

    @property
    def total_cycles(self) -> int:
        return sum(step.cycles for step in self.steps.values())


def _fold(values) -> int:
    """Order-sensitive 32-bit fold of the kernel's output words."""
    acc = 0
    for value in values:
        acc = (acc * 1000003 + (int(value) & 0xFFFFFFFF)) & 0xFFFFFFFF
    return acc


@dataclass(frozen=True)
class KernelPipeline:
    """One paper kernel bound as a picklable window workload.

    ``kernel`` selects the workload: ``"rfft"`` runs the window-sized
    real FFT (Table 2's transform step), ``"fir"`` the q15 low-pass
    filter (Table 4). Frozen + module-level so pool workers receive it
    by value, mirroring :class:`~repro.app.mbiotracker.WindowPipeline`.
    """

    kernel: str
    fir_taps: int = 11
    fir_cutoff: float = 0.08

    #: Platform configuration the energy model attributes under: the
    #: kernels run on the VWR2A domain.
    config = "cpu_vwr2a"

    def __post_init__(self) -> None:
        if self.kernel not in KERNELS:
            raise ConfigurationError(
                f"unknown exploration kernel {self.kernel!r} "
                f"(choose from {KERNELS})"
            )

    def __call__(self, runner: KernelRunner, samples) -> KernelWindowResult:
        soc = runner.soc
        soc.with_accelerators()
        events = soc.events.snapshot()
        active = soc.cpu.active_cycles
        sleep = soc.cpu.sleep_cycles
        if self.kernel == "rfft":
            engine = RfftEngine(runner, len(samples))
            engine.prepare()
            out = engine.run(samples)
            checksum = _fold(out.re) ^ _fold(out.im)
        else:
            taps = lowpass_taps_q15(self.fir_taps, self.fir_cutoff)
            fir = run_fir(runner, taps, samples)
            checksum = _fold(fir.samples)
        step = StepResult(
            name=self.kernel,
            cycles=(soc.cpu.active_cycles - active)
            + (soc.cpu.sleep_cycles - sleep),
            cpu_active=soc.cpu.active_cycles - active,
            cpu_sleep=soc.cpu.sleep_cycles - sleep,
            events=soc.events.diff(events),
        )
        return KernelWindowResult(
            kernel=self.kernel, steps={self.kernel: step}, checksum=checksum
        )
