"""Pareto analysis of explored design points: cycles vs energy per window.

A :class:`DesignPoint` is one measured architecture; :func:`pareto_front`
splits a set of points into the non-dominated frontier and the dominated
rest (minimizing both axes); a :class:`ParetoReport` bundles the points
with JSON and text renderings for the CLI and the CI artifact.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class DesignPoint:
    """One architecture's measured position in the cycles/energy plane."""

    name: str                 #: spec name (report key)
    fingerprint: str          #: ArchSpec fingerprint the numbers belong to
    geometry: str             #: human-readable spec description
    cycles_per_window: float  #: simulated cycles per served window
    energy_uj_per_window: float  #: modeled energy (µJ) per served window
    #: kernel name -> cycles per window of that kernel's stream
    kernel_cycles: dict[str, float] = field(default_factory=dict)
    #: stream-wide launch tally by executing engine
    engine_counts: dict[str, int] = field(default_factory=dict)

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance: no worse on both axes, better on at least one.

        Both axes minimize. Equal points do not dominate each other, so
        duplicated measurements all stay on the frontier instead of
        arbitrarily shadowing one another.
        """
        if self.cycles_per_window > other.cycles_per_window:
            return False
        if self.energy_uj_per_window > other.energy_uj_per_window:
            return False
        return (
            self.cycles_per_window < other.cycles_per_window
            or self.energy_uj_per_window < other.energy_uj_per_window
        )


def pareto_front(points) -> tuple[list[DesignPoint], list[DesignPoint]]:
    """Split ``points`` into (frontier, dominated), both cycle-sorted."""
    points = list(points)
    front = [
        p for p in points
        if not any(q.dominates(p) for q in points)
    ]
    dominated = [p for p in points if p not in front]
    key = lambda p: (p.cycles_per_window, p.energy_uj_per_window)  # noqa: E731
    return sorted(front, key=key), sorted(dominated, key=key)


@dataclass
class ParetoReport:
    """All measured design points plus their Pareto classification."""

    points: list[DesignPoint] = field(default_factory=list)
    #: campaign metadata (kernels, windows, workers, wall seconds, ...)
    meta: dict = field(default_factory=dict)

    @property
    def front(self) -> list[DesignPoint]:
        return pareto_front(self.points)[0]

    @property
    def dominated(self) -> list[DesignPoint]:
        return pareto_front(self.points)[1]

    @property
    def front_names(self) -> list[str]:
        return [p.name for p in self.front]

    def __getitem__(self, name: str) -> DesignPoint:
        for point in self.points:
            if point.name == name:
                return point
        raise KeyError(name)

    def to_json(self) -> str:
        front = {p.name for p in self.front}
        return json.dumps(
            {
                "meta": self.meta,
                "points": [
                    {**asdict(p), "pareto_optimal": p.name in front}
                    for p in self.points
                ],
                "front": sorted(front),
            },
            indent=2,
            sort_keys=True,
        )

    def table(self) -> str:
        """ASCII cycles/energy comparison, frontier points starred."""
        front = {p.name for p in self.front}
        kernels: list[str] = []
        for point in self.points:
            for kernel in point.kernel_cycles:
                if kernel not in kernels:
                    kernels.append(kernel)
        header = (
            f"{'point':<18} {'geometry':<40} {'cyc/win':>9} "
            f"{'uJ/win':>8} "
            + " ".join(f"{k + ' cyc':>10}" for k in kernels)
            + "  pareto"
        )
        lines = [header, "-" * len(header)]
        key = lambda p: (  # noqa: E731
            p.cycles_per_window, p.energy_uj_per_window
        )
        for point in sorted(self.points, key=key):
            per_kernel = " ".join(
                f"{point.kernel_cycles.get(k, 0):>10.0f}" for k in kernels
            )
            lines.append(
                f"{point.name:<18} {point.geometry:<40} "
                f"{point.cycles_per_window:>9.0f} "
                f"{point.energy_uj_per_window:>8.2f} "
                f"{per_kernel}  {'*' if point.name in front else ''}"
            )
        return "\n".join(lines)

    def summary(self) -> str:
        front = self.front
        lines = [
            f"explored {len(self.points)} design points "
            f"x {len(self.meta.get('kernels', []))} kernels "
            f"({self.meta.get('windows', '?')} windows each): "
            f"{len(front)} on the Pareto frontier",
            self.table(),
        ]
        if front:
            fastest = front[0]
            leanest = min(front, key=lambda p: p.energy_uj_per_window)
            lines.append(
                f"fastest: {fastest.name} "
                f"({fastest.cycles_per_window:.0f} cyc/win); "
                f"leanest: {leanest.name} "
                f"({leanest.energy_uj_per_window:.2f} uJ/win)"
            )
        return "\n".join(lines)
