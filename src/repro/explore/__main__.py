"""``python -m repro.explore`` — run a design-space exploration."""

from repro.explore.campaign import main

if __name__ == "__main__":
    raise SystemExit(main())
