"""Instruction bundles: one PC step across all units of a column.

"There is evident parallelism between this architecture, where the RCs of a
column share a program counter, and a VLIW in which all the execution slots
are equivalent. Indeed, the instructions of the different RCs can be fused
and considered as a wide (predecoded) instruction word." (Sec. 3.1.)
A :class:`Bundle` is exactly that wide word: LCU + LSU + MXCU + one
instruction per RC, as in Table 1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.lcu import LCU_NOP, LCUInstr
from repro.isa.lsu import LSU_NOP, LSUInstr, LSUOp
from repro.isa.mxcu import MXCU_NOP, MXCUInstr
from repro.isa.rc import RC_NOP, RCInstr

#: LSU op -> (granularity, direction) of its SPM access.
_SPM_ACCESS = {
    LSUOp.LD_VWR: ("line", "read"),
    LSUOp.ST_VWR: ("line", "write"),
    LSUOp.LD_SRF: ("word", "read"),
    LSUOp.ST_SRF: ("word", "write"),
}


@dataclass(frozen=True)
class Bundle:
    """One cycle's worth of configuration for a column."""

    lcu: LCUInstr = LCU_NOP
    lsu: LSUInstr = LSU_NOP
    mxcu: MXCUInstr = MXCU_NOP
    rcs: tuple = (RC_NOP, RC_NOP, RC_NOP, RC_NOP)

    @property
    def is_nop(self) -> bool:
        return (
            self.lcu.is_nop
            and self.lsu.is_nop
            and self.mxcu.is_nop
            and all(rc.is_nop for rc in self.rcs)
        )

    def rc(self, index: int) -> RCInstr:
        return self.rcs[index]

    def event_delta(self, params) -> dict:
        """Compile hook: the exact event counts one execution logs.

        Every event ``Column.step`` records is fixed by the configuration
        word alone, so the delta is static; the compiled engine multiplies
        it by execution counts instead of logging per cycle.
        """
        from repro.engine.deltas import bundle_event_delta

        return bundle_event_delta(self, params)

    def spm_access(self):
        """Footprint hook: the bundle's static SPM access shape, or None.

        Returns ``(granularity, direction, addr_entry, post_inc)`` —
        granularity ``"line"``/``"word"``, direction ``"read"``/
        ``"write"``, the SRF entry holding the address and the
        post-increment applied to it. *Which* addresses a kernel touches
        is fixed by the configuration words (same property as
        :meth:`event_delta`); the cross-column SPM analysis
        (:mod:`repro.engine.conflicts`) folds these shapes over the
        program's control flow.
        """
        access = _SPM_ACCESS.get(self.lsu.op)
        if access is None:
            return None
        granularity, direction = access
        return (granularity, direction, int(self.lsu.addr),
                int(self.lsu.inc))

    def __str__(self) -> str:
        rc_txt = " | ".join(str(rc) for rc in self.rcs)
        return (
            f"LCU[{self.lcu}] LSU[{self.lsu}] MXCU[{self.mxcu}] "
            f"RC[{rc_txt}]"
        )


def make_bundle(
    lcu: LCUInstr = LCU_NOP,
    lsu: LSUInstr = LSU_NOP,
    mxcu: MXCUInstr = MXCU_NOP,
    rcs=None,
    n_rcs: int = 4,
) -> Bundle:
    """Build a bundle, padding missing RC slots with NOPs.

    ``rcs`` may be a list shorter than ``n_rcs`` (padded), a dict mapping RC
    index to instruction, or None (all NOPs).
    """
    if rcs is None:
        slots = [RC_NOP] * n_rcs
    elif isinstance(rcs, dict):
        slots = [rcs.get(i, RC_NOP) for i in range(n_rcs)]
    else:
        slots = list(rcs)
        if len(slots) > n_rcs:
            raise ValueError(f"{len(slots)} RC slots given, only {n_rcs} exist")
        slots += [RC_NOP] * (n_rcs - len(slots))
    return Bundle(lcu=lcu, lsu=lsu, mxcu=mxcu, rcs=tuple(slots))
