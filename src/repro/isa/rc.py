"""Reconfigurable-cell (RC) instructions.

Each RC holds a 32-bit ALU and a two-entry local register file (Sec. 3.1).
The ALU executes "typical operations: signed addition, subtraction and
multiplication, logical bitwise operations, and logical/arithmetic bit
shift", all single-cycle, plus the fixed-point 16.15 multiply mode. SMAX /
SMIN are included under "typical operations"; they are required by the
delineation kernel (see DESIGN.md Sec. 4 for the divergence note).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.fields import DST_NONE, ZERO, Dest, Operand


class RCOp(enum.IntEnum):
    NOP = 0
    SADD = 1      #: signed addition (wraps)
    SSUB = 2      #: signed subtraction (wraps)
    SMUL = 3      #: signed multiply, low 32 bits kept (standard mode)
    FXPMUL = 4    #: fixed-point multiply, 16.15 format (Sec. 3.1)
    SLL = 5       #: shift left logical
    SRL = 6       #: shift right logical
    SRA = 7       #: shift right arithmetic
    LAND = 8
    LOR = 9
    LXOR = 10
    LNOT = 11     #: bitwise complement of operand a
    MOV = 12      #: pass operand a through (neighbour staging, copies)
    SMAX = 13
    SMIN = 14
    # The 16-bit SIMD mode the paper proposes as a datapath optimization
    # ("One solution could be to have a 16-bit mode with two simultaneous
    # 16-bit operations instead of one 32-bit operation", Sec. 5.1.1):
    # two independent signed 16-bit lanes per 32-bit word.
    SADD16 = 15
    SSUB16 = 16
    FXPMUL16 = 17 #: per-lane q15 multiply ((a*b) >> 15 in each lane)


#: Ops that ignore their second operand.
UNARY_OPS = frozenset({RCOp.LNOT, RCOp.MOV})

#: Ops using the multiplier (more energy than adder/logic ops).
MUL_OPS = frozenset({RCOp.SMUL, RCOp.FXPMUL, RCOp.FXPMUL16})

#: Dual-lane 16-bit SIMD ops (the paper's proposed extension).
SIMD16_OPS = frozenset({RCOp.SADD16, RCOp.SSUB16, RCOp.FXPMUL16})


@dataclass(frozen=True)
class RCInstr:
    """One RC configuration word: ``dst = op(a, b)``.

    The VWR word index for VWR sources and destinations is supplied by the
    column's MXCU (Sec. 3.3.2) — it is *not* part of the RC instruction.
    """

    op: RCOp = RCOp.NOP
    dst: Dest = DST_NONE
    a: Operand = ZERO
    b: Operand = ZERO

    @property
    def is_nop(self) -> bool:
        return self.op is RCOp.NOP

    @property
    def uses_multiplier(self) -> bool:
        return self.op in MUL_OPS

    def operands(self) -> tuple:
        """The operands actually read by this instruction."""
        if self.op is RCOp.NOP:
            return ()
        if self.op in UNARY_OPS:
            return (self.a,)
        return (self.a, self.b)

    def __str__(self) -> str:
        if self.op is RCOp.NOP:
            return "NOP"
        srcs = ", ".join(str(operand) for operand in self.operands())
        return f"{self.op.name} {self.dst} <- {srcs}"


RC_NOP = RCInstr()


def rc(op: RCOp, dst: Dest = DST_NONE, a: Operand = ZERO,
       b: Operand = ZERO) -> RCInstr:
    """Shorthand constructor: ``dst = op(a, b)``."""
    return RCInstr(op=op, dst=dst, a=a, b=b)
