"""Column programs and kernel configurations.

A :class:`ColumnProgram` is the bundle sequence loaded into one column's
64-entry program memories plus the initial SRF contents (the SRF holds
"scalar values that are kernel-dependent", Sec. 3.2 — addresses, masks and
loop parameters, installed when the kernel configuration is loaded).

A :class:`KernelConfig` groups the per-column programs of one kernel as
stored in the configuration memory: "The configuration words are stored in
the configuration memory and loaded to the RCs' local program memory when a
kernel execution starts." (Sec. 3.1.)
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ColumnProgram:
    """Bundles plus initial SRF values for one column."""

    bundles: list
    srf_init: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.bundles)

    def __getitem__(self, pc: int):
        return self.bundles[pc]

    def validate(self, params) -> None:
        """Check the program fits the hardware described by ``params``."""
        if len(self.bundles) == 0:
            raise ValueError("empty program")
        if len(self.bundles) > params.program_words:
            raise ValueError(
                f"program has {len(self.bundles)} bundles; the program "
                f"memory holds {params.program_words} (Sec. 3.1)"
            )
        for entry in self.srf_init:
            if not 0 <= entry < params.srf_entries:
                raise ValueError(f"SRF init entry {entry} out of range")
        for pc, bundle in enumerate(self.bundles):
            if len(bundle.rcs) != params.rcs_per_column:
                raise ValueError(
                    f"bundle {pc} has {len(bundle.rcs)} RC slots, "
                    f"expected {params.rcs_per_column}"
                )
            if bundle.lcu.is_branch or bundle.lcu.op.name == "JUMP":
                if not 0 <= bundle.lcu.target < len(self.bundles):
                    raise ValueError(
                        f"bundle {pc}: branch target {bundle.lcu.target} "
                        "outside program"
                    )

    def listing(self) -> str:
        """Human-readable listing (Table 1 style)."""
        lines = []
        for pc, bundle in enumerate(self.bundles):
            lines.append(f"{pc:3d}: {bundle}")
        return "\n".join(lines)

    def compiled(self, params):
        """Compile hook: the predecoded basic-block form of this program.

        Memoized per object and structurally (identical bundle sequences
        share one compilation, whatever their ``srf_init``); used by the
        ``compiled`` execution engine at ``load_kernel`` time.
        """
        from repro.engine.compiler import compile_program

        return compile_program(self, params)

    def spm_footprint(self, params):
        """Footprint hook: may-touch SPM address sets of this program.

        Derived from the configuration words and ``srf_init`` by the
        static analysis in :mod:`repro.engine.conflicts` (memoized on the
        configuration-word fingerprint plus the SRF initializers). Returns
        a :class:`~repro.engine.conflicts.ColumnFootprint`.
        """
        from repro.engine.conflicts import column_footprint

        return column_footprint(self, params)


@dataclass
class KernelConfig:
    """A kernel as held in the configuration memory.

    ``columns`` maps column index to :class:`ColumnProgram`. Kernels using
    several columns have their PCs synchronized by construction (identical
    control flow, per Sec. 3.3.3).
    """

    name: str
    columns: dict

    @property
    def n_columns(self) -> int:
        return len(self.columns)

    def validate(self, params) -> None:
        if not self.columns:
            raise ValueError(f"kernel {self.name!r}: no column programs")
        for col, program in self.columns.items():
            if not 0 <= col < params.n_columns:
                raise ValueError(
                    f"kernel {self.name!r}: column {col} does not exist"
                )
            program.validate(params)

    def spm_conflicts(self, params):
        """Footprint hook: cross-column SPM conflict report of this kernel.

        The ``auto`` engine consults this at ``load_kernel`` to decide
        whether the launch may use the compiled fast path; returns a
        :class:`~repro.engine.conflicts.ConflictReport`.
        """
        from repro.engine.conflicts import analyze_columns

        return analyze_columns(self.columns, params)

    def load_cycles(self, params) -> int:
        """Cycles to copy this configuration into the program memories.

        One configuration word per bundle per column plus one cycle per
        initial SRF entry (the configuration loader and the SRF are written
        sequentially).
        """
        total = 0
        for program in self.columns.values():
            total += len(program.bundles) + len(program.srf_init)
        return total
