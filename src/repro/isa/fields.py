"""Shared field definitions of the VWR2A instruction set.

The paper stresses that configuration-word bits map directly onto datapath
control signals ("without an actual decoding process", Sec. 3.1); the enums
below are those control signals. Operand routing for the RCs follows
Sec. 3.1: "The ALU operands have multiple sources: the VWRs, the SRF, the RC
local register file, and the previous-cycle results of neighboring RCs."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Vwr(enum.IntEnum):
    """The three very-wide registers of a column (Fig. 1)."""

    A = 0
    B = 1
    C = 2


class RCSrcKind(enum.IntEnum):
    """Where an RC ALU operand comes from."""

    ZERO = 0
    VWR_A = 1
    VWR_B = 2
    VWR_C = 3
    SRF = 4      #: scalar register file entry (broadcast to all RCs)
    R0 = 5       #: RC-local register 0
    R1 = 6       #: RC-local register 1
    RCT = 7      #: previous-cycle result of the RC above (wraps in column)
    RCB = 8      #: previous-cycle result of the RC below (wraps in column)
    IMM = 9      #: signed immediate embedded in the configuration word


class RCDstKind(enum.IntEnum):
    """Where an RC result is written."""

    NONE = 0     #: result only latched in the RC output register
    VWR_A = 1
    VWR_B = 2
    VWR_C = 3
    R0 = 4
    R1 = 5
    SRF = 6


_VWR_SRC = {
    RCSrcKind.VWR_A: Vwr.A,
    RCSrcKind.VWR_B: Vwr.B,
    RCSrcKind.VWR_C: Vwr.C,
}

_VWR_DST = {
    RCDstKind.VWR_A: Vwr.A,
    RCDstKind.VWR_B: Vwr.B,
    RCDstKind.VWR_C: Vwr.C,
}


@dataclass(frozen=True)
class Operand:
    """An RC operand: a source kind plus its payload.

    ``index`` holds the SRF entry for ``SRF`` sources and the signed
    immediate value for ``IMM`` sources; it is unused otherwise.
    """

    kind: RCSrcKind
    index: int = 0

    def vwr(self) -> "Vwr | None":
        """The VWR read by this operand, or None."""
        return _VWR_SRC.get(self.kind)

    @property
    def reads_srf(self) -> bool:
        return self.kind is RCSrcKind.SRF

    def __str__(self) -> str:
        if self.kind is RCSrcKind.SRF:
            return f"SRF[{self.index}]"
        if self.kind is RCSrcKind.IMM:
            return f"#{self.index}"
        if self.kind in _VWR_SRC:
            return f"VWR{_VWR_SRC[self.kind].name}"
        return self.kind.name


@dataclass(frozen=True)
class Dest:
    """An RC destination: a kind plus the SRF entry when kind is SRF."""

    kind: RCDstKind
    index: int = 0

    def vwr(self) -> "Vwr | None":
        """The VWR written by this destination, or None."""
        return _VWR_DST.get(self.kind)

    @property
    def writes_srf(self) -> bool:
        return self.kind is RCDstKind.SRF

    def __str__(self) -> str:
        if self.kind is RCDstKind.SRF:
            return f"SRF[{self.index}]"
        if self.kind in _VWR_DST:
            return f"VWR{_VWR_DST[self.kind].name}"
        return self.kind.name


# Ergonomic singletons for kernel generators and hand-written programs.
ZERO = Operand(RCSrcKind.ZERO)
VWR_A = Operand(RCSrcKind.VWR_A)
VWR_B = Operand(RCSrcKind.VWR_B)
VWR_C = Operand(RCSrcKind.VWR_C)
R0 = Operand(RCSrcKind.R0)
R1 = Operand(RCSrcKind.R1)
RCT = Operand(RCSrcKind.RCT)
RCB = Operand(RCSrcKind.RCB)

DST_NONE = Dest(RCDstKind.NONE)
DST_VWR_A = Dest(RCDstKind.VWR_A)
DST_VWR_B = Dest(RCDstKind.VWR_B)
DST_VWR_C = Dest(RCDstKind.VWR_C)
DST_R0 = Dest(RCDstKind.R0)
DST_R1 = Dest(RCDstKind.R1)

#: Map a :class:`Vwr` to the matching operand / destination.
VWR_OPERANDS = {Vwr.A: VWR_A, Vwr.B: VWR_B, Vwr.C: VWR_C}
VWR_DESTS = {Vwr.A: DST_VWR_A, Vwr.B: DST_VWR_B, Vwr.C: DST_VWR_C}


def srf(entry: int) -> Operand:
    """Operand reading SRF entry ``entry``."""
    return Operand(RCSrcKind.SRF, entry)


def imm(value: int) -> Operand:
    """Signed-immediate operand (configuration-word constant)."""
    return Operand(RCSrcKind.IMM, value)


def dst_srf(entry: int) -> Dest:
    """Destination writing SRF entry ``entry``."""
    return Dest(RCDstKind.SRF, entry)


def dst_vwr(which: Vwr) -> Dest:
    """Destination writing the MXCU-indexed word of VWR ``which``."""
    return VWR_DESTS[which]


class ShuffleMode(enum.IntEnum):
    """Hardcoded shuffle-unit operations (Sec. 3.3.1).

    Every mode consumes the 2V-word concatenation of VWRs A and B (V =
    VWR width in words) and produces V words into VWR C. The LO/HI suffix
    selects the lower or upper half of the 2V-word intermediate result for
    the interleave / bit-reversal / circular-shift modes; the pruning modes
    inherently produce V words.
    """

    INTERLEAVE_LO = 0
    INTERLEAVE_HI = 1
    EVEN_PRUNE = 2
    ODD_PRUNE = 3
    BITREV_LO = 4
    BITREV_HI = 5
    CSHIFT_LO = 6
    CSHIFT_HI = 7
