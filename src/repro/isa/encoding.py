"""Binary encoding of configuration words.

"The bits of the configuration words (i.e., 'instructions') correspond
directly to the control signals in the cell datapaths, without an actual
decoding process." (Sec. 3.1.) This module defines that bit-level layout:
every unit instruction packs into a fixed-width field group and a bundle is
the concatenation of its unit words. The configuration memory stores these
integers; encode/decode are exact inverses (property-tested).

Field widths (LSB first within each unit word):

* RC    (53 bits): op:5  dst_kind:3  dst_idx:3  a_kind:4  a_val:s17
                   b_kind:4  b_val:s17
* LSU   (54 bits): op:3  vwr:2  addr:3  inc:s8  data:3  mode:3  value:u32
* MXCU  (27 bits): op:2  k:5  inc:s6  and:5  xor:5  srf_and:4 (0xF = none)
* LCU   (48 bits): op:4  rd:2  imm:s17  cmp_kind:2  cmp:s17  target:6

``sNN`` fields are signed two's complement; ``value`` stores the unsigned
view of the 32-bit constant.
"""

from __future__ import annotations

from repro.isa.bundle import Bundle
from repro.isa.fields import Dest, Operand, RCDstKind, RCSrcKind, ShuffleMode, Vwr
from repro.isa.lcu import LCUCmp, LCUInstr, LCUOp
from repro.isa.lsu import LSUInstr, LSUOp
from repro.isa.mxcu import NO_SRF, MXCUInstr, MXCUOp
from repro.isa.rc import RCInstr, RCOp
from repro.utils.bits import sign_extend, to_signed32, to_unsigned32

RC_BITS = 53
LSU_BITS = 54
MXCU_BITS = 27
LCU_BITS = 48


def bundle_bits(n_rcs: int = 4) -> int:
    """Total configuration-word width of a bundle."""
    return LCU_BITS + LSU_BITS + MXCU_BITS + n_rcs * RC_BITS


class _Packer:
    """Append-only LSB-first bit packer."""

    def __init__(self) -> None:
        self.word = 0
        self.pos = 0

    def put(self, value: int, bits: int, signed: bool = False) -> None:
        if signed:
            lo = -(1 << (bits - 1))
            hi = (1 << (bits - 1)) - 1
            if not lo <= value <= hi:
                raise ValueError(
                    f"value {value} does not fit a signed {bits}-bit field"
                )
            value &= (1 << bits) - 1
        elif not 0 <= value < (1 << bits):
            raise ValueError(
                f"value {value} does not fit an unsigned {bits}-bit field"
            )
        self.word |= value << self.pos
        self.pos += bits


class _Unpacker:
    """LSB-first bit unpacker matching :class:`_Packer`."""

    def __init__(self, word: int) -> None:
        self.word = word
        self.pos = 0

    def get(self, bits: int, signed: bool = False) -> int:
        raw = (self.word >> self.pos) & ((1 << bits) - 1)
        self.pos += bits
        return sign_extend(raw, bits) if signed else raw


def encode_rc(instr: RCInstr) -> int:
    packer = _Packer()
    packer.put(int(instr.op), 5)
    packer.put(int(instr.dst.kind), 3)
    packer.put(instr.dst.index, 3)
    packer.put(int(instr.a.kind), 4)
    packer.put(instr.a.index, 17, signed=True)
    packer.put(int(instr.b.kind), 4)
    packer.put(instr.b.index, 17, signed=True)
    return packer.word


def decode_rc(word: int) -> RCInstr:
    unpacker = _Unpacker(word)
    op = RCOp(unpacker.get(5))
    dst = Dest(RCDstKind(unpacker.get(3)), unpacker.get(3))
    a = Operand(RCSrcKind(unpacker.get(4)), unpacker.get(17, signed=True))
    b = Operand(RCSrcKind(unpacker.get(4)), unpacker.get(17, signed=True))
    return RCInstr(op=op, dst=dst, a=a, b=b)


def encode_lsu(instr: LSUInstr) -> int:
    packer = _Packer()
    packer.put(int(instr.op), 3)
    packer.put(int(instr.vwr), 2)
    packer.put(instr.addr, 3)
    packer.put(instr.inc, 8, signed=True)
    packer.put(instr.data, 3)
    packer.put(int(instr.mode), 3)
    packer.put(to_unsigned32(instr.value), 32)
    return packer.word


def decode_lsu(word: int) -> LSUInstr:
    unpacker = _Unpacker(word)
    op = LSUOp(unpacker.get(3))
    vwr = Vwr(unpacker.get(2))
    addr = unpacker.get(3)
    inc = unpacker.get(8, signed=True)
    data = unpacker.get(3)
    mode = ShuffleMode(unpacker.get(3))
    value = to_signed32(unpacker.get(32))
    return LSUInstr(
        op=op, vwr=vwr, addr=addr, inc=inc, data=data, value=value, mode=mode
    )


def encode_mxcu(instr: MXCUInstr) -> int:
    packer = _Packer()
    packer.put(int(instr.op), 2)
    packer.put(instr.k, 5)
    packer.put(instr.inc, 6, signed=True)
    packer.put(instr.and_mask, 5)
    packer.put(instr.xor_mask, 5)
    packer.put(0xF if instr.srf_and == NO_SRF else instr.srf_and, 4)
    return packer.word


def decode_mxcu(word: int) -> MXCUInstr:
    unpacker = _Unpacker(word)
    op = MXCUOp(unpacker.get(2))
    k = unpacker.get(5)
    inc = unpacker.get(6, signed=True)
    and_mask = unpacker.get(5)
    xor_mask = unpacker.get(5)
    srf_raw = unpacker.get(4)
    srf_and = NO_SRF if srf_raw == 0xF else srf_raw
    return MXCUInstr(
        op=op, k=k, inc=inc, and_mask=and_mask, xor_mask=xor_mask,
        srf_and=srf_and,
    )


def encode_lcu(instr: LCUInstr) -> int:
    packer = _Packer()
    packer.put(int(instr.op), 4)
    packer.put(instr.rd, 2)
    packer.put(instr.imm, 17, signed=True)
    packer.put(int(instr.cmp_kind), 2)
    packer.put(instr.cmp, 17, signed=True)
    packer.put(instr.target, 6)
    return packer.word


def decode_lcu(word: int) -> LCUInstr:
    unpacker = _Unpacker(word)
    op = LCUOp(unpacker.get(4))
    rd = unpacker.get(2)
    imm = unpacker.get(17, signed=True)
    cmp_kind = LCUCmp(unpacker.get(2))
    cmp = unpacker.get(17, signed=True)
    target = unpacker.get(6)
    return LCUInstr(
        op=op, rd=rd, imm=imm, cmp_kind=cmp_kind, cmp=cmp, target=target
    )


def encode_bundle(bundle: Bundle) -> int:
    """Pack a bundle into one configuration word (an arbitrary-size int)."""
    word = encode_lcu(bundle.lcu)
    offset = LCU_BITS
    word |= encode_lsu(bundle.lsu) << offset
    offset += LSU_BITS
    word |= encode_mxcu(bundle.mxcu) << offset
    offset += MXCU_BITS
    for rc in bundle.rcs:
        word |= encode_rc(rc) << offset
        offset += RC_BITS
    return word


def decode_bundle(word: int, n_rcs: int = 4) -> Bundle:
    """Inverse of :func:`encode_bundle`."""
    lcu = decode_lcu(word & ((1 << LCU_BITS) - 1))
    offset = LCU_BITS
    lsu = decode_lsu((word >> offset) & ((1 << LSU_BITS) - 1))
    offset += LSU_BITS
    mxcu = decode_mxcu((word >> offset) & ((1 << MXCU_BITS) - 1))
    offset += MXCU_BITS
    rcs = []
    for _ in range(n_rcs):
        rcs.append(decode_rc((word >> offset) & ((1 << RC_BITS) - 1)))
        offset += RC_BITS
    return Bundle(lcu=lcu, lsu=lsu, mxcu=mxcu, rcs=tuple(rcs))
