"""Loop-control-unit (LCU) instructions.

The LCU "generates the branches and jumps for the program counter and
notifies the synchronizer at the end of a kernel. It increases the code
coverage by allowing the execution of loops with any nest depth and
control-intensive code" (Sec. 3.3.3). It owns a small register file for
loop counters; loop bounds may also come from the SRF ("loop parameters for
the kernel execution control", Sec. 3.2).

Branch semantics: a branch in bundle *t* selects the PC of bundle *t + 1*
(no delay slot; the shared PC and the compact programs make single-cycle
redirect realistic for a predecoded CGRA).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LCUOp(enum.IntEnum):
    NOP = 0
    SETI = 1    #: reg[rd] = imm
    ADDI = 2    #: reg[rd] = reg[rd] + imm
    LDSRF = 3   #: reg[rd] = SRF[src] (occupies the SRF port)
    BLT = 4     #: if reg[rd] <  cmp: PC = target
    BGE = 5     #: if reg[rd] >= cmp: PC = target
    BEQ = 6     #: if reg[rd] == cmp: PC = target
    BNE = 7     #: if reg[rd] != cmp: PC = target
    JUMP = 8    #: PC = target
    EXIT = 9    #: kernel done; notify the synchronizer


class LCUCmp(enum.IntEnum):
    """Source of a branch's comparison value."""

    IMM = 0
    REG = 1
    SRF = 2


BRANCH_OPS = frozenset({LCUOp.BLT, LCUOp.BGE, LCUOp.BEQ, LCUOp.BNE})


@dataclass(frozen=True)
class LCUInstr:
    """One LCU configuration word.

    ``rd`` names the LCU register written (SETI/ADDI/LDSRF) or compared
    (branches). ``cmp_kind``/``cmp`` give the comparison operand; ``target``
    is the absolute PC of the branch/jump destination (resolved from a label
    by the program builder).
    """

    op: LCUOp = LCUOp.NOP
    rd: int = 0
    imm: int = 0
    cmp_kind: LCUCmp = LCUCmp.IMM
    cmp: int = 0
    target: int = 0

    @property
    def is_nop(self) -> bool:
        return self.op is LCUOp.NOP

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def uses_srf(self) -> bool:
        if self.op is LCUOp.LDSRF:
            return True
        return self.is_branch and self.cmp_kind is LCUCmp.SRF

    def __str__(self) -> str:
        if self.op is LCUOp.NOP:
            return "NOP"
        if self.op is LCUOp.SETI:
            return f"SETI R{self.rd} = {self.imm}"
        if self.op is LCUOp.ADDI:
            return f"ADDI R{self.rd} += {self.imm}"
        if self.op is LCUOp.LDSRF:
            return f"LDSRF R{self.rd} = SRF[{self.cmp}]"
        if self.op is LCUOp.JUMP:
            return f"JUMP -> {self.target}"
        if self.op is LCUOp.EXIT:
            return "EXIT"
        cmp_txt = {
            LCUCmp.IMM: str(self.cmp),
            LCUCmp.REG: f"R{self.cmp}",
            LCUCmp.SRF: f"SRF[{self.cmp}]",
        }[self.cmp_kind]
        return f"{self.op.name} R{self.rd}, {cmp_txt} -> {self.target}"


LCU_NOP = LCUInstr()


def seti(rd: int, value: int) -> LCUInstr:
    """``reg[rd] = value``."""
    return LCUInstr(op=LCUOp.SETI, rd=rd, imm=value)


def addi(rd: int, value: int) -> LCUInstr:
    """``reg[rd] += value``."""
    return LCUInstr(op=LCUOp.ADDI, rd=rd, imm=value)


def ldsrf(rd: int, entry: int) -> LCUInstr:
    """``reg[rd] = SRF[entry]`` (occupies the SRF port)."""
    return LCUInstr(op=LCUOp.LDSRF, rd=rd, cmp=entry)


def _branch(op: LCUOp, rd: int, cmp, target) -> LCUInstr:
    """Branch helper; ``cmp`` is an int immediate, ``("reg", i)`` or
    ``("srf", i)``; ``target`` may be a label string resolved by the
    program builder."""
    if isinstance(cmp, tuple):
        source, index = cmp
        kind = {"reg": LCUCmp.REG, "srf": LCUCmp.SRF}[source]
        return LCUInstr(op=op, rd=rd, cmp_kind=kind, cmp=index, target=target)
    return LCUInstr(op=op, rd=rd, cmp_kind=LCUCmp.IMM, cmp=cmp, target=target)


def blt(rd: int, cmp, target) -> LCUInstr:
    return _branch(LCUOp.BLT, rd, cmp, target)


def bge(rd: int, cmp, target) -> LCUInstr:
    return _branch(LCUOp.BGE, rd, cmp, target)


def beq(rd: int, cmp, target) -> LCUInstr:
    return _branch(LCUOp.BEQ, rd, cmp, target)


def bne(rd: int, cmp, target) -> LCUInstr:
    return _branch(LCUOp.BNE, rd, cmp, target)


def jump(target) -> LCUInstr:
    return LCUInstr(op=LCUOp.JUMP, target=target)


def exit_() -> LCUInstr:
    """End-of-kernel: notify the synchronizer (Sec. 3.3.3)."""
    return LCUInstr(op=LCUOp.EXIT)
