"""Multiplexer-control-unit (MXCU) instructions.

The MXCU "controls the multiplexers that connect the VWRs outputs to the
RCs. Each RC has access to 1/4 of the VWRs width. To limit the number of
control bits, all the RCs access the same address of their slice. This
address is also used to write the data back to any of the VWRs."
(Sec. 3.3.2.) The SRF holds "masking values for the VWRs index computation"
(Sec. 3.2), which we expose as AND / XOR masks on the index update; the XOR
mask provides within-slice mirroring (used by the real-FFT recombination).

Index semantics: the MXCU instruction of bundle *t* produces the word index
used by the RC instructions of the *same* bundle (the configuration bits
drive the mux network combinationally).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MXCUOp(enum.IntEnum):
    NOP = 0      #: index unchanged
    SETK = 1     #: k = imm
    UPD = 2      #: k = ((k + inc) & and_mask) ^ xor_mask


#: Sentinel for "mask comes from the instruction, not the SRF".
NO_SRF = -1


@dataclass(frozen=True)
class MXCUInstr:
    """One MXCU configuration word.

    For ``UPD``, the AND mask comes from SRF entry ``srf_and`` when that
    field is >= 0 (occupying the SRF port for the cycle), otherwise from the
    ``and_mask`` immediate. The XOR mask is always immediate.
    """

    op: MXCUOp = MXCUOp.NOP
    k: int = 0
    inc: int = 0
    and_mask: int = 0x1F
    xor_mask: int = 0
    srf_and: int = NO_SRF

    @property
    def is_nop(self) -> bool:
        return self.op is MXCUOp.NOP

    @property
    def uses_srf(self) -> bool:
        return self.op is MXCUOp.UPD and self.srf_and != NO_SRF

    def __str__(self) -> str:
        if self.op is MXCUOp.NOP:
            return "NOP"
        if self.op is MXCUOp.SETK:
            return f"SETK k={self.k}"
        mask = (
            f"SRF[{self.srf_and}]" if self.srf_and != NO_SRF
            else f"0x{self.and_mask:x}"
        )
        parts = [f"k=(k{self.inc:+d})&{mask}"]
        if self.xor_mask:
            parts.append(f"^0x{self.xor_mask:x}")
        return "UPD " + "".join(parts)


MXCU_NOP = MXCUInstr()


def setk(k: int) -> MXCUInstr:
    return MXCUInstr(op=MXCUOp.SETK, k=k)


def inck(inc: int = 1, and_mask: int = 0x1F, xor_mask: int = 0) -> MXCUInstr:
    """Convenience: ``k = ((k + inc) & and_mask) ^ xor_mask``."""
    return MXCUInstr(
        op=MXCUOp.UPD, inc=inc, and_mask=and_mask, xor_mask=xor_mask
    )
