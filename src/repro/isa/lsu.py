"""Load-store-unit (LSU) instructions.

The LSU "controls the data transfers between the SPM and the VWRs or the
SRF" and "also controls the shuffle unit" (Sec. 3.3.1). VWR transfers move
a full SPM line (= one VWR) per cycle; SRF transfers move single words.
Addresses come from SRF entries ("addresses for the SPM" are among the
kernel-dependent scalars the SRF holds, Sec. 3.2) and support post-increment
write-back, which counts as the LSU's single SRF transaction for the cycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.fields import ShuffleMode, Vwr


class LSUOp(enum.IntEnum):
    NOP = 0
    LD_VWR = 1    #: VWR <- SPM line at SRF[addr]; post-increment in lines
    ST_VWR = 2    #: SPM line at SRF[addr] <- VWR
    LD_SRF = 3    #: SRF[data] <- SPM word at SRF[addr]; post-inc in words
    ST_SRF = 4    #: SPM word at SRF[addr] <- SRF[data]
    SET_SRF = 5   #: SRF[data] <- immediate (configuration-word constant)
    SHUF = 6      #: VWR C <- shuffle(VWR A : VWR B)


@dataclass(frozen=True)
class LSUInstr:
    """One LSU configuration word.

    Fields are interpreted per-op:

    * ``LD_VWR`` / ``ST_VWR``: ``vwr`` is the target register, ``addr`` the
      SRF entry holding the SPM *line* address, ``inc`` the post-increment
      (in lines) written back to the SRF entry.
    * ``LD_SRF`` / ``ST_SRF``: ``data`` is the SRF data entry, ``addr`` the
      SRF entry holding the SPM *word* address, ``inc`` in words.
    * ``SET_SRF``: ``data`` is the SRF entry, ``value`` the 32-bit constant.
    * ``SHUF``: ``mode`` selects the hardcoded shuffle operation.
    """

    op: LSUOp = LSUOp.NOP
    vwr: Vwr = Vwr.A
    addr: int = 0
    inc: int = 0
    data: int = 0
    value: int = 0
    mode: ShuffleMode = ShuffleMode.INTERLEAVE_LO

    @property
    def is_nop(self) -> bool:
        return self.op is LSUOp.NOP

    @property
    def uses_srf(self) -> bool:
        """True when this instruction occupies the SRF port."""
        return self.op in (
            LSUOp.LD_VWR,
            LSUOp.ST_VWR,
            LSUOp.LD_SRF,
            LSUOp.ST_SRF,
            LSUOp.SET_SRF,
        )

    def vwrs_touched(self) -> tuple:
        """VWRs this instruction accesses (for port-conflict checking)."""
        if self.op in (LSUOp.LD_VWR, LSUOp.ST_VWR):
            return (self.vwr,)
        if self.op is LSUOp.SHUF:
            return (Vwr.A, Vwr.B, Vwr.C)
        return ()

    def __str__(self) -> str:
        if self.op is LSUOp.NOP:
            return "NOP"
        if self.op is LSUOp.LD_VWR:
            return f"LD.VWR VWR{self.vwr.name} <- SPM[SRF[{self.addr}]]" + (
                f", SRF[{self.addr}]+={self.inc}" if self.inc else ""
            )
        if self.op is LSUOp.ST_VWR:
            return f"ST.VWR SPM[SRF[{self.addr}]] <- VWR{self.vwr.name}" + (
                f", SRF[{self.addr}]+={self.inc}" if self.inc else ""
            )
        if self.op is LSUOp.LD_SRF:
            return f"LD.SRF SRF[{self.data}] <- SPM[SRF[{self.addr}]]" + (
                f", SRF[{self.addr}]+={self.inc}" if self.inc else ""
            )
        if self.op is LSUOp.ST_SRF:
            return f"ST.SRF SPM[SRF[{self.addr}]] <- SRF[{self.data}]" + (
                f", SRF[{self.addr}]+={self.inc}" if self.inc else ""
            )
        if self.op is LSUOp.SET_SRF:
            return f"SET.SRF SRF[{self.data}] <- {self.value}"
        return f"SHUF {self.mode.name}"


LSU_NOP = LSUInstr()


def ld_vwr(vwr: Vwr, addr: int, inc: int = 0) -> LSUInstr:
    """Load a full VWR from the SPM line addressed by SRF[addr]."""
    return LSUInstr(op=LSUOp.LD_VWR, vwr=vwr, addr=addr, inc=inc)


def st_vwr(vwr: Vwr, addr: int, inc: int = 0) -> LSUInstr:
    """Store a full VWR to the SPM line addressed by SRF[addr]."""
    return LSUInstr(op=LSUOp.ST_VWR, vwr=vwr, addr=addr, inc=inc)


def ld_srf(data: int, addr: int, inc: int = 0) -> LSUInstr:
    """SRF[data] <- SPM word at SRF[addr] (word address)."""
    return LSUInstr(op=LSUOp.LD_SRF, data=data, addr=addr, inc=inc)


def st_srf(data: int, addr: int, inc: int = 0) -> LSUInstr:
    """SPM word at SRF[addr] <- SRF[data]."""
    return LSUInstr(op=LSUOp.ST_SRF, data=data, addr=addr, inc=inc)


def set_srf(entry: int, value: int) -> LSUInstr:
    """SRF[entry] <- 32-bit configuration constant."""
    return LSUInstr(op=LSUOp.SET_SRF, data=entry, value=value)


def shuf(mode: ShuffleMode) -> LSUInstr:
    """VWR C <- shuffle(VWR A : VWR B)."""
    return LSUInstr(op=LSUOp.SHUF, mode=mode)
