"""Live observability: metrics bus, Prometheus endpoint, monitoring TUI.

The layer that turns a running pool from a black box into a dashboard
(docs/observability.md):

* :class:`MetricsBus` — named counters/gauges/histograms with
  ``snapshot``/``since`` delta semantics; **off by default** and
  zero-cost when off (:func:`get_bus` returns ``None`` and every
  instrumentation site skips);
* :mod:`repro.obs.instruments` — the metric name registry
  (:data:`METRICS`) and the record helpers the serving stack calls;
* :class:`MetricsExporter` / :func:`render_prometheus` — a Prometheus
  text exposition endpoint on stdlib :mod:`http.server`, sharing its
  render function with the ``python -m repro.obs --once`` dump;
* :class:`MonitorModel` / :func:`render_text` / :func:`build_app` — the
  monitoring TUI (Textual when installed, plain text everywhere).

Quick start::

    from repro.obs import MetricsBus, MetricsExporter, recording
    from repro.serve import serve_trace

    with recording() as bus, MetricsExporter(bus) as url:
        report = serve_trace(trace, workers=4)   # scrape `url` meanwhile
"""

from repro.obs.bus import (
    BusSnapshot,
    HistogramValue,
    MetricError,
    MetricsBus,
    get_bus,
    install,
    recording,
    uninstall,
)
from repro.obs.exporter import (
    MetricsExporter,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.instruments import METRICS, REGISTRY, Metric, default_bus
from repro.obs.tui import (
    MonitorModel,
    build_app,
    render_text,
    snapshot_samples,
    sparkline,
    textual_available,
)

__all__ = [
    "BusSnapshot",
    "HistogramValue",
    "METRICS",
    "Metric",
    "MetricError",
    "MetricsBus",
    "MetricsExporter",
    "MonitorModel",
    "REGISTRY",
    "build_app",
    "default_bus",
    "get_bus",
    "install",
    "parse_prometheus",
    "recording",
    "render_prometheus",
    "render_text",
    "snapshot_samples",
    "sparkline",
    "textual_available",
    "uninstall",
]
