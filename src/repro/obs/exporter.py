"""Prometheus text exposition over the metrics bus.

One render function (:func:`render_prometheus`) produces version 0.0.4
text exposition from a :class:`~repro.obs.MetricsBus` or a
:class:`~repro.obs.BusSnapshot`; the HTTP endpoint
(:class:`MetricsExporter`, stdlib :mod:`http.server` — no dependencies)
and the ``python -m repro.obs --once`` CLI dump both call exactly it, so
what a scraper sees and what the one-shot dump prints can never drift.
:func:`parse_prometheus` is the inverse reader the monitoring TUI uses
to tail a remote exporter.

Output is deterministic: families sort by name, series by label key, and
``# HELP`` text comes from the metric registry
(:data:`repro.obs.instruments.REGISTRY`) — the golden test in
``tests/test_obs.py`` pins the format byte-for-byte.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.bus import BusSnapshot, MetricsBus
from repro.obs.instruments import REGISTRY

#: The exposition content type scrapers expect.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape(value: str) -> str:
    """Escape a label value per the text-format rules."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def _fmt(value) -> str:
    """Render one sample value (integers without a trailing ``.0``)."""
    number = float(value)
    if number != number:  # NaN
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _series(name: str, labels_key: tuple, value,
            extra: tuple = ()) -> str:
    """One sample line: ``name{label="v",...} value``."""
    pairs = tuple(labels_key) + tuple(extra)
    if pairs:
        rendered = ",".join(
            f'{label}="{_escape(text)}"' for label, text in pairs
        )
        return f"{name}{{{rendered}}} {_fmt(value)}"
    return f"{name} {_fmt(value)}"


def _header(name: str, kind: str, lines: list) -> None:
    metric = REGISTRY.get(name)
    if metric is not None:
        unit = f" [{metric.unit}]" if metric.unit else ""
        lines.append(f"# HELP {name} {metric.help}{unit}")
    else:
        lines.append(f"# HELP {name} (unregistered metric)")
    lines.append(f"# TYPE {name} {kind}")


def render_prometheus(source) -> str:
    """The full text exposition of ``source`` (a bus or a snapshot)."""
    snapshot = (
        source.snapshot() if isinstance(source, MetricsBus) else source
    )
    if not isinstance(snapshot, BusSnapshot):
        raise TypeError(
            f"expected MetricsBus or BusSnapshot, got {type(source).__name__}"
        )
    by_family = {}
    for (name, labels_key), value in snapshot.counters.items():
        by_family.setdefault((name, "counter"), []).append(
            (labels_key, value)
        )
    for (name, labels_key), value in snapshot.gauges.items():
        by_family.setdefault((name, "gauge"), []).append(
            (labels_key, value)
        )
    for (name, labels_key), hist in snapshot.histograms.items():
        by_family.setdefault((name, "histogram"), []).append(
            (labels_key, hist)
        )
    lines = []
    for (name, kind), series in sorted(by_family.items()):
        _header(name, kind, lines)
        for labels_key, value in sorted(series, key=lambda s: s[0]):
            if kind != "histogram":
                lines.append(_series(name, labels_key, value))
                continue
            running = 0
            for bound, count in zip(value.bounds, value.counts):
                running += count
                lines.append(_series(
                    f"{name}_bucket", labels_key, running,
                    extra=(("le", _fmt(bound)),),
                ))
            lines.append(_series(
                f"{name}_bucket", labels_key, value.count,
                extra=(("le", "+Inf"),),
            ))
            lines.append(_series(f"{name}_sum", labels_key, value.sum))
            lines.append(_series(f"{name}_count", labels_key, value.count))
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus(text: str) -> dict:
    """Samples of a text exposition: ``(name, labels_key) -> float``.

    The reader side of :func:`render_prometheus` (histogram series come
    back as their exploded ``_bucket``/``_sum``/``_count`` samples).
    Tolerant of any conforming exposition, not just our own.
    """
    samples = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            raw_labels, value_part = rest.rsplit("}", 1)
            labels = []
            for chunk in _split_labels(raw_labels):
                label, raw = chunk.split("=", 1)
                raw = raw.strip()
                if raw.startswith('"') and raw.endswith('"'):
                    raw = raw[1:-1]
                labels.append((label.strip(), _unescape(raw)))
            key = (name.strip(), tuple(sorted(labels)))
        else:
            name, value_part = line.split(None, 1)
            key = (name.strip(), ())
        samples[key] = float(value_part.split()[0])
    return samples


def _unescape(value: str) -> str:
    """Undo :func:`_escape` (single left-to-right pass, not chained
    ``str.replace`` — ``\\\\n`` must decode to backslash-n, not newline)."""
    out = []
    i = 0
    while i < len(value):
        char = value[i]
        if char == "\\" and i + 1 < len(value):
            escape = value[i + 1]
            out.append(
                {"n": "\n", "\\": "\\", '"': '"'}.get(escape, char + escape)
            )
            i += 2
        else:
            out.append(char)
            i += 1
    return "".join(out)


def _split_labels(raw: str) -> list:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    parts, depth, current = [], False, []
    escaped = False
    for char in raw:
        if escaped:
            current.append(char)
            escaped = False
        elif char == "\\":
            current.append(char)
            escaped = True
        elif char == '"':
            depth = not depth
            current.append(char)
        elif char == "," and not depth:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return [part for part in (p.strip() for p in parts) if part]


class _Handler(BaseHTTPRequestHandler):
    """Serves ``/metrics`` (and a one-line index at ``/``)."""

    def do_GET(self):  # noqa: N802 - http.server API
        if self.path.split("?")[0] not in ("/", "/metrics"):
            self.send_error(404, "try /metrics")
            return
        if self.path.split("?")[0] == "/":
            body = b"repro metrics exporter; scrape /metrics\n"
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
        else:
            body = render_prometheus(self.server.bus).encode()
            self.send_response(200)
            self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:
        """Silence per-request stderr chatter (scrapes are periodic)."""


class MetricsExporter:
    """A Prometheus scrape endpoint over one bus, on a daemon thread.

    >>> from repro.obs import MetricsBus, MetricsExporter
    >>> exporter = MetricsExporter(MetricsBus(), port=0)  # 0: pick free
    >>> url = exporter.start()
    >>> exporter.stop()

    Also usable as a context manager (``with MetricsExporter(bus) as url``).
    """

    def __init__(self, bus: MetricsBus, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.bus = bus
        self.host = host
        self.port = port
        self._server = None
        self._thread = None

    @property
    def url(self) -> str:
        """The scrape URL (valid once :meth:`start` returned)."""
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> str:
        """Bind, start serving on a daemon thread, return the scrape URL."""
        if self._server is not None:
            return self.url
        self._server = ThreadingHTTPServer(
            (self.host, self.port), _Handler
        )
        self._server.daemon_threads = True
        self._server.bus = self.bus
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self.url

    def stop(self) -> None:
        """Shut the endpoint down and join the serving thread."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
