"""``python -m repro.obs`` — the live monitor and exposition dump.

Modes (docs/observability.md):

* ``--once``          serve a short pooled demo stream with the bus
                      installed and print the full Prometheus text
                      exposition (the acceptance smoke path);
* ``--serve``         same demo, but keep the scrape endpoint up after
                      the stream finishes (Ctrl-C to exit);
* *default*           monitor a metric source live — a remote exporter
                      with ``--endpoint URL``, else the built-in demo
                      pool running on a background thread. Uses the
                      Textual TUI when installed, the plain-text
                      dashboard with ``--plain`` or when it is not.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
import time
import urllib.request

from repro.obs.bus import MetricsBus, install, uninstall
from repro.obs.exporter import (
    MetricsExporter,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.instruments import default_bus
from repro.obs.tui import (
    MonitorModel,
    build_app,
    render_text,
    snapshot_samples,
    textual_available,
)


def demo_stream(bus: MetricsBus, windows: int, workers: int,
                done: threading.Event = None) -> None:
    """Serve a short synthetic pooled stream with ``bus`` installed.

    The built-in metric source for the monitor and the ``--once`` dump:
    a respiration trace through ``serve_trace(workers=...)`` with energy
    modeling on and a throwaway checkpoint (so the checkpoint-lag gauge
    moves too).
    """
    from repro.app.mbiotracker import WINDOW
    from repro.app.signals import respiration_signal
    from repro.serve import serve_trace

    install(bus)
    try:
        with tempfile.TemporaryDirectory() as scratch:
            serve_trace(
                respiration_signal(windows * WINDOW),
                workers=workers,
                checkpoint=f"{scratch}/monitor-demo.ckpt",
            )
    finally:
        uninstall()
        if done is not None:
            done.set()


def _scraper(endpoint: str):
    """A sampler polling a remote exporter's text exposition."""

    def sample() -> dict:
        with urllib.request.urlopen(endpoint, timeout=5.0) as response:
            return parse_prometheus(response.read().decode())

    return sample


def _monitor_plain(sample, interval: float, done) -> None:
    """The headless dashboard loop: clear, render, sleep, repeat."""
    model = MonitorModel()
    try:
        while True:
            model.ingest(sample(), time.monotonic())
            sys.stdout.write("\x1b[2J\x1b[H" + render_text(model) + "\n")
            sys.stdout.flush()
            if done is not None and done.is_set():
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=(
            "Live monitor over the serving stack's metrics bus "
            "(see docs/observability.md)."
        ),
    )
    parser.add_argument(
        "--once", action="store_true",
        help="serve the demo stream, print the Prometheus text "
             "exposition, exit",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="serve the demo stream and keep the scrape endpoint up",
    )
    parser.add_argument(
        "--endpoint", metavar="URL", default=None,
        help="monitor a running exporter instead of the built-in demo",
    )
    parser.add_argument(
        "--plain", action="store_true",
        help="force the plain-text dashboard (no Textual)",
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="exporter port for --serve (default: pick a free one)",
    )
    parser.add_argument(
        "--windows", type=int, default=4,
        help="demo stream length in application windows (default 4)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="demo pool size (default 2)",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0,
        help="dashboard refresh seconds (default 1.0)",
    )
    args = parser.parse_args(argv)

    if args.once:
        bus = default_bus()
        demo_stream(bus, args.windows, args.workers)
        sys.stdout.write(render_prometheus(bus))
        return 0

    if args.serve:
        bus = default_bus()
        exporter = MetricsExporter(bus, port=args.port)
        url = exporter.start()
        print(f"scrape endpoint up at {url}", file=sys.stderr)
        demo_stream(bus, args.windows, args.workers)
        print(
            "demo stream complete; endpoint stays up (Ctrl-C to exit)",
            file=sys.stderr,
        )
        try:
            while True:
                time.sleep(1.0)
        except KeyboardInterrupt:
            pass
        finally:
            exporter.stop()
        return 0

    # Monitor mode: pick the metric source, then the frontend.
    done = None
    if args.endpoint is not None:
        sample = _scraper(args.endpoint)
    else:
        bus = default_bus()
        done = threading.Event()
        worker = threading.Thread(
            target=demo_stream,
            args=(bus, args.windows, args.workers, done),
            daemon=True,
        )
        worker.start()

        def sample() -> dict:
            return snapshot_samples(bus.snapshot())

    if not args.plain and textual_available():
        build_app(sample, interval=args.interval).run()
    else:
        if not args.plain:
            print(
                "textual is not installed; falling back to --plain",
                file=sys.stderr,
            )
        _monitor_plain(sample, args.interval, done)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
