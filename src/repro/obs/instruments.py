"""What the serving stack publishes on the bus, and from where.

This module owns the **metric name registry** — every counter, gauge
and histogram the instrumentation emits, with its unit and the call
site that emits it (rendered as ``# HELP`` lines by the exporter and
tabulated in docs/observability.md) — plus the record helpers the
instrumented code calls. Call sites stay one line::

    bus = get_bus()
    if bus is not None:
        record_window(bus, result, stats_delta)

Everything here is host-side bookkeeping over values the simulation
already produced (:class:`~repro.serve.WindowResult`,
:class:`~repro.core.RunResult`, store-stats deltas); nothing feeds back
into simulated state, so the instrumented and uninstrumented runs are
bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.bus import get_bus  # noqa: F401  (re-exported convenience)


@dataclass(frozen=True)
class Metric:
    """One registered metric family."""

    name: str    #: Prometheus-style family name
    kind: str    #: counter | gauge | histogram
    unit: str    #: unit of the value ("1" for dimensionless counts)
    help: str    #: one-line meaning (the exporter's # HELP text)
    source: str  #: the call site that emits it


def _m(name, kind, unit, help, source):  # noqa: A002 - Prometheus term
    return Metric(name, kind, unit, help, source)


#: The registry: every metric the stack emits. docs/observability.md's
#: table is generated from this tuple and ``tests/test_obs.py`` asserts
#: a pooled instrumented run emits no family missing from it.
METRICS = (
    # -- serving (StreamScheduler.run / PoolScheduler accept loop) -----------
    _m("repro_windows_served_total", "counter", "windows",
       "Windows whose WindowResult was accepted into the report",
       "serve/scheduler.py run(), serve/pool.py accept()"),
    _m("repro_windows_failed_total", "counter", "windows",
       "Windows quarantined after exhausting the retry ladder",
       "serve/scheduler.py, serve/pool.py quarantine()"),
    _m("repro_window_cycles_total", "counter", "cycles",
       "Simulated platform cycles, summed over served windows",
       "record_window() from WindowResult.cycles"),
    _m("repro_window_cycles", "histogram", "cycles",
       "Per-window simulated-cycle distribution",
       "record_window() from WindowResult.cycles"),
    _m("repro_staging_cycles_total", "counter", "cycles",
       "Staging DMA cycles by direction label (in|out)",
       "record_window() from WindowResult.staging_*_cycles"),
    _m("repro_launches_total", "counter", "launches",
       "Kernel launches by executing engine label",
       "record_window() from RunResult.engine per launch"),
    _m("repro_engine_fallbacks_total", "counter", "launches",
       "Reference-engine fallbacks by kernel label",
       "record_window() from RunResult.fallback_reason"),
    _m("repro_vector_rejections_total", "counter", "loops",
       "Vectorizer rejections by reason label",
       "record_window() from RunResult.superblocks[vector_rejections]"),
    _m("repro_superblock_loops_total", "counter", "loops",
       "Accelerated loop executions by tier label "
       "(closed_form|vectorized)",
       "record_window() from RunResult.superblocks"),
    _m("repro_superblock_trips_total", "counter", "trips",
       "Loop trips covered without per-trip dispatch",
       "record_window() from RunResult.superblocks"),
    _m("repro_energy_uj_total", "counter", "uJ",
       "Modeled energy summed over served windows",
       "record_window() from WindowResult.energy_uj"),
    _m("repro_window_energy_uj", "histogram", "uJ",
       "Per-window modeled-energy distribution",
       "record_window() from WindowResult.energy_uj"),
    _m("repro_kernel_energy_pj_total", "counter", "pJ",
       "Histogram-folded datapath energy by kernel label",
       "record_window() from WindowResult.kernel_energy_pj"),
    _m("repro_config_store_total", "counter", "events",
       "Config-store cache counters by event label "
       "(stores|dedup_hits|encode_hits|encode_misses|hazard_hits|"
       "hazard_misses|analysis_hits|analysis_misses)",
       "record_store_stats() from StoreStats.since deltas"),
    _m("repro_resilience_total", "counter", "events",
       "Resilience counters by event label (retries, respawns, "
       "fault:<kind>, ... — the StreamReport.resilience vocabulary)",
       "record_resilience() from scheduler/pool supervision"),
    # -- stream progress -----------------------------------------------------
    _m("repro_stream_windows", "gauge", "windows",
       "Windows in the stream being served",
       "record_progress()"),
    _m("repro_stream_done", "gauge", "windows",
       "Windows accounted so far (served + quarantined)",
       "record_progress()"),
    _m("repro_stream_windows_per_second", "gauge", "windows/s",
       "Serving throughput over the session so far",
       "record_progress()"),
    # -- pool ----------------------------------------------------------------
    _m("repro_pool_workers_alive", "gauge", "workers",
       "Live pool worker processes",
       "serve/pool.py supervision loop"),
    _m("repro_pool_queue_depth", "gauge", "windows",
       "Dispatched-but-unfinished windows by worker label",
       "serve/pool.py supervision loop"),
    _m("repro_pool_worker_windows_total", "counter", "windows",
       "Windows served by worker label",
       "serve/pool.py accept()"),
    # -- fleet transport (serve/net FleetServer event loop) ------------------
    _m("repro_net_workers_connected", "gauge", "workers",
       "Registered fleet workers currently connected and ready",
       "serve/net/server.py event loop"),
    _m("repro_net_inflight_windows", "gauge", "windows",
       "Windows dispatched to fleet workers and not yet resolved",
       "serve/net/server.py event loop"),
    _m("repro_net_frames_total", "counter", "frames",
       "Frames moved over the fleet transport by direction label "
       "(in|out)",
       "serve/net/server.py _read_conn()/dispatch()"),
    _m("repro_net_reconnects_total", "counter", "reconnects",
       "Fleet workers that re-registered after losing their connection",
       "serve/net/server.py hello handling"),
    _m("repro_net_retries_total", "counter", "retries",
       "Fleet retry-ladder rungs spent, by reason label "
       "(deadline|disconnect|desync|heartbeat|fault|quarantine)",
       "serve/net/server.py next_attempt()/retire_conn()"),
    _m("repro_net_checksum_failures_total", "counter", "frames",
       "Frames dropped for a checksum/decode failure (recoverable)",
       "serve/net/server.py _read_conn() bad-frame handling"),
    _m("repro_net_heartbeat_misses_total", "counter", "workers",
       "Fleet workers retired for heartbeat silence",
       "serve/net/server.py liveness scan"),
    _m("repro_net_worker_quarantines_total", "counter", "workers",
       "Fleet workers benched by the circuit breaker",
       "serve/net/server.py strike()"),
    # -- checkpointing -------------------------------------------------------
    _m("repro_checkpoint_lag_windows", "gauge", "windows",
       "Windows completed since the last checkpoint flush",
       "serve/checkpoint.py StreamCheckpoint.mark/save"),
    _m("repro_checkpoint_saves_total", "counter", "saves",
       "Checkpoint flushes to disk",
       "serve/checkpoint.py StreamCheckpoint.save"),
    # -- fault campaigns -----------------------------------------------------
    _m("repro_campaign_cells", "gauge", "cells",
       "Cells in the running fault campaign grid",
       "faults/campaign.py FaultCampaign.run"),
    _m("repro_campaign_cells_done", "gauge", "cells",
       "Campaign cells completed so far",
       "faults/campaign.py FaultCampaign.run"),
    _m("repro_campaign_cells_total", "counter", "cells",
       "Completed campaign cells by verdict label (ok|broken)",
       "faults/campaign.py FaultCampaign.run"),
    # -- bench trend ---------------------------------------------------------
    _m("repro_bench_guarded_metric", "gauge", "ratio",
       "Guarded benchmark metrics by metric and side label "
       "(committed|regenerated)",
       "benchmarks/bench_trend.py publish_rows()"),
    _m("repro_bench_regression", "gauge", "fraction",
       "Relative drop of each guarded metric (negative = improved)",
       "benchmarks/bench_trend.py publish_rows()"),
)

#: name -> Metric, for the exporter's HELP lines and the registry test.
REGISTRY = {metric.name: metric for metric in METRICS}

#: Bucket bounds tuned for the registered histograms; pass to
#: :class:`~repro.obs.MetricsBus` (``default_bus()`` does).
BUCKETS = {
    # MBioTracker windows run ~1-40M simulated cycles depending on
    # platform config; resolve that range.
    "repro_window_cycles": (
        100_000.0, 250_000.0, 500_000.0, 1_000_000.0, 2_500_000.0,
        5_000_000.0, 10_000_000.0, 25_000_000.0, 50_000_000.0,
        100_000_000.0,
    ),
    # Per-window energies sit in the tens-of-µJ range at the paper's
    # design point.
    "repro_window_energy_uj": (
        1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0,
    ),
}


def default_bus():
    """A :class:`~repro.obs.MetricsBus` with the registry's buckets."""
    from repro.obs.bus import MetricsBus

    return MetricsBus(buckets=BUCKETS)


# -- record helpers -----------------------------------------------------------


def record_window(bus, result, stats_delta: dict = None,
                  worker: str = None) -> None:
    """Publish one accepted :class:`~repro.serve.WindowResult`.

    Counters cover exactly what the report aggregates — cycles, staging
    split, per-engine launch tallies, fallback/vector-rejection reasons,
    superblock counters, energy — so bus totals and the merged
    :class:`~repro.serve.StreamReport` agree counter-for-counter
    (``tests/test_obs.py`` asserts it over a pooled run). ``worker``
    labels the per-worker tally when a pool served the window.
    """
    bus.inc("repro_windows_served_total")
    bus.inc("repro_window_cycles_total", result.cycles)
    bus.observe("repro_window_cycles", result.cycles)
    bus.inc("repro_staging_cycles_total", result.staging_in_cycles,
            direction="in")
    bus.inc("repro_staging_cycles_total", result.staging_out_cycles,
            direction="out")
    for launch in result.launches:
        bus.inc("repro_launches_total", engine=launch.engine)
        if launch.fallback_reason:
            bus.inc("repro_engine_fallbacks_total", kernel=launch.name)
        if launch.superblocks:
            for key, value in launch.superblocks.items():
                if key == "accelerated_loops":
                    bus.inc("repro_superblock_loops_total", value,
                            tier="closed_form")
                elif key == "vectorized_loops":
                    bus.inc("repro_superblock_loops_total", value,
                            tier="vectorized")
                elif key == "accelerated_trips":
                    bus.inc("repro_superblock_trips_total", value)
                elif key == "vector_rejections":
                    for reason, count in value.items():
                        bus.inc("repro_vector_rejections_total", count,
                                reason=reason)
    if result.energy_uj is not None:
        bus.inc("repro_energy_uj_total", result.energy_uj)
        bus.observe("repro_window_energy_uj", result.energy_uj)
    if result.kernel_energy_pj:
        for kernel, pj in result.kernel_energy_pj.items():
            bus.inc("repro_kernel_energy_pj_total", pj, kernel=kernel)
    if stats_delta:
        record_store_stats(bus, stats_delta)
    if worker is not None:
        bus.inc("repro_pool_worker_windows_total", worker=str(worker))


def record_store_stats(bus, stats) -> None:
    """Publish config-store cache counters.

    ``stats`` is either a delta dict (the
    :meth:`~repro.core.config_mem.StoreStats.since` shape the serving
    layer threads around) or a live
    :class:`~repro.core.config_mem.StoreStats`, read via its public
    :meth:`~repro.core.config_mem.StoreStats.as_dict`.
    """
    if hasattr(stats, "as_dict"):
        stats = stats.as_dict()
    for event, count in stats.items():
        if count:
            bus.inc("repro_config_store_total", count, event=event)


def record_resilience(bus, delta: dict) -> None:
    """Publish a resilience counter delta (the StreamReport vocabulary)."""
    for event, count in delta.items():
        if count:
            bus.inc("repro_resilience_total", count, event=event)


def record_failed(bus, n: int = 1) -> None:
    """Publish quarantined windows."""
    bus.inc("repro_windows_failed_total", n)


def record_progress(bus, done: int, total: int,
                    wall_seconds: float) -> None:
    """Publish stream progress gauges, including live windows/s."""
    bus.set_gauge("repro_stream_windows", total)
    bus.set_gauge("repro_stream_done", done)
    if wall_seconds > 0:
        bus.set_gauge(
            "repro_stream_windows_per_second", done / wall_seconds
        )


def record_pool_state(bus, in_flight: dict, alive: int) -> None:
    """Publish per-worker queue depths and the live-worker gauge."""
    bus.set_gauge("repro_pool_workers_alive", alive)
    for wid, entries in in_flight.items():
        bus.set_gauge(
            "repro_pool_queue_depth", len(entries), worker=str(wid)
        )


def record_worker_retired(bus, wid) -> None:
    """Drop a retired worker's queue-depth gauge (it no longer exists)."""
    bus.drop_gauge("repro_pool_queue_depth", worker=str(wid))


def record_net_state(bus, connected: int, in_flight: int) -> None:
    """Publish the fleet transport gauges (one per supervision tick)."""
    bus.set_gauge("repro_net_workers_connected", connected)
    bus.set_gauge("repro_net_inflight_windows", in_flight)


def record_net_frames(bus, direction: str, n: int = 1) -> None:
    """Publish frames moved over the transport (``in`` or ``out``)."""
    bus.inc("repro_net_frames_total", n, direction=direction)


def record_net_retry(bus, reason: str, n: int = 1) -> None:
    """Publish fleet retry-ladder rungs spent, labeled by why."""
    bus.inc("repro_net_retries_total", n, reason=reason)


def record_net_event(bus, event: str, n: int = 1) -> None:
    """Publish one fleet liveness event counter.

    ``event`` is ``reconnect``, ``checksum_failure``,
    ``heartbeat_miss`` or ``worker_quarantine`` — each maps to its own
    registered family (explicit names beat a label soup for alerting).
    """
    bus.inc({
        "reconnect": "repro_net_reconnects_total",
        "checksum_failure": "repro_net_checksum_failures_total",
        "heartbeat_miss": "repro_net_heartbeat_misses_total",
        "worker_quarantine": "repro_net_worker_quarantines_total",
    }[event], n)
