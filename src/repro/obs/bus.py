"""The metrics bus: named counters, gauges and histograms.

One :class:`MetricsBus` is a process-local, thread-safe registry of
numeric time series the serving stack publishes while it runs — windows
served, simulated cycles, engine decisions, queue depths, energy per
window. It is the substrate under the Prometheus text endpoint
(:mod:`repro.obs.exporter`) and the monitoring TUI
(:mod:`repro.obs.tui`), and it deliberately knows nothing about either.

**Off by default, zero cost when off.** No bus exists until a caller
installs one (:func:`install` / :func:`recording`); every
instrumentation site in the serving stack does::

    bus = get_bus()
    if bus is not None:
        record_window(bus, ...)

so the disabled path is one global read and a ``None`` check — no
allocation, no locks, no branches inside the simulation itself
(``tests/test_obs.py`` proves the disabled path allocates nothing).
Metrics never feed back into simulated state, so enabling the bus
cannot perturb bit-identity; the tier-1 differential suites run with it
off and a pooled instrumented run is asserted to match its own report
counter-for-counter.

**Snapshot / delta semantics** mirror
:meth:`repro.core.config_mem.StoreStats.snapshot` /
:meth:`~repro.core.config_mem.StoreStats.since`: :meth:`MetricsBus.snapshot`
returns an immutable copy, :meth:`MetricsBus.since` the monotonic delta
accumulated after it (counters and histograms subtract; gauges are
levels and pass through current).
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from dataclasses import dataclass, field

#: Kinds a metric family can have; fixed at first use, mixing raises.
KINDS = ("counter", "gauge", "histogram")

#: Default histogram bucket bounds (upper-inclusive ``le`` edges). A
#: wide geometric ladder that covers per-window cycle counts and µJ
#: energies alike; declare per-metric bounds for anything tighter.
DEFAULT_BUCKETS = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0,
    100_000.0, 250_000.0, 500_000.0, 1_000_000.0, 2_500_000.0,
    5_000_000.0, 10_000_000.0,
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


class MetricError(ValueError):
    """A metric was used inconsistently (bad name, kind clash, ...)."""


def _labels_key(labels: dict) -> tuple:
    """Canonical, hashable form of a label set."""
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class HistogramValue:
    """Immutable state of one histogram series.

    ``bounds`` are the upper-inclusive bucket edges (an implicit +Inf
    bucket follows); ``counts`` has ``len(bounds) + 1`` entries and is
    *not* cumulative — rendering to Prometheus ``le`` form happens in
    the exporter.
    """

    bounds: tuple
    counts: tuple
    sum: float = 0.0

    @property
    def count(self) -> int:
        return sum(self.counts)

    def minus(self, other: "HistogramValue") -> "HistogramValue":
        if other.bounds != self.bounds:
            raise MetricError(
                "histogram bucket bounds changed between snapshots"
            )
        return HistogramValue(
            bounds=self.bounds,
            counts=tuple(
                a - b for a, b in zip(self.counts, other.counts)
            ),
            sum=self.sum - other.sum,
        )


@dataclass(frozen=True)
class BusSnapshot:
    """An immutable copy of a bus at one instant (pairs with ``since``)."""

    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    #: metric family name -> kind, for renderers.
    kinds: dict = field(default_factory=dict)

    def counter(self, name: str, **labels) -> float:
        """One counter series' value (0.0 when it never ticked)."""
        return self.counters.get((name, _labels_key(labels)), 0.0)

    def gauge(self, name: str, **labels):
        """One gauge series' level, or ``None`` when never set."""
        return self.gauges.get((name, _labels_key(labels)))

    def histogram(self, name: str, **labels):
        """One histogram series' :class:`HistogramValue`, or ``None``."""
        return self.histograms.get((name, _labels_key(labels)))

    def counter_family(self, name: str) -> dict:
        """Every series of one counter family: labels key -> value."""
        return {
            key[1]: value for key, value in self.counters.items()
            if key[0] == name
        }

    def gauge_family(self, name: str) -> dict:
        """Every series of one gauge family: labels key -> level."""
        return {
            key[1]: value for key, value in self.gauges.items()
            if key[0] == name
        }


class MetricsBus:
    """Thread-safe counters/gauges/histograms keyed by name + labels.

    ``buckets`` maps histogram family names to their bucket bounds
    (upper-inclusive edges); families not listed use
    :data:`DEFAULT_BUCKETS`. A family's kind is fixed by its first use —
    incrementing a name previously used as a gauge raises
    :class:`MetricError` instead of silently mixing semantics.
    """

    def __init__(self, buckets: dict = None) -> None:
        self._lock = threading.Lock()
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self._kinds = {}
        self._buckets = {
            name: tuple(sorted(float(b) for b in bounds))
            for name, bounds in (buckets or {}).items()
        }
        self._valid_names = set()

    # -- validation ----------------------------------------------------------

    def _check(self, name: str, kind: str, labels: dict) -> tuple:
        if name not in self._valid_names:
            if not _NAME_RE.match(name):
                raise MetricError(
                    f"invalid metric name {name!r} (want "
                    "[a-zA-Z_:][a-zA-Z0-9_:]*)"
                )
            for label in labels:
                if not _LABEL_RE.match(label):
                    raise MetricError(
                        f"invalid label name {label!r} on {name!r}"
                    )
            self._valid_names.add(name)
        known = self._kinds.get(name)
        if known is None:
            self._kinds[name] = kind
        elif known != kind:
            raise MetricError(
                f"metric {name!r} is a {known}, used as a {kind}"
            )
        return (name, _labels_key(labels))

    # -- writes --------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        """Add ``value`` (>= 0) to a counter series."""
        if value < 0:
            raise MetricError(
                f"counter {name!r} cannot decrease (inc by {value})"
            )
        with self._lock:
            key = self._check(name, "counter", labels)
            self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge series to ``value`` (gauges are levels)."""
        with self._lock:
            key = self._check(name, "gauge", labels)
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one observation into a histogram series."""
        with self._lock:
            key = self._check(name, "histogram", labels)
            hist = self._histograms.get(key)
            if hist is None:
                bounds = self._buckets.get(name, DEFAULT_BUCKETS)
                hist = [bounds, [0] * (len(bounds) + 1), 0.0]
                self._histograms[key] = hist
            bounds, counts, _ = hist
            counts[bisect_left(bounds, value)] += 1
            hist[2] += value

    def drop_gauge(self, name: str, **labels) -> None:
        """Remove one gauge series (e.g. a retired pool worker's depth)."""
        with self._lock:
            self._gauges.pop((name, _labels_key(labels)), None)

    # -- reads ---------------------------------------------------------------

    def snapshot(self) -> BusSnapshot:
        """An immutable copy of every series (pairs with :meth:`since`)."""
        with self._lock:
            return BusSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms={
                    key: HistogramValue(
                        bounds=tuple(bounds),
                        counts=tuple(counts),
                        sum=total,
                    )
                    for key, (bounds, counts, total)
                    in self._histograms.items()
                },
                kinds=dict(self._kinds),
            )

    def since(self, snapshot: BusSnapshot) -> BusSnapshot:
        """The monotonic delta accumulated after ``snapshot``.

        Counters and histograms subtract (series absent from the old
        snapshot count from zero); gauges are levels, so the delta
        carries their *current* values — exactly the contract of
        :meth:`repro.core.config_mem.StoreStats.since`, lifted to three
        metric kinds.
        """
        now = self.snapshot()
        return BusSnapshot(
            counters={
                key: value - snapshot.counters.get(key, 0)
                for key, value in now.counters.items()
            },
            gauges=now.gauges,
            histograms={
                key: (
                    value.minus(snapshot.histograms[key])
                    if key in snapshot.histograms else value
                )
                for key, value in now.histograms.items()
            },
            kinds=now.kinds,
        )

    def counter(self, name: str, **labels) -> float:
        """Current value of one counter series (0.0 if it never ticked)."""
        with self._lock:
            return self._counters.get((name, _labels_key(labels)), 0.0)

    def gauge(self, name: str, **labels):
        """Current level of one gauge series, or ``None``."""
        with self._lock:
            return self._gauges.get((name, _labels_key(labels)))

    def kind(self, name: str):
        """The family's kind (``counter``/``gauge``/``histogram``) or None."""
        with self._lock:
            return self._kinds.get(name)

    def clear(self) -> None:
        """Forget every series (kinds persist — semantics don't reset)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# -- the installed bus --------------------------------------------------------

#: The process-wide bus, or None (the default: instrumentation off).
_BUS = None


def get_bus():
    """The installed :class:`MetricsBus`, or ``None`` when metrics are off.

    The one call every instrumentation site makes on its hot path; when
    it returns ``None`` the site must skip all metric work. Reading a
    module global allocates nothing.
    """
    return _BUS


def install(bus: MetricsBus) -> MetricsBus:
    """Install ``bus`` process-wide and return it."""
    global _BUS
    _BUS = bus
    return bus


def uninstall() -> None:
    """Turn instrumentation back off (the default state)."""
    global _BUS
    _BUS = None


class recording:
    """Context manager: install a bus for the block, restore on exit.

    >>> from repro.obs import MetricsBus, recording
    >>> with recording(MetricsBus()) as bus:
    ...     pass  # serve something; bus collects
    """

    def __init__(self, bus: MetricsBus = None) -> None:
        self.bus = bus if bus is not None else MetricsBus()
        self._previous = None

    def __enter__(self) -> MetricsBus:
        global _BUS
        self._previous = _BUS
        _BUS = self.bus
        return self.bus

    def __exit__(self, *exc) -> None:
        global _BUS
        _BUS = self._previous
