"""The monitoring TUI: tail a live pool from its metrics.

Split model/view so the dashboard works — and is testable — everywhere:

* :class:`MonitorModel` is pure python. It ingests metric samples from a
  local :class:`~repro.obs.MetricsBus` or a scraped exposition
  (:func:`~repro.obs.parse_prometheus`), keeps a short history, and
  derives the live quantities the dashboard shows: per-worker windows/s
  and queue depth, engine decision mix, fallback/rejection reasons,
  energy-per-window trend, checkpoint lag.
* :func:`render_text` renders the model as a plain-text dashboard — the
  headless fallback (``python -m repro.obs --plain``) and the CI smoke
  path.
* :func:`build_app` builds the Textual application (DataTable-per-pane,
  message-driven refresh, following the gridworks-scada admin-widget
  idiom from SNIPPETS.md) **only if** Textual is importable; the CLI
  falls back to the plain renderer otherwise. Nothing else in this
  module imports Textual.

Keybindings (Textual app): ``q`` quit · ``p`` pause/resume sampling ·
``r`` reset the rate baseline (documented in docs/observability.md).
"""

from __future__ import annotations

import collections

from repro.obs.bus import BusSnapshot, MetricsBus

#: Samples of history the model keeps (enough for a trend sparkline).
HISTORY = 64

#: Eight-level block characters for the energy trend sparkline.
_SPARK = " ▁▂▃▄▅▆▇█"


def snapshot_samples(snapshot: BusSnapshot) -> dict:
    """Flatten a bus snapshot into ``(name, labels_key) -> float`` samples.

    The same keying :func:`~repro.obs.parse_prometheus` produces from a
    scraped exposition, so the model ingests local and remote sources
    through one code path. Histograms flatten to their ``_sum`` and
    ``_count`` series (the trend math only needs those).
    """
    samples = {}
    samples.update(snapshot.counters)
    samples.update(snapshot.gauges)
    for (name, labels_key), hist in snapshot.histograms.items():
        samples[(f"{name}_sum", labels_key)] = hist.sum
        samples[(f"{name}_count", labels_key)] = hist.count
    return samples


def sparkline(values, width: int = 24) -> str:
    """Render ``values`` (most recent last) as a block-character strip."""
    values = list(values)[-width:]
    if not values:
        return ""
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        return _SPARK[4] * len(values)
    return "".join(
        _SPARK[1 + round((value - low) / span * (len(_SPARK) - 2))]
        for value in values
    )


class MonitorModel:
    """Rolling metric history + the derived dashboard quantities."""

    def __init__(self, history: int = HISTORY) -> None:
        self.ticks = collections.deque(maxlen=history)
        self.paused = False
        self._baseline = None

    # -- ingest --------------------------------------------------------------

    def ingest(self, samples: dict, now: float) -> None:
        """Record one sampling tick (``samples`` as from
        :func:`snapshot_samples` / :func:`~repro.obs.parse_prometheus`)."""
        if self.paused:
            return
        if self._baseline is None:
            self._baseline = (now, dict(samples))
        self.ticks.append((now, samples))

    def ingest_bus(self, bus: MetricsBus, now: float) -> None:
        self.ingest(snapshot_samples(bus.snapshot()), now)

    def reset_baseline(self) -> None:
        """Restart rate computations from the latest tick (key ``r``)."""
        self._baseline = self.ticks[-1] if self.ticks else None

    # -- raw accessors -------------------------------------------------------

    @property
    def latest(self) -> dict:
        return self.ticks[-1][1] if self.ticks else {}

    def value(self, name: str, default=None, **labels):
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self.latest.get(key, default)

    def family(self, name: str) -> dict:
        """Every series of one family in the latest tick: labels -> value."""
        return {
            key[1]: value for key, value in self.latest.items()
            if key[0] == name
        }

    def _rate(self, key: tuple) -> float:
        """Per-second rate of one counter series since the baseline."""
        if not self.ticks or self._baseline is None:
            return 0.0
        now, samples = self.ticks[-1]
        base_time, base = self._baseline
        elapsed = now - base_time
        if elapsed <= 0:
            return 0.0
        return (samples.get(key, 0.0) - base.get(key, 0.0)) / elapsed

    # -- derived dashboard quantities ----------------------------------------

    def progress(self) -> tuple:
        """``(done, total)`` windows of the stream being served."""
        return (
            int(self.value("repro_stream_done", 0)),
            int(self.value("repro_stream_windows", 0)),
        )

    def throughput(self) -> float:
        """Stream windows/s: the published gauge, else a counter rate."""
        gauge = self.value("repro_stream_windows_per_second")
        if gauge is not None:
            return gauge
        return self._rate(("repro_windows_served_total", ()))

    def worker_rows(self) -> list:
        """Per-worker ``(worker, windows, windows/s, queue_depth)`` rows."""
        served = self.family("repro_pool_worker_windows_total")
        depth = self.family("repro_pool_queue_depth")
        rows = []
        for labels_key in sorted(set(served) | set(depth)):
            worker = dict(labels_key).get("worker", "?")
            rows.append((
                worker,
                int(served.get(labels_key, 0)),
                self._rate(("repro_pool_worker_windows_total", labels_key)),
                int(depth.get(labels_key, 0)),
            ))
        return rows

    def engine_rows(self) -> list:
        """``(engine, launches, share)`` rows of the decision mix."""
        launches = self.family("repro_launches_total")
        total = sum(launches.values())
        return [
            (
                dict(labels_key).get("engine", "?"),
                int(count),
                count / total if total else 0.0,
            )
            for labels_key, count in sorted(launches.items())
        ]

    def reason_rows(self) -> list:
        """Fallback kernels and vectorizer rejection reasons, tallied."""
        rows = [
            ("fallback", dict(labels_key).get("kernel", "?"), int(count))
            for labels_key, count
            in sorted(self.family("repro_engine_fallbacks_total").items())
        ]
        rows += [
            ("vec-reject", dict(labels_key).get("reason", "?"), int(count))
            for labels_key, count
            in sorted(self.family("repro_vector_rejections_total").items())
        ]
        return rows

    def energy_per_window(self) -> list:
        """µJ/window between consecutive ticks (the trend series)."""
        trend = []
        previous = None
        for _, samples in self.ticks:
            energy = samples.get(("repro_energy_uj_total", ()), 0.0)
            windows = samples.get(("repro_windows_served_total", ()), 0.0)
            if previous is not None:
                d_energy = energy - previous[0]
                d_windows = windows - previous[1]
                if d_windows > 0:
                    trend.append(d_energy / d_windows)
            previous = (energy, windows)
        return trend

    def checkpoint_lag(self) -> int:
        """Windows completed since the last checkpoint flush."""
        return int(self.value("repro_checkpoint_lag_windows", 0))

    def resilience_rows(self) -> list:
        """``(event, count)`` resilience counters, largest first."""
        rows = [
            (dict(labels_key).get("event", "?"), int(count))
            for labels_key, count
            in self.family("repro_resilience_total").items()
        ]
        return sorted(rows, key=lambda row: (-row[1], row[0]))


# -- the plain-text dashboard -------------------------------------------------


def render_text(model: MonitorModel) -> str:
    """The whole dashboard as plain text (headless fallback + CI path)."""
    done, total = model.progress()
    lines = [
        "repro live monitor"
        + (" [paused]" if model.paused else ""),
        f"  stream: {done}/{total} windows  "
        f"{model.throughput():.2f} windows/s  "
        f"checkpoint lag: {model.checkpoint_lag()} windows",
    ]
    workers = model.worker_rows()
    if workers:
        lines.append("  workers:")
        for worker, windows, rate, depth in workers:
            lines.append(
                f"    w{worker}: {windows} windows  {rate:.2f}/s  "
                f"queue {depth}"
            )
    engines = model.engine_rows()
    if engines:
        mix = "  ".join(
            f"{engine}: {count} ({share:.0%})"
            for engine, count, share in engines
        )
        lines.append(f"  engines: {mix}")
    reasons = model.reason_rows()
    if reasons:
        lines.append("  reasons:")
        for kind, what, count in reasons:
            lines.append(f"    {kind} {what}: {count}")
    trend = model.energy_per_window()
    if trend:
        lines.append(
            f"  energy/window: {trend[-1]:.2f} uJ  {sparkline(trend)}"
        )
    resilience = model.resilience_rows()
    if resilience:
        mix = "  ".join(f"{event}: {count}" for event, count in resilience)
        lines.append(f"  resilience: {mix}")
    return "\n".join(lines)


# -- the Textual application (optional dependency) ----------------------------


def textual_available() -> bool:
    """Whether the Textual toolkit is importable in this environment."""
    try:
        import textual  # noqa: F401
    except ImportError:
        return False
    return True


def build_app(sample, interval: float = 1.0):
    """Build the Textual monitoring app (requires ``textual``).

    ``sample`` is a zero-argument callable returning the latest samples
    dict (from :func:`snapshot_samples` or a scraped exposition) — the
    app owns its :class:`MonitorModel` and refreshes every ``interval``
    seconds from an event-loop timer, driving
    :class:`~textual.widgets.DataTable` panes the gridworks-scada way
    (zebra-striped row tables rebuilt per state update, never mutated
    from worker threads).

    Raises :class:`RuntimeError` when Textual is not installed; callers
    (the ``python -m repro.obs`` CLI) fall back to :func:`render_text`.
    """
    try:
        from textual.app import App, ComposeResult
        from textual.widgets import DataTable, Footer, Header, Static
    except ImportError as exc:
        raise RuntimeError(
            "the monitoring TUI needs the 'textual' package; run "
            "python -m repro.obs --plain for the text dashboard"
        ) from exc

    import time as _time

    class MonitorApp(App):
        """Live pool dashboard over one metric source."""

        TITLE = "repro live monitor"
        BINDINGS = [
            ("q", "quit", "Quit"),
            ("p", "toggle_pause", "Pause"),
            ("r", "reset_rates", "Reset rates"),
        ]

        def __init__(self) -> None:
            super().__init__()
            self.model = MonitorModel()

        def compose(self) -> ComposeResult:
            yield Header()
            yield Static(id="summary")
            workers = DataTable(id="workers", zebra_stripes=True)
            workers.cursor_type = "row"
            yield workers
            engines = DataTable(id="engines", zebra_stripes=True)
            engines.cursor_type = "row"
            yield engines
            yield Static(id="trend")
            yield Footer()

        def on_mount(self) -> None:
            self.query_one("#workers", DataTable).add_columns(
                "worker", "windows", "windows/s", "queue"
            )
            self.query_one("#engines", DataTable).add_columns(
                "engine", "launches", "share"
            )
            self.set_interval(interval, self._tick)

        def _tick(self) -> None:
            # set_interval callbacks run on the app's event loop, so
            # ingesting and mutating the DataTables here is thread-safe.
            self.model.ingest(sample(), _time.monotonic())
            model = self.model
            done, total = model.progress()
            self.query_one("#summary", Static).update(
                f"{done}/{total} windows · "
                f"{model.throughput():.2f} windows/s · "
                f"checkpoint lag {model.checkpoint_lag()}"
            )
            workers = self.query_one("#workers", DataTable)
            workers.clear()
            for worker, windows, rate, depth in model.worker_rows():
                workers.add_row(
                    f"w{worker}", str(windows), f"{rate:.2f}", str(depth)
                )
            engines = self.query_one("#engines", DataTable)
            engines.clear()
            for engine, count, share in model.engine_rows():
                engines.add_row(engine, str(count), f"{share:.0%}")
            trend = model.energy_per_window()
            self.query_one("#trend", Static).update(
                f"energy/window {trend[-1]:.2f} uJ  {sparkline(trend)}"
                if trend else "energy/window –"
            )

        def action_toggle_pause(self) -> None:
            self.model.paused = not self.model.paused

        def action_reset_rates(self) -> None:
            self.model.reset_baseline()

    return MonitorApp()
