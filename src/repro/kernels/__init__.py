"""VWR2A kernel mappings: the paper's evaluated workloads as real
instruction streams, plus the staging/launch infrastructure."""

from repro.kernels.delineation import (
    DelineationRun,
    build_delineation_kernel,
    run_delineation,
)
from repro.kernels.features import (
    ScalarResult,
    run_accumulate,
    run_intervals,
)
from repro.kernels.fft import (
    FftEngine,
    FftPlan,
    FftRun,
    cg_fft_reference_int,
    master_twiddles,
    stage_table,
)
from repro.kernels.fft2048 import (
    SplitFftEngine,
    SplitFftRun,
    split_fft_reference_int,
)
from repro.kernels.fir import (
    FirLayout,
    FirRun,
    build_fir_kernel,
    fir_fx_reference,
    plan_fir,
    run_fir,
)
from repro.kernels.layout import Region, SpmAllocator
from repro.kernels.macro import ColumnKernelBuilder
from repro.kernels.rfft import RfftEngine, RfftRun, rfft_reference_int
from repro.kernels.runner import KernelRun, KernelRunner, RunnerFactory
from repro.kernels.vector import elementwise_kernel, plan_split, scalar_kernel

__all__ = [
    "DelineationRun",
    "build_delineation_kernel",
    "run_delineation",
    "ScalarResult",
    "run_accumulate",
    "run_intervals",
    "FftEngine",
    "FftPlan",
    "FftRun",
    "cg_fft_reference_int",
    "master_twiddles",
    "stage_table",
    "SplitFftEngine",
    "SplitFftRun",
    "split_fft_reference_int",
    "FirLayout",
    "FirRun",
    "build_fir_kernel",
    "fir_fx_reference",
    "plan_fir",
    "run_fir",
    "Region",
    "SpmAllocator",
    "ColumnKernelBuilder",
    "RfftEngine",
    "RfftRun",
    "rfft_reference_int",
    "KernelRun",
    "KernelRunner",
    "RunnerFactory",
    "elementwise_kernel",
    "plan_split",
    "scalar_kernel",
]
