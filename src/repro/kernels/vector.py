"""Elementwise vector kernels.

The simplest complete VWR2A mappings — ``z[i] = x[i] op y[i]`` and
``z[i] = x[i] op scalar`` — used by the quickstart example, as the
reference for the Table-1 instruction-flow shape, and as the base case of
the kernel test suite. Both columns split the data; each line is streamed
SPM -> VWRs -> SPM with the Table-1 two-bundle loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch import ArchParams
from repro.core.errors import ConfigurationError
from repro.isa.fields import DST_VWR_C, VWR_A, VWR_B, Vwr, srf
from repro.isa.lsu import ld_vwr, st_vwr
from repro.isa.program import ColumnProgram, KernelConfig
from repro.isa.rc import RCOp, rc
from repro.kernels.macro import ColumnKernelBuilder

#: SRF register allocation of the vector kernels.
SRF_A_ADDR = 0
SRF_B_ADDR = 1
SRF_C_ADDR = 2
SRF_SCALAR = 3


@dataclass(frozen=True)
class VectorPlan:
    """Line-level split of an elementwise kernel across columns."""

    n_words: int
    n_lines: int
    lines_per_column: dict


def plan_split(params: ArchParams, n_words: int) -> VectorPlan:
    """Divide ``n_words`` (whole lines) across the columns."""
    line_words = params.line_words
    if n_words % line_words != 0:
        raise ConfigurationError(
            "vector kernels operate on whole lines "
            f"({line_words} words); got {n_words}"
        )
    n_lines = n_words // line_words
    base = n_lines // params.n_columns
    extra = n_lines % params.n_columns
    lines_per_column = {}
    start = 0
    for col in range(params.n_columns):
        count = base + (1 if col < extra else 0)
        if count:
            lines_per_column[col] = (start, count)
        start += count
    return VectorPlan(
        n_words=n_words, n_lines=n_lines, lines_per_column=lines_per_column
    )


def _column_program(
    params: ArchParams,
    op: RCOp,
    a_line: int,
    b_line,
    c_line: int,
    n_lines: int,
    scalar,
) -> ColumnProgram:
    kb = ColumnKernelBuilder(params)
    kb.srf(SRF_A_ADDR, a_line)
    if b_line is not None:
        kb.srf(SRF_B_ADDR, b_line)
    kb.srf(SRF_C_ADDR, c_line)
    if scalar is not None:
        kb.srf(SRF_SCALAR, scalar)

    if b_line is not None:
        body = rc(op, DST_VWR_C, VWR_A, VWR_B)
    else:
        body = rc(op, DST_VWR_C, VWR_A, srf(SRF_SCALAR))

    with kb.counted_loop(reg=1, count=n_lines):
        kb.emit(lsu=ld_vwr(Vwr.A, SRF_A_ADDR, inc=1))
        if b_line is not None:
            kb.vector_pass(body, setup_lsu=ld_vwr(Vwr.B, SRF_B_ADDR, inc=1))
        else:
            kb.vector_pass(body)
        kb.emit(lsu=st_vwr(Vwr.C, SRF_C_ADDR, inc=1))
    kb.exit()
    return kb.build()


def elementwise_kernel(
    params: ArchParams,
    op: RCOp,
    n_words: int,
    a_line: int,
    b_line: int,
    c_line: int,
    name: str = None,
) -> KernelConfig:
    """``z = x op y`` over ``n_words`` (line-aligned regions)."""
    plan = plan_split(params, n_words)
    columns = {}
    for col, (start, count) in plan.lines_per_column.items():
        columns[col] = _column_program(
            params, op,
            a_line + start, b_line + start, c_line + start,
            count, scalar=None,
        )
    return KernelConfig(
        name=name or f"vec_{op.name.lower()}_{n_words}", columns=columns
    )


def scalar_kernel(
    params: ArchParams,
    op: RCOp,
    n_words: int,
    a_line: int,
    c_line: int,
    scalar: int,
    name: str = None,
) -> KernelConfig:
    """``z = x op scalar`` with the scalar broadcast from the SRF."""
    plan = plan_split(params, n_words)
    columns = {}
    for col, (start, count) in plan.lines_per_column.items():
        columns[col] = _column_program(
            params, op,
            a_line + start, None, c_line + start,
            count, scalar=scalar,
        )
    return KernelConfig(
        name=name or f"vecs_{op.name.lower()}_{n_words}", columns=columns
    )
