"""The delineation kernel (MBioTracker step 2, Table 5).

"This step is a typical example of control-intensive code. The computation
load is low but there are a lot of if conditions used to detect the valid
minimums and maximums. General purpose CPUs are very inefficient at
executing such code, while VWR2A can take advantage of its more powerful
ILP capabilities." (Sec. 5.2.2.)

The mapping is an exact port of the hysteresis state machine of
:func:`repro.baselines.dsp.delineate` onto the specialized slots:

* the **LSU** streams samples from the SPM (LD.SRF with post-increment)
  and commits extrema positions (ST.SRF) — one memory op per cycle in
  parallel with control;
* the **LCU** holds the loop counter, the running extremum and the
  hysteresis comparisons — the state machine *is* its branch structure
  (one program region per state);
* **RC0/RC1** shadow the sample index and latch candidate extremum
  positions, committed through the SRF when a hysteresis band breaks.

The threshold is baked into the configuration words (a kernel parameter,
like the FFT addresses). Output arrays are terminated with a -1 sentinel.
Cycle cost is ~7-8 cycles per sample on the common path — an order of
magnitude below the M4's 90 cycles per sample, which is the paper's
delineation claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch import ArchParams
from repro.core.errors import ConfigurationError
from repro.isa.fields import DST_R0, DST_R1, R0, R1, dst_srf, imm
from repro.isa.lcu import addi, bge, blt, jump, ldsrf, seti
from repro.isa.lsu import ld_srf, set_srf, st_srf
from repro.isa.program import KernelConfig
from repro.isa.rc import RCOp, rc
from repro.kernels.macro import ColumnKernelBuilder
from repro.kernels.runner import KernelRun, KernelRunner

# SRF allocation.
SRF_X_ADDR = 0     #: sample read pointer (word address, post-inc)
SRF_MAX_ADDR = 1   #: maxima output pointer
SRF_MIN_ADDR = 2   #: minima output pointer
SRF_VALUE = 3      #: current sample (LSU -> LCU/RC handoff)
SRF_POS = 4        #: committed position (RC -> LSU handoff)

#: Sentinel terminating the output arrays.
SENTINEL = -1


def build_delineation_kernel(
    params: ArchParams,
    n_samples: int,
    threshold: int,
    x_word: int,
    max_word: int,
    min_word: int,
    name: str = "delineate",
) -> KernelConfig:
    """Single-column hysteresis scan with baked parameters."""
    if threshold <= 0:
        raise ConfigurationError("threshold must be positive")
    kb = ColumnKernelBuilder(params)
    kb.srf(SRF_X_ADDR, x_word)
    kb.srf(SRF_MAX_ADDR, max_word)
    kb.srf(SRF_MIN_ADDR, min_word)
    thr = threshold
    inc_i = [rc(RCOp.SADD, DST_R0, R0, imm(1)),
             rc(RCOp.SADD, DST_R0, R0, imm(1))]
    latch0 = rc(RCOp.MOV, DST_R1, R0)   # RC0: candidate position
    latch1 = rc(RCOp.MOV, DST_R1, R0)   # RC1: low candidate (state 0)

    # Prologue: read sample 0 into both running extrema; shadows at 0.
    kb.emit(lsu=ld_srf(SRF_VALUE, SRF_X_ADDR, inc=1), lcu=seti(0, 1))
    # Candidate positions (R1) must start at 0: if the very first sample
    # is the running extremum, the commit paths store R1 without any
    # latch ever firing — a stale value from the previous kernel would
    # leak into the output (and it varies with the SPM geometry).
    kb.emit(lcu=ldsrf(2, SRF_VALUE),
            rcs={0: rc(RCOp.MOV, DST_R1, imm(0)),
                 1: rc(RCOp.MOV, DST_R1, imm(0))})      # R2 = high
    kb.emit(lcu=ldsrf(3, SRF_VALUE),
            rcs={0: rc(RCOp.MOV, DST_R0, imm(0)),
                 1: rc(RCOp.MOV, DST_R0, imm(0))})      # R3 = low

    # ---- state 0: undecided ------------------------------------------------
    kb.b.label("s0")
    kb.emit(lcu=bge(0, n_samples, "done"))
    kb.emit(lsu=ld_srf(SRF_VALUE, SRF_X_ADDR, inc=1), lcu=addi(0, 1),
            rcs={0: inc_i[0], 1: inc_i[1]})
    kb.emit(lcu=ldsrf(1, SRF_VALUE))
    kb.emit(lcu=bge(1, ("reg", 2), "s0_new_high"))
    kb.emit(lcu=blt(1, ("reg", 3), "s0_new_low"))
    kb.b.label("s0_commits")
    kb.emit(lcu=addi(1, thr))                           # R1 = value + thr
    kb.emit(lcu=bge(2, ("reg", 1), "s0_commit_max"))    # high >= value+thr
    kb.emit(lcu=addi(1, -2 * thr))                      # R1 = value - thr
    kb.emit(lcu=bge(1, ("reg", 3), "s0_commit_min"))    # value-thr >= low
    kb.emit(lcu=jump("s0"))
    kb.b.label("s0_new_high")
    kb.emit(lcu=ldsrf(2, SRF_VALUE), rcs={0: latch0})
    kb.emit(lcu=jump("s0_commits"))
    kb.b.label("s0_new_low")
    kb.emit(lcu=ldsrf(3, SRF_VALUE), rcs={1: latch1})
    kb.emit(lcu=jump("s0_commits"))
    kb.b.label("s0_commit_max")
    kb.emit(rcs={0: rc(RCOp.MOV, dst_srf(SRF_POS), R1)})
    kb.emit(lsu=st_srf(SRF_POS, SRF_MAX_ADDR, inc=1))
    kb.emit(lcu=ldsrf(2, SRF_VALUE), rcs={0: latch0})   # best = value
    kb.emit(lcu=jump("track_min"))
    kb.b.label("s0_commit_min")
    kb.emit(rcs={1: rc(RCOp.MOV, dst_srf(SRF_POS), R1)})
    kb.emit(lsu=st_srf(SRF_POS, SRF_MIN_ADDR, inc=1))
    kb.emit(lcu=ldsrf(2, SRF_VALUE), rcs={0: latch0})
    kb.emit(lcu=jump("track_max"))

    # ---- tracking a maximum (best in R2, position shadow in RC0.R1) --------
    kb.b.label("track_max")
    kb.emit(lcu=bge(0, n_samples, "done"))
    kb.emit(lsu=ld_srf(SRF_VALUE, SRF_X_ADDR, inc=1), lcu=addi(0, 1),
            rcs={0: inc_i[0]})
    kb.emit(lcu=ldsrf(1, SRF_VALUE))
    kb.emit(lcu=addi(1, thr))
    kb.emit(lcu=bge(2, ("reg", 1), "commit_max"))       # best >= value+thr
    kb.emit(lcu=addi(1, -thr))
    kb.emit(lcu=bge(2, ("reg", 1), "track_max"))        # best >= value
    kb.emit(lcu=ldsrf(2, SRF_VALUE), rcs={0: latch0})   # new best
    kb.emit(lcu=jump("track_max"))
    kb.b.label("commit_max")
    kb.emit(rcs={0: rc(RCOp.MOV, dst_srf(SRF_POS), R1)})
    kb.emit(lsu=st_srf(SRF_POS, SRF_MAX_ADDR, inc=1))
    kb.emit(lcu=ldsrf(2, SRF_VALUE), rcs={0: latch0})
    kb.emit(lcu=jump("track_min"))

    # ---- tracking a minimum --------------------------------------------------
    kb.b.label("track_min")
    kb.emit(lcu=bge(0, n_samples, "done"))
    kb.emit(lsu=ld_srf(SRF_VALUE, SRF_X_ADDR, inc=1), lcu=addi(0, 1),
            rcs={0: inc_i[0]})
    kb.emit(lcu=ldsrf(1, SRF_VALUE))
    kb.emit(lcu=addi(1, -thr))
    kb.emit(lcu=bge(1, ("reg", 2), "commit_min"))       # value-thr >= best
    kb.emit(lcu=addi(1, thr))
    kb.emit(lcu=bge(1, ("reg", 2), "track_min"))        # value >= best: keep
    kb.emit(lcu=ldsrf(2, SRF_VALUE), rcs={0: latch0})   # value < best: update
    kb.emit(lcu=jump("track_min"))
    kb.b.label("commit_min")
    kb.emit(rcs={0: rc(RCOp.MOV, dst_srf(SRF_POS), R1)})
    kb.emit(lsu=st_srf(SRF_POS, SRF_MIN_ADDR, inc=1))
    kb.emit(lcu=ldsrf(2, SRF_VALUE), rcs={0: latch0})
    kb.emit(lcu=jump("track_max"))

    # ---- epilogue: sentinel terminators ----------------------------------------
    kb.b.label("done")
    kb.emit(lsu=set_srf(SRF_VALUE, SENTINEL))
    kb.emit(lsu=st_srf(SRF_VALUE, SRF_MAX_ADDR, inc=1))
    kb.emit(lsu=st_srf(SRF_VALUE, SRF_MIN_ADDR, inc=1))
    kb.exit()
    return KernelConfig(name=name, columns={0: kb.build()})


@dataclass
class DelineationRun:
    maxima: list
    minima: list
    run: KernelRun


def run_delineation(
    runner: KernelRunner,
    samples,
    threshold: int,
    x_word: int = 0,
    stage_input: bool = True,
    out_word: int = None,
) -> DelineationRun:
    """Stage, execute and collect a delineation scan.

    With ``stage_input=False`` the samples are assumed to already be in
    the SPM at ``x_word`` (the application keeps the filtered signal
    resident, Sec. 5.2.3). ``out_word`` places the extrema arrays.
    """
    params = runner.soc.params
    n = len(samples)
    if out_word is None:
        out_word = x_word + ((n + params.line_words - 1)
                             // params.line_words) * params.line_words
    max_word = out_word
    cap = n + 2
    min_word = max_word + cap
    run = KernelRun(name="delineate")
    if stage_input:
        run.dma_in_cycles = runner.stage_in(
            [int(s) for s in samples], x_word
        )
    config = build_delineation_kernel(
        params, n, threshold, x_word, max_word, min_word
    )
    result = runner.execute(config, max_cycles=40 * n + 2000)
    run.config_cycles = result.config_cycles
    run.compute_cycles = result.cycles
    spm = runner.soc.vwr2a.spm

    def collect(base: int) -> list:
        values = []
        for offset in range(cap):
            word = spm.peek_words(base + offset, 1)[0]
            if word == SENTINEL:
                break
            values.append(word)
        return values

    maxima = collect(max_word)
    minima = collect(min_word)
    # The CPU reads back the (tiny) extrema arrays over the bus for its
    # high-level control of the following steps.
    readback = len(maxima) + len(minima) + 2
    run.dma_out_cycles = runner.soc.bus.burst_cycles(readback)
    runner.soc.run_cpu(run.dma_out_cycles)
    return DelineationRun(maxima=maxima, minima=minima, run=run)
