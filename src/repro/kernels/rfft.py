"""The real-valued FFT kernel (Sec. 3.4, Table 2, Table 3 anchor).

"An optimized version is used for real-valued FFTs ... The sequence of N
real values is transformed into an N/2 complex sequence. Then, the complex
FFT kernel presented above is used. This technique reduces the
computations ... but requires some additional operations, also executed on
VWR2A, to recover the correct output."

Flow here:

1. **Pack**: even samples -> re, odd samples -> im of an N/2 complex
   sequence. Folded into the complex kernel's bit-reversed DMA gather —
   zero extra cycles.
2. **Complex N/2 FFT** (:class:`repro.kernels.fft.FftEngine`), result kept
   in the SPM.
3. **Mirror**: ``ZR[k] = Z[(N/2-k) mod N/2]`` materialized by an LSU
   scalar copy loop (LD.SRF/ST.SRF with +/-1 post-increments), the real
   and imaginary arrays split across the two columns. This is the
   conservative, documented-mechanisms-only answer to the mirrored access
   the recombination needs (DESIGN.md Sec. 5); it costs ~2 cycles/word and
   is the main reason our real-FFT overhead exceeds the paper's.
4. **Recombination** (two vector kernels per batch, sharing the FFT batch
   kernel's scratch-chain idiom)::

       G = (Z + conj(ZR))/2          H = (Z - conj(ZR))/(2i)
       X[k] = G[k] + W_N^k * H[k]

   with the ``W_N^k`` table resident in the SPM (uploaded at prepare).
   The k = 0 lane yields X[0] = Zre[0] + Zim[0] automatically; the single
   extra bin X[N/2] = Zre[0] - Zim[0] is patched by a scalar epilogue in
   the mirror kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch import ArchParams
from repro.core.errors import ConfigurationError
from repro.isa.fields import (
    DST_R0,
    DST_R1,
    DST_VWR_C,
    R0,
    R1,
    VWR_A,
    VWR_B,
    Vwr,
    dst_srf,
    imm,
    srf,
)
from repro.isa.lcu import addi, blt, seti
from repro.isa.lsu import ld_srf, ld_vwr, set_srf, st_srf, st_vwr
from repro.isa.mxcu import MXCU_NOP, inck
from repro.isa.program import KernelConfig
from repro.isa.rc import RCOp, rc
from repro.kernels.fft import (
    TWIDDLE_ONE,
    FftEngine,
    _ScratchChain,
    stage_table_lines,
)
from repro.kernels.macro import ColumnKernelBuilder
from repro.kernels.runner import KernelRun, KernelRunner
from repro.utils.bits import clog2, is_power_of_two
from repro.utils.fixed_point import wrap32

# SRF allocation of the recombination kernels.
SRF_Z = 0        #: Z line address (re for phase 1 / by pass)
SRF_ZR = 1
SRF_Z2 = 2       #: Zim / second stream
SRF_ZR2 = 3
SRF_W = 4
SRF_XRE = 5
SRF_XIM = 6
SRF_SCRATCH = 7


def rfft_reference_int(samples):
    """Bit-exact golden model of the VWR2A real-FFT flow."""
    from repro.kernels.fft import cg_fft_reference_int

    n = len(samples)
    if not is_power_of_two(n):
        raise ConfigurationError("need a power-of-two input")
    half = n // 2
    zre, zim = cg_fft_reference_int(
        [int(samples[2 * i]) for i in range(half)],
        [int(samples[2 * i + 1]) for i in range(half)],
    )
    import math

    out_re = [0] * (half + 1)
    out_im = [0] * (half + 1)
    for k in range(half):
        j = (half - k) % half
        gre = wrap32(zre[k] + zre[j]) >> 1
        gim = wrap32(zim[k] - zim[j]) >> 1
        hre = wrap32(zim[k] + zim[j]) >> 1
        him = wrap32(zre[j] - zre[k]) >> 1
        angle = -2.0 * math.pi * k / n
        wr = int(round(math.cos(angle) * TWIDDLE_ONE))
        wi = int(round(math.sin(angle) * TWIDDLE_ONE))
        p1 = wrap32((hre * wr) >> 15)
        p2 = wrap32((him * wi) >> 15)
        p3 = wrap32((hre * wi) >> 15)
        p4 = wrap32((him * wr) >> 15)
        out_re[k] = wrap32(gre + wrap32(p1 - p2))
        out_im[k] = wrap32(gim + wrap32(p3 + p4))
    out_re[half] = wrap32(zre[0] - zim[0])
    out_im[half] = 0
    return out_re, out_im


# ---------------------------------------------------------------------------
# Mirror kernel (scalar LSU copy, one array per column)
# ---------------------------------------------------------------------------

def _mirror_column_program(
    params: ArchParams,
    z_word: int,
    zr_word: int,
    half: int,
    patch=None,
):
    """ZR[k] = Z[(half-k) mod half] for one array (re or im).

    ``patch``: optionally (zre_word, zim_word, xnyq_word) — the column also
    computes X[N/2] = Zre[0] - Zim[0] into the SPM word ``xnyq_word``.
    """
    kb = ColumnKernelBuilder(params)
    kb.srf(0, z_word)           # ZR[0] = Z[0] source
    kb.srf(1, zr_word)
    kb.srf(2, z_word + half - 1)  # descending source for k = 1..half-1
    # k = 0 wrap-around case.
    kb.emit(lsu=ld_srf(3, 0))
    kb.emit(lsu=st_srf(3, 1, inc=1))
    # Main loop: 2 cycles per word.
    label = kb.fresh_label("mir")
    kb.emit(lcu=seti(0, 0))
    kb.b.label(label)
    kb.emit(lsu=ld_srf(3, 2, inc=-1), lcu=addi(0, 1))
    kb.emit(lsu=st_srf(3, 1, inc=1), lcu=blt(0, half - 1, label))
    if patch is not None:
        zre_word, zim_word, xnyq_word = patch
        kb.emit(lsu=set_srf(4, zre_word))
        kb.emit(lsu=ld_srf(3, 4))              # SRF3 = Zre[0]
        kb.emit(lsu=set_srf(4, zim_word))
        kb.emit(lsu=ld_srf(5, 4))              # SRF5 = Zim[0]
        kb.emit(rcs={0: rc(RCOp.MOV, DST_R0, srf(3))})
        kb.emit(rcs={0: rc(RCOp.MOV, DST_R1, srf(5))})
        kb.emit(rcs={0: rc(RCOp.SSUB, dst_srf(3), R0, R1)})
        kb.emit(lsu=set_srf(4, xnyq_word))
        kb.emit(lsu=st_srf(3, 4))
    kb.exit()
    return kb.build()


# ---------------------------------------------------------------------------
# Recombination kernels
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RecombAddresses:
    """Baked line addresses of one column's recombination batch."""

    zre: int
    zim: int
    zrre: int
    zrim: int
    w: int          #: W_N table line (wr of batch q, wi follows)
    xre: int
    xim: int
    scratch: int


def _shifted_add(dst, sign: int):
    """Fused (a +/- b) >> 1 two-bundle body."""
    op = RCOp.SADD if sign > 0 else RCOp.SSUB
    return [
        (rc(op, DST_R0, VWR_A, VWR_B), inck(1)),
        (rc(RCOp.SRA, dst, R0, imm(1)), MXCU_NOP),
    ]


def _gh_column_program(params: ArchParams, addr: RecombAddresses):
    """Phase 1: G/H terms into scratch lines s0..s3."""
    kb = ColumnKernelBuilder(params)
    kb.srf(SRF_Z, addr.zre)
    kb.srf(SRF_ZR, addr.zrre)
    kb.srf(SRF_Z2, addr.zim)
    kb.srf(SRF_ZR2, addr.zrim)
    chain = _ScratchChain(addr.scratch)
    plan = []

    def scratch_st(offset: int):
        plan.append(("st", chain.touch(offset)))

    # Group 1: A = Zre, B = ZRre -> Gre (s0), Him (s3).
    plan.append(("ld", Vwr.A, SRF_Z))
    plan.append(("ld", Vwr.B, SRF_ZR))
    plan.append(("gre",))
    scratch_st(0)
    plan.append(("him",))
    scratch_st(3)
    # Group 2: A = Zim, B = ZRim -> Gim (s1), Hre (s2).
    plan.append(("ld", Vwr.A, SRF_Z2))
    plan.append(("ld", Vwr.B, SRF_ZR2))
    plan.append(("gim",))
    scratch_st(1)
    plan.append(("hre",))
    scratch_st(2)

    incs = chain.increments()
    kb.srf(SRF_SCRATCH, addr.scratch + chain.offsets[0])
    for step in plan:
        if step[0] == "ld":
            kb.emit(lsu=ld_vwr(step[1], step[2]))
        elif step[0] == "st":
            kb.emit(lsu=st_vwr(Vwr.C, SRF_SCRATCH, inc=incs[step[1]]))
        elif step[0] == "gre":
            kb.multi_pass(_shifted_add(DST_VWR_C, +1))
        elif step[0] == "him":
            # Him = (ZRre - Zre)/2 = (B - A)/2
            kb.multi_pass([
                (rc(RCOp.SSUB, DST_R0, VWR_B, VWR_A), inck(1)),
                (rc(RCOp.SRA, DST_VWR_C, R0, imm(1)), MXCU_NOP),
            ])
        elif step[0] == "gim":
            kb.multi_pass(_shifted_add(DST_VWR_C, -1))
        elif step[0] == "hre":
            kb.multi_pass(_shifted_add(DST_VWR_C, +1))
    kb.exit()
    return kb.build()


def _xw_column_program(params: ArchParams, addr: RecombAddresses):
    """Phase 2: X = G + W*H from the scratch lines of phase 1."""
    kb = ColumnKernelBuilder(params)
    kb.srf(SRF_W, addr.w)
    kb.srf(SRF_XRE, addr.xre)
    kb.srf(SRF_XIM, addr.xim)
    chain = _ScratchChain(addr.scratch)
    ops = []

    def s_ld(offset: int, vwr: Vwr):
        ops.append(("sld", chain.touch(offset), vwr))

    def s_st(offset: int):
        ops.append(("sst", chain.touch(offset)))

    # Products (W resident in VWR B per half).
    s_ld(2, Vwr.A)                        # A = Hre
    ops.append(("ldw",))                  # B = Wre
    ops.append(("mul",))
    s_st(4)                               # s4 = P1 = Hre*Wre
    s_ld(3, Vwr.A)                        # A = Him
    ops.append(("mul",))
    s_st(5)                               # s5 = P4 = Him*Wre
    s_ld(2, Vwr.A)                        # A = Hre
    ops.append(("ldw",))                  # B = Wim
    ops.append(("mul",))
    s_st(2)                               # s2 = P3 = Hre*Wim (Hre dead)
    s_ld(3, Vwr.A)                        # A = Him
    ops.append(("mul",))
    s_st(3)                               # s3 = P2 = Him*Wim (Him dead)
    # Tre = P1 - P2 ; Tim = P3 + P4.
    s_ld(4, Vwr.A)
    s_ld(3, Vwr.B)
    ops.append(("sub",))
    s_st(4)
    s_ld(2, Vwr.A)
    s_ld(5, Vwr.B)
    ops.append(("add",))
    s_st(5)
    # X = G + T.
    s_ld(0, Vwr.A)
    s_ld(4, Vwr.B)
    ops.append(("add",))
    ops.append(("stx", SRF_XRE))
    s_ld(1, Vwr.A)
    s_ld(5, Vwr.B)
    ops.append(("add",))
    ops.append(("stx", SRF_XIM))

    incs = chain.increments()
    kb.srf(SRF_SCRATCH, addr.scratch + chain.offsets[0])
    for op in ops:
        kind = op[0]
        if kind == "sld":
            kb.emit(lsu=ld_vwr(op[2], SRF_SCRATCH, inc=incs[op[1]]))
        elif kind == "sst":
            kb.emit(lsu=st_vwr(Vwr.C, SRF_SCRATCH, inc=incs[op[1]]))
        elif kind == "ldw":
            kb.emit(lsu=ld_vwr(Vwr.B, SRF_W, inc=1))
        elif kind == "mul":
            kb.vector_pass(rc(RCOp.FXPMUL, DST_VWR_C, VWR_A, VWR_B))
        elif kind == "sub":
            kb.vector_pass(rc(RCOp.SSUB, DST_VWR_C, VWR_A, VWR_B))
        elif kind == "add":
            kb.vector_pass(rc(RCOp.SADD, DST_VWR_C, VWR_A, VWR_B))
        elif kind == "stx":
            kb.emit(lsu=st_vwr(Vwr.C, op[1], inc=1))
    kb.exit()
    return kb.build()


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------

@dataclass
class RfftRun:
    re: list          #: N/2 + 1 spectrum bins
    im: list
    run: KernelRun
    prepare_cycles: int = 0


class RfftEngine:
    """Real-input FFT on top of the complex engine."""

    def __init__(self, runner: KernelRunner, n: int) -> None:
        if not is_power_of_two(n) or n < 4 * runner.soc.params.line_words:
            raise ConfigurationError(f"unsupported real-FFT size {n}")
        self.runner = runner
        self.params = runner.soc.params
        self.n = n
        self.half = n // 2
        self.cfft = FftEngine(runner, self.half)
        try:
            self._layout()
        except ConfigurationError:
            if not self.cfft.plan.resident_tables:
                raise
            # Tight SPM: streaming the inner FFT's stage tables frees the
            # lines the recombination layout needs. Only reached on
            # geometries where the resident layout cannot fit at all.
            self.cfft = FftEngine(runner, self.half, resident_tables=False)
            self._layout()
        self._w_sram = None
        self.prepare_cycles = 0
        self._prepared = False

    def _layout(self) -> None:
        plan = self.cfft.plan
        self.spec_lines = self.half // self.params.line_words  # Z lines
        # X overwrites Z in place (phase 2 only reads the scratch G/H
        # terms), so the free region only holds the W table, which streams
        # from SRAM when it does not fit, plus one line for the Nyquist
        # bins.
        self.xre_line, self.xim_line = plan.result_lines
        base = plan.scratch_line + 6 * self.params.n_columns
        self.nyq_line = base
        self.w_line = base + 1
        w_lines = 2 * max(self.spec_lines, 1)
        self.w_resident = self.w_line + w_lines <= self.params.spm_lines
        if not self.w_resident:
            w_lines = 2 * self.params.n_columns
            if self.w_line + w_lines > self.params.spm_lines:
                raise ConfigurationError(
                    f"real-FFT-{self.n} layout exceeds the SPM"
                )
        self.w_lines = w_lines

    def prepare(self) -> int:
        if self._prepared:
            return self.prepare_cycles
        cycles = self.cfft.prepare()
        # Recombination twiddle table: W_N^k, all distinct (the "last
        # stage" table of an N-point transform).
        words = stage_table_lines(self.params, self.n, clog2(self.n) - 1)
        if self.w_resident:
            cycles += self.runner.stage_in(
                words, self.w_line * self.params.line_words
            )
        else:
            sram_base = self.runner.sram_alloc(len(words))
            self.runner.soc.sram.poke_words(sram_base, words)
            self._w_sram = sram_base
        self.prepare_cycles = cycles
        self._prepared = True
        return cycles

    def run(self, samples, collect: bool = True) -> RfftRun:
        if len(samples) != self.n:
            raise ConfigurationError(
                f"expected {self.n} samples, got {len(samples)}"
            )
        self.prepare()
        params = self.params
        line_words = params.line_words
        half = self.half
        evens = [int(samples[2 * i]) for i in range(half)]
        odds = [int(samples[2 * i + 1]) for i in range(half)]
        inner = self.cfft.run(evens, odds, collect=False)
        run = inner.run
        run.name = f"rfft_{self.n}"
        plan = self.cfft.plan
        zr_line, zi_line = plan.result_lines
        # The other ping-pong buffer is dead after the FFT: mirror there.
        mr_line, mi_line = (
            (plan.xr_line, plan.xi_line)
            if (zr_line, zi_line) == (plan.yr_line, plan.yi_line)
            else (plan.yr_line, plan.yi_line)
        )
        xnyq_word = self.nyq_line * line_words

        re_program = _mirror_column_program(
            params,
            zr_line * line_words, mr_line * line_words, half,
            patch=(
                zr_line * line_words, zi_line * line_words, xnyq_word,
            ),
        )
        im_program = _mirror_column_program(
            params,
            zi_line * line_words, mi_line * line_words, half,
        )
        if params.n_columns >= 2:
            # The paper geometry: real and imaginary mirrors run on the
            # two columns concurrently (they touch disjoint arrays).
            mirror_configs = [KernelConfig(
                name=f"rfft{self.n}_mirror",
                columns={0: re_program, 1: im_program},
            )]
        else:
            # Single-column geometry: the same two programs launch back
            # to back on column 0.
            mirror_configs = [
                KernelConfig(name=f"rfft{self.n}_mirror_re",
                             columns={0: re_program}),
                KernelConfig(name=f"rfft{self.n}_mirror_im",
                             columns={0: im_program}),
            ]
        for mirror in mirror_configs:
            result = self.runner.execute(
                mirror, max_cycles=10 * self.n + 1000
            )
            run.config_cycles += result.config_cycles
            run.compute_cycles += result.cycles

        n_cols = min(params.n_columns, max(self.spec_lines, 1))
        launches = max(-(-self.spec_lines // n_cols), 1)
        for launch in range(launches):
            if not self.w_resident:
                chunk = stage_table_lines(self.params, self.n, clog2(self.n) - 1)
                lo = launch * n_cols * 2 * line_words
                hi = min(lo + n_cols * 2 * line_words, len(chunk))
                run.dma_in_cycles += self.runner.soc.dma_to_vwr2a(
                    self._w_sram + lo,
                    self.w_line * line_words,
                    hi - lo,
                )
            per_col = {}
            for col in range(n_cols):
                q = launch * n_cols + col
                if q >= max(self.spec_lines, 1):
                    continue
                if self.w_resident:
                    w_line = self.w_line + 2 * q
                else:
                    w_line = self.w_line + 2 * col
                per_col[col] = RecombAddresses(
                    zre=zr_line + q,
                    zim=zi_line + q,
                    zrre=mr_line + q,
                    zrim=mi_line + q,
                    w=w_line,
                    xre=self.xre_line + q,
                    xim=self.xim_line + q,
                    scratch=plan.scratch_line_of(col),
                )
            for phase, builder in (("gh", _gh_column_program),
                                   ("xw", _xw_column_program)):
                config = KernelConfig(
                    name=f"rfft{self.n}_{phase}_l{launch}",
                    columns={
                        col: builder(params, addr)
                        for col, addr in per_col.items()
                    },
                )
                result = self.runner.execute(config)
                run.config_cycles += result.config_cycles
                run.compute_cycles += result.cycles

        if collect:
            nyq_rel = (self.nyq_line - self.xre_line) * line_words
            out_re, c1 = self.runner.stage_out(
                self.xre_line * line_words, half + 1,
                order=list(range(half)) + [nyq_rel],
            )
            out_im, c2 = self.runner.stage_out(
                self.xim_line * line_words, half
            )
            out_im = list(out_im) + [0]
            run.dma_out_cycles += c1 + c2
        else:
            spm = self.runner.soc.vwr2a.spm
            out_re = spm.peek_words(self.xre_line * line_words, half)
            out_re = list(out_re) + [spm.peek_words(xnyq_word, 1)[0]]
            out_im = spm.peek_words(self.xim_line * line_words, half)
            out_im = list(out_im) + [0]
        return RfftRun(re=out_re, im=out_im, run=run,
                       prepare_cycles=self.prepare_cycles + inner.prepare_cycles)
