"""The complex FFT kernel (Sec. 3.4, Tables 2/3, Fig. 2).

Algorithm
---------
Constant-geometry radix-2 decimation-in-time (Pease form): every stage
executes the identical flow — the paper's central observation ("All the
stages execute the same flow of operations; the only changes are the
coefficients and the data ordering"). Stage ``t`` of ``n = log2(N)``:

    a = x[2k]; b = x[2k+1]                       (k = 0 .. N/2-1)
    y[k]       = a + W * b
    y[k + N/2] = a - W * b,   W = W_N^((k >> (n-1-t)) << (n-1-t))

The input is consumed in bit-reversed order — arranged for free by the
word-granular DMA gather during stage-in — and the output leaves in
natural order, so no output reordering pass is needed. The *words
interleaving* / *pruning* shuffles are exactly the stage-to-stage data
reordering: each batch de-interleaves its two input lines into the ``a``
and ``b`` operand vectors with one ODD/EVEN-prune shuffle pair (the DIT
dual of the DIF interleave the paper describes).

Mapping
-------
One **batch kernel** covers 128 butterflies per column (one VWR), fully
unrolled over the per-stage addresses: the host launches
``stages x batches_per_column`` kernels, baking all line addresses into
the SRF init of each launch (the CPU reprograms kernel parameters between
launches, Sec. 4.2 — the "programming ... of the kernel parameters"
overhead the paper mentions). Within a batch:

* products and combines are Table-1 two-bundle elementwise loops;
* the final butterflies are *fused* passes producing ``a + wb`` into VWR C
  and ``a - wb`` in place into VWR B in a two-cycle body;
* all scratch lines are walked by a single SRF address register whose
  post-increment chain is baked into the instructions (no extra cycles).

Twiddles are 16.15 constants (1.0 = 32768 is exactly representable in the
32-bit datapath). Per-stage tables are materialized in the SPM: uploaded
once at :meth:`FftEngine.prepare` when they fit alongside the data
(N <= 512, the accelerator-ROM equivalent), or streamed per stage for
N = 1024. N = 2048 splits into two 1024-point transforms plus a combine
pass (the SPM cannot hold 2048-point ping-pong buffers and tables;
DESIGN.md records this substitution).

Data is q15-valued in 32-bit words; with 32-bit headroom no per-stage
scaling is needed up to N = 2048 and the kernel is bit-exact against
:func:`cg_fft_reference_int`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch import ArchParams
from repro.core.errors import ConfigurationError
from repro.isa.fields import (
    DST_VWR_B,
    DST_VWR_C,
    VWR_A,
    VWR_B,
    ShuffleMode,
    Vwr,
    imm,
)
from repro.isa.lsu import ld_vwr, shuf, st_vwr
from repro.isa.mxcu import MXCU_NOP, inck
from repro.isa.program import KernelConfig
from repro.isa.rc import RCOp, rc
from repro.kernels.macro import ColumnKernelBuilder
from repro.kernels.runner import KernelRun, KernelRunner
from repro.utils.bits import bit_reverse_indices, clog2, is_power_of_two
from repro.utils.fixed_point import wrap32

#: 16.15 twiddle scale: 1.0 == 1 << 15 (exactly representable in 32 bits).
TWIDDLE_ONE = 1 << 15

# SRF allocation of the batch kernel.
SRF_XR = 0      #: input re pair-line address (two post-inc uses per batch)
SRF_XI = 1      #: input im pair-line address
SRF_W = 2       #: stage-table line address (wr/wi interleaved by line)
SRF_YR_LO = 3
SRF_YR_HI = 4
SRF_YI_LO = 5
SRF_YI_HI = 6
SRF_SCRATCH = 7  #: scratch-line walker (post-increment chain)


def master_twiddles(n: int):
    """(re, im) 16.15 master table: W_N^k for k = 0 .. N/2-1."""
    re, im = [], []
    for k in range(n // 2):
        angle = -2.0 * math.pi * k / n
        re.append(int(round(math.cos(angle) * TWIDDLE_ONE)))
        im.append(int(round(math.sin(angle) * TWIDDLE_ONE)))
    return re, im


def stage_exponents(n: int, t: int):
    """Master-table indices of stage ``t``'s table."""
    bits = clog2(n)
    shift = bits - 1 - t
    return [(k >> shift) << shift for k in range(n // 2)]


def stage_table(n: int, t: int):
    """Materialized (re, im) twiddle table of stage ``t``."""
    mre, mim = master_twiddles(n)
    idx = stage_exponents(n, t)
    return [mre[i] for i in idx], [mim[i] for i in idx]


def stage_table_lines(params: ArchParams, n: int, t: int):
    """Stage table in the line-interleaved SPM layout [wr_l, wi_l, ...]."""
    wr, wi = stage_table(n, t)
    line_words = params.line_words
    n_lines = -(-len(wr) // line_words)
    words = []
    for line in range(n_lines):
        lo = line * line_words
        hi = lo + line_words
        chunk_r = wr[lo:hi] + [0] * (line_words - len(wr[lo:hi]))
        chunk_i = wi[lo:hi] + [0] * (line_words - len(wi[lo:hi]))
        words.extend(chunk_r)
        words.extend(chunk_i)
    return words


# ---------------------------------------------------------------------------
# Golden model (bit-exact against the kernel's ALU semantics)
# ---------------------------------------------------------------------------

def _fxp(a: int, b: int) -> int:
    return wrap32((a * b) >> 15)


def cg_fft_reference_int(re, im):
    """Exact integer CG-DIT FFT matching the kernel bit-for-bit."""
    n = len(re)
    if n != len(im) or not is_power_of_two(n):
        raise ConfigurationError("need power-of-two complex input")
    bits = clog2(n)
    order = bit_reverse_indices(n)
    xr = [int(re[i]) for i in order]
    xi = [int(im[i]) for i in order]
    for t in range(bits):
        wr, wi = stage_table(n, t)
        yr = [0] * n
        yi = [0] * n
        half = n // 2
        for k in range(half):
            ar, ai = xr[2 * k], xi[2 * k]
            br, bi = xr[2 * k + 1], xi[2 * k + 1]
            p1 = _fxp(br, wr[k])
            p2 = _fxp(bi, wi[k])
            p3 = _fxp(br, wi[k])
            p4 = _fxp(bi, wr[k])
            wbr = wrap32(p1 - p2)
            wbi = wrap32(p3 + p4)
            yr[k] = wrap32(ar + wbr)
            yi[k] = wrap32(ai + wbi)
            yr[k + half] = wrap32(ar - wbr)
            yi[k + half] = wrap32(ai - wbi)
        xr, xi = yr, yi
    return xr, xi


# ---------------------------------------------------------------------------
# Batch kernel generator
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BatchAddresses:
    """Baked line addresses of one column's batch in one stage.

    Early stages (twiddle runs of >= one RC slice) carry their twiddles as
    per-RC configuration-word immediates in ``imm_twiddles`` — a list of
    ``(w_re, w_im)`` per RC — and leave ``w`` as None.
    """

    xr_pair: int     #: first of the two input re lines (2q, 2q+1)
    xi_pair: int
    yr_lo: int       #: output y[k] re line
    yr_hi: int       #: output y[k + N/2] re line
    yi_lo: int
    yi_hi: int
    scratch: int     #: first of six consecutive scratch lines
    w: int = None    #: stage-table line (wr of batch q); wi follows it
    imm_twiddles: tuple = None


class _ScratchChain:
    """Post-increment chain planner for the scratch address register.

    Records the sequence of scratch-line touches; each LSU access carries
    the increment that moves the register to the *next* touch, so the
    whole batch runs without a single SET_SRF.
    """

    def __init__(self, base: int) -> None:
        self.base = base
        self.offsets = []

    def touch(self, offset: int) -> int:
        """Register a touch of scratch line ``offset``; returns its index."""
        self.offsets.append(offset)
        return len(self.offsets) - 1

    def increments(self) -> list:
        incs = []
        for i, off in enumerate(self.offsets):
            nxt = self.offsets[i + 1] if i + 1 < len(self.offsets) else off
            incs.append(nxt - off)
        return incs


def _batch_column_program(params: ArchParams, addr: BatchAddresses):
    """The straight-line batch body for one column."""
    kb = ColumnKernelBuilder(params)
    kb.srf(SRF_XR, addr.xr_pair)
    kb.srf(SRF_XI, addr.xi_pair)
    if addr.w is not None:
        kb.srf(SRF_W, addr.w)
    kb.srf(SRF_YR_LO, addr.yr_lo)
    kb.srf(SRF_YR_HI, addr.yr_hi)
    kb.srf(SRF_YI_LO, addr.yi_lo)
    kb.srf(SRF_YI_HI, addr.yi_hi)

    # Scratch plan: s0=ar s1=ai s2=br/p3 s3=bi/p2 s4=p1/wbr s5=p4/wbi.
    chain = _ScratchChain(addr.scratch)
    ops = []   # deferred (kind, payload, chain_index) emission plan

    def scratch_op(kind: str, offset: int, **payload):
        index = chain.touch(offset)
        ops.append((kind, payload, index))

    def plain_op(kind: str, **payload):
        ops.append((kind, payload, None))

    # -- de-interleave: x pairs -> a (evens) and b (odds) -------------------
    plain_op("ld", vwr=Vwr.A, entry=SRF_XR, inc=1)
    plain_op("ld", vwr=Vwr.B, entry=SRF_XR, inc=1)
    plain_op("shuf", mode=ShuffleMode.ODD_PRUNE)     # keeps even indices
    scratch_op("st", 0, vwr=Vwr.C)                   # s0 = a_re
    plain_op("shuf", mode=ShuffleMode.EVEN_PRUNE)    # keeps odd indices
    scratch_op("st", 2, vwr=Vwr.C)                   # s2 = b_re
    plain_op("ld", vwr=Vwr.A, entry=SRF_XI, inc=1)
    plain_op("ld", vwr=Vwr.B, entry=SRF_XI, inc=1)
    plain_op("shuf", mode=ShuffleMode.ODD_PRUNE)
    scratch_op("st", 1, vwr=Vwr.C)                   # s1 = a_im
    plain_op("shuf", mode=ShuffleMode.EVEN_PRUNE)
    scratch_op("st", 3, vwr=Vwr.C)                   # s3 = b_im

    # -- twiddle products -----------------------------------------------------
    if addr.imm_twiddles is None:
        # Vector twiddles: wr stays resident in VWR B for p1/p4.
        scratch_op("ld", 2, vwr=Vwr.A)                   # A = br
        plain_op("ld", vwr=Vwr.B, entry=SRF_W, inc=1)    # B = wr
        plain_op("pass", op=RCOp.FXPMUL)                 # C = br*wr
        scratch_op("st", 4, vwr=Vwr.C)                   # s4 = p1
        scratch_op("ld", 3, vwr=Vwr.A)                   # A = bi
        plain_op("pass", op=RCOp.FXPMUL)                 # C = bi*wr
        scratch_op("st", 5, vwr=Vwr.C)                   # s5 = p4
        scratch_op("ld", 2, vwr=Vwr.A)                   # A = br
        plain_op("ld", vwr=Vwr.B, entry=SRF_W, inc=1)    # B = wi
        plain_op("pass", op=RCOp.FXPMUL)                 # C = br*wi
        scratch_op("st", 2, vwr=Vwr.C)                   # s2 = p3 (br dead)
        scratch_op("ld", 3, vwr=Vwr.A)                   # A = bi
        plain_op("pass", op=RCOp.FXPMUL)                 # C = bi*wi
        scratch_op("st", 3, vwr=Vwr.C)                   # s3 = p2 (bi dead)
    else:
        # Immediate twiddles: one (w_re, w_im) per RC slice, baked into
        # the configuration words — no table loads at all.
        wr_imms = [imm(w[0]) for w in addr.imm_twiddles]
        wi_imms = [imm(w[1]) for w in addr.imm_twiddles]
        scratch_op("ld", 2, vwr=Vwr.A)                   # A = br
        plain_op("ipass", imms=wr_imms)                  # C = br*wr
        scratch_op("st", 4, vwr=Vwr.C)                   # s4 = p1
        plain_op("ipass", imms=wi_imms)                  # C = br*wi
        scratch_op("st", 2, vwr=Vwr.C)                   # s2 = p3 (br dead)
        scratch_op("ld", 3, vwr=Vwr.A)                   # A = bi
        plain_op("ipass", imms=wr_imms)                  # C = bi*wr
        scratch_op("st", 5, vwr=Vwr.C)                   # s5 = p4
        plain_op("ipass", imms=wi_imms)                  # C = bi*wi
        scratch_op("st", 3, vwr=Vwr.C)                   # s3 = p2 (bi dead)

    # -- combines: wbr = p1 - p2 ; wbi = p3 + p4 ----------------------------
    scratch_op("ld", 4, vwr=Vwr.A)                   # A = p1
    scratch_op("ld", 3, vwr=Vwr.B)                   # B = p2
    plain_op("pass", op=RCOp.SSUB)
    scratch_op("st", 4, vwr=Vwr.C)                   # s4 = wbr
    scratch_op("ld", 2, vwr=Vwr.A)                   # A = p3
    scratch_op("ld", 5, vwr=Vwr.B)                   # B = p4
    plain_op("pass", op=RCOp.SADD)
    scratch_op("st", 5, vwr=Vwr.C)                   # s5 = wbi

    # -- fused butterflies: C = a + wb ; B <- a - wb (in place) -------------
    scratch_op("ld", 0, vwr=Vwr.A)                   # A = ar
    scratch_op("ld", 4, vwr=Vwr.B)                   # B = wbr
    plain_op("fused")
    plain_op("st", vwr=Vwr.C, entry=SRF_YR_LO, inc=1)
    plain_op("st", vwr=Vwr.B, entry=SRF_YR_HI, inc=1)
    scratch_op("ld", 1, vwr=Vwr.A)                   # A = ai
    scratch_op("ld", 5, vwr=Vwr.B)                   # B = wbi
    plain_op("fused")
    plain_op("st", vwr=Vwr.C, entry=SRF_YI_LO, inc=1)
    plain_op("st", vwr=Vwr.B, entry=SRF_YI_HI, inc=1)

    # -- emit ----------------------------------------------------------------
    incs = chain.increments()
    kb.srf(SRF_SCRATCH, addr.scratch + chain.offsets[0])
    for kind, payload, chain_index in ops:
        inc = incs[chain_index] if chain_index is not None else None
        if kind == "ld":
            entry = payload.get("entry", SRF_SCRATCH)
            kb.emit(lsu=ld_vwr(
                payload["vwr"], entry,
                inc=payload.get("inc", inc or 0),
            ))
        elif kind == "st":
            entry = payload.get("entry", SRF_SCRATCH)
            kb.emit(lsu=st_vwr(
                payload["vwr"], entry,
                inc=payload.get("inc", inc or 0),
            ))
        elif kind == "shuf":
            kb.emit(lsu=shuf(payload["mode"]))
        elif kind == "pass":
            kb.vector_pass(rc(payload["op"], DST_VWR_C, VWR_A, VWR_B))
        elif kind == "ipass":
            kb.vector_pass([
                rc(RCOp.FXPMUL, DST_VWR_C, VWR_A, imm_op)
                for imm_op in payload["imms"]
            ])
        elif kind == "fused":
            kb.multi_pass(
                body=[
                    (rc(RCOp.SADD, DST_VWR_C, VWR_A, VWR_B), inck(1)),
                    (rc(RCOp.SSUB, DST_VWR_B, VWR_A, VWR_B), MXCU_NOP),
                ],
            )
        else:
            raise ConfigurationError(f"unknown op kind {kind!r}")
    kb.exit()
    return kb.build()


def build_batch_kernel(
    params: ArchParams, per_column: dict, name: str
) -> KernelConfig:
    """One launch: each listed column runs one batch with baked addresses."""
    columns = {
        col: _batch_column_program(params, addr)
        for col, addr in per_column.items()
    }
    return KernelConfig(name=name, columns=columns)


# ---------------------------------------------------------------------------
# Plan + engine
# ---------------------------------------------------------------------------

@dataclass
class FftPlan:
    """SPM layout and launch schedule of one FFT size."""

    n: int
    params: ArchParams
    x_line: int = 0        #: ping buffer: xr | xi (data_lines each)
    resident_tables: bool = True

    def __post_init__(self) -> None:
        if not is_power_of_two(self.n) or self.n < 2 * self.params.line_words:
            raise ConfigurationError(
                f"FFT size {self.n} unsupported (needs >= "
                f"{2 * self.params.line_words} points)"
            )
        self.stages = clog2(self.n)
        self.data_lines = self.n // self.params.line_words
        self.batches = self.n // 2 // self.params.line_words
        # Stages whose twiddle runs cover at least one RC slice carry their
        # twiddles as per-RC immediates; only the remaining "vector" stages
        # need materialized tables.
        slice_bits = clog2(self.params.slice_words)
        self.vector_stages = [
            t for t in range(self.stages)
            if (self.stages - 1 - t) < slice_bits
        ]
        # Layout: xr xi | yr yi | tables
        self.xr_line = self.x_line
        self.xi_line = self.xr_line + self.data_lines
        self.yr_line = self.xi_line + self.data_lines
        self.yi_line = self.yr_line + self.data_lines
        self.table_line = self.yi_line + self.data_lines
        self.table_lines_per_stage = 2 * max(self.batches, 1)
        scratch_lines = 6 * self.params.n_columns
        if self.resident_tables:
            total = (
                self.table_line
                + len(self.vector_stages) * self.table_lines_per_stage
                + scratch_lines
            )
        else:
            total = self.table_line + self.table_lines_per_stage \
                + scratch_lines
        if total > self.params.spm_lines:
            raise ConfigurationError(
                f"FFT-{self.n} layout needs {total} SPM lines, have "
                f"{self.params.spm_lines}; use resident_tables=False or "
                "the split-transform path"
            )
        self.scratch_line = total - scratch_lines

    def scratch_line_of(self, col: int) -> int:
        """Each column owns six private scratch lines."""
        return self.scratch_line + 6 * col

    def is_vector_stage(self, t: int) -> bool:
        return t in self.vector_stages

    def table_line_of_stage(self, t: int) -> int:
        if not self.is_vector_stage(t):
            raise ConfigurationError(
                f"stage {t} uses immediate twiddles, not a table"
            )
        if self.resident_tables:
            index = self.vector_stages.index(t)
            return self.table_line + index * self.table_lines_per_stage
        return self.table_line

    def imm_twiddles_for(self, t: int, q: int) -> tuple:
        """Per-RC (w_re, w_im) immediates of batch ``q`` in stage ``t``."""
        mre, mim = master_twiddles(self.n)
        shift = self.stages - 1 - t
        slice_words = self.params.slice_words
        imms = []
        for rc_index in range(self.params.rcs_per_column):
            k = q * self.params.line_words + rc_index * slice_words
            index = (k >> shift) << shift
            imms.append((mre[index], mim[index]))
        return tuple(imms)

    def buffers_for_stage(self, t: int):
        """(src_re, src_im, dst_re, dst_im) line bases for stage ``t``."""
        if t % 2 == 0:
            return self.xr_line, self.xi_line, self.yr_line, self.yi_line
        return self.yr_line, self.yi_line, self.xr_line, self.xi_line

    @property
    def result_lines(self):
        """(re, im) line bases holding the final spectrum."""
        if self.stages % 2 == 1:
            return self.yr_line, self.yi_line
        return self.xr_line, self.xi_line


@dataclass
class FftRun:
    """Spectrum + cycle ledger of one staged FFT execution."""

    re: list
    im: list
    run: KernelRun
    prepare_cycles: int = 0


class FftEngine:
    """Orchestrates complex FFTs of one size on a runner."""

    def __init__(self, runner: KernelRunner, n: int,
                 resident_tables: bool = None) -> None:
        self.runner = runner
        self.params = runner.soc.params
        if resident_tables is None:
            # Vector-stage tables + double buffer fit together up to 512
            # points with the default 32 KiB SPM; larger sizes stream the
            # vector-stage tables from SRAM before each stage.
            slice_bits = clog2(self.params.slice_words)
            table_words = min(clog2(n), slice_bits) * n
            scratch_words = 6 * runner.soc.params.n_columns \
                * runner.soc.params.line_words
            resident_tables = (
                4 * n + table_words
                <= runner.soc.params.spm_words - scratch_words
            )
            if resident_tables:
                # The estimate above undercounts the per-stage table
                # footprint on some geometries (each stage holds 2n
                # line-interleaved words); when the exact layout check
                # rejects residency, stream the tables instead of failing.
                try:
                    self.plan = FftPlan(
                        n=n, params=self.params, resident_tables=True
                    )
                except ConfigurationError:
                    resident_tables = False
                else:
                    self.prepare_cycles = 0
                    self._prepared = False
                    self._table_sram = {}
                    return
        self.plan = FftPlan(
            n=n, params=self.params, resident_tables=resident_tables
        )
        self.prepare_cycles = 0
        self._prepared = False
        self._table_sram = {}

    # -- one-time setup (accelerator-ROM equivalent) -------------------------

    def prepare(self) -> int:
        """Upload twiddle tables (resident) or pre-stage them in SRAM."""
        if self._prepared:
            return self.prepare_cycles
        plan = self.plan
        cycles = 0
        for t in plan.vector_stages:
            words = stage_table_lines(self.params, plan.n, t)
            if plan.resident_tables:
                base = plan.table_line_of_stage(t) * self.params.line_words
                cycles += self.runner.stage_in(words, base)
            else:
                sram_base = self.runner.sram_alloc(len(words))
                self.runner.soc.sram.poke_words(sram_base, words)
                self._table_sram[t] = (sram_base, len(words))
        self.prepare_cycles = cycles
        self._prepared = True
        return cycles

    # -- execution --------------------------------------------------------------

    def run(self, re, im, collect: bool = True) -> FftRun:
        """Execute one transform.

        With ``collect=False`` the spectrum stays in the SPM (the paper's
        application-level locality: "the FFT ... keeps the results inside
        the SPM", Sec. 5.2.3) and ``FftRun.re/im`` are peeked for callers.
        """
        plan = self.plan
        if len(re) != plan.n or len(im) != plan.n:
            raise ConfigurationError(
                f"expected {plan.n} complex points, got {len(re)}"
            )
        self.prepare()
        params = self.params
        order = bit_reverse_indices(plan.n)
        run = KernelRun(name=f"cfft_{plan.n}")
        run.dma_in_cycles += self.runner.stage_in(
            [int(v) for v in re], plan.xr_line * params.line_words,
            order=order,
        )
        run.dma_in_cycles += self.runner.stage_in(
            [int(v) for v in im], plan.xi_line * params.line_words,
            order=order,
        )

        n_cols = min(params.n_columns, max(plan.batches, 1))
        for t in range(plan.stages):
            vector = plan.is_vector_stage(t)
            if vector and not plan.resident_tables:
                sram_base, n_words = self._table_sram[t]
                run.dma_in_cycles += self._stream_table(sram_base, n_words)
            src_r, src_i, dst_r, dst_i = plan.buffers_for_stage(t)
            w_base = plan.table_line_of_stage(t) if vector else None
            # Each launch: one batch per column.
            launches = -(-plan.batches // n_cols) if plan.batches else 1
            for launch in range(max(launches, 1)):
                per_column = {}
                for col in range(n_cols):
                    q = launch * n_cols + col
                    if q >= max(plan.batches, 1):
                        continue
                    per_column[col] = BatchAddresses(
                        xr_pair=src_r + 2 * q,
                        xi_pair=src_i + 2 * q,
                        w=(w_base + 2 * q) if vector else None,
                        imm_twiddles=(
                            None if vector else plan.imm_twiddles_for(t, q)
                        ),
                        yr_lo=dst_r + q,
                        yr_hi=dst_r + plan.batches + q,
                        yi_lo=dst_i + q,
                        yi_hi=dst_i + plan.batches + q,
                        scratch=plan.scratch_line_of(col),
                    )
                config = build_batch_kernel(
                    params, per_column,
                    name=f"cfft{plan.n}_s{t}_l{launch}",
                )
                result = self.runner.execute(config)
                run.config_cycles += result.config_cycles
                run.compute_cycles += result.cycles
        res_r, res_i = plan.result_lines
        if collect:
            out_r, c1 = self.runner.stage_out(
                res_r * params.line_words, plan.n
            )
            out_i, c2 = self.runner.stage_out(
                res_i * params.line_words, plan.n
            )
            run.dma_out_cycles = c1 + c2
        else:
            spm = self.runner.soc.vwr2a.spm
            out_r = spm.peek_words(res_r * params.line_words, plan.n)
            out_i = spm.peek_words(res_i * params.line_words, plan.n)
        return FftRun(re=out_r, im=out_i, run=run,
                      prepare_cycles=self.prepare_cycles)

    def _stream_table(self, sram_base: int, n_words: int) -> int:
        cycles = self.runner.soc.dma_to_vwr2a(
            sram_base,
            self.plan.table_line * self.params.line_words,
            n_words,
        )
        return cycles
