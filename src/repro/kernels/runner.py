"""Kernel execution orchestration on the host SoC.

Mirrors the software flow of Sec. 4.2: the CPU stages data from system
SRAM into the SPM through VWR2A's DMA (word-granular, so permutations like
the FFT's bit-reversal or the FIR's overlapped layout are free to
*arrange*), launches kernels over the slave port, sleeps until the
completion interrupt, and stages results back. The runner keeps a cycle
ledger per phase and event snapshots so benchmarks can report energy per
window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch import ArchSpec
from repro.core.errors import ConfigurationError
from repro.soc.platform import BiosignalSoC


@dataclass
class KernelRun:
    """Cycle ledger of one staged kernel execution."""

    name: str
    dma_in_cycles: int = 0
    config_cycles: int = 0
    compute_cycles: int = 0
    dma_out_cycles: int = 0
    events: dict = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return (
            self.dma_in_cycles + self.config_cycles
            + self.compute_cycles + self.dma_out_cycles
        )


@dataclass(frozen=True)
class RunnerFactory:
    """Picklable recipe for building a :class:`KernelRunner`.

    A live runner drags an entire simulated platform behind it and is not
    meant to cross process boundaries; pool workers
    (:class:`~repro.serve.PoolScheduler`) instead receive this factory
    and build their own platform instance on their side of the fork.
    ``engine`` follows the :class:`KernelRunner` constructor (``None``
    keeps the SoC default, ``"auto"``); ``spec`` selects the design point
    (``None`` keeps the paper's default :class:`~repro.arch.ArchSpec`) —
    specs are frozen dataclasses, so the factory stays picklable and two
    workers built from equal factories simulate identical platforms.
    """

    engine: str = None
    spec: ArchSpec = None

    def __call__(self) -> "KernelRunner":
        return KernelRunner(engine=self.engine, spec=self.spec)

    def reference_twin(self) -> "RunnerFactory":
        """The same design point forced onto the reference interpreter.

        The serving layer's resilience ladder retries failed windows on a
        reference-engine runner; the twin must share the spec or the
        replay would simulate a different machine.
        """
        return RunnerFactory(engine="reference", spec=self.spec)


class KernelRunner:
    """Stages data, launches kernels, and keeps the books."""

    def __init__(self, soc: BiosignalSoC = None, engine: str = None,
                 spec: ArchSpec = None) -> None:
        if soc is None:
            kwargs = {}
            if engine is not None:
                kwargs["engine"] = engine
            if spec is not None:
                kwargs["spec"] = spec
            soc = BiosignalSoC(**kwargs)
        else:
            if engine is not None and soc.vwr2a.engine != engine:
                raise ConfigurationError(
                    f"runner engine {engine!r} conflicts with the provided "
                    f"SoC's engine {soc.vwr2a.engine!r}"
                )
            if spec is not None and soc.spec != spec:
                raise ConfigurationError(
                    f"runner spec {spec.describe()} conflicts with the "
                    f"provided SoC's spec {soc.spec.describe()}"
                )
        self.soc = soc
        self.soc.with_accelerators()
        self._sram_base = 0
        self._sram_limit = self.soc.sram.n_words
        self._sram_next = 0
        #: Cumulative DMA cycles spent staging in/out through this runner;
        #: ``repro.serve`` diffs it per window for its pipelining model.
        self.staging_cycles = {"in": 0, "out": 0}
        #: When set to a list, every ``launch`` appends its RunResult —
        #: how the stream scheduler observes per-window engine decisions.
        self.launch_log = None
        #: When set to a callable, it runs right before every kernel
        #: launch with the kernel name — the injection point
        #: :class:`repro.faults.FaultInjector` uses to land SPM upsets
        #: and reassert stuck-at cells at launch boundaries.
        self.fault_hook = None

    @property
    def spec(self) -> ArchSpec:
        """The design point of the underlying platform."""
        return self.soc.spec

    # -- SRAM staging ----------------------------------------------------------

    def sram_alloc(self, n_words: int) -> int:
        """Reserve a block of system SRAM; returns its word address."""
        base = self._sram_next
        if base + n_words > self._sram_limit:
            raise ConfigurationError(
                f"SRAM overflow: need {n_words} words at {base} "
                f"(staging region [{self._sram_base}, {self._sram_limit}))"
            )
        self._sram_next = base + n_words
        return base

    def set_sram_region(self, base: int, n_words: int) -> None:
        """Constrain the staging allocator to ``[base, base + n_words)``.

        The stream scheduler double-buffers windows by alternating between
        two half-SRAM regions: window *k*'s staged data (including its
        staged-out results) stays intact in its half while window *k+1*
        allocates from the other. Resets the bump pointer to ``base``.
        DMA cost is purely length-based, so a region switch changes no
        cycle or event accounting.
        """
        if n_words <= 0:
            raise ConfigurationError(
                f"SRAM staging region needs a positive size, got {n_words}"
            )
        if base < 0 or base + n_words > self.soc.sram.n_words:
            raise ConfigurationError(
                f"SRAM staging region [{base}, {base + n_words}) exceeds "
                f"the {self.soc.sram.n_words}-word SRAM"
            )
        self._sram_base = base
        self._sram_limit = base + n_words
        self._sram_next = base

    def reset_sram(self) -> None:
        """Rewind the SRAM bump allocator to its region base (word 0 by
        default).

        Staging buffers are transient per processing window; long-running
        multi-window applications (``repro.app.mbiotracker``,
        ``repro.serve``) call this between windows to reuse the staging
        area instead of overflowing. Any engine holding data resident in
        *SRAM* across windows must re-stage it afterwards (SPM-resident
        data is unaffected).
        """
        self._sram_next = self._sram_base

    def stage_in(self, values, spm_word: int, order=None) -> int:
        """Host data -> SRAM -> SPM (optionally permuted/gathered).

        ``order`` maps SPM offset -> source index within ``values``;
        the DMA gather implements it at no extra cost per word.
        Returns DMA cycles.
        """
        base = self.sram_alloc(len(values))
        self.soc.sram.poke_words(base, list(values))
        if order is None:
            cycles = self.soc.dma_to_vwr2a(base, spm_word, len(values))
        else:
            src_words = [base + index for index in order]
            cycles = self.soc.vwr2a.dma.to_spm_gather(
                self.soc.sram, src_words, spm_word
            )
            self.soc.cpu.sleep(cycles)
            self.soc.power.advance(cycles)
        self.staging_cycles["in"] += cycles
        return cycles

    def stage_out(self, spm_word: int, n_words: int, order=None):
        """SPM -> SRAM (optionally gathered); returns (values, cycles)."""
        base = self.sram_alloc(n_words)
        if order is None:
            cycles = self.soc.dma_from_vwr2a(spm_word, base, n_words)
        else:
            src_words = [spm_word + index for index in order]
            cycles = self.soc.vwr2a.dma.from_spm_gather(
                self.soc.sram, src_words, base
            )
            self.soc.cpu.sleep(cycles)
            self.soc.power.advance(cycles)
        self.staging_cycles["out"] += cycles
        return self.soc.sram.peek_words(base, n_words), cycles

    # -- kernel launch -----------------------------------------------------------

    def store(self, config) -> None:
        """Store a kernel configuration (structurally cached).

        Encoding and hazard checks are memoized on the bundle sequence in
        the configuration memory, and a byte-identical re-store (the
        historical double-store flow of ``store`` + ``Vwr2a.execute``) is
        deduplicated outright — see ``soc.vwr2a.config_mem.stats``.
        """
        self.soc.vwr2a.store_kernel(config)

    def launch(self, name: str, max_cycles: int = None):
        """Run a stored kernel; returns the simulator's RunResult.

        Configuration cycles are charged exactly once per launch (by
        ``Vwr2a.run``'s single install), however many times the kernel
        was stored beforehand; ``RunResult.engine`` records whether the
        launch ran compiled or fell back to the reference interpreter.
        """
        if self.fault_hook is not None:
            self.fault_hook(name)
        result = self.soc.run_vwr2a_kernel(name, max_cycles=max_cycles)
        if self.launch_log is not None:
            self.launch_log.append(result)
        return result

    def execute(self, config, max_cycles: int = None):
        self.store(config)
        return self.launch(config.name, max_cycles=max_cycles)

    def warm(self, pipeline, samples) -> None:
        """Run one throwaway window to pre-warm the per-platform caches.

        Populates the configuration-store cache (encode + hazard memos),
        the compile memo and the SPM-conflict verdicts this runner's
        platform will hit in steady state, then rewinds the staging
        allocator. Per-window results are history-independent (the
        serving layer's core determinism property), so warming changes
        nothing about subsequently served windows; pool workers use this
        hook to take the cold-cache cost before their first real window.
        The launch log is suspended so the warm-up leaves no trace in
        per-window reports.
        """
        log = self.launch_log
        self.launch_log = None
        try:
            pipeline(self, samples)
        finally:
            self.launch_log = log
            self.reset_sram()

    def events_snapshot(self) -> dict:
        return self.soc.events.snapshot()

    def events_since(self, snapshot: dict) -> dict:
        return self.soc.events.diff(snapshot)
