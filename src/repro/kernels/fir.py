"""The FIR filter kernel (Sec. 4.4.1, Table 4).

Mapping strategy
----------------
A FIR is a stencil: output ``y[o]`` needs inputs ``x[o-T+1 .. o]``. Each RC
only reaches its own 32-word slice (Sec. 3.3.2), so the input is staged
into the SPM in an **overlapped layout**: every slice carries a
``T-1``-word halo before its 32 - (T-1) output positions. The overlap is
arranged for free by the word-granular DMA gather during stage-in
("careful data placement"), and the sparse outputs are compacted by the
DMA gather on the way out.

Inside a slice, each output is a ``T``-tap multiply-accumulate chain: the
MXCU walks the window (``k = o, o-1, ..., o-T+1``) while the RC alternates
``R1 = x[k] * h_j`` (tap coefficients are configuration-word immediates in
q15) and ``R0 += R1`` — two cycles per tap on the single-issue RC ALU.
"Our mapping uses two columns of the reconfigurable array that work on
different slices of the input array" (Sec. 4.4.1): the line range is split
across the columns, with per-column loop bounds in the SRF.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch import ArchParams
from repro.core.errors import ConfigurationError
from repro.isa.fields import DST_R0, DST_R1, DST_VWR_C, R0, R1, VWR_A, Vwr, imm
from repro.isa.lcu import addi, blt, seti
from repro.isa.lsu import ld_vwr, st_vwr
from repro.isa.mxcu import MXCU_NOP, inck, setk
from repro.isa.program import KernelConfig
from repro.isa.rc import RCOp, rc
from repro.kernels.macro import ColumnKernelBuilder
from repro.kernels.runner import KernelRun, KernelRunner
from repro.utils.fixed_point import wrap32

SRF_X_ADDR = 0
SRF_Y_ADDR = 1
SRF_N_LINES = 2


@dataclass(frozen=True)
class FirLayout:
    """Overlapped SPM layout of one FIR invocation."""

    n_samples: int
    n_taps: int
    outputs_per_slice: int
    n_slices: int
    n_lines: int

    @property
    def halo(self) -> int:
        return self.n_taps - 1

    def gather_in_order(self, params: ArchParams) -> list:
        """SPM offset -> index into the zero-padded host input.

        The padded input is ``[0]*halo + x + [0]*tail``; slice ``g``
        position ``j`` holds padded[outputs_per_slice*g + j].
        """
        slice_words = params.slice_words
        order = []
        for line in range(self.n_lines):
            for s in range(params.rcs_per_column):
                g = line * params.rcs_per_column + s
                for j in range(slice_words):
                    order.append(self.outputs_per_slice * g + j)
        return order

    def gather_out_order(self, params: ArchParams) -> list:
        """Output index -> SPM offset of the (sparse) result word."""
        slice_words = params.slice_words
        order = []
        for i in range(self.n_samples):
            g, j = divmod(i, self.outputs_per_slice)
            line, s = divmod(g, params.rcs_per_column)
            order.append(
                line * params.line_words + s * slice_words + self.halo + j
            )
        return order

    def padded_input_words(self, params: ArchParams) -> int:
        return self.n_lines * params.line_words


def plan_fir(params: ArchParams, n_samples: int, n_taps: int) -> FirLayout:
    slice_words = params.slice_words
    outputs_per_slice = slice_words - (n_taps - 1)
    if outputs_per_slice <= 0:
        raise ConfigurationError(
            f"{n_taps} taps exceed the {slice_words}-word slice"
        )
    if outputs_per_slice % 2 != 0:
        # The two-bundle loop body needs an even output count; drop one
        # output per slice (slightly more halo) to keep it even.
        outputs_per_slice -= 1
    n_slices = -(-n_samples // outputs_per_slice)
    n_lines = -(-n_slices // params.rcs_per_column)
    return FirLayout(
        n_samples=n_samples,
        n_taps=n_taps,
        outputs_per_slice=outputs_per_slice,
        n_slices=n_slices,
        n_lines=n_lines,
    )


def _column_program(params, taps, x_line, y_line, n_lines):
    halo = len(taps) - 1
    kb = ColumnKernelBuilder(params)
    kb.srf(SRF_X_ADDR, x_line)
    kb.srf(SRF_Y_ADDR, y_line)
    kb.srf(SRF_N_LINES, n_lines)
    outputs = params.slice_words - halo
    if outputs % 2 != 0:
        outputs -= 1

    with kb.counted_loop(reg=1, count=("srf", SRF_N_LINES)):
        kb.emit(lsu=ld_vwr(Vwr.A, SRF_X_ADDR, inc=1))
        label = kb.fresh_label("fir")
        # k starts one below the first output position; the first MAC
        # bundle pre-increments it.
        kb.emit(lcu=seti(0, 0), mxcu=setk(halo - 1))
        kb.b.label(label)
        # Tap 0 seeds the accumulator at the output position.
        kb.emit(
            rcs=[rc(RCOp.FXPMUL, DST_R0, VWR_A, imm(taps[0]))]
                * params.rcs_per_column,
            mxcu=inck(1),
            lcu=addi(0, 1),
        )
        # Taps 1..T-1: multiply at k-j, then accumulate.
        for j in range(1, len(taps)):
            kb.emit(
                rcs=[rc(RCOp.FXPMUL, DST_R1, VWR_A, imm(taps[j]))]
                    * params.rcs_per_column,
                mxcu=inck(-1),
            )
            kb.emit(
                rcs=[rc(RCOp.SADD, DST_R0, R0, R1)] * params.rcs_per_column,
                mxcu=MXCU_NOP,
            )
        # Write-back at the output position; loop over the slice outputs.
        kb.emit(
            rcs=[rc(RCOp.MOV, DST_VWR_C, R0)] * params.rcs_per_column,
            mxcu=inck(halo),
            lcu=blt(0, outputs, label),
        )
        kb.emit(lsu=st_vwr(Vwr.C, SRF_Y_ADDR, inc=1))
    kb.exit()
    return kb.build()


def build_fir_kernel(
    params: ArchParams,
    taps,
    layout: FirLayout,
    x_line: int,
    y_line: int,
    name: str = None,
) -> KernelConfig:
    """Build the two-column FIR kernel over a staged layout."""
    if len(taps) != layout.n_taps:
        raise ConfigurationError("taps do not match the layout")
    base = layout.n_lines // params.n_columns
    extra = layout.n_lines % params.n_columns
    columns = {}
    start = 0
    for col in range(params.n_columns):
        count = base + (1 if col < extra else 0)
        if count:
            columns[col] = _column_program(
                params, list(taps), x_line + start, y_line + start, count
            )
        start += count
    return KernelConfig(
        name=name or f"fir_{layout.n_samples}_{layout.n_taps}",
        columns=columns,
    )


@dataclass
class FirRun:
    """Result + cycle ledger of a staged FIR execution."""

    samples: list
    run: KernelRun


def run_fir(runner: KernelRunner, taps, samples, spm_x_line: int = 0,
            spm_y_line: int = None) -> FirRun:
    """Stage, execute and collect an 11-tap-style FIR on the SoC."""
    params = runner.soc.params
    layout = plan_fir(params, len(samples), len(taps))
    if spm_y_line is None:
        spm_y_line = spm_x_line + layout.n_lines
    if spm_y_line + layout.n_lines > params.spm_lines:
        raise ConfigurationError("FIR layout exceeds the SPM")

    padded = [0] * layout.halo + [int(s) for s in samples]
    padded += [0] * (
        layout.outputs_per_slice * layout.n_slices - len(samples)
        + layout.halo
    )
    order_in = layout.gather_in_order(params)
    # Clamp halo reads past the padded tail (last slice) to the zero pad.
    order_in = [min(i, len(padded) - 1) for i in order_in]

    run = KernelRun(name=f"fir_{len(samples)}_{len(taps)}")
    run.dma_in_cycles = runner.stage_in(
        padded, spm_x_line * params.line_words, order=order_in
    )
    config = build_fir_kernel(params, taps, layout, spm_x_line, spm_y_line)
    result = runner.execute(config)
    run.config_cycles = result.config_cycles
    run.compute_cycles = result.cycles
    values, run.dma_out_cycles = runner.stage_out(
        spm_y_line * params.line_words,
        len(samples),
        order=layout.gather_out_order(params),
    )
    return FirRun(samples=values, run=run)


def fir_fx_reference(samples, taps) -> list:
    """Golden model of the VWR2A FIR arithmetic: per-product 16.15
    truncation, wrap-around accumulation (matches the kernel bit-for-bit).
    """
    halo = len(taps) - 1
    padded = [0] * halo + [int(s) for s in samples]
    out = []
    for o in range(len(samples)):
        acc = 0
        base = o + halo
        for j, h in enumerate(taps):
            acc = wrap32(acc + wrap32((padded[base - j] * h) >> 15))
        out.append(acc)
    return out
