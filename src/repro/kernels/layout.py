"""SPM data-layout management for kernel generators.

Kernels see the SPM as named line-granular regions ("careful data
placement", Sec. 3.3.2, is half of every VWR2A mapping). The allocator
hands out line-aligned regions and remembers them by name, so generators,
the runner (DMA staging) and tests all agree on addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch import ArchParams
from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class Region:
    """A named line-aligned SPM region."""

    name: str
    line: int          #: first SPM line
    n_lines: int
    line_words: int

    @property
    def word(self) -> int:
        """First word address (narrow-side view)."""
        return self.line * self.line_words

    @property
    def n_words(self) -> int:
        return self.n_lines * self.line_words

    def line_at(self, offset: int) -> int:
        """Absolute line address of line ``offset`` within the region."""
        if not 0 <= offset < self.n_lines:
            raise ConfigurationError(
                f"region {self.name!r}: line offset {offset} out of range "
                f"[0, {self.n_lines})"
            )
        return self.line + offset


class SpmAllocator:
    """Bump allocator of line-aligned SPM regions."""

    def __init__(self, params: ArchParams) -> None:
        self.params = params
        self._next_line = 0
        self._regions = {}

    def alloc(self, name: str, n_words: int) -> Region:
        """Allocate ``n_words`` rounded up to whole lines."""
        if name in self._regions:
            raise ConfigurationError(f"region {name!r} already allocated")
        line_words = self.params.line_words
        n_lines = -(-max(n_words, 1) // line_words)
        if self._next_line + n_lines > self.params.spm_lines:
            raise ConfigurationError(
                f"SPM overflow allocating {name!r}: need {n_lines} lines, "
                f"only {self.params.spm_lines - self._next_line} of "
                f"{self.params.spm_lines} remain"
            )
        region = Region(
            name=name,
            line=self._next_line,
            n_lines=n_lines,
            line_words=line_words,
        )
        self._next_line += n_lines
        self._regions[name] = region
        return region

    def alloc_lines(self, name: str, n_lines: int) -> Region:
        return self.alloc(name, n_lines * self.params.line_words)

    def get(self, name: str) -> Region:
        if name not in self._regions:
            raise ConfigurationError(
                f"unknown SPM region {name!r} (known: "
                f"{sorted(self._regions)})"
            )
        return self._regions[name]

    @property
    def used_lines(self) -> int:
        return self._next_line

    @property
    def free_lines(self) -> int:
        return self.params.spm_lines - self._next_line

    def regions(self) -> dict:
        return dict(self._regions)
