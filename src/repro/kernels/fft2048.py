"""2048-point complex FFT via split transforms (Table 2, largest size).

A 2048-point ping-pong CG-FFT needs 4 x 2048 words of data buffer alone —
the whole 32 KiB SPM — so the transform is decomposed (classic
Cooley-Tukey radix-2 DIT split)::

    E = FFT_1024(x[0::2])        O = FFT_1024(x[1::2])
    X[k]        = E[k] + W_2048^k * O[k]
    X[k + 1024] = E[k] - W_2048^k * O[k]

The two half-size transforms run back-to-back on the array (E staged out
to system SRAM while O computes, then staged back); the combine pass is a
batch kernel with the same fused-butterfly structure as an FFT stage,
writing X in place over E and O. The extra DMA staging is the price of
the SPM capacity and is included in the reported cycles (DESIGN.md
records this substitution).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch import ArchParams
from repro.core.errors import ConfigurationError
from repro.isa.fields import DST_VWR_B, DST_VWR_C, VWR_A, VWR_B, Vwr
from repro.isa.lsu import ld_vwr, st_vwr
from repro.isa.mxcu import MXCU_NOP, inck
from repro.isa.program import KernelConfig
from repro.isa.rc import RCOp, rc
from repro.kernels.fft import (
    FftEngine,
    _ScratchChain,
    cg_fft_reference_int,
    stage_table_lines,
)
from repro.kernels.macro import ColumnKernelBuilder
from repro.kernels.runner import KernelRun, KernelRunner
from repro.utils.bits import clog2
from repro.utils.fixed_point import wrap32

SRF_ER = 0
SRF_EI = 1
SRF_OR = 2
SRF_OI = 3
SRF_W = 4
SRF_SCRATCH = 7


def split_fft_reference_int(re, im):
    """Bit-exact golden model of the split 2048-point flow."""
    n = len(re)
    half = n // 2
    er, ei = cg_fft_reference_int(re[0::2], im[0::2])
    orr, oi = cg_fft_reference_int(re[1::2], im[1::2])
    from repro.kernels.fft import master_twiddles

    mre, mim = master_twiddles(n)
    xr = [0] * n
    xi = [0] * n
    for k in range(half):
        p1 = wrap32((orr[k] * mre[k]) >> 15)
        p2 = wrap32((oi[k] * mim[k]) >> 15)
        p3 = wrap32((orr[k] * mim[k]) >> 15)
        p4 = wrap32((oi[k] * mre[k]) >> 15)
        wbr = wrap32(p1 - p2)
        wbi = wrap32(p3 + p4)
        xr[k] = wrap32(er[k] + wbr)
        xi[k] = wrap32(ei[k] + wbi)
        xr[k + half] = wrap32(er[k] - wbr)
        xi[k + half] = wrap32(ei[k] - wbi)
    return xr, xi


@dataclass(frozen=True)
class CombineAddresses:
    er: int
    ei: int
    o_r: int
    o_i: int
    w: int
    scratch: int


def _combine_column_program(params: ArchParams, addr: CombineAddresses):
    """X[k] / X[k+half] butterflies, in place over the E and O lines."""
    kb = ColumnKernelBuilder(params)
    kb.srf(SRF_ER, addr.er)
    kb.srf(SRF_EI, addr.ei)
    kb.srf(SRF_OR, addr.o_r)
    kb.srf(SRF_OI, addr.o_i)
    kb.srf(SRF_W, addr.w)
    chain = _ScratchChain(addr.scratch)
    ops = []

    def s_st(offset: int):
        ops.append(("sst", chain.touch(offset)))

    def s_ld(offset: int, vwr: Vwr):
        ops.append(("sld", chain.touch(offset), vwr))

    ops.append(("ld", Vwr.A, SRF_OR, 0))
    ops.append(("ld", Vwr.B, SRF_W, 1))       # B = Wre
    ops.append(("mul",))
    s_st(0)                                   # s0 = P1 = Or*Wr
    ops.append(("ld", Vwr.A, SRF_OI, 0))
    ops.append(("mul",))
    s_st(1)                                   # s1 = P4 = Oi*Wr
    ops.append(("ld", Vwr.A, SRF_OR, 0))
    ops.append(("ld", Vwr.B, SRF_W, 1))       # B = Wim
    ops.append(("mul",))
    s_st(2)                                   # s2 = P3 = Or*Wi
    ops.append(("ld", Vwr.A, SRF_OI, 0))
    ops.append(("mul",))
    s_st(3)                                   # s3 = P2 = Oi*Wi
    s_ld(0, Vwr.A)
    s_ld(3, Vwr.B)
    ops.append(("sub",))
    s_st(0)                                   # s0 = wbr
    s_ld(2, Vwr.A)
    s_ld(1, Vwr.B)
    ops.append(("add",))
    s_st(1)                                   # s1 = wbi
    ops.append(("ld", Vwr.A, SRF_ER, 0))
    s_ld(0, Vwr.B)
    ops.append(("fused",))
    ops.append(("st", Vwr.C, SRF_ER, 1))      # X[k] re over E
    ops.append(("st", Vwr.B, SRF_OR, 1))      # X[k+half] re over O
    ops.append(("ld", Vwr.A, SRF_EI, 0))
    s_ld(1, Vwr.B)
    ops.append(("fused",))
    ops.append(("st", Vwr.C, SRF_EI, 1))
    ops.append(("st", Vwr.B, SRF_OI, 1))

    incs = chain.increments()
    kb.srf(SRF_SCRATCH, addr.scratch + chain.offsets[0])
    for op in ops:
        kind = op[0]
        if kind == "ld":
            kb.emit(lsu=ld_vwr(op[1], op[2], inc=op[3]))
        elif kind == "st":
            kb.emit(lsu=st_vwr(op[1], op[2], inc=op[3]))
        elif kind == "sld":
            kb.emit(lsu=ld_vwr(op[2], SRF_SCRATCH, inc=incs[op[1]]))
        elif kind == "sst":
            kb.emit(lsu=st_vwr(Vwr.C, SRF_SCRATCH, inc=incs[op[1]]))
        elif kind == "mul":
            kb.vector_pass(rc(RCOp.FXPMUL, DST_VWR_C, VWR_A, VWR_B))
        elif kind == "sub":
            kb.vector_pass(rc(RCOp.SSUB, DST_VWR_C, VWR_A, VWR_B))
        elif kind == "add":
            kb.vector_pass(rc(RCOp.SADD, DST_VWR_C, VWR_A, VWR_B))
        elif kind == "fused":
            kb.multi_pass([
                (rc(RCOp.SADD, DST_VWR_C, VWR_A, VWR_B), inck(1)),
                (rc(RCOp.SSUB, DST_VWR_B, VWR_A, VWR_B), MXCU_NOP),
            ])
    kb.exit()
    return kb.build()


@dataclass
class SplitFftRun:
    re: list
    im: list
    run: KernelRun
    prepare_cycles: int = 0


class SplitFftEngine:
    """2048-point complex FFT as two 1024-point transforms + combine."""

    def __init__(self, runner: KernelRunner, n: int = 2048) -> None:
        params = runner.soc.params
        if n != 16 * params.line_words:
            raise ConfigurationError(
                f"the split engine handles N = {16 * params.line_words}, "
                f"got {n}"
            )
        self.runner = runner
        self.params = params
        self.n = n
        self.half = n // 2
        self.sub = FftEngine(runner, self.half)
        line_words = params.line_words
        self.half_lines = self.half // line_words      # 8
        # Combine layout reuses the sub-FFT buffers: O stays where the
        # second transform finished; E returns into the dead ping-pong
        # buffer; W streams into the table region.
        plan = self.sub.plan
        self.or_line, self.oi_line = plan.result_lines
        if (self.or_line, self.oi_line) == (plan.xr_line, plan.xi_line):
            self.er_line, self.ei_line = plan.yr_line, plan.yi_line
        else:
            self.er_line, self.ei_line = plan.xr_line, plan.xi_line
        self.w_line = plan.table_line
        self.w_lines = 2 * params.n_columns
        self.scratch_line = plan.scratch_line
        if max(self.w_line + self.w_lines,
               self.scratch_line + 6 * params.n_columns) \
                > params.spm_lines:
            raise ConfigurationError("combine layout exceeds the SPM")
        self._w_sram = None
        self.prepare_cycles = 0
        self._prepared = False

    def prepare(self) -> int:
        if self._prepared:
            return self.prepare_cycles
        cycles = self.sub.prepare()
        words = stage_table_lines(self.params, self.n, clog2(self.n) - 1)
        self._w_sram = self.runner.sram_alloc(len(words))
        self.runner.soc.sram.poke_words(self._w_sram, words)
        self.prepare_cycles = cycles
        self._prepared = True
        return cycles

    def run(self, re, im) -> SplitFftRun:
        if len(re) != self.n or len(im) != self.n:
            raise ConfigurationError(f"expected {self.n} complex points")
        self.prepare()
        params = self.params
        line_words = params.line_words
        # Half transforms: E staged out to SRAM while O computes.
        e_run = self.sub.run(re[0::2], im[0::2], collect=True)
        o_run = self.sub.run(re[1::2], im[1::2], collect=False)
        run = KernelRun(name=f"cfft_split_{self.n}")
        for sub_run in (e_run.run, o_run.run):
            run.dma_in_cycles += sub_run.dma_in_cycles
            run.config_cycles += sub_run.config_cycles
            run.compute_cycles += sub_run.compute_cycles
            run.dma_out_cycles += sub_run.dma_out_cycles

        # O is already in place (the second transform's result buffer);
        # bring E back from SRAM into the dead ping-pong buffer.
        run.dma_in_cycles += self.runner.stage_in(
            e_run.re, self.er_line * line_words
        )
        run.dma_in_cycles += self.runner.stage_in(
            e_run.im, self.ei_line * line_words
        )

        n_cols = params.n_columns
        launches = -(-self.half_lines // n_cols)
        w_words_per_launch = self.w_lines * line_words
        for launch in range(launches):
            lo = launch * w_words_per_launch
            run.dma_in_cycles += self.runner.soc.dma_to_vwr2a(
                self._w_sram + lo,
                self.w_line * line_words,
                w_words_per_launch,
            )
            per_col = {}
            for col in range(n_cols):
                q = launch * n_cols + col
                if q >= self.half_lines:
                    continue
                per_col[col] = CombineAddresses(
                    er=self.er_line + q,
                    ei=self.ei_line + q,
                    o_r=self.or_line + q,
                    o_i=self.oi_line + q,
                    w=self.w_line + 2 * col,
                    scratch=self.scratch_line + 6 * col,
                )
            config = KernelConfig(
                name=f"cfft{self.n}_comb_l{launch}",
                columns={
                    col: _combine_column_program(params, addr)
                    for col, addr in per_col.items()
                },
            )
            result = self.runner.execute(config)
            run.config_cycles += result.config_cycles
            run.compute_cycles += result.cycles

        out_re, c1 = self.runner.stage_out(
            self.er_line * line_words, self.half
        )
        out_re2, c2 = self.runner.stage_out(
            self.or_line * line_words, self.half
        )
        out_im, c3 = self.runner.stage_out(
            self.ei_line * line_words, self.half
        )
        out_im2, c4 = self.runner.stage_out(
            self.oi_line * line_words, self.half
        )
        run.dma_out_cycles += c1 + c2 + c3 + c4
        return SplitFftRun(
            re=list(out_re) + list(out_re2),
            im=list(out_im) + list(out_im2),
            run=run,
            prepare_cycles=self.prepare_cycles,
        )
