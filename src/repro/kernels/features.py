"""Feature-extraction and SVM kernels (MBioTracker steps 3-4, Table 5).

VWR2A executes the array work: breath-interval extraction (pairwise
differences of the delineation outputs), sum / sum-of-squares
accumulations for the mean and RMS features, the respiration-band power
over the resident FFT spectrum (Sec. 5.2.3 locality: the spectrum never
leaves the SPM), and the SVM decision-function MACs. All use a common
scalar-loop idiom on the specialized slots: the LSU streams operands
(LD.SRF), RC0 accumulates, the LCU drives the loop.

The tiny scalar epilogues over ~10-element arrays — the divides of the
means, the integer square root of the RMS, and the median selection — run
on the host CPU as part of its high-level control (charged with the
calibrated CMSIS cost model; < 2% of the step's cycles). DESIGN.md
records this boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.fields import DST_R0, R0, R1, DST_R1, dst_srf, imm, srf
from repro.isa.lcu import addi, blt, seti
from repro.isa.lsu import ld_srf, st_srf
from repro.isa.program import ColumnProgram, KernelConfig
from repro.isa.rc import RCOp, rc
from repro.kernels.macro import ColumnKernelBuilder
from repro.kernels.runner import KernelRun, KernelRunner

SRF_A_ADDR = 0
SRF_B_ADDR = 1
SRF_OUT_ADDR = 2
SRF_VA = 3
SRF_VB = 4
SRF_ACC = 5


def _diff_column(params, a_word, b_word, out_word, count) -> ColumnProgram:
    """out[j] = a[j] - b[j], scalar (intervals from extrema positions)."""
    kb = ColumnKernelBuilder(params)
    kb.srf(SRF_A_ADDR, a_word)
    kb.srf(SRF_B_ADDR, b_word)
    kb.srf(SRF_OUT_ADDR, out_word)
    if count > 0:
        label = kb.fresh_label("diff")
        kb.emit(lcu=seti(0, 0))
        kb.b.label(label)
        kb.emit(lsu=ld_srf(SRF_VA, SRF_A_ADDR, inc=1), lcu=addi(0, 1))
        kb.emit(lsu=ld_srf(SRF_VB, SRF_B_ADDR, inc=1))
        kb.emit(rcs={0: rc(RCOp.MOV, DST_R0, srf(SRF_VA))})
        kb.emit(rcs={0: rc(RCOp.MOV, DST_R1, srf(SRF_VB))})
        kb.emit(rcs={0: rc(RCOp.SSUB, dst_srf(SRF_VA), R0, R1)})
        kb.emit(lsu=st_srf(SRF_VA, SRF_OUT_ADDR, inc=1),
                lcu=blt(0, count, label))
    kb.exit()
    return kb.build()


def _accumulate_column(
    params, a_word, count, out_word, squares: bool, b_word=None
) -> ColumnProgram:
    """Sum of a[j] (or a[j]^2, or a[j]*b[j]) into the SPM word ``out``.

    ``squares=True`` accumulates squares (RMS numerator); ``b_word`` makes
    it a dot product (band power with b = a, SVM with b = weights).
    """
    kb = ColumnKernelBuilder(params)
    kb.srf(SRF_A_ADDR, a_word)
    if b_word is not None:
        kb.srf(SRF_B_ADDR, b_word)
    kb.srf(SRF_OUT_ADDR, out_word)
    kb.emit(rcs={0: rc(RCOp.MOV, DST_R1, imm(0))})
    if count > 0:
        label = kb.fresh_label("acc")
        kb.emit(lcu=seti(0, 0))
        kb.b.label(label)
        kb.emit(lsu=ld_srf(SRF_VA, SRF_A_ADDR, inc=1), lcu=addi(0, 1))
        if b_word is not None:
            kb.emit(lsu=ld_srf(SRF_VB, SRF_B_ADDR, inc=1))
            kb.emit(rcs={0: rc(RCOp.MOV, DST_R0, srf(SRF_VA))})
            kb.emit(rcs={0: rc(RCOp.SMUL, DST_R0, R0, srf(SRF_VB))})
        elif squares:
            kb.emit(rcs={0: rc(RCOp.MOV, DST_R0, srf(SRF_VA))})
            kb.emit(rcs={0: rc(RCOp.SMUL, DST_R0, R0, R0)})
        else:
            kb.emit(rcs={0: rc(RCOp.MOV, DST_R0, srf(SRF_VA))})
        kb.emit(rcs={0: rc(RCOp.SADD, DST_R1, R1, R0)},
                lcu=blt(0, count, label))
    kb.emit(rcs={0: rc(RCOp.MOV, dst_srf(SRF_ACC), R1)})
    kb.emit(lsu=st_srf(SRF_ACC, SRF_OUT_ADDR))
    kb.exit()
    return kb.build()


@dataclass
class ScalarResult:
    value: int
    run: KernelRun


def run_intervals(runner: KernelRunner, insp_spec, exp_spec) -> KernelRun:
    """Two interval streams (inspiration on col0, expiration on col1).

    Each spec is ``(a_word, b_word, out_word, count)`` computing
    ``out[j] = spm[a + j] - spm[b + j]``.
    """
    params = runner.soc.params
    (a0, b0, o0, c0), (a1, b1, o1, c1) = insp_spec, exp_spec
    insp_program = _diff_column(params, a0, b0, o0, c0)
    exp_program = _diff_column(params, a1, b1, o1, c1)
    if params.n_columns >= 2:
        configs = [KernelConfig(
            name="intervals",
            columns={0: insp_program, 1: exp_program},
        )]
    else:
        # Single-column geometry: the two streams launch back to back.
        configs = [
            KernelConfig(name="intervals_insp", columns={0: insp_program}),
            KernelConfig(name="intervals_exp", columns={0: exp_program}),
        ]
    run = KernelRun(name="intervals")
    for config in configs:
        result = runner.execute(
            config, max_cycles=100 * max(c0, c1, 1) + 500
        )
        run.config_cycles += result.config_cycles
        run.compute_cycles += result.cycles
    return run


def run_accumulate(
    runner: KernelRunner,
    a_word: int,
    count: int,
    out_word: int,
    squares: bool = False,
    b_word=None,
) -> ScalarResult:
    """Run one accumulation kernel and read the scalar result back."""
    params = runner.soc.params
    config = KernelConfig(
        name=f"acc_{a_word}_{count}_{int(squares)}",
        columns={0: _accumulate_column(
            params, a_word, count, out_word, squares, b_word
        )},
    )
    run = KernelRun(name=config.name)
    result = runner.execute(config, max_cycles=40 * max(count, 1) + 500)
    run.config_cycles = result.config_cycles
    run.compute_cycles = result.cycles
    value = runner.soc.vwr2a.spm.peek_words(out_word, 1)[0]
    # CPU reads the scalar over the bus.
    cpu = runner.soc.bus.single_cycles()
    runner.soc.run_cpu(cpu)
    run.dma_out_cycles = cpu
    return ScalarResult(value=value, run=run)
