"""Kernel-mapping idioms shared by all VWR2A kernel generators.

The central pattern is the paper's Table 1 loop: a two-bundle body where
every bundle carries RC work, the LCU slot carries the counter update and
the backward branch, and the MXCU slot advances the shared VWR word index —
one processed element per RC per cycle, with zero loop overhead.
"""

from __future__ import annotations

import itertools

from repro.arch import ArchParams
from repro.asm.builder import ProgramBuilder
from repro.core.errors import ProgramError
from repro.isa.lcu import LCU_NOP, addi, blt, seti
from repro.isa.lsu import LSU_NOP, set_srf
from repro.isa.mxcu import inck, setk
from repro.isa.rc import RCInstr


class ColumnKernelBuilder:
    """A :class:`ProgramBuilder` with VWR2A-specific loop idioms."""

    _label_counter = itertools.count()

    def __init__(self, params: ArchParams) -> None:
        self.params = params
        self.b = ProgramBuilder(n_rcs=params.rcs_per_column)

    # -- plumbing -------------------------------------------------------------

    def fresh_label(self, hint: str = "L") -> str:
        return f"{hint}_{next(self._label_counter)}"

    def emit(self, **kwargs) -> int:
        return self.b.emit(**kwargs)

    def srf(self, entry: int, value: int) -> None:
        self.b.srf(entry, value)

    def set_addr(self, entry: int, value: int, **kwargs) -> int:
        """Emit a bundle whose LSU slot programs an SRF address register."""
        return self.b.emit(lsu=set_srf(entry, value), **kwargs)

    def exit(self) -> int:
        return self.b.exit()

    def build(self):
        return self.b.build()

    def _rc_slots(self, rcs):
        """Broadcast a single RCInstr to all cells, or pass a list through."""
        if isinstance(rcs, RCInstr):
            return [rcs] * self.params.rcs_per_column
        return rcs

    # -- the Table-1 loop idioms ------------------------------------------------

    def vector_pass(
        self,
        rcs,
        positions: int = None,
        reg: int = 0,
        setup_lsu=LSU_NOP,
        setup_lcu=None,
    ) -> None:
        """Elementwise pass: one VWR word position per cycle.

        Executes ``rcs`` (an :class:`RCInstr` or a per-cell list) at word
        positions 0 .. positions-1 (default: the full slice). ``positions``
        must be even so the two-bundle body divides it exactly. The setup
        bundle's free LSU slot can carry a load/store via ``setup_lsu``.
        """
        slice_words = self.params.slice_words
        if positions is None:
            positions = slice_words
        if positions % 2 != 0 or positions <= 0:
            raise ProgramError(
                "vector_pass needs a positive even position count, "
                f"got {positions}"
            )
        slots = self._rc_slots(rcs)
        label = self.fresh_label("vp")
        # k starts at slice_words-1 so the body's first increment wraps to 0.
        self.b.emit(
            lcu=setup_lcu if setup_lcu is not None else seti(reg, 0),
            mxcu=setk(slice_words - 1),
            lsu=setup_lsu,
        )
        self.b.label(label)
        self.b.emit(rcs=slots, mxcu=inck(1), lcu=addi(reg, 1))
        self.b.emit(rcs=slots, mxcu=inck(1), lcu=blt(reg, positions // 2, label))

    def multi_pass(
        self,
        body,
        positions: int = None,
        reg: int = 0,
        setup_lsu=LSU_NOP,
    ) -> None:
        """Pass with an m-bundle body per word position.

        ``body`` is a list of ``(rcs, mxcu_instr)`` pairs executed in order
        for each position; exactly one of the ``mxcu_instr`` entries should
        advance the index (typically ``inck(1)`` on the first bundle). The
        LCU counter/branch ride on the first/last body bundles.
        """
        slice_words = self.params.slice_words
        if positions is None:
            positions = slice_words
        if positions <= 0:
            raise ProgramError(f"need positive position count, got {positions}")
        if len(body) < 2:
            raise ProgramError("multi_pass needs a body of >= 2 bundles")
        label = self.fresh_label("mp")
        self.b.emit(
            lcu=seti(reg, 0), mxcu=setk(slice_words - 1), lsu=setup_lsu
        )
        self.b.label(label)
        for index, (rcs, mxcu_instr) in enumerate(body):
            slots = self._rc_slots(rcs)
            if index == 0:
                lcu = addi(reg, 1)
            elif index == len(body) - 1:
                lcu = blt(reg, positions, label)
            else:
                lcu = LCU_NOP
            self.b.emit(rcs=slots, mxcu=mxcu_instr, lcu=lcu)

    def counted_loop(self, reg: int, count) -> "_CountedLoop":
        """Context manager for an outer loop (batches, stages).

        ``count`` is an int immediate or ``("srf", entry)`` for a bound held
        in the SRF. Emits a counter-init bundle on entry and the
        increment/branch bundle on exit; the body may freely use other
        registers and SRF entries.
        """
        return _CountedLoop(self, reg, count)


class _CountedLoop:
    def __init__(self, kb: ColumnKernelBuilder, reg: int, count) -> None:
        self.kb = kb
        self.reg = reg
        self.count = count
        self.label = kb.fresh_label("loop")

    def __enter__(self) -> "_CountedLoop":
        self.kb.b.emit(lcu=seti(self.reg, 0))
        self.kb.b.label(self.label)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.kb.b.emit(lcu=addi(self.reg, 1))
            self.kb.b.emit(lcu=blt(self.reg, self.count, self.label))
        return False
