"""Architectural parameters of VWR2A and its host SoC.

The defaults reproduce the configuration evaluated in the DAC'22 paper:
a 4x2 reconfigurable array (two columns of four RCs), three 4096-bit VWRs
per column, a shared 32 KiB SPM whose accelerator-side port matches the VWR
width, an 8-entry scalar register file per column, and 64-entry program
memories. Tests instantiate smaller variants to exercise the simulator's
scaling logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.bits import is_power_of_two


@dataclass(frozen=True)
class ArchParams:
    """Static configuration of a VWR2A instance.

    Attributes mirror Sec. 3 of the paper. ``vwr_words`` is the VWR width in
    32-bit words (4096 bits = 128 words); each RC owns a contiguous
    ``slice_words``-word slice (one quarter of the VWR). The SPM wide port
    transfers one full VWR per cycle, so the SPM line size equals the VWR
    width.
    """

    n_columns: int = 2
    rcs_per_column: int = 4
    n_vwrs: int = 3
    vwr_words: int = 128
    srf_entries: int = 8
    spm_bytes: int = 32 * 1024
    program_words: int = 64
    rc_registers: int = 2
    lcu_registers: int = 4
    word_bytes: int = 4
    clock_hz: float = 80e6

    def __post_init__(self) -> None:
        if self.n_columns < 1:
            raise ValueError("need at least one column")
        if self.rcs_per_column < 1:
            raise ValueError("need at least one RC per column")
        if self.n_vwrs < 1:
            raise ValueError("need at least one VWR")
        if self.vwr_words % self.rcs_per_column != 0:
            raise ValueError(
                f"VWR width ({self.vwr_words} words) must divide evenly "
                f"across {self.rcs_per_column} RCs"
            )
        if not is_power_of_two(self.slice_words):
            raise ValueError("RC slice width must be a power of two")
        if self.spm_bytes % self.line_bytes != 0:
            raise ValueError("SPM size must be a whole number of lines")

    @property
    def slice_words(self) -> int:
        """Words of a VWR visible to one RC (one quarter by default)."""
        return self.vwr_words // self.rcs_per_column

    @property
    def line_words(self) -> int:
        """SPM line width in words: matches the VWR width (Sec. 3.2)."""
        return self.vwr_words

    @property
    def line_bytes(self) -> int:
        return self.line_words * self.word_bytes

    @property
    def spm_lines(self) -> int:
        return self.spm_bytes // self.line_bytes

    @property
    def spm_words(self) -> int:
        return self.spm_bytes // self.word_bytes

    @property
    def vwr_bits(self) -> int:
        return self.vwr_words * self.word_bytes * 8

    @property
    def cycle_s(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.clock_hz


#: The configuration synthesized and evaluated in the paper.
DEFAULT_PARAMS = ArchParams()


@dataclass(frozen=True)
class SocParams:
    """Host SoC parameters (Sec. 4.1): the MUSEIC-like biosignal platform."""

    sram_bytes: int = 192 * 1024
    sram_banks: int = 6
    bus_word_bytes: int = 4
    bus_burst_len: int = 8
    bus_setup_cycles: int = 4
    dma_setup_cycles: int = 24
    clock_hz: float = 80e6

    @property
    def sram_bank_bytes(self) -> int:
        return self.sram_bytes // self.sram_banks

    @property
    def cycle_s(self) -> float:
        return 1.0 / self.clock_hz


DEFAULT_SOC_PARAMS = SocParams()
