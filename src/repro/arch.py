"""Architectural parameters of VWR2A and its host SoC.

The defaults reproduce the configuration evaluated in the DAC'22 paper:
a 4x2 reconfigurable array (two columns of four RCs), three 4096-bit VWRs
per column, a shared 32 KiB SPM whose accelerator-side port matches the VWR
width, an 8-entry scalar register file per column, and 64-entry program
memories. Tests instantiate smaller variants to exercise the simulator's
scaling logic.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields, replace
from functools import cached_property

from repro.utils.bits import is_power_of_two


@dataclass(frozen=True)
class ArchParams:
    """Static configuration of a VWR2A instance.

    Attributes mirror Sec. 3 of the paper. ``vwr_words`` is the VWR width in
    32-bit words (4096 bits = 128 words); each RC owns a contiguous
    ``slice_words``-word slice (one quarter of the VWR). The SPM wide port
    transfers one full VWR per cycle, so the SPM line size equals the VWR
    width.
    """

    n_columns: int = 2
    rcs_per_column: int = 4
    n_vwrs: int = 3
    vwr_words: int = 128
    srf_entries: int = 8
    spm_bytes: int = 32 * 1024
    program_words: int = 64
    rc_registers: int = 2
    lcu_registers: int = 4
    word_bytes: int = 4
    clock_hz: float = 80e6

    def __post_init__(self) -> None:
        if self.n_columns < 1:
            raise ValueError("need at least one column")
        if self.rcs_per_column < 1:
            raise ValueError("need at least one RC per column")
        if self.n_vwrs < 1:
            raise ValueError("need at least one VWR")
        if self.vwr_words % self.rcs_per_column != 0:
            raise ValueError(
                f"VWR width ({self.vwr_words} words) must divide evenly "
                f"across {self.rcs_per_column} RCs"
            )
        if not is_power_of_two(self.slice_words):
            raise ValueError("RC slice width must be a power of two")
        if self.slice_words > 32:
            raise ValueError(
                f"RC slice of {self.slice_words} words cannot be indexed "
                f"by the MXCU's 5-bit k field (max 32); scale vwr_words "
                f"and rcs_per_column together"
            )
        if self.spm_bytes % self.line_bytes != 0:
            raise ValueError("SPM size must be a whole number of lines")

    @property
    def slice_words(self) -> int:
        """Words of a VWR visible to one RC (one quarter by default)."""
        return self.vwr_words // self.rcs_per_column

    @property
    def line_words(self) -> int:
        """SPM line width in words: matches the VWR width (Sec. 3.2)."""
        return self.vwr_words

    @property
    def line_bytes(self) -> int:
        return self.line_words * self.word_bytes

    @property
    def spm_lines(self) -> int:
        return self.spm_bytes // self.line_bytes

    @property
    def spm_words(self) -> int:
        return self.spm_bytes // self.word_bytes

    @property
    def vwr_bits(self) -> int:
        return self.vwr_words * self.word_bytes * 8

    @property
    def cycle_s(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.clock_hz


#: The configuration synthesized and evaluated in the paper.
DEFAULT_PARAMS = ArchParams()


@dataclass(frozen=True)
class SocParams:
    """Host SoC parameters (Sec. 4.1): the MUSEIC-like biosignal platform."""

    sram_bytes: int = 192 * 1024
    sram_banks: int = 6
    bus_word_bytes: int = 4
    bus_burst_len: int = 8
    bus_setup_cycles: int = 4
    dma_setup_cycles: int = 24
    clock_hz: float = 80e6

    def __post_init__(self) -> None:
        if self.sram_banks < 1:
            raise ValueError("need at least one SRAM bank")
        if self.sram_bytes % self.sram_banks != 0:
            raise ValueError(
                f"SRAM size ({self.sram_bytes} B) must divide evenly "
                f"across {self.sram_banks} banks"
            )
        if self.bus_burst_len < 1:
            raise ValueError("bus burst length must be at least one beat")

    @property
    def sram_bank_bytes(self) -> int:
        return self.sram_bytes // self.sram_banks

    @property
    def cycle_s(self) -> float:
        return 1.0 / self.clock_hz


DEFAULT_SOC_PARAMS = SocParams()


@dataclass(frozen=True)
class EnergyScaling:
    """How per-component calibration power scales off the paper's geometry.

    The paper's Table 3 measures one synthesized design point; scaling a
    component's anchor power by capacity/width ratios raised to these
    exponents is a documented modeling assumption (CACTI-flavored: storage
    arrays grow sublinearly with capacity, port energy linearly with port
    width), not a measurement. At the default geometry every ratio is
    exactly ``1.0``, so the default :class:`ArchSpec` reproduces the
    calibrated tables bit-identically.
    """

    spm_capacity_exp: float = 0.55   #: SPM power ~ (capacity ratio)^exp
    spm_port_exp: float = 0.45       #: ... x (line-width ratio)^exp
    vwr_bits_exp: float = 1.0        #: VWR power ~ total latch bits (linear)
    control_column_exp: float = 0.7  #: control ~ column count ...
    control_srf_exp: float = 0.3    #: ... x total SRF entries
    datapath_rc_exp: float = 1.0     #: datapath ~ total RC count
    dma_port_exp: float = 0.5        #: DMA ~ SPM wide-port width

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if not isinstance(value, (int, float)) or not (0.0 <= value <= 4.0):
                raise ValueError(
                    f"energy-scaling exponent {f.name} must be a float in "
                    f"[0, 4], got {value!r}"
                )


DEFAULT_ENERGY_SCALING = EnergyScaling()


@dataclass(frozen=True)
class ArchSpec:
    """One complete design point: the only way geometry enters the system.

    A frozen, picklable bundle of the array geometry (:class:`ArchParams`),
    the host platform (:class:`SocParams`) and the energy-calibration
    scaling knobs (:class:`EnergyScaling`). Everything that consumes
    geometry — ``Vwr2a``/``BiosignalSoC``/``KernelRunner`` construction,
    the engine's structural memo keys, ``repro.energy`` table calibration,
    and the ``repro.explore`` design-space sweeps — takes a spec (or the
    ``ArchParams`` projection it carries) so two specs can never share
    state they do not agree on.

    ``name`` is a report label only: it is excluded from equality and the
    :attr:`fingerprint`, so renaming a point cannot split caches.
    """

    arch: ArchParams = DEFAULT_PARAMS
    soc: SocParams = DEFAULT_SOC_PARAMS
    energy: EnergyScaling = DEFAULT_ENERGY_SCALING
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.arch, ArchParams):
            raise ValueError(
                f"ArchSpec.arch must be ArchParams, got "
                f"{type(self.arch).__name__}"
            )
        if not isinstance(self.soc, SocParams):
            raise ValueError(
                f"ArchSpec.soc must be SocParams, got "
                f"{type(self.soc).__name__}"
            )
        if not isinstance(self.energy, EnergyScaling):
            raise ValueError(
                f"ArchSpec.energy must be EnergyScaling, got "
                f"{type(self.energy).__name__}"
            )
        if self.arch.clock_hz != self.soc.clock_hz:
            raise ValueError(
                f"array clock ({self.arch.clock_hz:g} Hz) and SoC clock "
                f"({self.soc.clock_hz:g} Hz) must agree: the shared-bus "
                f"cycle accounting assumes one clock domain"
            )

    @cached_property
    def fingerprint(self) -> str:
        """Stable 12-hex-digit digest of every geometry-relevant field.

        Computed over the dataclass field values (not object identities),
        so equal specs built in different processes — or re-built from a
        pickle — fingerprint identically. ``name`` is excluded.
        """
        parts = []
        for bundle in (self.arch, self.soc, self.energy):
            for f in fields(bundle):
                parts.append(f"{f.name}={getattr(bundle, f.name)!r}")
        payload = ";".join(parts).encode()
        return hashlib.sha256(payload).hexdigest()[:12]

    def vary(self, name: str = None, **arch_fields) -> "ArchSpec":
        """A derived spec with some :class:`ArchParams` fields replaced.

        The ``repro.explore`` grids are built from this: geometry
        variations keep the SoC and energy knobs of the base spec.
        Validation reruns, so an inconsistent variation raises here.
        """
        return ArchSpec(
            arch=replace(self.arch, **arch_fields),
            soc=self.soc,
            energy=self.energy,
            name=name if name is not None else self.name,
        )

    def describe(self) -> str:
        """One-line human label for reports: geometry plus fingerprint."""
        a = self.arch
        label = self.name or "spec"
        return (
            f"{label}[{a.n_columns}x{a.rcs_per_column}rc "
            f"{a.n_vwrs}x{a.vwr_bits}b spm{a.spm_bytes // 1024}K "
            f"srf{a.srf_entries} @{a.clock_hz / 1e6:g}MHz "
            f"#{self.fingerprint}]"
        )


#: The design point synthesized and evaluated in the paper.
DEFAULT_SPEC = ArchSpec(name="paper")
