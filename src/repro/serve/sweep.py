"""Parameter sweeps: one trace, many application variants, one runner.

A :class:`ParameterSweep` replays the same :class:`~repro.serve.WindowStream`
under N cases — different platform configurations (``cpu``,
``cpu_fft_accel``, ``cpu_vwr2a``), different
:class:`~repro.app.AppParams` (filter taps, delineation thresholds,
spectral feature bands), and/or different :class:`~repro.arch.ArchSpec`
design points (array geometry, SPM capacity, clock) — on one shared
runner per design point, so compiled programs, configuration-word
encodings and SPM-conflict verdicts carry over between cases instead of
being rebuilt per scenario.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.app.mbiotracker import AppParams
from repro.arch import ArchSpec
from repro.core.errors import ConfigurationError
from repro.energy.model import EnergyModel
from repro.kernels.runner import KernelRunner
from repro.serve.report import StreamReport
from repro.serve.scheduler import StreamScheduler
from repro.serve.stream import WindowStream


@dataclass(frozen=True)
class SweepCase:
    """One sweep axis point: a named configuration + parameter variant.

    ``arch`` selects the VWR2A design point the case runs on; ``None``
    means the sweep runner's own spec (the paper geometry by default).
    Cases sharing a design point share a runner — and therefore its
    compile-once caches — while distinct specs get isolated platforms.
    """

    name: str                       #: unique case label (report key)
    config: str = "cpu_vwr2a"       #: platform configuration
    params: AppParams | None = None  #: AppParams override (None = paper)
    arch: ArchSpec | None = None     #: design point (None = sweep default)
    #: Picklable ``(runner, samples) -> result`` callable serving each
    #: window instead of the MBioTracker pipeline (e.g. a single-kernel
    #: workload from :mod:`repro.explore.kernels`). Wins over
    #: ``config``/``params`` exactly as in :class:`StreamScheduler`.
    pipeline: object = None


@dataclass
class SweepReport:
    """Per-case stream reports plus cross-case comparisons."""

    #: case name -> StreamReport
    reports: dict[str, StreamReport] = field(default_factory=dict)

    @property
    def cases(self) -> list[str]:
        return list(self.reports)

    def __getitem__(self, name: str) -> StreamReport:
        return self.reports[name]

    def __iter__(self):
        return iter(self.reports.items())

    def best(self, key=lambda report: report.total_cycles) -> str:
        """Name of the case minimizing ``key`` (total cycles by default)."""
        if not self.reports:
            raise ConfigurationError("the sweep produced no reports")
        return min(self.reports, key=lambda name: key(self.reports[name]))

    def table(self) -> str:
        """ASCII comparison of all cases."""
        header = (
            f"{'case':<24} {'config':<14} {'windows':>7} "
            f"{'cycles':>10} {'cyc/win':>9} {'energy uJ':>10} {'labels':>7}"
        )
        lines = [header, "-" * len(header)]
        for name, report in self.reports.items():
            n = report.n_windows or 1
            energy = report.total_energy_uj
            labels = report.labels
            high = sum(1 for label in labels if label == 1)
            lines.append(
                f"{name:<24} {report.config:<14} {report.n_windows:>7} "
                f"{report.total_cycles:>10} {report.total_cycles // n:>9} "
                f"{energy if energy is None else round(energy, 2)!s:>10} "
                f"{f'{high}/{len(labels)}':>7}"
            )
        return "\n".join(lines)


class ParameterSweep:
    """Runs one trace through every case, reusing a single runner.

    ``cases`` is an iterable of :class:`SweepCase` (plain configuration
    strings are promoted to default-parameter cases). Cases on the default
    design point share the sweep's runner and therefore its
    configuration-memory and compiled-program caches — the amortization
    that makes wide sweeps cheap; cases carrying an ``arch`` spec share a
    per-spec runner instead. ``window``/``hop``/``tail`` shape the stream
    exactly as in :class:`~repro.serve.WindowStream`.

    ``energy_model=True`` (the default) calibrates per design point:
    default-spec cases get :func:`repro.energy.default_model`, arch cases
    get :func:`repro.energy.model_for` on their spec. An explicit
    :class:`~repro.energy.EnergyModel` is applied to every case verbatim —
    only meaningful when all cases share one design point.
    """

    def __init__(self, cases: Iterable[SweepCase | str],
                 window: int | None = None, hop: int | None = None,
                 tail: str = "drop", runner: KernelRunner | None = None,
                 energy_model: EnergyModel | bool | None = True,
                 double_buffer: bool = True,
                 workers: int | None = None) -> None:
        self.cases: list[SweepCase] = []
        names: set[str] = set()
        for case in cases:
            if isinstance(case, str):
                case = SweepCase(name=case, config=case)
            if case.name in names:
                raise ConfigurationError(
                    f"duplicate sweep case name {case.name!r}"
                )
            names.add(case.name)
            self.cases.append(case)
        if not self.cases:
            raise ConfigurationError("a sweep needs at least one case")
        if window is None:
            from repro.app.mbiotracker import WINDOW

            window = WINDOW
        self.window = window
        self.hop = hop
        self.tail = tail
        self.runner = runner if runner is not None else KernelRunner()
        self._auto_energy = energy_model is True
        if energy_model is True:
            from repro.energy import default_model

            # Calibrate once here, not once per case scheduler.
            energy_model = default_model()
        self.energy_model: EnergyModel | None = (
            energy_model if energy_model is not None else None
        )
        self.double_buffer = double_buffer
        if workers is not None and workers < 1:
            raise ConfigurationError(
                f"a sweep pool needs at least one worker, got {workers}"
            )
        if workers is not None and workers > 1 and runner is not None:
            raise ConfigurationError(
                "a pooled sweep builds one runner per case; a shared "
                "runner and workers>1 are mutually exclusive"
            )
        self.workers = workers
        #: spec fingerprint -> shared runner for that design point
        self._spec_runners: dict[str, KernelRunner] = {}

    def _case_runner(self, case: SweepCase) -> KernelRunner:
        """The (shared-per-spec) runner serving ``case``."""
        if case.arch is None or case.arch == self.runner.spec:
            return self.runner
        key = case.arch.fingerprint
        if key not in self._spec_runners:
            self._spec_runners[key] = KernelRunner(spec=case.arch)
        return self._spec_runners[key]

    def _case_energy(self, case: SweepCase) -> EnergyModel | None:
        """The energy model serving ``case`` (spec-calibrated if auto)."""
        if self._auto_energy and case.arch is not None \
                and case.arch != self.runner.spec:
            from repro.energy import model_for

            return model_for(case.arch)
        return self.energy_model

    def run(self, trace) -> SweepReport:
        """Serve ``trace`` under every case; returns the sweep report.

        With ``workers > 1`` the cases shard across a process pool, one
        fresh platform per case (per-window results are bit-identical to
        the shared-runner sweep; cross-case cache amortization is traded
        for case-level parallelism — see docs/parallel.md).
        """
        if self.workers is not None and self.workers > 1 \
                and len(self.cases) > 1:
            return self._run_pooled(trace)
        stream = WindowStream(
            trace, window=self.window, hop=self.hop, tail=self.tail
        )
        report = SweepReport()
        for case in self.cases:
            scheduler = StreamScheduler(
                config=case.config,
                params=case.params,
                pipeline=case.pipeline,
                runner=self._case_runner(case),
                double_buffer=self.double_buffer,
                energy_model=self._case_energy(case),
            )
            report.reports[case.name] = scheduler.run(stream)
        return report

    def _run_pooled(self, trace) -> SweepReport:
        from repro.kernels.runner import RunnerFactory
        from repro.serve.pool import _SweepCasePayload, run_sweep_cases

        payloads = [
            _SweepCasePayload(
                name=case.name,
                config=case.config,
                params=case.params,
                pipeline=case.pipeline,
                window=self.window,
                hop=self.hop,
                tail=self.tail,
                energy_model=self._case_energy(case),
                double_buffer=self.double_buffer,
                runner_factory=RunnerFactory(spec=case.arch),
            )
            for case in self.cases
        ]
        report = SweepReport()
        for name, case_report in run_sweep_cases(
                payloads, tuple(trace), self.workers):
            report.reports[name] = case_report
        return report
