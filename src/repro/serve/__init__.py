"""Batched window-stream serving on top of the fast simulator.

The serving layer turns the single-window ``run_application`` flow into a
throughput-oriented pipeline for long biosignal traces and parameter
sweeps (docs/serving.md):

* :class:`WindowStream` — lazy, re-iterable slicing of a long trace into
  fixed-size (optionally overlapping, optionally zero-padded) windows;
* :class:`StreamScheduler` — feeds a stream through one
  :class:`~repro.kernels.KernelRunner`, amortizing kernel stores
  (structural config cache), recycling the SRAM staging area between
  windows, double-buffering staged data across two SRAM halves, and
  capturing per-window cycle/event/energy deltas and engine decisions;
* :class:`StreamReport` / :class:`WindowResult` — per-window and
  aggregate results, including the engine/fallback mix and the
  double-buffer pipelining estimate;
* :class:`ParameterSweep` / :class:`SweepCase` / :class:`SweepReport` —
  the same trace replayed under N application variants on one shared
  runner (or across a case-sharded process pool with ``workers=N``);
* :class:`PoolScheduler` — the same stream sharded across N worker
  processes, each owning its own simulated platform, merged back into
  an order-stable, bit-identical :class:`StreamReport`
  (docs/parallel.md);
* :class:`StreamCheckpoint` — periodic persistence of completed windows
  so very long traces resume mid-stream with identical final reports;
* :func:`serve_trace` — the one-call entry point (``workers=N`` opts
  into the pool, ``checkpoint=`` into resumable serving).

Per-window results are bit-identical to a sequential
``run_application`` loop (``tests/test_serve.py`` proves it, including a
mid-stream reference-engine fallback; ``tests/test_pool.py`` extends the
proof to the process pool and kill-and-resume runs).
"""

from repro.core.errors import ConfigurationError
from repro.serve.checkpoint import CheckpointState, StreamCheckpoint
from repro.serve.pool import PoolScheduler, PoolWorkerError, describe_exit
from repro.serve.report import (
    FailedWindow,
    StreamReport,
    WindowResult,
    app_energy_uj,
    merge_counts,
    step_energy_uj,
)
from repro.serve.scheduler import StreamScheduler
from repro.serve.stream import Window, WindowStream
from repro.serve.sweep import ParameterSweep, SweepCase, SweepReport


def serve_trace(trace, config: str = "cpu_vwr2a", window: int = None,
                hop: int = None, tail: str = "drop", runner=None,
                params=None, energy_model=True,
                double_buffer: bool = True, workers: int = None,
                checkpoint=None) -> StreamReport:
    """Serve a long trace in one call: slice, schedule, report.

    Equivalent to ``StreamScheduler(...).run(WindowStream(...))`` with
    the application's 512-sample window as the default size. Energy is
    modeled by default (pass ``energy_model=None`` to skip it).
    ``workers=N`` (N > 1) serves the same stream through a
    :class:`PoolScheduler` instead — N platform instances in worker
    processes, bit-identical report; ``checkpoint`` (a
    :class:`StreamCheckpoint` or path) makes the run resumable
    mid-stream. See docs/parallel.md for worker-count guidance.
    """
    if window is None:
        from repro.app.mbiotracker import WINDOW

        window = WINDOW
    if workers is not None and workers < 1:
        raise ConfigurationError(
            f"serving needs at least one worker, got {workers}"
        )
    stream = WindowStream(trace, window=window, hop=hop, tail=tail)
    if workers is not None and workers > 1:
        if runner is not None:
            raise ConfigurationError(
                "pooled serving builds one runner per worker; a shared "
                "runner and workers>1 are mutually exclusive"
            )
        return PoolScheduler(
            config=config, workers=workers, params=params,
            double_buffer=double_buffer, energy_model=energy_model,
        ).run(stream, checkpoint=checkpoint)
    scheduler = StreamScheduler(
        config=config, runner=runner, params=params,
        double_buffer=double_buffer, energy_model=energy_model,
    )
    return scheduler.run(stream, checkpoint=checkpoint)


__all__ = [
    "CheckpointState",
    "FailedWindow",
    "ParameterSweep",
    "PoolScheduler",
    "PoolWorkerError",
    "StreamCheckpoint",
    "StreamReport",
    "StreamScheduler",
    "SweepCase",
    "SweepReport",
    "Window",
    "WindowResult",
    "WindowStream",
    "app_energy_uj",
    "describe_exit",
    "merge_counts",
    "serve_trace",
    "step_energy_uj",
]
