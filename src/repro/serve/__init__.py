"""Batched window-stream serving on top of the fast simulator.

The serving layer turns the single-window ``run_application`` flow into a
throughput-oriented pipeline for long biosignal traces and parameter
sweeps (docs/serving.md):

* :class:`WindowStream` — lazy, re-iterable slicing of a long trace into
  fixed-size (optionally overlapping, optionally zero-padded) windows;
* :class:`StreamScheduler` — feeds a stream through one
  :class:`~repro.kernels.KernelRunner`, amortizing kernel stores
  (structural config cache), recycling the SRAM staging area between
  windows, double-buffering staged data across two SRAM halves, and
  capturing per-window cycle/event/energy deltas and engine decisions;
* :class:`StreamReport` / :class:`WindowResult` — per-window and
  aggregate results, including the engine/fallback mix and the
  double-buffer pipelining estimate;
* :class:`ParameterSweep` / :class:`SweepCase` / :class:`SweepReport` —
  the same trace replayed under N application variants on one shared
  runner;
* :func:`serve_trace` — the one-call entry point.

Per-window results are bit-identical to a sequential
``run_application`` loop (``tests/test_serve.py`` proves it, including a
mid-stream reference-engine fallback).
"""

from repro.serve.report import (
    StreamReport,
    WindowResult,
    app_energy_uj,
    step_energy_uj,
)
from repro.serve.scheduler import StreamScheduler
from repro.serve.stream import Window, WindowStream
from repro.serve.sweep import ParameterSweep, SweepCase, SweepReport


def serve_trace(trace, config: str = "cpu_vwr2a", window: int = None,
                hop: int = None, tail: str = "drop", runner=None,
                params=None, energy_model=True,
                double_buffer: bool = True) -> StreamReport:
    """Serve a long trace in one call: slice, schedule, report.

    Equivalent to ``StreamScheduler(...).run(WindowStream(...))`` with
    the application's 512-sample window as the default size. Energy is
    modeled by default (pass ``energy_model=None`` to skip it).
    """
    if window is None:
        from repro.app.mbiotracker import WINDOW

        window = WINDOW
    scheduler = StreamScheduler(
        config=config, runner=runner, params=params,
        double_buffer=double_buffer, energy_model=energy_model,
    )
    return scheduler.run(
        WindowStream(trace, window=window, hop=hop, tail=tail)
    )


__all__ = [
    "ParameterSweep",
    "StreamReport",
    "StreamScheduler",
    "SweepCase",
    "SweepReport",
    "Window",
    "WindowResult",
    "WindowStream",
    "app_energy_uj",
    "serve_trace",
    "step_energy_uj",
]
