"""Window slicing of long biosignal traces.

A :class:`WindowStream` turns an arbitrarily long sample trace into the
fixed-size (optionally overlapping) windows the application pipeline
consumes. Slicing is lazy and re-iterable: the stream holds a reference
to the trace and materializes one window at a time, so multi-hour traces
cost one window of working memory, and the same stream can be replayed
across the cases of a :class:`~repro.serve.ParameterSweep`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError

#: Accepted tail policies (see :class:`WindowStream`).
TAIL_POLICIES = ("drop", "pad")


@dataclass(frozen=True)
class Window:
    """One slice of a trace: its position and its samples."""

    index: int     #: 0-based window number within the stream
    start: int     #: sample offset of the window's first sample
    samples: tuple  #: exactly ``window`` samples (zero-padded under "pad")


class WindowStream:
    """Overlapping fixed-size windows over a long sample trace.

    ``hop`` is the stride between consecutive window starts; it defaults
    to ``window`` (back-to-back, no overlap). ``hop < window`` produces
    overlapping windows — e.g. ``WindowStream(trace, window=512,
    hop=256)`` gives 50% overlap, the usual choice for spectral feature
    continuity.

    ``tail`` selects what happens to trailing samples that do not fill a
    whole window: ``"drop"`` (default) ends the stream at the last full
    window; ``"pad"`` zero-pads windows that extend past the end of the
    trace so every sample is served — with ``hop < window`` more than
    one trailing window can be padded.
    """

    def __init__(self, trace, window: int, hop: int = None,
                 tail: str = "drop") -> None:
        if window <= 0:
            raise ConfigurationError(
                f"window must be positive, got {window}"
            )
        if hop is None:
            hop = window
        if hop <= 0:
            raise ConfigurationError(f"hop must be positive, got {hop}")
        if tail not in TAIL_POLICIES:
            raise ConfigurationError(
                f"unknown tail policy {tail!r} (choose from {TAIL_POLICIES})"
            )
        self.trace = trace
        self.window = window
        self.hop = hop
        self.tail = tail

    def _starts(self) -> range:
        n = len(self.trace)
        if self.tail == "drop":
            if n < self.window:
                return range(0)
            return range(0, n - self.window + 1, self.hop)
        # "pad": every hop-aligned start that still covers >= 1 sample.
        return range(0, n, self.hop)

    @property
    def n_windows(self) -> int:
        return len(self._starts())

    def __len__(self) -> int:
        return self.n_windows

    def __getitem__(self, index: int) -> Window:
        starts = self._starts()
        if index < 0:
            index += len(starts)
        if not 0 <= index < len(starts):
            raise IndexError(
                f"window {index} out of range [0, {len(starts)})"
            )
        return self._window(index, starts[index])

    def __iter__(self):
        for index, start in enumerate(self._starts()):
            yield self._window(index, start)

    def _window(self, index: int, start: int) -> Window:
        samples = tuple(self.trace[start:start + self.window])
        if len(samples) < self.window:  # only reachable under "pad"
            samples += (0,) * (self.window - len(samples))
        return Window(index=index, start=start, samples=samples)

    def __repr__(self) -> str:
        return (
            f"WindowStream({len(self.trace)} samples, "
            f"window={self.window}, hop={self.hop}, tail={self.tail!r}: "
            f"{self.n_windows} windows)"
        )


# -- chunk-level fault hooks (repro.faults) -----------------------------------
#
# A served window is the unit in which trace data crosses from the host
# into the device model, so it is also the unit in which hostile inputs
# arrive: sensor glitches, bus bit errors and short reads corrupt *chunks*.
# These helpers produce the faulted twin of a pristine window — the
# FaultInjector applies them per attempt, and a retry re-slices from the
# pristine trace, which is why chunk faults are transient by construction.


def corrupt_chunk(window: Window, offset: int, xor_mask: int) -> Window:
    """``window`` with the sample at ``offset`` XOR-corrupted.

    Models a bit error in the transfer of the chunk (AFE/bus upset). The
    offset wraps into the window so generated plans never miss.
    """
    samples = list(window.samples)
    offset %= max(len(samples), 1)
    samples[offset] = int(samples[offset]) ^ xor_mask
    return Window(
        index=window.index, start=window.start, samples=tuple(samples)
    )


def truncate_chunk(window: Window, keep: int) -> Window:
    """``window`` cut short after ``keep`` samples (a failed read).

    The short chunk deliberately keeps its short length instead of being
    re-padded: pipelines validate their window size, so truncation
    surfaces as a detected per-attempt failure and is retried from the
    pristine trace rather than silently serving zero-filled data.
    """
    keep = max(0, min(keep, len(window.samples)))
    return Window(
        index=window.index, start=window.start,
        samples=window.samples[:keep],
    )
