"""The batched window-stream scheduler.

One :class:`StreamScheduler` owns a :class:`~repro.kernels.KernelRunner`
and feeds it a :class:`~repro.serve.WindowStream`, amortizing every
per-launch cost the single-shot flow pays repeatedly:

* **store once** — kernels regenerated per window dedupe in the
  configuration memory (PR-2 structural store cache) and reuse their
  compiled programs and SPM-conflict verdicts; the per-stream cache delta
  is reported on :attr:`StreamReport.store_stats`;
* **SRAM recycling** — the staging bump allocator is rewound between
  windows (:meth:`KernelRunner.reset_sram`) instead of growing without
  bound;
* **double-buffered staging** — staging alternates between two half-SRAM
  regions, so window *k*'s staged data (including staged-out results)
  survives while window *k+1* stages in. DMA cost is length-based, so the
  alternation changes no cycle or event accounting — per-window results
  are bit-identical to a sequential ``run_application`` loop, and the
  hidden-latency estimate is reported separately
  (:attr:`StreamReport.overlap_saved_cycles`);
* **per-window deltas** — events, cycles, kernel launches (with their
  engine/fallback decisions off :class:`~repro.core.RunResult`) and
  optionally energy are captured per window into a
  :class:`~repro.serve.StreamReport`.
"""

from __future__ import annotations

import time

from repro.app.mbiotracker import window_pipeline
from repro.core.errors import ConfigurationError
from repro.kernels.runner import KernelRunner
from repro.obs.bus import get_bus
from repro.obs.instruments import (
    record_failed,
    record_progress,
    record_resilience,
    record_window,
)
from repro.serve.checkpoint import (
    CheckpointState,
    finalize_session,
    flush_session,
    resume_session,
    stream_fingerprint,
)
from repro.serve.report import (
    FailedWindow,
    StreamReport,
    WindowResult,
    app_energy_uj,
    merge_counts,
)


class StreamScheduler:
    """Runs a window stream through one runner with amortized staging.

    ``pipeline`` is any ``(runner, samples) -> result`` callable; when
    omitted it is built from ``config``/``params`` via
    :func:`repro.app.mbiotracker.window_pipeline` (the MBioTracker
    application). ``energy_model`` may be ``None`` (skip energy), ``True``
    (use :func:`repro.energy.default_model`) or an
    :class:`~repro.energy.EnergyModel` instance; energy is only computed
    for results that carry application steps.

    ``double_buffer`` alternates staging between two half-SRAM regions
    (see the module docstring); ``reset_sram`` controls the plain rewind
    used when double buffering is off — pass ``False`` only if you manage
    SRAM-resident buffers through the runner yourself.

    ``fault_plan`` (a :class:`~repro.faults.FaultPlan`) turns on the
    resilience layer of docs/robustness.md: faults are injected per
    serving attempt, detected attempts are retried up to ``max_retries``
    times, a final attempt may run on a reference-engine twin platform
    (``reference_fallback``), and windows that exhaust the budget are
    quarantined into :attr:`StreamReport.failed_windows` instead of
    aborting the stream. Process faults (worker kill/hang) are counted
    but never executed here — only :class:`~repro.serve.PoolScheduler`
    workers are expendable.
    """

    def __init__(self, config: str = "cpu_vwr2a",
                 runner: KernelRunner = None, params=None,
                 pipeline=None, reset_sram: bool = True,
                 double_buffer: bool = True, energy_model=None,
                 fault_plan=None, max_retries: int = 2,
                 reference_fallback: bool = True) -> None:
        # A pipeline that declares its configuration (window_pipeline
        # does) wins over the default, so energy attribution and the
        # report label follow what actually runs.
        self.config = (
            getattr(pipeline, "config", config)
            if pipeline is not None else config
        )
        self.runner = runner if runner is not None else KernelRunner()
        self.pipeline = (
            pipeline if pipeline is not None
            else window_pipeline(config, params)
        )
        self.reset_sram = reset_sram
        self.double_buffer = double_buffer
        if energy_model is True:
            from repro.energy import default_model

            energy_model = default_model()
        self.energy_model = energy_model if energy_model is not None else None
        if max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        self.max_retries = max_retries
        self.reference_fallback = reference_fallback
        self.fault_plan = fault_plan
        self._injector = None
        if fault_plan is not None:
            from repro.faults.injector import FaultInjector

            self._injector = FaultInjector(fault_plan, process_faults=False)
        self._ref_sched = None
        self._ref_log = None

    def run(self, stream, checkpoint=None) -> StreamReport:
        """Serve every window of ``stream``; returns the stream report.

        ``checkpoint`` (a :class:`~repro.serve.StreamCheckpoint` or a
        path) enables mid-stream resume for very long traces: completed
        windows recorded in the checkpoint are skipped, progress is
        flushed every ``checkpoint.every`` windows, and the final report
        — per-window results are history-independent, so skipping served
        windows changes nothing — is bit-identical to an uninterrupted
        run (wall time and store-cache stats reflect the work each
        session actually did).
        """
        runner = self.runner
        soc = runner.soc
        stats = soc.vwr2a.config_mem.stats
        report = StreamReport(
            config=self.config,
            engine=soc.vwr2a.engine,
            window=getattr(stream, "window", 0),
            hop=getattr(stream, "hop", 0),
            double_buffered=self.double_buffer,
        )
        if checkpoint is not None:
            checkpoint, state = resume_session(checkpoint, stream_fingerprint(
                stream, self.config, soc.vwr2a.engine,
                self.double_buffer, pipeline=self.pipeline,
                energy_model=self.energy_model,
            ))
        else:
            # No checkpoint: a scratch state accumulates the session
            # (same single code path, no O(trace) fingerprint hash).
            state = CheckpointState(
                fingerprint={"n_windows": getattr(stream, "n_windows", 0)}
            )
        log = runner.launch_log
        owns_log = log is None
        if owns_log:
            log = []
            runner.launch_log = log
        done_before = state.n_done + state.n_failed
        wall_base = state.wall_seconds
        wall_start = time.perf_counter()
        try:
            for window in stream:
                if window.index in state.results \
                        or window.index in state.failed:
                    continue
                window_stats = stats.snapshot()
                # Metrics are host-side bookkeeping over the window's
                # results — off by default, and never feeding back into
                # simulated state (see repro.obs.instruments).
                bus = get_bus()
                resilience_before = (
                    dict(state.resilience) if bus is not None else None
                )
                if self._injector is None:
                    result = self.serve_window(window, log)
                else:
                    result = self._serve_resilient(window, log, state)
                if result is not None:
                    state.results[window.index] = result
                stats_delta = stats.since(window_stats)
                merge_counts(state.store_stats, stats_delta)
                if bus is not None:
                    if result is not None:
                        record_window(bus, result, stats_delta)
                    else:
                        record_failed(bus)
                    record_resilience(bus, {
                        name: count - resilience_before.get(name, 0)
                        for name, count in state.resilience.items()
                    })
                    record_progress(
                        bus, state.n_done + state.n_failed,
                        state.n_windows,
                        wall_base + time.perf_counter() - wall_start,
                    )
                if checkpoint is not None:
                    state.wall_seconds = \
                        wall_base + time.perf_counter() - wall_start
                    checkpoint.mark(state)
        except BaseException:
            # Mirror the pool's durability contract: flush completed
            # windows before the failure propagates, whatever the
            # cadence, so the resume re-serves nothing.
            if checkpoint is not None \
                    and state.n_done + state.n_failed > done_before:
                flush_session(state, checkpoint, wall_base, wall_start)
            raise
        finally:
            if owns_log:
                runner.launch_log = None
            if self.double_buffer:
                # Leave the runner with its full staging area again.
                runner.set_sram_region(0, soc.sram.n_words)
        return finalize_session(
            report, state, checkpoint, wall_base, wall_start,
            served=state.n_done + state.n_failed > done_before,
        )

    # -- one window ---------------------------------------------------------

    def serve_window(self, window, log) -> WindowResult:
        """Serve one :class:`~repro.serve.Window` on this scheduler's runner.

        The pool workers' unit of work: stages the window under the
        scheduler's SRAM policy, runs the pipeline, and captures the
        per-window cycle/event/staging/energy deltas. ``log`` must be the
        runner's active launch log.
        """
        runner = self.runner
        soc = runner.soc
        if self.double_buffer:
            half = soc.sram.n_words // 2
            runner.set_sram_region((window.index % 2) * half, half)
        elif self.reset_sram:
            runner.reset_sram()
        events_before = soc.events.snapshot()
        cpu_before = soc.cpu.active_cycles + soc.cpu.sleep_cycles
        staging_before = dict(runner.staging_cycles)
        log_start = len(log)

        app = self.pipeline(runner, window.samples)

        cycles = (
            soc.cpu.active_cycles + soc.cpu.sleep_cycles - cpu_before
        )
        energy_uj = None
        kernel_energy = None
        if self.energy_model is not None:
            if getattr(app, "steps", None) is not None:
                energy_uj = app_energy_uj(
                    self.energy_model, self.config, app
                )
            # Histogram-native per-kernel attribution: fold each compiled
            # launch's static block deltas straight to pJ (no event-dict
            # materialization; reference-fallback launches carry no
            # histogram and are attributed nothing here).
            kernel_energy = {}
            for result in log[log_start:]:
                if result.block_histogram:
                    folded = self.energy_model.fold_histogram(
                        (delta, count)
                        for _, _, count, delta in result.block_histogram
                    ).total_pj
                    kernel_energy[result.name] = \
                        kernel_energy.get(result.name, 0.0) + folded
        return WindowResult(
            index=window.index,
            start=window.start,
            app=app,
            cycles=cycles,
            events=soc.events.diff(events_before),
            launches=tuple(log[log_start:]),
            staging_in_cycles=(
                runner.staging_cycles["in"] - staging_before["in"]
            ),
            staging_out_cycles=(
                runner.staging_cycles["out"] - staging_before["out"]
            ),
            energy_uj=energy_uj,
            kernel_energy_pj=kernel_energy,
        )

    # -- fault-plan resilience ----------------------------------------------

    def _serve_resilient(self, window, log, state):
        """The retry ladder of one window under an armed fault plan.

        Attempts ``0 .. max_retries`` run on the primary engine; if every
        one is spoiled by an injected fault, one final attempt may run on
        the reference-engine twin (``reference_fallback``) — compiled and
        reference results are bit-identical in cycles/events/energy, so
        a reference recovery changes only the recorded engine decisions.
        A window that exhausts the ladder is quarantined into
        ``state.failed`` (and the stream keeps going); non-fault
        exceptions propagate exactly as without a plan. Returns the
        :class:`~repro.serve.WindowResult` or ``None`` on quarantine.
        """
        kinds = []
        attempts = 0
        result = None
        for attempt in range(self.max_retries + 1):
            attempts += 1
            result, fired = self._attempt(window, log, attempt)
            if result is not None:
                break
            kinds.extend(fired)
            merge_counts(
                state.resilience, {f"fault:{kind}": 1 for kind in fired}
            )
        if result is None and self.reference_fallback:
            attempts += 1
            result, fired = self._attempt(
                window, log, attempts - 1, reference=True
            )
            if result is not None:
                merge_counts(state.resilience, {"reference_recoveries": 1})
            else:
                kinds.extend(fired)
                merge_counts(
                    state.resilience,
                    {f"fault:{kind}": 1 for kind in fired},
                )
        if attempts > 1:
            merge_counts(state.resilience, {"retries": attempts - 1})
        if result is not None:
            return result
        merge_counts(state.resilience, {"quarantined": 1})
        state.failed[window.index] = FailedWindow(
            index=window.index,
            start=window.start,
            attempts=attempts,
            kinds=tuple(dict.fromkeys(kinds)),
            detail=(
                f"exhausted {attempts} attempts; faults fired: "
                + ", ".join(kinds)
            ),
        )
        return None

    def _attempt(self, window, log, attempt: int, reference: bool = False):
        """One injected serving attempt; returns ``(result, fired)``.

        A spoiled attempt (fired faults, or a fault-classified exception
        such as :class:`~repro.core.errors.BrownoutError`) returns
        ``(None, fired_kinds)`` after the injector healed the platform
        and the attempt's launches were rolled off the log, so the next
        attempt starts from the exact pre-fault state. Exceptions the
        injector does not own — genuine pipeline bugs — re-raise.
        """
        from repro.faults.injector import is_fault_failure

        if reference:
            sched = self._reference_scheduler()
            serve_log = self._ref_log
            engine = "reference"
        else:
            sched = self
            serve_log = log
            engine = self.runner.soc.vwr2a.engine
        base = len(serve_log)
        injected = self._injector.begin_attempt(
            sched.runner, window, attempt, engine=engine
        )
        try:
            result = sched.serve_window(injected, serve_log)
            exc = None
        except Exception as err:
            result = None
            exc = err
        fired = self._injector.end_attempt()
        if exc is None and not fired:
            return result, ()
        del serve_log[base:]
        if exc is not None and not is_fault_failure(exc, fired):
            raise exc
        return None, fired or (type(exc).__name__,)

    def _reference_scheduler(self) -> "StreamScheduler":
        """The lazily-built reference-engine twin for fallback attempts.

        A full scheduler on its own platform (same config, pipeline,
        buffering and energy model) whose launches land in a private log
        — the primary runner's launch history must not interleave with
        recovery attempts. Built once, reused for every fallback.
        """
        if self._ref_sched is None:
            self._ref_log = []
            # Same design point, golden engine: the replay must simulate
            # the machine the primary runner failed on.
            runner = KernelRunner(engine="reference", spec=self.runner.spec)
            runner.launch_log = self._ref_log
            self._ref_sched = StreamScheduler(
                config=self.config,
                runner=runner,
                pipeline=self.pipeline,
                reset_sram=self.reset_sram,
                double_buffer=self.double_buffer,
                energy_model=self.energy_model,
            )
        return self._ref_sched
