"""The batched window-stream scheduler.

One :class:`StreamScheduler` owns a :class:`~repro.kernels.KernelRunner`
and feeds it a :class:`~repro.serve.WindowStream`, amortizing every
per-launch cost the single-shot flow pays repeatedly:

* **store once** — kernels regenerated per window dedupe in the
  configuration memory (PR-2 structural store cache) and reuse their
  compiled programs and SPM-conflict verdicts; the per-stream cache delta
  is reported on :attr:`StreamReport.store_stats`;
* **SRAM recycling** — the staging bump allocator is rewound between
  windows (:meth:`KernelRunner.reset_sram`) instead of growing without
  bound;
* **double-buffered staging** — staging alternates between two half-SRAM
  regions, so window *k*'s staged data (including staged-out results)
  survives while window *k+1* stages in. DMA cost is length-based, so the
  alternation changes no cycle or event accounting — per-window results
  are bit-identical to a sequential ``run_application`` loop, and the
  hidden-latency estimate is reported separately
  (:attr:`StreamReport.overlap_saved_cycles`);
* **per-window deltas** — events, cycles, kernel launches (with their
  engine/fallback decisions off :class:`~repro.core.RunResult`) and
  optionally energy are captured per window into a
  :class:`~repro.serve.StreamReport`.
"""

from __future__ import annotations

import time

from repro.app.mbiotracker import window_pipeline
from repro.kernels.runner import KernelRunner
from repro.serve.checkpoint import (
    CheckpointState,
    finalize_session,
    flush_session,
    resume_session,
    stream_fingerprint,
)
from repro.serve.report import StreamReport, WindowResult, app_energy_uj, merge_counts


class StreamScheduler:
    """Runs a window stream through one runner with amortized staging.

    ``pipeline`` is any ``(runner, samples) -> result`` callable; when
    omitted it is built from ``config``/``params`` via
    :func:`repro.app.mbiotracker.window_pipeline` (the MBioTracker
    application). ``energy_model`` may be ``None`` (skip energy), ``True``
    (use :func:`repro.energy.default_model`) or an
    :class:`~repro.energy.EnergyModel` instance; energy is only computed
    for results that carry application steps.

    ``double_buffer`` alternates staging between two half-SRAM regions
    (see the module docstring); ``reset_sram`` controls the plain rewind
    used when double buffering is off — pass ``False`` only if you manage
    SRAM-resident buffers through the runner yourself.
    """

    def __init__(self, config: str = "cpu_vwr2a",
                 runner: KernelRunner = None, params=None,
                 pipeline=None, reset_sram: bool = True,
                 double_buffer: bool = True, energy_model=None) -> None:
        # A pipeline that declares its configuration (window_pipeline
        # does) wins over the default, so energy attribution and the
        # report label follow what actually runs.
        self.config = (
            getattr(pipeline, "config", config)
            if pipeline is not None else config
        )
        self.runner = runner if runner is not None else KernelRunner()
        self.pipeline = (
            pipeline if pipeline is not None
            else window_pipeline(config, params)
        )
        self.reset_sram = reset_sram
        self.double_buffer = double_buffer
        if energy_model is True:
            from repro.energy import default_model

            energy_model = default_model()
        self.energy_model = energy_model or None

    def run(self, stream, checkpoint=None) -> StreamReport:
        """Serve every window of ``stream``; returns the stream report.

        ``checkpoint`` (a :class:`~repro.serve.StreamCheckpoint` or a
        path) enables mid-stream resume for very long traces: completed
        windows recorded in the checkpoint are skipped, progress is
        flushed every ``checkpoint.every`` windows, and the final report
        — per-window results are history-independent, so skipping served
        windows changes nothing — is bit-identical to an uninterrupted
        run (wall time and store-cache stats reflect the work each
        session actually did).
        """
        runner = self.runner
        soc = runner.soc
        stats = soc.vwr2a.config_mem.stats
        report = StreamReport(
            config=self.config,
            engine=soc.vwr2a.engine,
            window=getattr(stream, "window", 0),
            hop=getattr(stream, "hop", 0),
            double_buffered=self.double_buffer,
        )
        if checkpoint is not None:
            checkpoint, state = resume_session(checkpoint, stream_fingerprint(
                stream, self.config, soc.vwr2a.engine,
                self.double_buffer, pipeline=self.pipeline,
                energy_model=self.energy_model,
            ))
        else:
            # No checkpoint: a scratch state accumulates the session
            # (same single code path, no O(trace) fingerprint hash).
            state = CheckpointState(
                fingerprint={"n_windows": getattr(stream, "n_windows", 0)}
            )
        log = runner.launch_log
        owns_log = log is None
        if owns_log:
            log = []
            runner.launch_log = log
        done_before = state.n_done
        wall_base = state.wall_seconds
        wall_start = time.perf_counter()
        try:
            for window in stream:
                if window.index in state.results:
                    continue
                window_stats = stats.snapshot()
                result = self.serve_window(window, log)
                state.results[window.index] = result
                merge_counts(state.store_stats, stats.since(window_stats))
                if checkpoint is not None:
                    state.wall_seconds = \
                        wall_base + time.perf_counter() - wall_start
                    checkpoint.mark(state)
        except BaseException:
            # Mirror the pool's durability contract: flush completed
            # windows before the failure propagates, whatever the
            # cadence, so the resume re-serves nothing.
            if checkpoint is not None and state.n_done > done_before:
                flush_session(state, checkpoint, wall_base, wall_start)
            raise
        finally:
            if owns_log:
                runner.launch_log = None
            if self.double_buffer:
                # Leave the runner with its full staging area again.
                runner.set_sram_region(0, soc.sram.n_words)
        return finalize_session(
            report, state, checkpoint, wall_base, wall_start,
            served=state.n_done > done_before,
        )

    # -- one window ---------------------------------------------------------

    def serve_window(self, window, log) -> WindowResult:
        """Serve one :class:`~repro.serve.Window` on this scheduler's runner.

        The pool workers' unit of work: stages the window under the
        scheduler's SRAM policy, runs the pipeline, and captures the
        per-window cycle/event/staging/energy deltas. ``log`` must be the
        runner's active launch log.
        """
        runner = self.runner
        soc = runner.soc
        if self.double_buffer:
            half = soc.sram.n_words // 2
            runner.set_sram_region((window.index % 2) * half, half)
        elif self.reset_sram:
            runner.reset_sram()
        events_before = soc.events.snapshot()
        cpu_before = soc.cpu.active_cycles + soc.cpu.sleep_cycles
        staging_before = dict(runner.staging_cycles)
        log_start = len(log)

        app = self.pipeline(runner, window.samples)

        cycles = (
            soc.cpu.active_cycles + soc.cpu.sleep_cycles - cpu_before
        )
        energy_uj = None
        kernel_energy = None
        if self.energy_model is not None:
            if getattr(app, "steps", None) is not None:
                energy_uj = app_energy_uj(
                    self.energy_model, self.config, app
                )
            # Histogram-native per-kernel attribution: fold each compiled
            # launch's static block deltas straight to pJ (no event-dict
            # materialization; reference-fallback launches carry no
            # histogram and are attributed nothing here).
            kernel_energy = {}
            for result in log[log_start:]:
                if result.block_histogram:
                    folded = self.energy_model.fold_histogram(
                        (delta, count)
                        for _, _, count, delta in result.block_histogram
                    ).total_pj
                    kernel_energy[result.name] = \
                        kernel_energy.get(result.name, 0.0) + folded
        return WindowResult(
            index=window.index,
            start=window.start,
            app=app,
            cycles=cycles,
            events=soc.events.diff(events_before),
            launches=tuple(log[log_start:]),
            staging_in_cycles=(
                runner.staging_cycles["in"] - staging_before["in"]
            ),
            staging_out_cycles=(
                runner.staging_cycles["out"] - staging_before["out"]
            ),
            energy_uj=energy_uj,
            kernel_energy_pj=kernel_energy,
        )
