"""The batched window-stream scheduler.

One :class:`StreamScheduler` owns a :class:`~repro.kernels.KernelRunner`
and feeds it a :class:`~repro.serve.WindowStream`, amortizing every
per-launch cost the single-shot flow pays repeatedly:

* **store once** — kernels regenerated per window dedupe in the
  configuration memory (PR-2 structural store cache) and reuse their
  compiled programs and SPM-conflict verdicts; the per-stream cache delta
  is reported on :attr:`StreamReport.store_stats`;
* **SRAM recycling** — the staging bump allocator is rewound between
  windows (:meth:`KernelRunner.reset_sram`) instead of growing without
  bound;
* **double-buffered staging** — staging alternates between two half-SRAM
  regions, so window *k*'s staged data (including staged-out results)
  survives while window *k+1* stages in. DMA cost is length-based, so the
  alternation changes no cycle or event accounting — per-window results
  are bit-identical to a sequential ``run_application`` loop, and the
  hidden-latency estimate is reported separately
  (:attr:`StreamReport.overlap_saved_cycles`);
* **per-window deltas** — events, cycles, kernel launches (with their
  engine/fallback decisions off :class:`~repro.core.RunResult`) and
  optionally energy are captured per window into a
  :class:`~repro.serve.StreamReport`.
"""

from __future__ import annotations

import time

from repro.app.mbiotracker import window_pipeline
from repro.kernels.runner import KernelRunner
from repro.serve.report import StreamReport, WindowResult, app_energy_uj


class StreamScheduler:
    """Runs a window stream through one runner with amortized staging.

    ``pipeline`` is any ``(runner, samples) -> result`` callable; when
    omitted it is built from ``config``/``params`` via
    :func:`repro.app.mbiotracker.window_pipeline` (the MBioTracker
    application). ``energy_model`` may be ``None`` (skip energy), ``True``
    (use :func:`repro.energy.default_model`) or an
    :class:`~repro.energy.EnergyModel` instance; energy is only computed
    for results that carry application steps.

    ``double_buffer`` alternates staging between two half-SRAM regions
    (see the module docstring); ``reset_sram`` controls the plain rewind
    used when double buffering is off — pass ``False`` only if you manage
    SRAM-resident buffers through the runner yourself.
    """

    def __init__(self, config: str = "cpu_vwr2a",
                 runner: KernelRunner = None, params=None,
                 pipeline=None, reset_sram: bool = True,
                 double_buffer: bool = True, energy_model=None) -> None:
        # A pipeline that declares its configuration (window_pipeline
        # does) wins over the default, so energy attribution and the
        # report label follow what actually runs.
        self.config = (
            getattr(pipeline, "config", config)
            if pipeline is not None else config
        )
        self.runner = runner if runner is not None else KernelRunner()
        self.pipeline = (
            pipeline if pipeline is not None
            else window_pipeline(config, params)
        )
        self.reset_sram = reset_sram
        self.double_buffer = double_buffer
        if energy_model is True:
            from repro.energy import default_model

            energy_model = default_model()
        self.energy_model = energy_model or None

    def run(self, stream) -> StreamReport:
        """Serve every window of ``stream``; returns the stream report."""
        runner = self.runner
        soc = runner.soc
        report = StreamReport(
            config=self.config,
            engine=soc.vwr2a.engine,
            window=getattr(stream, "window", 0),
            hop=getattr(stream, "hop", 0),
            double_buffered=self.double_buffer,
        )
        store_before = soc.vwr2a.config_mem.stats.snapshot()
        log = runner.launch_log
        owns_log = log is None
        if owns_log:
            log = []
            runner.launch_log = log
        wall_start = time.perf_counter()
        try:
            for window in stream:
                report.windows.append(self._serve_window(window, log))
        finally:
            if owns_log:
                runner.launch_log = None
            if self.double_buffer:
                # Leave the runner with its full staging area again.
                runner.set_sram_region(0, soc.sram.n_words)
        report.wall_seconds = time.perf_counter() - wall_start
        report.store_stats = soc.vwr2a.config_mem.stats.since(store_before)
        return report

    # -- one window ---------------------------------------------------------

    def _serve_window(self, window, log) -> WindowResult:
        runner = self.runner
        soc = runner.soc
        if self.double_buffer:
            half = soc.sram.n_words // 2
            runner.set_sram_region((window.index % 2) * half, half)
        elif self.reset_sram:
            runner.reset_sram()
        events_before = soc.events.snapshot()
        cpu_before = soc.cpu.active_cycles + soc.cpu.sleep_cycles
        staging_before = dict(runner.staging_cycles)
        log_start = len(log)

        app = self.pipeline(runner, window.samples)

        cycles = (
            soc.cpu.active_cycles + soc.cpu.sleep_cycles - cpu_before
        )
        energy_uj = None
        if self.energy_model is not None \
                and getattr(app, "steps", None) is not None:
            energy_uj = app_energy_uj(self.energy_model, self.config, app)
        return WindowResult(
            index=window.index,
            start=window.start,
            app=app,
            cycles=cycles,
            events=soc.events.diff(events_before),
            launches=tuple(log[log_start:]),
            staging_in_cycles=(
                runner.staging_cycles["in"] - staging_before["in"]
            ),
            staging_out_cycles=(
                runner.staging_cycles["out"] - staging_before["out"]
            ),
            energy_uj=energy_uj,
        )
