"""Stream checkpointing: resume very long traces mid-stream.

A :class:`StreamCheckpoint` periodically serializes the progress of a
served stream — the set of completed :class:`~repro.serve.WindowResult`
objects (the stream cursor falls out of their indices), the accumulated
store-cache counters and the wall-clock spent so far — so a killed
multi-hour serving run resumes where it stopped and still produces a
final :class:`~repro.serve.StreamReport` bit-identical to an
uninterrupted run (per-window results are history-independent; see
docs/parallel.md for the determinism argument).

Checkpoints are engine-agnostic on the *serving* side: a stream started
under the single-process :class:`~repro.serve.StreamScheduler` can be
resumed by a :class:`~repro.serve.PoolScheduler` with any worker count,
and vice versa — the fingerprint pins the stream contents, the window
shape, the platform configuration and the pipeline, not the executor.

The on-disk format is a pickled :class:`CheckpointState` written
atomically (temp file + ``os.replace``); a fingerprint mismatch on load
raises instead of silently mixing two different streams.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
import warnings
from dataclasses import dataclass, field, is_dataclass

from repro.core.errors import ConfigurationError
from repro.obs.bus import get_bus

#: Bump when CheckpointState stops being readable by older code.
#: v2 added the quarantine ledger (``failed``) and resilience counters;
#: v3 added per-worker fleet namespaces.
FORMAT_VERSION = 3


def describe(obj) -> str:
    """A restart-stable description of a pipeline/params object.

    Dataclasses (the :class:`~repro.app.AppParams` /
    :class:`~repro.app.mbiotracker.WindowPipeline` case) are pinned by
    their full ``repr``. Other instances are pinned by qualified type
    name plus their sorted instance attributes — a resume with the same
    pipeline class but different parameters must not silently mix two
    serving jobs. Object ``repr`` defaults are avoided (they embed
    memory addresses, which would make every restart look like a
    different stream); attribute values with address-bearing reprs can
    at worst refuse a legitimate resume, never accept a wrong one.
    """
    if obj is None:
        return "none"
    if is_dataclass(obj) and not isinstance(obj, type):
        return repr(obj)
    name = getattr(obj, "__qualname__", None)
    module = getattr(obj, "__module__", None)
    if name is None or module is None:
        name = type(obj).__qualname__
        module = type(obj).__module__
    # Functions: captured cells and defaults are parameters too — two
    # closures from the same factory must not fingerprint identically.
    closure = getattr(obj, "__closure__", None)
    defaults = getattr(obj, "__defaults__", None)
    if closure or defaults:
        parts = []
        if defaults:
            parts.append(f"defaults={defaults!r}")
        if closure:
            try:
                cells = tuple(cell.cell_contents for cell in closure)
            except ValueError:  # unset cell
                cells = "<unset>"
            parts.append(f"closure={cells!r}")
        return f"{module}.{name}[{', '.join(parts)}]"
    attrs = getattr(obj, "__dict__", None)
    if attrs:
        detail = ", ".join(
            f"{key}={value!r}" for key, value in sorted(attrs.items())
        )
        return f"{module}.{name}({detail})"
    return f"{module}.{name}"


def describe_energy(model) -> str:
    """Restart-stable description of a scheduler's energy model setting.

    ``None`` (energy off) and the calibrated default model must never be
    confused across a resume — half the windows would carry µJ values
    and the other half ``None``. The ``True`` sentinel and an instance
    equal to :func:`repro.energy.default_model` both describe as
    ``"default"``, so pool- and single-process-written checkpoints stay
    interchangeable whichever spelling the resuming side uses.
    """
    if model is None:
        return "none"
    if model is True:
        return "default"
    from repro.energy import EnergyModel, default_model

    if isinstance(model, EnergyModel):
        default = default_model()
        table = getattr(model, "table", None)
        clock_hz = getattr(model, "clock_hz", None)
        if table == default.table and clock_hz == default.clock_hz:
            return "default"
        return f"{describe(model)}[{table!r}, clock_hz={clock_hz}]"
    return describe(model)


def stream_fingerprint(stream, config: str, engine: str,
                       double_buffered: bool, pipeline=None,
                       energy_model=None) -> dict:
    """Identity of one serving job: what a checkpoint may resume.

    Hashes the full trace (a resume against different data must fail
    loudly) and pins every knob that changes per-window results or the
    report shape. Deliberately excludes the executor — worker counts,
    sharding and feeder settings are free to change across restarts.
    """
    digest = hashlib.sha256()
    for value in stream.trace:
        # repr, not int(): float traces must not collide with their
        # truncations (custom pipelines may serve non-integer samples).
        digest.update(repr(value).encode())
        digest.update(b",")
    return {
        "version": FORMAT_VERSION,
        "trace_sha256": digest.hexdigest(),
        "trace_len": len(stream.trace),
        "window": stream.window,
        "hop": stream.hop,
        "tail": stream.tail,
        "n_windows": stream.n_windows,
        "config": config,
        "engine": engine,
        "double_buffered": double_buffered,
        "pipeline": describe(pipeline),
        "energy": describe_energy(energy_model),
    }


@dataclass
class CheckpointState:
    """Everything a resume needs: fingerprint + completed windows."""

    fingerprint: dict
    #: window index -> WindowResult of every completed window.
    results: dict = field(default_factory=dict)
    #: store-cache counter deltas accumulated over all sessions/workers.
    store_stats: dict = field(default_factory=dict)
    #: serving wall-clock accumulated over all sessions.
    wall_seconds: float = 0.0
    #: window index -> FailedWindow of every quarantined window. A
    #: session accounts a stream complete when results + failed cover
    #: it; a *resume* clears this ledger first and re-attempts the
    #: quarantined windows — quarantine is a per-session verdict, not a
    #: permanent one (the faults that caused it may be gone).
    failed: dict = field(default_factory=dict)
    #: resilience counters accumulated over all sessions/workers.
    resilience: dict = field(default_factory=dict)
    #: per-worker bookkeeping namespaces, keyed by worker name — the
    #: fleet server records each remote worker's served-window and
    #: reconnect tallies here so a resumed session (possibly on a
    #: different server host) still reports who did what. Purely
    #: observational: resume correctness never depends on it.
    namespaces: dict = field(default_factory=dict)

    @property
    def n_done(self) -> int:
        return len(self.results)

    @property
    def n_failed(self) -> int:
        return len(self.failed)

    @property
    def n_windows(self) -> int:
        return self.fingerprint["n_windows"]

    @property
    def complete(self) -> bool:
        """Every window is accounted for — served or quarantined."""
        return self.n_done + self.n_failed >= self.n_windows


class StreamCheckpoint:
    """Periodic, atomic serialization of stream progress to one file.

    ``every`` is the save cadence in completed windows (via
    :meth:`mark`); explicit :meth:`save` calls (end of run, abort paths)
    flush regardless. The file lives at ``path`` and is replaced
    atomically, so a kill mid-save leaves the previous checkpoint intact.

    Each flush rewrites the whole state, so total checkpoint cost over a
    stream is O(n_windows² / every) window serializations — scale
    ``every`` with the stream (e.g. ~1% of its windows) on very long
    traces; the default suits streams up to a few thousand windows.
    """

    def __init__(self, path, every: int = 8) -> None:
        if every <= 0:
            raise ConfigurationError(
                f"checkpoint cadence must be positive, got {every}"
            )
        self.path = os.fspath(path)
        self.every = every
        self._since_save = 0

    # -- persistence --------------------------------------------------------

    def load(self) -> CheckpointState:
        """The saved state, or ``None`` when no checkpoint exists yet.

        A corrupted or truncated file — a crash mid-write on a filesystem
        without atomic replace, torn storage, or plain bit rot — is
        treated as *no checkpoint*, with an explicit warning: the stream
        re-serves from scratch rather than surfacing an unpickling
        traceback hours into a resume. A file that unpickles cleanly but
        is the wrong type or format version still raises — that is a
        usage error, not damage.
        """
        if not os.path.exists(self.path):
            return None
        try:
            with open(self.path, "rb") as handle:
                state = pickle.load(handle)
        except Exception as exc:
            warnings.warn(
                f"checkpoint {self.path!r} is corrupted or truncated "
                f"({type(exc).__name__}: {exc}); starting the stream "
                "fresh",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        if not isinstance(state, CheckpointState):
            raise ConfigurationError(
                f"{self.path!r} is not a stream checkpoint"
            )
        version = state.fingerprint.get("version")
        if version != FORMAT_VERSION:
            raise ConfigurationError(
                f"checkpoint {self.path!r} has format version {version}, "
                f"this code reads version {FORMAT_VERSION}"
            )
        return state

    def resume(self, fingerprint: dict) -> CheckpointState:
        """Load-or-create the state for the stream ``fingerprint`` pins.

        A missing file starts a fresh state; an existing checkpoint for a
        *different* stream (other trace, window shape, config, engine,
        pipeline...) raises naming the first mismatching field.
        """
        state = self.load()
        if state is None:
            return CheckpointState(fingerprint=fingerprint)
        if state.fingerprint != fingerprint:
            for name, expected in fingerprint.items():
                saved = state.fingerprint.get(name)
                if saved != expected:
                    raise ConfigurationError(
                        f"checkpoint {self.path!r} belongs to a different "
                        f"stream: {name} is {saved!r}, resuming stream has "
                        f"{expected!r}"
                    )
        return state

    def save(self, state: CheckpointState) -> None:
        """Atomically and durably write ``state`` to :attr:`path`.

        The temp file is fsynced before the atomic replace — without it,
        a power loss after ``os.replace`` can leave the *name* pointing
        at unwritten data, which is exactly the torn checkpoint
        :meth:`load` then has to discard. The directory entry is synced
        too (best-effort; not every filesystem supports it).
        """
        directory = os.path.dirname(os.path.abspath(self.path))
        handle, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".checkpoint-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as tmp:
                pickle.dump(state, tmp, protocol=pickle.HIGHEST_PROTOCOL)
                tmp.flush()
                os.fsync(tmp.fileno())
            os.replace(tmp_path, self.path)
            try:
                dir_fd = os.open(directory, os.O_RDONLY)
            except OSError:
                pass
            else:
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        self._since_save = 0
        bus = get_bus()
        if bus is not None:
            bus.inc("repro_checkpoint_saves_total")
            bus.set_gauge("repro_checkpoint_lag_windows", 0)

    def mark(self, state: CheckpointState) -> bool:
        """Count one completed window; save when the cadence is due.

        Returns whether this mark flushed to disk.
        """
        self._since_save += 1
        if self._since_save >= self.every:
            self.save(state)
            return True
        bus = get_bus()
        if bus is not None:
            bus.set_gauge(
                "repro_checkpoint_lag_windows", self._since_save
            )
        return False

    def clear(self) -> None:
        """Delete the checkpoint file (e.g. after a fully served run)."""
        if os.path.exists(self.path):
            os.unlink(self.path)
        self._since_save = 0

    def __repr__(self) -> str:
        return f"StreamCheckpoint({self.path!r}, every={self.every})"


# -- the session protocol shared by StreamScheduler and PoolScheduler --------


def resume_session(checkpoint, fingerprint: dict):
    """Coerce a path into a :class:`StreamCheckpoint` and load its state.

    Returns ``(checkpoint, state)``; the one entry point both schedulers
    use, so resume validation cannot drift between them. Windows the
    previous session quarantined are released for re-attempt: the fault
    conditions that exhausted their retries (a hostile fault plan, a
    dying host) do not necessarily hold in this session, and a resume is
    the natural amnesty point. Their failure pedigree stays in the
    resilience counters.
    """
    if not isinstance(checkpoint, StreamCheckpoint):
        checkpoint = StreamCheckpoint(checkpoint)
    state = checkpoint.resume(fingerprint)
    if state.failed:
        from repro.serve.report import merge_counts

        merge_counts(
            state.resilience, {"requarantine_released": len(state.failed)}
        )
        state.failed.clear()
    return checkpoint, state


def flush_session(state: CheckpointState, checkpoint,
                  wall_base: float, wall_start: float) -> None:
    """Persist a session's progress with up-to-date wall accounting.

    The failure-path flush: both schedulers call this right before an
    error propagates, so completed windows survive whatever the cadence.
    """
    state.wall_seconds = wall_base + time.perf_counter() - wall_start
    checkpoint.save(state)


def finalize_session(report, state: CheckpointState, checkpoint,
                     wall_base: float, wall_start: float,
                     served: bool = True):
    """Assemble the final report of a (possibly resumed) session.

    Merges the state's windows in index order, adopts its accumulated
    store stats and wall clock, and flushes the completed state when a
    checkpoint is configured. A session that served nothing (replaying
    an already-complete checkpoint) passes ``served=False``: the
    historical wall clock is reported untouched and the file is not
    rewritten — repeated replays must not inflate the serving-time
    accounting with fingerprinting overhead. Returns ``report``.
    """
    for index in sorted(state.results):
        report.add_window(state.results[index])
    for index in sorted(state.failed):
        report.add_failed(state.failed[index])
    if served:
        state.wall_seconds = wall_base + time.perf_counter() - wall_start
        if checkpoint is not None:
            checkpoint.save(state)
    report.wall_seconds = state.wall_seconds
    report.store_stats = dict(state.store_stats)
    report.resilience = dict(state.resilience)
    return report
