"""Parallel multi-instance serving: one window stream, N platforms.

Every window of a :class:`~repro.serve.WindowStream` is independent once
the engine decision for its kernels is made at compile time, so a long
trace shards embarrassingly: a :class:`PoolScheduler` runs N worker
processes, each owning its **own** simulated platform (a fresh
:class:`~repro.kernels.KernelRunner` built worker-side from a picklable
:class:`~repro.kernels.runner.RunnerFactory`, with the store-once config
cache warming on the worker's first window — or eagerly via
:meth:`KernelRunner.warm`), and merges the per-window
:class:`~repro.serve.WindowResult` objects back into one order-stable
:class:`~repro.serve.StreamReport`.

**Determinism.** Per-window results are history-independent: a window
served on a cold platform is bit-identical (cycles, events, energy,
engine decisions, features, labels) to the same window served mid-stream
on a warm one — ``tests/test_serve.py`` proves it against the sequential
flow, ``tests/test_pool.py`` against this pool. Sharding therefore
changes *nothing* about the report except host-side wall time and the
``store_stats`` counters, which honestly total the cache work all
workers actually did (N cold stores instead of one). See
docs/parallel.md.

**Feeding.** Trace slicing happens on a host-side feeder thread that
keeps a bounded task queue topped up, so window materialization (tuple
slicing of multi-hour traces) overlaps window execution in the workers.

**Checkpointing.** Passing a :class:`~repro.serve.StreamCheckpoint` (or
a path) to :meth:`PoolScheduler.run` persists completed windows as their
results arrive; a killed run resumes mid-stream — with any worker count,
or even under the single-process scheduler — and the final report is
bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue
import sys
import threading
import time
import traceback
from dataclasses import dataclass

from repro.app.mbiotracker import window_pipeline
from repro.core.errors import ConfigurationError, SimulationError
from repro.kernels.runner import RunnerFactory
from repro.serve.checkpoint import (
    CheckpointState,
    finalize_session,
    flush_session,
    resume_session,
    stream_fingerprint,
)
from repro.serve.report import StreamReport, merge_counts
from repro.serve.scheduler import StreamScheduler
from repro.serve.stream import Window, WindowStream

#: Seconds between liveness checks while waiting on worker results.
_POLL_SECONDS = 0.1


def _default_start_method() -> str:
    """``"fork"`` on Linux (workers inherit warm structural memos),
    ``"spawn"`` everywhere else — the one policy for pools and sweeps.

    Fork is deliberately not preferred on macOS even though it is
    available there: CPython switched its default to spawn (bpo-33725)
    because forked children can crash in system frameworks.
    """
    if sys.platform == "linux" \
            and "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


class PoolWorkerError(SimulationError):
    """A pool worker failed; carries the worker-side traceback."""

    def __init__(self, worker_id, window_index, details: str) -> None:
        who = (
            "pool feeder thread" if worker_id == "feeder"
            else f"pool worker {worker_id}"
        )
        where = (
            f" at window {window_index}" if window_index is not None
            else ""
        )
        super().__init__(
            f"{who} failed{where} "
            "(completed windows are checkpointed when a checkpoint is "
            f"configured):\n{details}"
        )
        self.worker_id = worker_id
        self.window_index = window_index
        self.details = details


@dataclass(frozen=True)
class _WorkerSpec:
    """Everything a worker needs to build its platform — all picklable."""

    config: str
    pipeline: object
    double_buffer: bool
    energy_model: object
    runner_factory: object
    warm_samples: tuple


def _worker_main(worker_id: int, spec: _WorkerSpec, tasks, results) -> None:
    """Worker process body: own platform, serve windows until sentinel."""
    # Exception (not BaseException) throughout: KeyboardInterrupt /
    # SystemExit must kill the worker outright — the host's liveness
    # polling reports dead workers — rather than be wrapped as a
    # per-window error while the worker keeps draining its queue.
    try:
        runner = spec.runner_factory()
        scheduler = StreamScheduler(
            config=spec.config,
            runner=runner,
            pipeline=spec.pipeline,
            double_buffer=spec.double_buffer,
            energy_model=spec.energy_model,
        )
        log = []
        runner.launch_log = log
        if spec.warm_samples is not None:
            runner.warm(scheduler.pipeline, spec.warm_samples)
        stats = runner.soc.vwr2a.config_mem.stats
        engine = runner.soc.vwr2a.engine
    except Exception:
        results.put(("crash", worker_id, traceback.format_exc()))
        return
    while True:
        task = tasks.get()
        if task is None:
            break
        window = Window(index=task[0], start=task[1], samples=task[2])
        # The result ships the window's launches to the host; drop the
        # previous window's entries so the log does not grow for the
        # worker's whole lifetime (multi-hour streams, many launches).
        del log[:]
        before = stats.snapshot()
        try:
            result = scheduler.serve_window(window, log)
        except Exception:
            results.put((
                "err", worker_id, window.index, traceback.format_exc()
            ))
            continue
        results.put(("ok", worker_id, result, stats.since(before)))
    results.put(("fin", worker_id, engine))


class PoolScheduler:
    """Shards a window stream across N worker-owned platform instances.

    The drop-in parallel sibling of :class:`~repro.serve.StreamScheduler`
    for CPU-bound serving: same report, ``workers``-way process
    parallelism. The pipeline must be picklable — the default MBioTracker
    :class:`~repro.app.mbiotracker.WindowPipeline` is; custom pipelines
    should be module-level classes, not closures. ``runner_factory``
    builds each worker's platform (engine choice lives there);
    ``warm=True`` has every worker pre-run the stream's first window once
    to take cold-cache costs off its first served window; ``prefetch``
    bounds the feeder queue (windows buffered per worker);
    ``start_method`` picks the :mod:`multiprocessing` context (default
    ``"fork"`` where available — workers then inherit the parent's warm
    structural compile/conflict memos — else ``"spawn"``).
    """

    def __init__(self, config: str = "cpu_vwr2a", workers: int = 2,
                 params=None, pipeline=None, energy_model=None,
                 double_buffer: bool = True, runner_factory=None,
                 warm: bool = False, prefetch: int = 4,
                 start_method: str = None) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"a pool needs at least one worker, got {workers}"
            )
        if prefetch < 1:
            raise ConfigurationError(
                f"prefetch must be at least 1 window, got {prefetch}"
            )
        self.config = (
            getattr(pipeline, "config", config)
            if pipeline is not None else config
        )
        self.workers = workers
        self.pipeline = (
            pipeline if pipeline is not None
            else window_pipeline(config, params)
        )
        self.energy_model = energy_model
        self.double_buffer = double_buffer
        self.runner_factory = (
            runner_factory if runner_factory is not None else RunnerFactory()
        )
        self.warm = warm
        self.prefetch = prefetch
        self.start_method = (
            start_method if start_method is not None
            else _default_start_method()
        )
        self._probed_engine = None

    @property
    def engine(self) -> str:
        """Engine of the worker platforms (for reports/fingerprints).

        Factories following the :class:`~repro.kernels.runner.RunnerFactory`
        convention declare it through an ``engine`` attribute; when that
        is absent or ``None`` (platform default), the factory is probed
        once by building a throwaway runner — fingerprints and reports
        record what workers actually run, never a guessed constant.
        """
        engine = getattr(self.runner_factory, "engine", None)
        if engine is not None:
            return engine
        if self._probed_engine is None:
            if isinstance(self.runner_factory, RunnerFactory):
                # A stock factory with engine=None defers to the SoC
                # default: read the platform's own constant rather than
                # building a throwaway platform.
                from repro.soc.platform import DEFAULT_ENGINE

                self._probed_engine = DEFAULT_ENGINE
            else:
                self._probed_engine = \
                    self.runner_factory().soc.vwr2a.engine
        return self._probed_engine

    def run(self, stream, checkpoint=None) -> StreamReport:
        """Serve ``stream`` across the pool; returns the merged report.

        With ``checkpoint`` (a :class:`~repro.serve.StreamCheckpoint` or
        path), previously completed windows are skipped and progress is
        persisted as results arrive — including on worker failure, right
        before :class:`PoolWorkerError` is raised.
        """
        if checkpoint is not None:
            checkpoint, state = resume_session(checkpoint, stream_fingerprint(
                stream, self.config, self.engine, self.double_buffer,
                pipeline=self.pipeline, energy_model=self.energy_model,
            ))
        else:
            # No checkpoint: skip the O(trace) fingerprint hash and use
            # a scratch state that only tracks completion.
            state = CheckpointState(
                fingerprint={"n_windows": stream.n_windows}
            )
        wall_base = state.wall_seconds
        # The serving clock starts after fingerprinting/resume, matching
        # StreamScheduler — wall_seconds accounts serving, not hashing.
        wall_start = time.perf_counter()
        served = not state.complete
        if served:
            engine = self._serve_remaining(
                stream, state, checkpoint, wall_base, wall_start
            )
        else:
            # A fully-checkpointed resume serves nothing: take the
            # engine the checkpoint recorded (probe only as a fallback).
            engine = state.fingerprint.get("engine") or self.engine
        report = StreamReport(
            config=self.config,
            engine=engine,
            window=getattr(stream, "window", 0),
            hop=getattr(stream, "hop", 0),
            double_buffered=self.double_buffer,
        )
        return finalize_session(
            report, state, checkpoint, wall_base, wall_start,
            served=served,
        )

    # -- the pool proper ----------------------------------------------------

    def _spec(self, stream) -> _WorkerSpec:
        warm_samples = None
        if self.warm and len(stream):
            warm_samples = stream[0].samples
        spec = _WorkerSpec(
            config=self.config,
            pipeline=self.pipeline,
            double_buffer=self.double_buffer,
            energy_model=self.energy_model,
            runner_factory=self.runner_factory,
            warm_samples=warm_samples,
        )
        try:
            pickle.dumps(spec)
        except Exception as exc:
            raise ConfigurationError(
                "pool workers receive the pipeline/energy model/runner "
                f"factory by value, and this one does not pickle: {exc} "
                "(use a module-level pipeline class instead of a closure)"
            ) from exc
        return spec

    def _serve_remaining(self, stream, state: CheckpointState,
                         checkpoint, wall_base: float,
                         wall_start: float) -> str:
        todo = stream.n_windows - state.n_done
        n_workers = max(1, min(self.workers, todo))
        context = multiprocessing.get_context(self.start_method)
        tasks = context.Queue(maxsize=n_workers * self.prefetch)
        results = context.Queue()
        spec = self._spec(stream)
        procs = [
            context.Process(
                target=_worker_main, args=(i, spec, tasks, results),
                daemon=True,
            )
            for i in range(n_workers)
        ]
        for proc in procs:
            proc.start()
        abort = threading.Event()
        feed_failure = []

        def feed():
            """Slice windows and keep the bounded task queue topped up.

            Runs on a host thread so trace slicing (window
            materialization) overlaps window execution in the workers.
            Always chases the windows with one sentinel per worker —
            including when slicing itself fails (lazy traces can raise
            mid-stream); the error is recorded and surfaced by the host
            loop, never swallowed into a hang.
            """
            try:
                for window in stream:
                    if window.index in state.results:
                        continue
                    if abort.is_set():
                        break
                    item = (window.index, window.start, window.samples)
                    if not self._put(tasks, item, procs, abort_ok=abort):
                        break
            except Exception:
                feed_failure.append(traceback.format_exc())
                abort.set()
            finally:
                for _ in procs:
                    self._put(tasks, None, procs)

        feeder = threading.Thread(target=feed, daemon=True)
        feeder.start()

        failure = None
        engines = set()
        fins = 0

        def handle(message):
            nonlocal failure, fins
            kind = message[0]
            if kind == "ok":
                _, _, result, stats_delta = message
                if result.index in state.results:
                    raise SimulationError(
                        f"window {result.index} was served twice — "
                        "sharding bug"
                    )
                state.results[result.index] = result
                merge_counts(state.store_stats, stats_delta)
                if checkpoint is not None:
                    state.wall_seconds = (
                        wall_base + time.perf_counter() - wall_start
                    )
                    checkpoint.mark(state)
            elif kind == "err":
                _, worker_id, index, details = message
                if failure is None:
                    failure = (worker_id, index, details)
                abort.set()
            elif kind == "crash":
                _, worker_id, details = message
                fins += 1
                if failure is None:
                    failure = (worker_id, None, details)
                abort.set()
            elif kind == "fin":
                fins += 1
                engines.add(message[2])

        try:
            while fins < n_workers:
                try:
                    handle(results.get(timeout=_POLL_SECONDS))
                except queue.Empty:
                    if any(proc.is_alive() for proc in procs):
                        continue
                    # All workers are gone. Their last messages may
                    # still be in flight in the queue pipe — drain them
                    # before deciding anything was actually lost.
                    try:
                        while fins < n_workers:
                            handle(results.get(timeout=_POLL_SECONDS))
                    except queue.Empty:
                        pass
                    if fins < n_workers and failure is None:
                        failure = (
                            -1, None,
                            "pool workers died without reporting "
                            "(killed?)",
                        )
                    break
        except BaseException:
            # Host-side interruption (Ctrl-C, internal error): the same
            # durability contract as worker failure — flush completed
            # windows before the exception propagates.
            if checkpoint is not None:
                flush_session(state, checkpoint, wall_base, wall_start)
            raise
        finally:
            abort.set()
            feeder.join(timeout=10.0)
            for proc in procs:
                proc.join(timeout=10.0)
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            tasks.close()
            results.close()
        if failure is None and feed_failure:
            failure = (
                "feeder", None,
                f"trace slicing failed mid-stream:\n{feed_failure[0]}",
            )
        if failure is not None:
            if checkpoint is not None:
                flush_session(state, checkpoint, wall_base, wall_start)
            raise PoolWorkerError(*failure)
        if len(engines) > 1:
            raise SimulationError(
                f"pool workers disagree on the engine: {sorted(engines)}"
            )
        if not state.complete:
            raise SimulationError(
                f"pool finished with {state.n_done}/{stream.n_windows} "
                "windows served — sharding bug"
            )
        return engines.pop() if engines else self.engine

    @staticmethod
    def _put(tasks, item, procs, abort_ok=None) -> bool:
        """Timed put that gives up when the pool is aborting or dead."""
        while True:
            try:
                tasks.put(item, timeout=_POLL_SECONDS)
                return True
            except queue.Full:
                if abort_ok is not None and abort_ok.is_set():
                    return False
                if not any(proc.is_alive() for proc in procs):
                    return False


# -- parameter sweeps over the pool -----------------------------------------


@dataclass(frozen=True)
class _SweepCasePayload:
    """One sweep case shipped to a worker process — all picklable.

    The (possibly huge) trace deliberately does not ride along: it is
    installed once per worker by :func:`_sweep_worker_init`, not once
    per case.
    """

    name: str
    config: str
    params: object
    window: int
    hop: int
    tail: str
    energy_model: object
    double_buffer: bool
    runner_factory: object


#: The sweep trace, installed worker-side by the pool initializer.
_SWEEP_TRACE = None


def _sweep_worker_init(trace) -> None:
    global _SWEEP_TRACE
    _SWEEP_TRACE = trace


def _sweep_case_main(payload: _SweepCasePayload):
    """Serve one sweep case on a fresh worker-side platform."""
    scheduler = StreamScheduler(
        config=payload.config,
        params=payload.params,
        runner=payload.runner_factory(),
        double_buffer=payload.double_buffer,
        energy_model=payload.energy_model,
    )
    stream = WindowStream(
        _SWEEP_TRACE, window=payload.window, hop=payload.hop,
        tail=payload.tail,
    )
    return payload.name, scheduler.run(stream)


def run_sweep_cases(payloads, trace, workers: int,
                    start_method: str = None):
    """Run sweep cases across a process pool; yields ``(name, report)``.

    Case order is preserved. Used by
    :class:`~repro.serve.ParameterSweep` when constructed with
    ``workers > 1``; each case gets a fresh platform, so per-window
    results match the shared-runner sweep bit-for-bit (history
    independence again) while ``store_stats`` reflect each case's own
    cold stores. ``trace`` is shipped once per worker (free under
    ``fork``), not once per case.
    """
    from concurrent.futures import ProcessPoolExecutor

    context = multiprocessing.get_context(
        start_method if start_method is not None
        else _default_start_method()
    )
    payloads = list(payloads)
    max_workers = max(1, min(workers, len(payloads)))
    with ProcessPoolExecutor(
        max_workers=max_workers, mp_context=context,
        initializer=_sweep_worker_init, initargs=(trace,),
    ) as pool:
        yield from pool.map(_sweep_case_main, payloads)
