"""Parallel multi-instance serving: one window stream, N platforms.

Every window of a :class:`~repro.serve.WindowStream` is independent once
the engine decision for its kernels is made at compile time, so a long
trace shards embarrassingly: a :class:`PoolScheduler` runs N worker
processes, each owning its **own** simulated platform (a fresh
:class:`~repro.kernels.KernelRunner` built worker-side from a picklable
:class:`~repro.kernels.runner.RunnerFactory`, with the store-once config
cache warming on the worker's first window — or eagerly via
:meth:`KernelRunner.warm`), and merges the per-window
:class:`~repro.serve.WindowResult` objects back into one order-stable
:class:`~repro.serve.StreamReport`.

**Determinism.** Per-window results are history-independent: a window
served on a cold platform is bit-identical (cycles, events, energy,
engine decisions, features, labels) to the same window served mid-stream
on a warm one — ``tests/test_serve.py`` proves it against the sequential
flow, ``tests/test_pool.py`` against this pool. Sharding therefore
changes *nothing* about the report except host-side wall time and the
``store_stats`` counters, which honestly total the cache work all
workers actually did (N cold stores instead of one). See
docs/parallel.md.

**Feeding.** Trace slicing happens on a host-side feeder thread that
keeps a bounded task queue topped up, so window materialization (tuple
slicing of multi-hour traces) overlaps window execution in the workers.

**Checkpointing.** Passing a :class:`~repro.serve.StreamCheckpoint` (or
a path) to :meth:`PoolScheduler.run` persists completed windows as their
results arrive; a killed run resumes mid-stream — with any worker count,
or even under the single-process scheduler — and the final report is
bit-identical to an uninterrupted one.

**Supervision.** Workers are expendable: the host tracks every window it
dispatched (per-worker task queues, in-flight ledgers), detects dead
workers by liveness/exit-code and hung ones by progress timeout, respawns
them within ``respawn_limit``, and walks spoiled windows down a bounded
retry ladder (``max_retries`` primary attempts, then one
reference-engine attempt) before quarantining them into
:attr:`StreamReport.failed_windows`. Deterministic chaos campaigns over
this machinery live in :mod:`repro.faults`; the taxonomy and semantics
are documented in docs/robustness.md.
"""

from __future__ import annotations

import collections
import multiprocessing
import pickle
import queue
import signal as _signal
import sys
import threading
import time
import traceback
from dataclasses import dataclass

from repro.app.mbiotracker import window_pipeline
from repro.core.errors import ConfigurationError, SimulationError
from repro.kernels.runner import KernelRunner, RunnerFactory
from repro.obs.bus import get_bus
from repro.obs.instruments import (
    record_failed,
    record_pool_state,
    record_progress,
    record_resilience,
    record_window,
    record_worker_retired,
)
from repro.serve.checkpoint import (
    CheckpointState,
    finalize_session,
    flush_session,
    resume_session,
    stream_fingerprint,
)
from repro.serve.report import FailedWindow, StreamReport, merge_counts
from repro.serve.scheduler import StreamScheduler
from repro.serve.stream import Window, WindowStream

#: Seconds between liveness checks while waiting on worker results.
_POLL_SECONDS = 0.1


def describe_exit(exitcode) -> str:
    """Diagnose a dead worker's exit code for humans.

    Signal deaths (:mod:`multiprocessing` reports them as negative exit
    codes; shells as ``128 + signum``) are named, with an explicit hint
    for SIGKILL — the one the OOM killer, a fault plan's ``worker_kill``
    and an external ``kill -9`` all share. A clean zero exit without a
    final report is called out too: it usually means the worker's result
    queue was torn down under it.
    """
    if exitcode is None:
        return "still running"
    if exitcode == 0:
        return (
            "exit code 0 — the worker exited cleanly without reporting "
            "(result queue torn down?)"
        )
    signum = None
    if exitcode < 0:
        signum = -exitcode
    elif exitcode > 128:
        signum = exitcode - 128
    if signum is not None:
        try:
            name = _signal.Signals(signum).name
        except ValueError:
            name = f"signal {signum}"
        hint = ""
        if signum == getattr(_signal, "SIGKILL", 9):
            hint = (
                " — killed hard: the kernel OOM killer, a fault plan's "
                "worker_kill, or an external kill -9"
            )
        return f"died on {name}{hint}"
    return f"exited with code {exitcode}"


def _drain_queue(q) -> None:
    """Best-effort drain so queue feeder threads never block shutdown."""
    try:
        while True:
            q.get_nowait()
    except (queue.Empty, OSError, ValueError):
        pass


def _default_start_method() -> str:
    """``"fork"`` on Linux (workers inherit warm structural memos),
    ``"spawn"`` everywhere else — the one policy for pools and sweeps.

    Fork is deliberately not preferred on macOS even though it is
    available there: CPython switched its default to spawn (bpo-33725)
    because forked children can crash in system frameworks.
    """
    if sys.platform == "linux" \
            and "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


class PoolWorkerError(SimulationError):
    """A pool worker failed; carries the worker-side traceback.

    Round-trips :mod:`pickle` losslessly (``__reduce__`` rebuilds from
    the original constructor arguments, not the formatted message), so a
    remote failure shipped over the fleet transport
    (:mod:`repro.serve.net`) or across a process boundary re-raises with
    the same ``worker_id``/``window_index``/``details`` — and the same
    rendered message — as a local one.
    """

    def __init__(self, worker_id, window_index, details: str) -> None:
        who = (
            "pool feeder thread" if worker_id == "feeder"
            else f"pool worker {worker_id}"
        )
        where = (
            f" at window {window_index}" if window_index is not None
            else ""
        )
        super().__init__(
            f"{who} failed{where} "
            "(completed windows are checkpointed when a checkpoint is "
            f"configured):\n{details}"
        )
        self.worker_id = worker_id
        self.window_index = window_index
        self.details = details

    def __reduce__(self):
        return (
            type(self),
            (self.worker_id, self.window_index, self.details),
        )


@dataclass(frozen=True)
class _WorkerSpec:
    """Everything a worker needs to build its platform — all picklable."""

    config: str
    pipeline: object
    double_buffer: bool
    energy_model: object
    runner_factory: object
    warm_samples: tuple
    fault_plan: object = None


class AttemptServer:
    """Worker-side serving core: one platform, one *attempt* per task.

    The execution body shared by pool worker processes
    (:func:`_worker_main`) and remote fleet workers
    (:class:`repro.serve.net.FleetWorker`): it builds a platform from a
    picklable :class:`_WorkerSpec`, arms the fault injector when the
    spec ships a plan, lazily builds a reference-engine twin for
    fallback attempts, and serves one
    ``(index, start, samples, attempt, force_reference)`` task at a
    time. :meth:`serve` returns the same verdicts the pool protocol
    speaks — ``("ok", result, stats_delta, force_reference)`` for a
    clean attempt, ``("retry", kinds)`` when an injected fault spoiled
    it — and lets genuine pipeline exceptions propagate so the caller
    can report them however its transport requires.

    ``process_faults`` arms the suicidal fault kinds (``worker_kill`` /
    ``worker_hang``); pass ``False`` for in-process workers (tests,
    thread-hosted fleet workers) where killing the worker would kill
    the host. ``before_process_fault`` is invoked right before a
    process fault strikes — pool workers flush their result queue
    there so SIGKILL cannot tear a half-written message.
    """

    def __init__(self, spec: _WorkerSpec, process_faults: bool = True,
                 before_process_fault=None) -> None:
        runner = spec.runner_factory()
        scheduler = StreamScheduler(
            config=spec.config,
            runner=runner,
            pipeline=spec.pipeline,
            double_buffer=spec.double_buffer,
            energy_model=spec.energy_model,
        )
        log = []
        runner.launch_log = log
        if spec.warm_samples is not None:
            runner.warm(scheduler.pipeline, spec.warm_samples)
        self._spec = spec
        self._runner = runner
        self._scheduler = scheduler
        self._log = log
        self._stats = runner.soc.vwr2a.config_mem.stats
        self.engine = runner.soc.vwr2a.engine
        self._injector = None
        self._is_fault_failure = None
        if spec.fault_plan is not None:
            from repro.faults.injector import (
                FaultInjector,
                is_fault_failure,
            )

            self._injector = FaultInjector(
                spec.fault_plan, process_faults=process_faults
            )
            self._injector.before_process_fault = before_process_fault
            self._is_fault_failure = is_fault_failure
        self._ref = None  # lazy (scheduler, log, stats) reference twin

    def _reference(self):
        if self._ref is None:
            # Same design point as the primary runner, golden engine.
            ref_runner = KernelRunner(
                engine="reference", spec=self._runner.spec
            )
            ref_log = []
            ref_runner.launch_log = ref_log
            self._ref = (
                StreamScheduler(
                    config=self._spec.config,
                    runner=ref_runner,
                    pipeline=self._spec.pipeline,
                    double_buffer=self._spec.double_buffer,
                    energy_model=self._spec.energy_model,
                ),
                ref_log,
                ref_runner.soc.vwr2a.config_mem.stats,
            )
        return self._ref

    def serve(self, index: int, start: int, samples,
              attempt: int, force_reference: bool):
        """Serve one attempt; returns an ``"ok"`` or ``"retry"`` verdict.

        Raises whatever a genuine (non-fault) pipeline failure raised —
        including exceptions out of the injector itself.
        """
        window = Window(index=index, start=start, samples=samples)
        serve, serve_log, serve_stats = (
            self._scheduler, self._log, self._stats
        )
        serve_engine = self.engine
        if force_reference:
            serve, serve_log, serve_stats = self._reference()
            serve_engine = "reference"
        # The result ships the window's launches back to the host; drop
        # the previous window's entries so the log does not grow for
        # the worker's whole lifetime (multi-hour streams).
        del serve_log[:]
        before = serve_stats.snapshot()
        fired = ()
        if self._injector is not None:
            # worker_kill / worker_hang faults strike in here and never
            # return — host/server supervision takes over.
            window = self._injector.begin_attempt(
                serve.runner, window, attempt, engine=serve_engine
            )
        try:
            result = serve.serve_window(window, serve_log)
            exc = None
        except Exception as err:
            result = None
            exc = err
        if self._injector is not None:
            fired = self._injector.end_attempt()
        if exc is None and not fired:
            return (
                "ok", result, serve_stats.since(before), force_reference
            )
        if exc is None or (
            self._injector is not None
            and self._is_fault_failure(exc, fired)
        ):
            return ("retry", tuple(fired) or (type(exc).__name__,))
        raise exc


def _worker_main(worker_id: int, spec: _WorkerSpec, tasks, results,
                 stop) -> None:
    """Worker process body: own platform, one serving *attempt* per task.

    Tasks are ``(index, start, samples, attempt, force_reference)``
    tuples on this worker's private queue; the worker serves exactly one
    attempt (via the shared :class:`AttemptServer`) and reports ``"ok"``
    (clean result), ``"retry"`` (an injected fault spoiled the attempt —
    the host owns the retry ladder) or ``"err"`` (a genuine pipeline
    exception, which aborts the pool as it always did).
    ``force_reference`` attempts run on a lazily-built reference-engine
    twin platform. The worker exits when the host sets ``stop``,
    reporting ``"fin"`` with its engine.
    """
    # Exception (not BaseException) throughout: KeyboardInterrupt /
    # SystemExit must kill the worker outright — the host's liveness
    # polling reports dead workers — rather than be wrapped as a
    # per-window error while the worker keeps draining its queue.
    try:
        def _flush_results() -> None:
            # About to die or hang on purpose: push every buffered
            # result fully onto the wire first, or SIGKILL can tear
            # a half-written message and wedge the host's reader.
            results.close()
            results.join_thread()

        server = AttemptServer(
            spec, process_faults=True,
            before_process_fault=_flush_results,
        )
    except Exception:
        results.put(("crash", worker_id, traceback.format_exc()))
        return
    while not stop.is_set():
        try:
            task = tasks.get(timeout=_POLL_SECONDS)
        except queue.Empty:
            continue
        index, start, samples, attempt, force_reference = task
        try:
            verdict = server.serve(
                index, start, samples, attempt, force_reference
            )
        except Exception:
            results.put((
                "err", worker_id, index, traceback.format_exc()
            ))
            continue
        if verdict[0] == "ok":
            _, result, stats_delta, force = verdict
            results.put(("ok", worker_id, result, stats_delta, force))
        else:
            results.put((
                "retry", worker_id, index, attempt, force_reference,
                verdict[1],
            ))
    results.put(("fin", worker_id, server.engine))


class PoolScheduler:
    """Shards a window stream across N worker-owned platform instances.

    The drop-in parallel sibling of :class:`~repro.serve.StreamScheduler`
    for CPU-bound serving: same report, ``workers``-way process
    parallelism. The pipeline must be picklable — the default MBioTracker
    :class:`~repro.app.mbiotracker.WindowPipeline` is; custom pipelines
    should be module-level classes, not closures. ``runner_factory``
    builds each worker's platform (engine choice lives there);
    ``warm=True`` has every worker pre-run the stream's first window once
    to take cold-cache costs off its first served window; ``prefetch``
    bounds the feeder queue (windows buffered per worker);
    ``start_method`` picks the :mod:`multiprocessing` context (default
    ``"fork"`` where available — workers then inherit the parent's warm
    structural compile/conflict memos — else ``"spawn"``).

    The resilience knobs (all off by default) turn the pool into a
    self-healing one — see docs/robustness.md: ``fault_plan`` (a
    :class:`~repro.faults.FaultPlan`) injects deterministic faults into
    worker attempts; ``max_retries`` bounds per-window retries of
    fault-spoiled attempts, with one extra reference-engine attempt when
    ``reference_fallback`` holds; ``respawn_limit`` bounds how many
    dead/hung workers are replaced before the pool gives up;
    ``heartbeat_timeout`` (seconds) declares a worker hung when it holds
    in-flight windows without delivering anything for that long —
    required whenever the plan schedules ``worker_hang`` faults. Windows
    that exhaust the ladder are quarantined into
    :attr:`StreamReport.failed_windows` instead of aborting the stream.
    """

    def __init__(self, config: str = "cpu_vwr2a", workers: int = 2,
                 params=None, pipeline=None, energy_model=None,
                 double_buffer: bool = True, runner_factory=None,
                 warm: bool = False, prefetch: int = 4,
                 start_method: str = None, fault_plan=None,
                 max_retries: int = 0, reference_fallback: bool = True,
                 respawn_limit: int = 0,
                 heartbeat_timeout: float = None) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"a pool needs at least one worker, got {workers}"
            )
        if prefetch < 1:
            raise ConfigurationError(
                f"prefetch must be at least 1 window, got {prefetch}"
            )
        if max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        if respawn_limit < 0:
            raise ConfigurationError(
                f"respawn_limit must be >= 0, got {respawn_limit}"
            )
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ConfigurationError(
                "heartbeat_timeout must be positive seconds (or None "
                f"to disable hang detection), got {heartbeat_timeout}"
            )
        if fault_plan is not None and heartbeat_timeout is None and any(
            spec.kind == "worker_hang" for spec in fault_plan.specs
        ):
            raise ConfigurationError(
                "the fault plan schedules worker_hang faults; pass "
                "heartbeat_timeout so the pool can detect and kill the "
                "hung workers (otherwise the stream never finishes)"
            )
        self.config = (
            getattr(pipeline, "config", config)
            if pipeline is not None else config
        )
        self.workers = workers
        self.pipeline = (
            pipeline if pipeline is not None
            else window_pipeline(config, params)
        )
        self.energy_model = energy_model
        self.double_buffer = double_buffer
        self.runner_factory = (
            runner_factory if runner_factory is not None else RunnerFactory()
        )
        self.warm = warm
        self.prefetch = prefetch
        self.start_method = (
            start_method if start_method is not None
            else _default_start_method()
        )
        self.fault_plan = fault_plan
        self.max_retries = max_retries
        self.reference_fallback = reference_fallback
        self.respawn_limit = respawn_limit
        self.heartbeat_timeout = heartbeat_timeout
        self._probed_engine = None

    @property
    def engine(self) -> str:
        """Engine of the worker platforms (for reports/fingerprints).

        Factories following the :class:`~repro.kernels.runner.RunnerFactory`
        convention declare it through an ``engine`` attribute; when that
        is absent or ``None`` (platform default), the factory is probed
        once by building a throwaway runner — fingerprints and reports
        record what workers actually run, never a guessed constant.
        """
        engine = getattr(self.runner_factory, "engine", None)
        if engine is not None:
            return engine
        if self._probed_engine is None:
            if isinstance(self.runner_factory, RunnerFactory):
                # A stock factory with engine=None defers to the SoC
                # default: read the platform's own constant rather than
                # building a throwaway platform.
                from repro.soc.platform import DEFAULT_ENGINE

                self._probed_engine = DEFAULT_ENGINE
            else:
                self._probed_engine = \
                    self.runner_factory().soc.vwr2a.engine
        return self._probed_engine

    def run(self, stream, checkpoint=None) -> StreamReport:
        """Serve ``stream`` across the pool; returns the merged report.

        With ``checkpoint`` (a :class:`~repro.serve.StreamCheckpoint` or
        path), previously completed windows are skipped and progress is
        persisted as results arrive — including on worker failure, right
        before :class:`PoolWorkerError` is raised.
        """
        if checkpoint is not None:
            checkpoint, state = resume_session(checkpoint, stream_fingerprint(
                stream, self.config, self.engine, self.double_buffer,
                pipeline=self.pipeline, energy_model=self.energy_model,
            ))
        else:
            # No checkpoint: skip the O(trace) fingerprint hash and use
            # a scratch state that only tracks completion.
            state = CheckpointState(
                fingerprint={"n_windows": stream.n_windows}
            )
        wall_base = state.wall_seconds
        # The serving clock starts after fingerprinting/resume, matching
        # StreamScheduler — wall_seconds accounts serving, not hashing.
        wall_start = time.perf_counter()
        served = not state.complete
        if served:
            engine = self._serve_remaining(
                stream, state, checkpoint, wall_base, wall_start
            )
        else:
            # A fully-checkpointed resume serves nothing: take the
            # engine the checkpoint recorded (probe only as a fallback).
            engine = state.fingerprint.get("engine") or self.engine
        report = StreamReport(
            config=self.config,
            engine=engine,
            window=getattr(stream, "window", 0),
            hop=getattr(stream, "hop", 0),
            double_buffered=self.double_buffer,
        )
        return finalize_session(
            report, state, checkpoint, wall_base, wall_start,
            served=served,
        )

    # -- the pool proper ----------------------------------------------------

    def _spec(self, stream) -> _WorkerSpec:
        warm_samples = None
        if self.warm and len(stream):
            warm_samples = stream[0].samples
        spec = _WorkerSpec(
            config=self.config,
            pipeline=self.pipeline,
            double_buffer=self.double_buffer,
            energy_model=self.energy_model,
            runner_factory=self.runner_factory,
            warm_samples=warm_samples,
            fault_plan=self.fault_plan,
        )
        try:
            pickle.dumps(spec)
        except Exception as exc:
            raise ConfigurationError(
                "pool workers receive the pipeline/energy model/runner "
                f"factory by value, and this one does not pickle: {exc} "
                "(use a module-level pipeline class instead of a closure)"
            ) from exc
        return spec

    def _serve_remaining(self, stream, state: CheckpointState,
                         checkpoint, wall_base: float,
                         wall_start: float) -> str:
        """The supervised pool loop.

        The host owns all scheduling state: a per-worker task queue and
        in-flight ledger, a retry queue that outranks fresh windows, and
        a quarantine verdict per exhausted window. Workers only ever
        serve one attempt per task, so any of them can die at any moment
        without the host losing track of a single window.
        """
        todo = stream.n_windows - state.n_done
        n_workers = max(1, min(self.workers, todo))
        context = multiprocessing.get_context(self.start_method)
        results = context.Queue()
        stop = context.Event()
        spec = self._spec(stream)
        # A duplicate result is only legitimate once supervision may
        # requeue a window whose first result is still in flight.
        resilient = (
            self.fault_plan is not None or self.respawn_limit > 0
            or self.heartbeat_timeout is not None
        )

        procs = {}
        task_queues = {}
        in_flight = {}       # wid -> deque of dispatched task tuples
        last_progress = {}   # wid -> monotonic time of last message
        finished = set()     # wids that reported "fin"/"crash"
        next_wid = 0

        def spawn() -> int:
            nonlocal next_wid
            wid = next_wid
            next_wid += 1
            tasks = context.Queue(maxsize=self.prefetch)
            proc = context.Process(
                target=_worker_main,
                args=(wid, spec, tasks, results, stop),
                daemon=True,
            )
            proc.start()
            procs[wid] = proc
            task_queues[wid] = tasks
            in_flight[wid] = collections.deque()
            last_progress[wid] = time.monotonic()
            return wid

        for _ in range(n_workers):
            spawn()

        abort = threading.Event()
        feed_done = threading.Event()
        feed_failure = []
        ready = queue.Queue(maxsize=n_workers * self.prefetch)

        def feed():
            """Slice windows into the host-side ready buffer.

            Runs on a host thread so trace slicing (window
            materialization) overlaps window execution in the workers;
            a slicing failure (lazy traces can raise mid-stream) is
            recorded and surfaced by the host loop, never swallowed
            into a hang.
            """
            try:
                for window in stream:
                    if window.index in state.results:
                        continue
                    item = (window.index, window.start, window.samples)
                    while not abort.is_set():
                        try:
                            ready.put(item, timeout=_POLL_SECONDS)
                            break
                        except queue.Full:
                            continue
                    if abort.is_set():
                        break
            except Exception:
                feed_failure.append(traceback.format_exc())
                abort.set()
            finally:
                feed_done.set()

        feeder = threading.Thread(target=feed, daemon=True)
        feeder.start()

        failure = None
        engines = set()
        requeue = collections.deque()  # retry tasks outrank fresh windows
        fail_kinds = {}                # index -> fault kinds seen so far
        total = stream.n_windows

        def tally(counts: dict) -> None:
            merge_counts(state.resilience, counts)
            bus = get_bus()
            if bus is not None:
                record_resilience(bus, counts)

        def mark() -> None:
            if checkpoint is not None:
                state.wall_seconds = (
                    wall_base + time.perf_counter() - wall_start
                )
                checkpoint.mark(state)

        def take_in_flight(index: int):
            """Pop and return the ledger entry serving ``index``, if any."""
            for entries in in_flight.values():
                for entry in entries:
                    if entry[0] == index:
                        entries.remove(entry)
                        return entry
            return None

        def quarantine(index, start, attempts, kinds, why) -> None:
            state.failed[index] = FailedWindow(
                index=index, start=start, attempts=attempts,
                kinds=tuple(dict.fromkeys(kinds)), detail=why,
            )
            tally({"quarantined": 1})
            bus = get_bus()
            if bus is not None:
                record_failed(bus)
            mark()

        def next_attempt(entry, kinds, why) -> None:
            """Advance one spoiled attempt along the retry ladder."""
            index, start, samples, attempt, force_reference = entry
            fail_kinds.setdefault(index, []).extend(kinds)
            if attempt < self.max_retries:
                tally({"retries": 1})
                requeue.append((index, start, samples, attempt + 1, False))
            elif self.reference_fallback and not force_reference:
                tally({"retries": 1})
                requeue.append((index, start, samples, attempt + 1, True))
            else:
                quarantine(
                    index, start, attempt + 1,
                    fail_kinds.pop(index, list(kinds)), why,
                )

        def accept(result, stats_delta, force_reference, wid) -> None:
            take_in_flight(result.index)
            if result.index in state.results:
                # A worker's result raced its own requeue (it was
                # presumed dead or hung) and the window was served
                # again. Without supervision that can only be a
                # sharding bug; with it, it is bookkept and dropped.
                if not resilient:
                    raise SimulationError(
                        f"window {result.index} was served twice — "
                        "sharding bug"
                    )
                tally({"late_results": 1})
                return
            if result.index in state.failed:
                # Quarantined, then a late clean result arrived after
                # all: the window is rescued back into the report.
                del state.failed[result.index]
                tally({"quarantine_rescues": 1})
            fail_kinds.pop(result.index, None)
            state.results[result.index] = result
            merge_counts(state.store_stats, stats_delta)
            bus = get_bus()
            if bus is not None:
                # Host-side merge point: one record per accepted result,
                # so bus totals equal the merged report's counts exactly.
                record_window(bus, result, stats_delta, worker=wid)
            if force_reference:
                tally({"reference_recoveries": 1})
            mark()

        def handle(message) -> None:
            nonlocal failure
            kind, wid = message[0], message[1]
            if wid in last_progress:
                last_progress[wid] = time.monotonic()
            if kind == "ok":
                _, _, result, stats_delta, force_reference = message
                accept(result, stats_delta, force_reference, wid)
            elif kind == "retry":
                _, _, index, attempt, force_reference, kinds = message
                tally({f"fault:{k}": 1 for k in kinds})
                entry = take_in_flight(index)
                if entry is None:
                    # Already requeued by supervision; stale verdict.
                    tally({"late_results": 1})
                    return
                next_attempt(
                    entry, kinds,
                    "faults fired on every attempt "
                    f"(last: {', '.join(kinds)})",
                )
            elif kind == "err":
                _, _, index, details = message
                if failure is None:
                    failure = (wid, index, details)
                abort.set()
            elif kind == "crash":
                _, _, details = message
                finished.add(wid)
                if failure is None:
                    failure = (wid, None, details)
                abort.set()
            elif kind == "fin":
                finished.add(wid)
                engines.add(message[2])

        respawns = 0

        def reap(wid, fault_kind, details) -> None:
            """Retire one dead/hung worker: requeue its windows, respawn.

            The head of its ledger is the attempt that died with it and
            spends a rung of the retry ladder; the rest were merely
            queued and are re-dispatched at their current attempt. When
            the respawn budget is exhausted the pool aborts with the
            exit diagnosis.
            """
            nonlocal failure, respawns
            entries = in_flight.pop(wid)
            tq = task_queues.pop(wid)
            proc = procs.pop(wid)
            proc.join(timeout=5.0)  # reap the corpse — no zombies
            last_progress.pop(wid, None)
            bus = get_bus()
            if bus is not None:
                record_worker_retired(bus, wid)
            _drain_queue(tq)
            tq.close()
            tq.cancel_join_thread()
            head = entries.popleft() if entries else None
            if respawns >= self.respawn_limit:
                if failure is None:
                    failure = (
                        wid, head[0] if head else None,
                        f"{details} (respawn budget "
                        f"{self.respawn_limit} exhausted)",
                    )
                abort.set()
                return
            respawns += 1
            tally({"respawns": 1})
            spawn()
            if head is not None:
                next_attempt(head, (fault_kind,), details)
            for entry in entries:
                requeue.append(entry)

        def scan_workers() -> None:
            now = time.monotonic()
            for wid in list(procs):
                proc = procs[wid]
                if not proc.is_alive():
                    if wid in finished:
                        continue
                    tally({"worker_deaths": 1})
                    reap(
                        wid, "worker_death",
                        f"worker {wid} {describe_exit(proc.exitcode)}",
                    )
                elif (
                    self.heartbeat_timeout is not None
                    and in_flight[wid]
                    and now - last_progress[wid] > self.heartbeat_timeout
                ):
                    tally({"worker_hangs": 1})
                    hung = len(in_flight[wid])
                    proc.terminate()
                    proc.join(timeout=2.0)
                    if proc.is_alive():
                        proc.kill()
                        proc.join(timeout=2.0)
                    reap(
                        wid, "worker_hang",
                        f"worker {wid} hung: no progress for "
                        f"{self.heartbeat_timeout}s with {hung} "
                        "windows in flight",
                    )

        def dispatch() -> None:
            """Hand queued work to the least-backlog live workers."""
            while True:
                candidates = [
                    wid for wid in procs
                    if procs[wid].is_alive() and wid not in finished
                    and len(in_flight[wid]) < self.prefetch
                ]
                if not candidates:
                    return
                if requeue:
                    task = requeue.popleft()
                else:
                    try:
                        index, start, samples = ready.get_nowait()
                    except queue.Empty:
                        return
                    task = (index, start, samples, 0, False)
                wid = min(candidates, key=lambda w: len(in_flight[w]))
                task_queues[wid].put(task)
                in_flight[wid].append(task)

        try:
            while failure is None:
                if state.n_done + state.n_failed >= total:
                    break
                try:
                    handle(results.get(timeout=_POLL_SECONDS))
                    while True:
                        try:
                            handle(results.get_nowait())
                        except queue.Empty:
                            break
                except queue.Empty:
                    pass
                if failure is not None:
                    break
                if feed_failure:
                    break
                scan_workers()
                if failure is not None:
                    break
                dispatch()
                bus = get_bus()
                if bus is not None:
                    # One gauge refresh per supervision tick (~10 Hz):
                    # queue depths, live workers, stream progress.
                    record_pool_state(bus, in_flight, sum(
                        1 for w in procs
                        if procs[w].is_alive() and w not in finished
                    ))
                    record_progress(
                        bus, state.n_done + state.n_failed, total,
                        wall_base + time.perf_counter() - wall_start,
                    )
                if (
                    feed_done.is_set() and not requeue and ready.empty()
                    and not any(in_flight.values())
                    and state.n_done + state.n_failed < total
                ):
                    # Every window the feeder sliced is accounted for
                    # and nothing is in flight, yet the stream is not
                    # covered: the bookkeeping lost a window.
                    failure = (
                        -1, None,
                        "pool stalled with "
                        f"{state.n_done + state.n_failed}/{total} "
                        "windows accounted — sharding bug",
                    )
            if failure is None:
                # Clean completion: release the workers and collect
                # their engine reports (workers that died along the way
                # simply never report one).
                stop.set()
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline and any(
                    wid not in finished and procs[wid].is_alive()
                    for wid in procs
                ):
                    try:
                        handle(results.get(timeout=_POLL_SECONDS))
                    except queue.Empty:
                        continue
        except BaseException:
            # Host-side interruption (Ctrl-C, internal error): the same
            # durability contract as worker failure — flush completed
            # windows before the exception propagates.
            if checkpoint is not None:
                flush_session(state, checkpoint, wall_base, wall_start)
            raise
        finally:
            abort.set()
            stop.set()
            feeder.join(timeout=10.0)
            _drain_queue(ready)
            for tq in task_queues.values():
                _drain_queue(tq)
            for proc in procs.values():
                proc.join(timeout=5.0)
            for proc in procs.values():
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=2.0)
            for proc in procs.values():
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=2.0)
            _drain_queue(results)
            for tq in task_queues.values():
                tq.close()
                tq.cancel_join_thread()
            results.close()
            results.cancel_join_thread()
        if failure is None and feed_failure:
            failure = (
                "feeder", None,
                f"trace slicing failed mid-stream:\n{feed_failure[0]}",
            )
        if failure is not None:
            if checkpoint is not None:
                flush_session(state, checkpoint, wall_base, wall_start)
            raise PoolWorkerError(*failure)
        if len(engines) > 1:
            raise SimulationError(
                f"pool workers disagree on the engine: {sorted(engines)}"
            )
        if not state.complete:
            raise SimulationError(
                f"pool finished with {state.n_done} served and "
                f"{state.n_failed} quarantined of {stream.n_windows} "
                "windows — sharding bug"
            )
        return engines.pop() if engines else self.engine


# -- parameter sweeps over the pool -----------------------------------------


@dataclass(frozen=True)
class _SweepCasePayload:
    """One sweep case shipped to a worker process — all picklable.

    The (possibly huge) trace deliberately does not ride along: it is
    installed once per worker by :func:`_sweep_worker_init`, not once
    per case.
    """

    name: str
    config: str
    params: object
    window: int
    hop: int
    tail: str
    energy_model: object
    double_buffer: bool
    runner_factory: object
    #: Picklable (runner, samples) -> result callable; wins over
    #: config/params when set (see SweepCase.pipeline).
    pipeline: object = None


#: The sweep trace, installed worker-side by the pool initializer.
_SWEEP_TRACE = None


def _sweep_worker_init(trace) -> None:
    global _SWEEP_TRACE
    _SWEEP_TRACE = trace


def _sweep_case_main(payload: _SweepCasePayload):
    """Serve one sweep case on a fresh worker-side platform."""
    scheduler = StreamScheduler(
        config=payload.config,
        params=payload.params,
        pipeline=payload.pipeline,
        runner=payload.runner_factory(),
        double_buffer=payload.double_buffer,
        energy_model=payload.energy_model,
    )
    stream = WindowStream(
        _SWEEP_TRACE, window=payload.window, hop=payload.hop,
        tail=payload.tail,
    )
    return payload.name, scheduler.run(stream)


def run_sweep_cases(payloads, trace, workers: int,
                    start_method: str = None):
    """Run sweep cases across a process pool; yields ``(name, report)``.

    Case order is preserved. Used by
    :class:`~repro.serve.ParameterSweep` when constructed with
    ``workers > 1``; each case gets a fresh platform, so per-window
    results match the shared-runner sweep bit-for-bit (history
    independence again) while ``store_stats`` reflect each case's own
    cold stores. ``trace`` is shipped once per worker (free under
    ``fork``), not once per case.
    """
    from concurrent.futures import ProcessPoolExecutor

    context = multiprocessing.get_context(
        start_method if start_method is not None
        else _default_start_method()
    )
    payloads = list(payloads)
    max_workers = max(1, min(workers, len(payloads)))
    with ProcessPoolExecutor(
        max_workers=max_workers, mp_context=context,
        initializer=_sweep_worker_init, initargs=(trace,),
    ) as pool:
        yield from pool.map(_sweep_case_main, payloads)
