"""The fleet host: shard one window stream over TCP workers.

:class:`FleetServer` is the distributed sibling of
:class:`~repro.serve.PoolScheduler`: same picklable worker spec, same
``(index, start, samples, attempt, force_reference)`` task protocol,
same order-stable merge into a :class:`~repro.serve.StreamReport` — so
a stream served by a fleet is bit-identical to the sequential
scheduler, whatever the worker count, and a
:class:`~repro.serve.StreamCheckpoint` written by any executor resumes
under any other.

The server is a single-threaded :mod:`selectors` event loop (plus the
same feeder thread the pool uses for window materialization). Remote
:class:`~repro.serve.net.FleetWorker` processes dial in, register with
``hello``, receive the worker spec over the wire, and serve attempts;
the server owns *all* scheduling state, so any worker can vanish at any
moment without a window being lost.

Robustness is layered, and every knob defaults off — with no fault
plan, no deadlines and no heartbeat the fleet is exactly a remote pool
that fails fast on the first worker error:

* **Per-task deadlines** (``task_deadline``) bound how long a
  dispatched window may stay unresolved; an expired task spends one
  rung of the retry ladder and is re-dispatched with exponential
  backoff (``retry_backoff`` doubling up to ``backoff_cap``). Delivery
  is thus at-least-once; it is *safe* because results are deduplicated
  idempotently by window index — a late duplicate is bookkept as
  ``late_results`` and dropped, exactly like the pool's race between a
  slow worker and its own requeue.
* **Heartbeats** (``heartbeat_timeout``) retire workers that go silent
  — the read side of the workers' ``heartbeat_interval`` beats.
* **Reconnection** — a worker that lost its connection re-registers
  under the same name; its platform survives, the spec is only
  re-shipped when the digest changed (e.g. a different job), and the
  reconnect is tallied per worker in the checkpoint's namespaces.
* **Circuit breaker** (``breaker_threshold``) — strikes accumulate per
  worker (deadline misses, checksum failures, desyncs, disconnects);
  past the threshold the worker is benched for the session and told so.
* **Degradation ladder** (``local_fallback``) — no registration within
  ``register_timeout`` falls back to the in-process
  :class:`~repro.serve.PoolScheduler`; losing every worker mid-run
  serves the remaining windows on a local
  :class:`~repro.serve.StreamScheduler`. Both rungs produce the same
  bit-identical report, just slower.

Chaos for all of the above comes from the ``net_*`` family of
:mod:`repro.faults`, injected at the framing layer by
:class:`~repro.serve.net.framing.NetGate` — task-side kinds on the
server's own sends, result-side kinds shipped to the workers.
"""

from __future__ import annotations

import hashlib
import multiprocessing.util
import pickle
import queue
import selectors
import socket
import threading
import time
import traceback

from repro.core.errors import ConfigurationError, SimulationError
from repro.obs.bus import get_bus
from repro.obs.instruments import (
    record_failed,
    record_net_event,
    record_net_frames,
    record_net_retry,
    record_net_state,
    record_progress,
    record_resilience,
    record_window,
)
from repro.serve.checkpoint import (
    CheckpointState,
    finalize_session,
    flush_session,
    resume_session,
    stream_fingerprint,
)
from repro.serve.net.framing import (
    FrameBuffer,
    FrameError,
    NetGate,
    send_frame,
)
from repro.serve.pool import PoolScheduler, PoolWorkerError
from repro.serve.report import FailedWindow, StreamReport, merge_counts
from repro.serve.scheduler import StreamScheduler

#: Event-loop tick (select timeout): liveness scans and dispatch pacing.
_TICK_SECONDS = 0.05
#: How long an accepted connection may stay silent before ``hello``.
_HELLO_TIMEOUT = 5.0
#: Blocking-send timeout on accepted sockets (results are read
#: non-blocking via the selector; only outbound frames can block).
_CONN_TIMEOUT = 5.0


class _Conn:
    """One accepted connection and its scheduling ledger."""

    __slots__ = (
        "sock", "addr", "buffer", "name", "ready", "engine",
        "in_flight", "last_seen", "connected_at",
    )

    def __init__(self, sock, addr) -> None:
        self.sock = sock
        self.addr = addr
        self.buffer = FrameBuffer()
        self.name = None
        self.ready = False
        self.engine = None
        #: window index -> (task tuple, deadline monotonic or None)
        self.in_flight = {}
        self.last_seen = time.monotonic()
        self.connected_at = self.last_seen


class FleetServer:
    """Serve window streams over registered remote fleet workers.

    Platform/job parameters (``config``/``params``/``pipeline``/
    ``energy_model``/``double_buffer``/``runner_factory``/``warm``) mean
    exactly what they mean on :class:`~repro.serve.PoolScheduler`; the
    robustness knobs are documented in the module docstring and
    docs/distributed.md. ``port=0`` binds an OS-assigned port —
    :meth:`bind` returns the actual address so workers (and tests) can
    be pointed at it before :meth:`run`. ``stop_after`` ends the
    session early after that many windows were accepted — the hook the
    restart smoke test uses to model a server crash at a deterministic
    point; rerunning with the same checkpoint finishes the stream.
    """

    def __init__(self, config: str = "cpu_vwr2a",
                 host: str = "127.0.0.1", port: int = 0,
                 params=None, pipeline=None, energy_model=None,
                 double_buffer: bool = True, runner_factory=None,
                 warm: bool = False, prefetch: int = 2,
                 fault_plan=None, max_retries: int = 0,
                 reference_fallback: bool = True,
                 task_deadline: float = None,
                 retry_backoff: float = 0.05,
                 backoff_cap: float = 2.0,
                 heartbeat_timeout: float = None,
                 register_timeout: float = 10.0,
                 breaker_threshold: int = None,
                 local_fallback: bool = True,
                 local_workers: int = 2,
                 respawn_limit: int = 0,
                 stop_after: int = None) -> None:
        if prefetch < 1:
            raise ConfigurationError(
                f"prefetch must be at least 1 window, got {prefetch}"
            )
        if task_deadline is not None and task_deadline <= 0:
            raise ConfigurationError(
                "task_deadline must be positive seconds (or None to "
                f"disable), got {task_deadline}"
            )
        if retry_backoff < 0 or backoff_cap < retry_backoff:
            raise ConfigurationError(
                "retry backoff must satisfy 0 <= retry_backoff <= "
                f"backoff_cap, got {retry_backoff}/{backoff_cap}"
            )
        if register_timeout <= 0:
            raise ConfigurationError(
                "register_timeout must be positive seconds, got "
                f"{register_timeout}"
            )
        if breaker_threshold is not None and breaker_threshold < 1:
            raise ConfigurationError(
                "breaker_threshold must be >= 1 strike (or None to "
                f"disable the circuit breaker), got {breaker_threshold}"
            )
        if stop_after is not None and stop_after < 1:
            raise ConfigurationError(
                f"stop_after must be >= 1 window, got {stop_after}"
            )
        if fault_plan is not None and task_deadline is None and any(
            spec.kind in ("net_drop", "net_corrupt")
            for spec in fault_plan.specs
        ):
            raise ConfigurationError(
                "the fault plan schedules frame-loss faults (net_drop/"
                "net_corrupt); pass task_deadline so lost windows are "
                "detected and re-served (otherwise the stream never "
                "finishes)"
            )
        self.fault_plan = fault_plan
        platform_plan = (
            fault_plan.without_net() if fault_plan is not None else None
        )
        if platform_plan is not None and not platform_plan.specs:
            platform_plan = None
        # The local pool doubles as parameter resolution (config/
        # pipeline defaults, spec validation) and as the first rung of
        # the degradation ladder.
        self._local = PoolScheduler(
            config=config, workers=local_workers, params=params,
            pipeline=pipeline, energy_model=energy_model,
            double_buffer=double_buffer, runner_factory=runner_factory,
            warm=warm, prefetch=prefetch, fault_plan=platform_plan,
            max_retries=max_retries,
            reference_fallback=reference_fallback,
            respawn_limit=respawn_limit,
            heartbeat_timeout=heartbeat_timeout,
        )
        self._platform_plan = platform_plan
        self.config = self._local.config
        self.pipeline = self._local.pipeline
        self.energy_model = self._local.energy_model
        self.double_buffer = double_buffer
        self.host = host
        self.port = port
        self.prefetch = prefetch
        self.max_retries = max_retries
        self.reference_fallback = reference_fallback
        self.task_deadline = task_deadline
        self.retry_backoff = retry_backoff
        self.backoff_cap = backoff_cap
        self.heartbeat_timeout = heartbeat_timeout
        self.register_timeout = register_timeout
        self.breaker_threshold = breaker_threshold
        self.local_fallback = local_fallback
        self.stop_after = stop_after
        self._listener = None
        self._resilient = (
            fault_plan is not None or task_deadline is not None
            or heartbeat_timeout is not None
            or breaker_threshold is not None
        )

    @property
    def engine(self) -> str:
        return self._local.engine

    # -- listener lifecycle --------------------------------------------------

    def bind(self):
        """Bind and listen; returns ``(host, port)``. Idempotent."""
        if self._listener is None:
            listener = socket.socket(
                socket.AF_INET, socket.SOCK_STREAM
            )
            listener.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
            )
            listener.bind((self.host, self.port))
            listener.listen(64)
            listener.setblocking(False)
            self.port = listener.getsockname()[1]
            self._listener = listener
            # Fork-spawned worker processes inherit this fd; without
            # closing it there, the port stays bound after our close()
            # for as long as any worker lives — and a restarted server
            # cannot rebind it.
            multiprocessing.util.register_after_fork(
                self, FleetServer.close
            )
        return (self.host, self.port)

    def close(self) -> None:
        """Close the listener (accepted connections die with the run)."""
        if self._listener is not None:
            try:
                self._listener.close()
            finally:
                self._listener = None

    # -- serving -------------------------------------------------------------

    def run(self, stream, checkpoint=None) -> StreamReport:
        """Serve ``stream`` over the fleet; returns the merged report.

        Same contract as :meth:`PoolScheduler.run` — checkpoint resume,
        bit-identical merge, :class:`PoolWorkerError` on a genuine
        worker failure — plus the degradation ladder when no workers
        are available.
        """
        self.bind()
        try:
            if checkpoint is not None:
                checkpoint, state = resume_session(
                    checkpoint, stream_fingerprint(
                        stream, self.config, self.engine,
                        self.double_buffer, pipeline=self.pipeline,
                        energy_model=self.energy_model,
                    )
                )
            else:
                state = CheckpointState(
                    fingerprint={"n_windows": stream.n_windows}
                )
            wall_base = state.wall_seconds
            wall_start = time.perf_counter()
            served = not state.complete
            stopped_early = False
            if served:
                verdict, engine = self._serve_remaining(
                    stream, state, checkpoint, wall_base, wall_start
                )
                if verdict == "degrade":
                    # Nothing registered at all: the whole session is
                    # the local pool's. It re-reads the checkpoint
                    # itself, so the in-memory state is simply dropped.
                    self.close()
                    report = self._local.run(stream, checkpoint)
                    merge_counts(
                        report.resilience, {"local_degradations": 1}
                    )
                    bus = get_bus()
                    if bus is not None:
                        record_resilience(
                            bus, {"local_degradations": 1}
                        )
                    return report
                stopped_early = verdict == "stopped"
            else:
                engine = state.fingerprint.get("engine") or self.engine
            if not stopped_early and not state.complete:
                raise SimulationError(
                    f"fleet finished with {state.n_done} served and "
                    f"{state.n_failed} quarantined of "
                    f"{stream.n_windows} windows — sharding bug"
                )
            report = StreamReport(
                config=self.config,
                engine=engine,
                window=getattr(stream, "window", 0),
                hop=getattr(stream, "hop", 0),
                double_buffered=self.double_buffer,
            )
            return finalize_session(
                report, state, checkpoint, wall_base, wall_start,
                served=served,
            )
        finally:
            self.close()

    # -- the event loop ------------------------------------------------------

    def _spec_frame(self, stream):
        """The spec payload and its digest (pinned in ``hello``)."""
        payload = (
            self._local._spec(stream),
            self.fault_plan.net_specs("result")
            if self.fault_plan is not None else (),
        )
        digest = hashlib.sha256(pickle.dumps(payload)).hexdigest()[:16]
        return payload, digest

    def _serve_remaining(self, stream, state, checkpoint,
                         wall_base, wall_start):
        """Serve every unaccounted window; returns ``(verdict, engine)``.

        ``verdict`` is ``"served"`` (stream fully accounted),
        ``"stopped"`` (``stop_after`` ended the session early) or
        ``"degrade"`` (no worker ever registered — the caller runs the
        local pool instead). Worker errors raise
        :class:`PoolWorkerError` exactly like the pool, flushing the
        checkpoint first.
        """
        total = stream.n_windows
        spec_payload, spec_digest = self._spec_frame(stream)
        task_gate = NetGate(
            self.fault_plan.specs if self.fault_plan is not None
            else (), side="task",
        )

        abort = threading.Event()
        feed_done = threading.Event()
        feed_failure = []
        ready_q = queue.Queue(maxsize=32)

        def feed():
            try:
                for window in stream:
                    if window.index in state.results:
                        continue
                    item = (window.index, window.start, window.samples)
                    while not abort.is_set():
                        try:
                            ready_q.put(item, timeout=_TICK_SECONDS)
                            break
                        except queue.Full:
                            continue
                    if abort.is_set():
                        break
            except Exception:
                feed_failure.append(traceback.format_exc())
                abort.set()
            finally:
                feed_done.set()

        feeder = threading.Thread(target=feed, daemon=True)
        feeder.start()

        sel = selectors.DefaultSelector()
        sel.register(self._listener, selectors.EVENT_READ, "listen")
        conns = {}       # fileno -> _Conn (every accepted connection)
        workers = {}     # name -> _Conn (registered)
        # Names ever registered — seeded from the checkpoint namespaces
        # so a worker re-registering after a *server* restart counts as
        # the reconnect it is from the worker's point of view.
        known = set(state.namespaces)
        strikes = {}     # name -> circuit-breaker strikes
        benched = set()  # names quarantined by the breaker
        engines = set()
        requeue = []     # [not_before, task] retry entries
        fail_kinds = {}  # index -> fault kinds seen so far
        failure = None
        ever_ready = False
        accepted = 0     # results accepted this session (stop_after)
        now = time.monotonic()
        reg_deadline = now + self.register_timeout
        last_alive = now
        verdict = "served"

        def tally(counts: dict) -> None:
            merge_counts(state.resilience, counts)
            bus = get_bus()
            if bus is not None:
                record_resilience(bus, counts)

        def mark() -> None:
            if checkpoint is not None:
                state.wall_seconds = (
                    wall_base + time.perf_counter() - wall_start
                )
                checkpoint.mark(state)

        def namespace(name: str) -> dict:
            return state.namespaces.setdefault(name, {})

        def send(conn, msg, payload=None, gated=False) -> str:
            try:
                if gated and task_gate.specs:
                    action = task_gate.send(conn.sock, msg, payload)
                else:
                    send_frame(conn.sock, msg, payload)
                    action = "sent"
            except (OSError, socket.timeout):
                return "peer_gone"
            bus = get_bus()
            if bus is not None and action != "dropped":
                record_net_frames(bus, "out")
            return action

        def take_in_flight(index: int):
            for conn in workers.values():
                entry = conn.in_flight.pop(index, None)
                if entry is not None:
                    return entry
            return None

        def quarantine_window(index, start, attempts, kinds, why):
            state.failed[index] = FailedWindow(
                index=index, start=start, attempts=attempts,
                kinds=tuple(dict.fromkeys(kinds)), detail=why,
            )
            tally({"quarantined": 1})
            bus = get_bus()
            if bus is not None:
                record_failed(bus)
            mark()

        def next_attempt(task, kinds, why, reason) -> None:
            """One spoiled attempt down the ladder, with backoff."""
            index, start, samples, attempt, force_reference = task
            fail_kinds.setdefault(index, []).extend(kinds)
            bus = get_bus()
            if attempt < self.max_retries:
                tally({"retries": 1})
                if bus is not None:
                    record_net_retry(bus, reason)
                requeue.append([
                    time.monotonic() + self._backoff(attempt),
                    (index, start, samples, attempt + 1, False),
                ])
            elif self.reference_fallback and not force_reference:
                tally({"retries": 1})
                if bus is not None:
                    record_net_retry(bus, reason)
                requeue.append([
                    time.monotonic() + self._backoff(attempt),
                    (index, start, samples, attempt + 1, True),
                ])
            else:
                quarantine_window(
                    index, start, attempt + 1,
                    fail_kinds.pop(index, list(kinds)), why,
                )

        def strike(conn, n: int = 1) -> None:
            if conn.name is None or self.breaker_threshold is None:
                return
            strikes[conn.name] = strikes.get(conn.name, 0) + n
            if (
                strikes[conn.name] >= self.breaker_threshold
                and conn.name not in benched
            ):
                benched.add(conn.name)
                tally({"worker_quarantines": 1})
                bus = get_bus()
                if bus is not None:
                    record_net_event(bus, "worker_quarantine")
                send(conn, {"type": "quarantine"})
                retire_conn(conn, "quarantine")

        def close_conn(conn) -> None:
            conns.pop(conn.sock.fileno(), None)
            try:
                sel.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
            try:
                conn.sock.close()
            except OSError:
                pass

        def retire_conn(conn, reason: str) -> None:
            """Drop one connection; spend a rung per in-flight window.

            Every in-flight task rides the ladder (not just the head,
            as the pool does): over a lossy transport the server cannot
            know which of them the worker half-served, and unbounded
            free requeues would let a flapping link retry forever.
            """
            if conn.name is not None and workers.get(conn.name) is conn:
                del workers[conn.name]
            close_conn(conn)
            pending = list(conn.in_flight.values())
            conn.in_flight.clear()
            for task, _deadline in pending:
                if task[0] in state.results or task[0] in state.failed:
                    continue
                next_attempt(
                    task, (f"net_{reason}",),
                    f"connection to worker {conn.name!r} lost "
                    f"({reason}) with the window in flight",
                    reason=reason,
                )

        def merge_net_fired(name: str, fired) -> None:
            """Fold a worker's cumulative gate counters into resilience.

            Deltas are taken against the per-worker cumulative stored
            in the checkpoint namespaces, so reconnects and server
            restarts never double-count an injection.
            """
            if not fired:
                return
            stored = namespace(name).setdefault("net_fired", {})
            delta = {}
            for kind, count in fired.items():
                seen = stored.get(kind, 0)
                if count < seen:
                    seen = 0  # the worker itself restarted
                if count > seen:
                    delta[f"fault:{kind}"] = count - seen
                stored[kind] = count
            if delta:
                tally(delta)

        def accept_result(conn, msg, payload) -> None:
            nonlocal accepted
            index = msg["index"]
            take_in_flight(index)
            result, stats_delta = payload
            if index in state.results:
                if not self._resilient:
                    raise SimulationError(
                        f"window {index} was served twice — "
                        "sharding bug"
                    )
                tally({"late_results": 1})
                return
            if index in state.failed:
                del state.failed[index]
                tally({"quarantine_rescues": 1})
            fail_kinds.pop(index, None)
            state.results[index] = result
            merge_counts(state.store_stats, stats_delta)
            namespace(conn.name)["served"] = (
                namespace(conn.name).get("served", 0) + 1
            )
            accepted += 1
            bus = get_bus()
            if bus is not None:
                record_window(bus, result, stats_delta, worker=conn.name)
            if msg.get("force_reference"):
                tally({"reference_recoveries": 1})
            mark()

        def on_frame(conn, msg, payload) -> None:
            nonlocal failure, ever_ready
            conn.last_seen = time.monotonic()
            kind = msg.get("type")
            if kind != "hello" and conn.name is None:
                # Data frames from a peer that never registered: a
                # protocol violation, not a scheduling event.
                strike(conn)
                return
            if kind == "hello":
                name = msg.get("name") or f"anon-{conn.sock.fileno()}"
                if name in benched:
                    send(conn, {"type": "quarantine"})
                    close_conn(conn)
                    return
                stale = workers.get(name)
                if stale is not None and stale is not conn:
                    # The worker reconnected before its old connection
                    # was detected dead: retire the half-open husk.
                    retire_conn(stale, "disconnect")
                conn.name = name
                workers[name] = conn
                if name in known:
                    tally({"net_reconnects": 1})
                    namespace(name)["reconnects"] = (
                        namespace(name).get("reconnects", 0) + 1
                    )
                    bus = get_bus()
                    if bus is not None:
                        record_net_event(bus, "reconnect")
                known.add(name)
                namespace(name)  # registration is durable bookkeeping
                if msg.get("spec_digest") == spec_digest:
                    # Warm reconnect: platform already built.
                    conn.ready = True
                    conn.engine = msg.get("engine") or None
                    if conn.engine:
                        engines.add(conn.engine)
                else:
                    send(conn, {
                        "type": "spec", "digest": spec_digest,
                    }, payload=spec_payload)
            elif kind == "ready":
                conn.ready = True
                conn.engine = msg.get("engine") or None
                if conn.engine:
                    engines.add(conn.engine)
            elif kind == "result":
                merge_net_fired(conn.name, msg.get("net_fired"))
                accept_result(conn, msg, payload)
            elif kind == "retry":
                merge_net_fired(conn.name, msg.get("net_fired"))
                kinds = tuple(msg.get("kinds") or ("unknown",))
                tally({f"fault:{k}": 1 for k in kinds})
                entry = conn.in_flight.pop(msg["index"], None)
                if entry is None:
                    entry = take_in_flight(msg["index"])
                if entry is None:
                    tally({"late_results": 1})
                    return
                next_attempt(
                    entry[0], kinds,
                    "faults fired on every attempt "
                    f"(last: {', '.join(kinds)})",
                    reason="fault",
                )
            elif kind == "err":
                if failure is None:
                    failure = (conn.name, msg.get("index"), payload)
                abort.set()
            elif kind == "hb":
                merge_net_fired(conn.name, msg.get("net_fired"))
            # Unknown frame types are ignored: wire compatibility.

        def read_conn(conn) -> None:
            try:
                data = conn.sock.recv(1 << 16)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                tally({"net_disconnects": 1})
                retire_conn(conn, "disconnect")
                return
            if not data:
                if conn.name is not None:
                    tally({"net_disconnects": 1})
                retire_conn(conn, "disconnect")
                return
            conn.buffer.feed(data)
            bus = get_bus()
            while True:
                try:
                    item = conn.buffer.pop()
                except FrameError:
                    # Desynced or hostile byte stream: the connection
                    # is unusable. In-flight windows ride the ladder;
                    # a real worker will reconnect.
                    tally({"net_desyncs": 1})
                    strike(conn)
                    retire_conn(conn, "desync")
                    return
                if item is None:
                    return
                if item[0] == "bad":
                    tally({"net_checksum_failures": 1})
                    if bus is not None:
                        record_net_event(bus, "checksum_failure")
                    strike(conn)
                    continue
                if bus is not None:
                    record_net_frames(bus, "in")
                try:
                    on_frame(conn, item[1], item[2])
                except (KeyError, TypeError, ValueError, IndexError):
                    # A structurally valid frame whose fields violate
                    # the protocol (hostile or byte-lucky corruption):
                    # never the server's problem to crash over.
                    tally({"net_protocol_errors": 1})
                    strike(conn)
                if conn.sock.fileno() < 0:
                    return  # the frame handler closed the connection

        def dispatch() -> None:
            while True:
                candidates = [
                    c for c in workers.values()
                    if c.ready and len(c.in_flight) < self.prefetch
                ]
                if not candidates:
                    return
                now = time.monotonic()
                task = None
                for i, (not_before, queued) in enumerate(requeue):
                    if (
                        queued[0] in state.results
                        or queued[0] in state.failed
                    ):
                        del requeue[i]
                        break
                    if not_before <= now:
                        task = queued
                        del requeue[i]
                        break
                else:
                    try:
                        index, start, samples = ready_q.get_nowait()
                    except queue.Empty:
                        return
                    if index in state.results:
                        continue
                    task = (index, start, samples, 0, False)
                if task is None:
                    continue  # a done requeue entry was pruned
                conn = min(
                    candidates, key=lambda c: len(c.in_flight)
                )
                deadline = (
                    now + self.task_deadline
                    if self.task_deadline is not None else None
                )
                conn.in_flight[task[0]] = (task, deadline)
                action = send(conn, {
                    "type": "task",
                    "index": task[0],
                    "attempt": task[3],
                    "force_reference": task[4],
                }, payload=(task[1], task[2]), gated=True)
                if action in ("disconnect", "peer_gone"):
                    tally({"net_disconnects": 1})
                    retire_conn(conn, "disconnect")
                # "dropped" frames wait for their deadline; "sent" and
                # duplicated/delayed frames need nothing more.

        def scan(now: float) -> None:
            for conn in list(conns.values()):
                if (
                    conn.name is None
                    and now - conn.connected_at > _HELLO_TIMEOUT
                ):
                    close_conn(conn)  # silent stranger
            if self.heartbeat_timeout is not None:
                for conn in list(workers.values()):
                    if now - conn.last_seen > self.heartbeat_timeout:
                        tally({"net_heartbeat_misses": 1})
                        bus = get_bus()
                        if bus is not None:
                            record_net_event(bus, "heartbeat_miss")
                        strike(conn)
                        if conn.name in workers:
                            retire_conn(conn, "heartbeat")
            if self.task_deadline is not None:
                for conn in list(workers.values()):
                    for index, (task, deadline) in list(
                        conn.in_flight.items()
                    ):
                        if deadline is not None and now > deadline:
                            conn.in_flight.pop(index, None)
                            tally({"net_deadline_misses": 1})
                            strike(conn)
                            next_attempt(
                                task, ("net_deadline",),
                                f"window {index} blew its "
                                f"{self.task_deadline}s deadline on "
                                f"worker {conn.name!r}",
                                reason="deadline",
                            )

        try:
            while failure is None:
                if state.n_done + state.n_failed >= total:
                    break
                if (
                    self.stop_after is not None
                    and accepted >= self.stop_after
                ):
                    verdict = "stopped"
                    break
                for key, _events in sel.select(timeout=_TICK_SECONDS):
                    if key.data == "listen":
                        try:
                            sock, addr = self._listener.accept()
                        except OSError:
                            continue
                        sock.settimeout(_CONN_TIMEOUT)
                        conn = _Conn(sock, addr)
                        conns[sock.fileno()] = conn
                        sel.register(
                            sock, selectors.EVENT_READ, conn
                        )
                    else:
                        read_conn(key.data)
                if failure is not None or feed_failure:
                    break
                now = time.monotonic()
                scan(now)
                alive = [c for c in workers.values() if c.ready]
                if alive:
                    ever_ready = True
                    last_alive = now
                elif not ever_ready and now > reg_deadline:
                    if self.local_fallback:
                        verdict = "degrade"
                        break
                    raise ConfigurationError(
                        "no fleet workers registered within "
                        f"{self.register_timeout}s and local_fallback "
                        "is off"
                    )
                elif ever_ready and now - last_alive > max(
                    self.register_timeout,
                    self.heartbeat_timeout or 0.0,
                ):
                    # Lost the whole fleet mid-run: last ladder rung.
                    if self.local_fallback:
                        tally({"local_degradations": 1})
                        self._serve_locally(stream, state, mark)
                        break
                    failure = (
                        "fleet", None,
                        "every fleet worker was lost mid-stream and "
                        "local_fallback is off",
                    )
                    break
                dispatch()
                bus = get_bus()
                if bus is not None:
                    record_net_state(bus, len(alive), sum(
                        len(c.in_flight) for c in workers.values()
                    ))
                    record_progress(
                        bus, state.n_done + state.n_failed, total,
                        wall_base + time.perf_counter() - wall_start,
                    )
                if (
                    feed_done.is_set() and ready_q.empty()
                    and not requeue
                    and not any(
                        c.in_flight for c in workers.values()
                    )
                    and alive
                    and state.n_done + state.n_failed < total
                ):
                    failure = (
                        "fleet", None,
                        "fleet stalled with "
                        f"{state.n_done + state.n_failed}/{total} "
                        "windows accounted — sharding bug",
                    )
            if failure is None and verdict == "served" and \
                    state.complete:
                for conn in list(workers.values()):
                    send(conn, {"type": "fin"})
        except BaseException:
            if checkpoint is not None:
                flush_session(state, checkpoint, wall_base, wall_start)
            raise
        finally:
            abort.set()
            feeder.join(timeout=10.0)
            while True:
                try:
                    ready_q.get_nowait()
                except queue.Empty:
                    break
            for conn in list(conns.values()):
                close_conn(conn)
            sel.close()
        if failure is None and feed_failure:
            failure = (
                "feeder", None,
                f"trace slicing failed mid-stream:\n{feed_failure[0]}",
            )
        if failure is not None:
            if checkpoint is not None:
                flush_session(state, checkpoint, wall_base, wall_start)
            raise PoolWorkerError(*failure)
        if len(engines) > 1:
            raise SimulationError(
                "fleet workers disagree on the engine: "
                f"{sorted(engines)}"
            )
        return verdict, (engines.pop() if engines else self.engine)

    def _backoff(self, attempt: int) -> float:
        return min(self.backoff_cap, self.retry_backoff * (2 ** attempt))

    def _serve_locally(self, stream, state, mark) -> None:
        """The last degradation rung: finish the stream in-process.

        Mirrors the inner loop of :meth:`StreamScheduler.run` over the
        already-resumed state — the windows served remotely stay
        exactly as accepted, the remainder is served on a fresh local
        platform, and history independence makes the merge
        bit-identical either way.
        """
        scheduler = StreamScheduler(
            config=self.config,
            runner=self._local.runner_factory(),
            pipeline=self.pipeline,
            double_buffer=self.double_buffer,
            energy_model=self.energy_model,
            fault_plan=self._platform_plan,
            max_retries=self.max_retries,
            reference_fallback=self.reference_fallback,
        )
        log = []
        scheduler.runner.launch_log = log
        stats = scheduler.runner.soc.vwr2a.config_mem.stats
        for window in stream:
            if (
                window.index in state.results
                or window.index in state.failed
            ):
                continue
            before = stats.snapshot()
            bus = get_bus()
            resilience_before = (
                dict(state.resilience) if bus is not None else None
            )
            if scheduler._injector is None:
                result = scheduler.serve_window(window, log)
            else:
                result = scheduler._serve_resilient(window, log, state)
            if result is not None:
                state.results[window.index] = result
            stats_delta = stats.since(before)
            merge_counts(state.store_stats, stats_delta)
            if bus is not None:
                if result is not None:
                    record_window(
                        bus, result, stats_delta, worker="local"
                    )
                else:
                    record_failed(bus)
                record_resilience(bus, {
                    name: count - resilience_before.get(name, 0)
                    for name, count in state.resilience.items()
                    if count != resilience_before.get(name, 0)
                })
            mark()
