"""The fleet wire format: length-prefixed, checksummed frames.

One frame is::

    MAGIC(4) | body_len(u32 BE) | crc32(u32 BE) | body

where the body is ``header_len(u32 BE) | header | payload``: the header
is compact JSON (message type, window index, attempt — everything the
server's event loop routes on without unpickling anything), the payload
an optional pickle blob (window samples, :class:`WindowResult` objects,
worker specs). The CRC covers the whole body, so a flipped bit anywhere
is detected before a byte of it reaches :mod:`pickle`.

Corruption handling is deliberately two-tier, and the split is what
makes the chaos campaign's ``net_corrupt`` cells recoverable while
``net_truncate`` cells exercise reconnection:

* a frame whose declared length is intact but whose checksum fails is a
  **recoverable** event — the stream stays aligned, the frame is
  reported ``("bad", FrameError)`` and dropped, and the task-deadline
  ladder re-serves the window;
* bad magic, an oversize declared length (:data:`MAX_FRAME` bounds
  allocation, so a fuzzed length cannot OOM the server) or a mid-frame
  EOF mean the byte stream itself can no longer be trusted — a **fatal**
  :class:`FrameError` — and the only safe recovery is dropping the
  connection and letting the peer reconnect.

:class:`FrameBuffer` is the incremental decoder for the server's
non-blocking loop; :func:`send_frame`/:func:`read_frame` are the
blocking pair for workers. :class:`NetGate` injects the deterministic
``net_*`` fault family of :mod:`repro.faults` at this layer — on the
sender, where every kind (drop, delay, dup, corrupt, truncate,
disconnect, slow-loris) has a faithful socket realization.
"""

from __future__ import annotations

import json
import pickle
import socket
import struct
import time
import zlib

from repro.core.errors import SimulationError
from repro.faults.plan import NET_FAULT_SIDES, NET_FAULTS

#: Frame preamble; anything else on the wire means a desynced or hostile
#: peer and is fatal for the connection.
MAGIC = b"RPF1"
_PRE = struct.Struct(">4sII")    # magic, body length, body crc32
_HLEN = struct.Struct(">I")      # JSON header length within the body
#: Upper bound on a declared body length. Real frames are a few KB
#: (task) to tens of KB (result); the cap exists so a corrupted or
#: fuzzed length prefix cannot make the receiver allocate gigabytes.
MAX_FRAME = 64 * 1024 * 1024


class FrameError(SimulationError):
    """A frame failed to decode.

    ``fatal`` distinguishes the two tiers described in the module
    docstring: ``False`` means this frame is lost but the stream is
    still aligned (drop it, keep reading); ``True`` means the
    connection's byte stream is unusable and must be closed.
    """

    def __init__(self, reason: str, fatal: bool = False) -> None:
        super().__init__(reason)
        self.fatal = fatal


class ConnectionClosed(SimulationError):
    """The peer closed the connection (EOF on a frame boundary or not)."""


def encode_frame(msg: dict, payload=None) -> bytes:
    """Serialize one message (+ optional pickled payload) to wire bytes."""
    header = json.dumps(
        msg, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    blob = b"" if payload is None else pickle.dumps(payload)
    body = _HLEN.pack(len(header)) + header + blob
    return _PRE.pack(MAGIC, len(body), zlib.crc32(body)) + body


def decode_body(body: bytes):
    """Decode a checksum-verified frame body to ``(msg, payload)``."""
    if len(body) < _HLEN.size:
        raise FrameError("frame body shorter than its header length")
    (hlen,) = _HLEN.unpack_from(body)
    if hlen > len(body) - _HLEN.size:
        raise FrameError(
            f"frame header length {hlen} exceeds body"
        )
    try:
        msg = json.loads(body[_HLEN.size:_HLEN.size + hlen])
    except ValueError as exc:
        raise FrameError(f"frame header is not JSON: {exc}") from exc
    if not isinstance(msg, dict):
        raise FrameError("frame header is not a JSON object")
    blob = body[_HLEN.size + hlen:]
    if not blob:
        return msg, None
    try:
        return msg, pickle.loads(blob)
    except Exception as exc:
        raise FrameError(f"frame payload does not unpickle: {exc}") from exc


class FrameBuffer:
    """Incremental frame decoder over a non-blocking byte stream.

    Feed raw ``recv`` chunks in; :meth:`pop` yields complete frames as
    ``("frame", msg, payload)``, recoverable decode failures as
    ``("bad", FrameError)`` (stream still aligned — checksum mismatch,
    malformed header/payload), or ``None`` when more bytes are needed.
    Desync — bad magic or an oversize length — raises a fatal
    :class:`FrameError`; the connection must be dropped.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def __len__(self) -> int:
        return len(self._buf)

    def feed(self, data: bytes) -> None:
        self._buf += data

    def pop(self):
        buf = self._buf
        if len(buf) < _PRE.size:
            return None
        magic, length, crc = _PRE.unpack_from(buf)
        if magic != MAGIC:
            raise FrameError(
                f"bad frame magic {bytes(magic)!r} — peer desynced or "
                "not speaking the fleet protocol", fatal=True,
            )
        if length > MAX_FRAME:
            raise FrameError(
                f"declared frame length {length} exceeds the "
                f"{MAX_FRAME}-byte cap — refusing to buffer", fatal=True,
            )
        if len(buf) < _PRE.size + length:
            return None
        body = bytes(buf[_PRE.size:_PRE.size + length])
        del buf[:_PRE.size + length]
        if zlib.crc32(body) != crc:
            return ("bad", FrameError(
                f"frame checksum mismatch over {length} bytes"
            ))
        try:
            msg, payload = decode_body(body)
        except FrameError as err:
            return ("bad", err)
        return ("frame", msg, payload)


# -- blocking helpers (worker side) ------------------------------------------


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < n:
        data = sock.recv(n - len(chunks))
        if not data:
            raise ConnectionClosed(
                f"connection closed after {len(chunks)}/{n} bytes"
            )
        chunks += data
    return bytes(chunks)


def read_frame(sock: socket.socket):
    """Blocking read of one frame; returns ``(msg, payload)``.

    Raises :class:`ConnectionClosed` on EOF, :class:`FrameError`
    (fatal for desync/oversize, recoverable for checksum/decode) and
    lets socket timeouts propagate so callers can interleave
    heartbeats.
    """
    pre = _recv_exact(sock, _PRE.size)
    magic, length, crc = _PRE.unpack(pre)
    if magic != MAGIC:
        raise FrameError(
            f"bad frame magic {magic!r} — peer desynced", fatal=True
        )
    if length > MAX_FRAME:
        raise FrameError(
            f"declared frame length {length} exceeds the "
            f"{MAX_FRAME}-byte cap", fatal=True,
        )
    body = _recv_exact(sock, length)
    if zlib.crc32(body) != crc:
        raise FrameError(f"frame checksum mismatch over {length} bytes")
    return decode_body(body)


def send_frame(sock: socket.socket, msg: dict, payload=None) -> None:
    """Blocking send of one frame."""
    sock.sendall(encode_frame(msg, payload))


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (for tests/CLI loopback fleets)."""
    with socket.socket() as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


# -- deterministic transport chaos -------------------------------------------


def corrupt_frame(frame: bytes, offset: int, xor_mask: int) -> bytes:
    """Flip bits in one *body* byte, leaving the length prefix intact.

    Corrupting past the preamble is what keeps the fault recoverable:
    the receiver still knows where the frame ends, fails the checksum,
    and stays aligned for the next frame.
    """
    start = _PRE.size
    if len(frame) <= start:
        return frame
    pos = start + (offset % (len(frame) - start))
    flipped = bytearray(frame)
    flipped[pos] ^= (xor_mask & 0xFF) or 0x01
    return bytes(flipped)


class NetGate:
    """Applies a plan's ``net_*`` specs to outgoing frames, one side.

    The gate wraps every framed send on its side of the transport —
    ``"task"`` on the server, ``"result"`` on the workers (see
    :data:`~repro.faults.plan.NET_FAULT_SIDES`). A spec fires on the
    first ``persist`` *transmissions* of a frame carrying its window
    index, counted per spec across retries and retransmissions — the
    transport analogue of the injector's attempt counting, and equally
    deterministic: same plan, same sharding of sends, same chaos.

    :meth:`send` returns what actually happened so the caller can keep
    its bookkeeping honest: ``"sent"`` (possibly delayed/duplicated),
    ``"dropped"`` (nothing hit the wire), ``"truncated"`` (a partial
    frame went out — the caller must close the connection to model the
    mid-frame disconnect) or ``"disconnect"`` (the full frame went out
    but the connection must now be closed).
    """

    def __init__(self, specs, side: str) -> None:
        self.side = side
        self.specs = tuple(
            s for s in specs
            if s.kind in NET_FAULTS and NET_FAULT_SIDES[s.kind] == side
        )
        #: Lifetime tally of fired kinds (merged into ``resilience``).
        self.counters = {}
        #: Optional callable(msg) applied after fault matching but
        #: before the frame is encoded — fleet workers refresh their
        #: cumulative fired-counter report here so a fault firing on
        #: this very frame is already reflected in it.
        self.stamp = None
        self._fired = {}  # spec -> transmissions it has struck

    #: Frame types eligible for injection, per side. Control frames
    #: (hello/spec/ready/hb/fin) are never faulted: chaos targets the
    #: at-least-once task/result path, not session establishment.
    _ELIGIBLE = {
        "task": ("task",),
        "result": ("result", "retry"),
    }

    def _matching(self, msg: dict):
        if msg.get("type") not in self._ELIGIBLE[self.side]:
            return ()
        index = msg.get("index")
        fired = []
        for spec in self.specs:
            if spec.window != index:
                continue
            struck = self._fired.get(spec, 0)
            if struck >= spec.persist:
                continue
            self._fired[spec] = struck + 1
            self.counters[spec.kind] = (
                self.counters.get(spec.kind, 0) + 1
            )
            fired.append(spec)
        return fired

    def send(self, sock: socket.socket, msg: dict, payload=None) -> str:
        fired = self._matching(msg)
        if self.stamp is not None:
            self.stamp(msg)
        if not fired:
            send_frame(sock, msg, payload)
            return "sent"
        frame = encode_frame(msg, payload)
        if any(s.kind == "net_drop" for s in fired):
            return "dropped"
        copies = 1
        slow = None
        verdict = "sent"
        for spec in fired:
            if spec.kind == "net_delay":
                time.sleep(spec.delay_ms / 1000.0)
            elif spec.kind == "net_corrupt":
                frame = corrupt_frame(frame, spec.offset, spec.xor_mask)
            elif spec.kind == "net_truncate":
                keep = spec.keep or len(frame) // 2
                sock.sendall(frame[:max(1, min(keep, len(frame) - 1))])
                return "truncated"
            elif spec.kind == "net_dup":
                copies = 2
            elif spec.kind == "net_disconnect":
                verdict = "disconnect"
            elif spec.kind == "net_slow":
                slow = spec
        for _ in range(copies):
            if slow is not None:
                self._dribble(sock, frame, slow)
            else:
                sock.sendall(frame)
        return verdict

    @staticmethod
    def _dribble(sock: socket.socket, frame: bytes, spec) -> None:
        """Slow-loris the frame out in crumbs over ~``delay_ms``."""
        step = max(1, spec.chunk_bytes)
        chunks = range(0, len(frame), step)
        pause = (spec.delay_ms / 1000.0) / max(1, len(chunks))
        for start in chunks:
            sock.sendall(frame[start:start + step])
            time.sleep(min(pause, 0.05))
