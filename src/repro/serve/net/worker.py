"""The fleet client: one remote platform, served over TCP.

A :class:`FleetWorker` dials the :class:`~repro.serve.net.FleetServer`,
introduces itself (``hello``), receives its picklable worker spec over
the wire, builds its platform through the same
:class:`~repro.serve.pool.AttemptServer` core that pool worker
processes use, and then serves one attempt per ``task`` frame — so a
window served by a fleet worker is bit-identical to the same window
served by a local pool worker or the sequential scheduler.

Liveness and loss are the client's whole job beyond that:

* **Heartbeats** — the socket read times out every
  ``heartbeat_interval`` seconds and the worker sends an ``hb`` frame,
  so the server can tell a slow window from a dead peer.
* **Auto-reconnect** — any connection loss (server restart, injected
  disconnect, desynced stream) sends the worker back into a dial loop
  with exponential backoff, bounded by ``reconnect_timeout`` of
  continuous unreachability. The platform survives reconnects: the
  ``hello`` carries the spec digest, and the server only re-ships the
  spec when it differs.
* **Result-side chaos** — when the job's fault plan schedules
  result-side ``net_*`` faults, the server ships those specs with the
  worker spec and the worker arms them on its own
  :class:`~repro.serve.net.framing.NetGate`, corrupting/truncating/
  dribbling its own result frames on schedule.

``process_faults`` stays ``False`` by default so thread-hosted workers
(tests, examples) can share a process with the server; the CLI worker
entry point turns it on, making ``worker_kill``/``worker_hang`` plans
lethal exactly like pool workers.
"""

from __future__ import annotations

import socket
import time
import traceback

from repro.serve.net.framing import (
    ConnectionClosed,
    FrameError,
    NetGate,
    read_frame,
    send_frame,
)
from repro.serve.pool import AttemptServer

#: Timeout for outbound frames — generous next to the per-beat read
#: timeout, since a result frame can be tens of KB.
_SEND_TIMEOUT = 10.0


class FleetWorker:
    """Serve windows for one fleet server until released.

    :meth:`run` returns the exit reason: ``"fin"`` (stream complete,
    server released us), ``"quarantine"`` (the server's circuit breaker
    benched us), or ``"unreachable"`` (no server accepted a connection
    for ``reconnect_timeout`` continuous seconds).
    """

    def __init__(self, host: str, port: int, name: str = None,
                 heartbeat_interval: float = 0.5,
                 reconnect_backoff: float = 0.2,
                 reconnect_cap: float = 5.0,
                 reconnect_timeout: float = 60.0,
                 process_faults: bool = False) -> None:
        self.host = host
        self.port = port
        self.name = name or f"worker-{id(self) & 0xFFFF:04x}"
        self.heartbeat_interval = heartbeat_interval
        self.reconnect_backoff = reconnect_backoff
        self.reconnect_cap = reconnect_cap
        self.reconnect_timeout = reconnect_timeout
        self.process_faults = process_faults
        self._attempts = None   # AttemptServer, built from the wire spec
        self._gate = None       # result-side NetGate
        self._digest = ""       # spec digest (survives reconnects)

    # -- lifecycle -----------------------------------------------------------

    def run(self) -> str:
        """Dial, serve, reconnect — until released or unreachable."""
        while True:
            sock = self._connect()
            if sock is None:
                return "unreachable"
            try:
                reason = self._session(sock)
            finally:
                try:
                    sock.close()
                except OSError:
                    pass
            if reason != "lost":
                return reason
            # Connection lost: dial again with a fresh backoff budget.

    def _connect(self):
        """Dial with exponential backoff; ``None`` once the budget dies."""
        deadline = time.monotonic() + self.reconnect_timeout
        pause = self.reconnect_backoff
        while True:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=2.0
                )
            except OSError:
                if time.monotonic() >= deadline:
                    return None
                time.sleep(
                    min(pause, max(0.0, deadline - time.monotonic()))
                )
                pause = min(pause * 2, self.reconnect_cap)
                continue
            sock.settimeout(self.heartbeat_interval)
            try:
                self._send(sock, {
                    "type": "hello",
                    "name": self.name,
                    "spec_digest": self._digest,
                    "engine": (
                        self._attempts.engine
                        if self._attempts is not None else ""
                    ),
                })
            except OSError:
                sock.close()
                continue
            return sock

    # -- one connection ------------------------------------------------------

    def _session(self, sock) -> str:
        while True:
            try:
                msg, payload = read_frame(sock)
            except socket.timeout:
                try:
                    self._send(sock, {
                        "type": "hb",
                        "name": self.name,
                        "net_fired": self._fired(),
                    })
                except OSError:
                    return "lost"
                continue
            except FrameError as err:
                if err.fatal:
                    return "lost"
                # Recoverable bad frame from the server (a corrupted
                # task): drop it — the server's deadline re-serves it.
                continue
            except (ConnectionClosed, OSError):
                return "lost"
            try:
                verdict = self._handle(sock, msg, payload)
            except (ConnectionClosed, OSError):
                # The connection died under an outbound frame (e.g. the
                # server restarted while we were sending a result):
                # reconnect and let the deadline re-serve the window.
                return "lost"
            if verdict is not None:
                return verdict

    def _handle(self, sock, msg: dict, payload):
        kind = msg.get("type")
        if kind == "spec":
            worker_spec, net_specs = payload
            try:
                self._attempts = AttemptServer(
                    worker_spec, process_faults=self.process_faults
                )
            except Exception:
                # A spec that cannot build a platform is a job-level
                # failure: report it (the server aborts the stream the
                # way a pool worker crash would) and give up.
                self._send(sock, {
                    "type": "err",
                    "name": self.name,
                    "index": None,
                }, payload=traceback.format_exc())
                return "spec_error"
            self._gate = NetGate(net_specs, side="result")
            self._gate.stamp = self._stamp
            self._digest = msg.get("digest", "")
            self._send(sock, {
                "type": "ready",
                "name": self.name,
                "engine": self._attempts.engine,
            })
        elif kind == "task":
            if self._attempts is None:
                # A task before the spec means the server thinks we are
                # warm when we are not: ask for the spec again.
                self._send(sock, {
                    "type": "hello",
                    "name": self.name,
                    "spec_digest": "",
                    "engine": "",
                })
                return None
            return self._serve_task(sock, msg, payload)
        elif kind == "fin":
            return "fin"
        elif kind == "quarantine":
            return "quarantine"
        # Unknown control frames are ignored: wire compatibility.
        return None

    def _serve_task(self, sock, msg: dict, payload):
        index = msg["index"]
        attempt = msg["attempt"]
        force_reference = bool(msg.get("force_reference"))
        start, samples = payload
        try:
            verdict = self._attempts.serve(
                index, start, samples, attempt, force_reference
            )
        except Exception:
            # A genuine pipeline failure: ship the full traceback so
            # the server re-raises it as a PoolWorkerError that reads
            # identically to a local one.
            self._send(sock, {
                "type": "err",
                "name": self.name,
                "index": index,
            }, payload=traceback.format_exc())
            return None
        if verdict[0] == "ok":
            _, result, stats_delta, forced = verdict
            action = self._send(sock, {
                "type": "result",
                "index": index,
                "attempt": attempt,
                "force_reference": bool(forced),
                "net_fired": self._fired(),
            }, payload=(result, stats_delta), gated=True)
        else:
            action = self._send(sock, {
                "type": "retry",
                "index": index,
                "attempt": attempt,
                "force_reference": force_reference,
                "kinds": list(verdict[1]),
                "net_fired": self._fired(),
            }, gated=True)
        if action in ("truncated", "disconnect"):
            # The gate modeled a mid-frame (or post-frame) disconnect:
            # honour it by actually dropping the connection.
            return "lost"
        return None

    # -- plumbing ------------------------------------------------------------

    def _fired(self) -> dict:
        return dict(self._gate.counters) if self._gate is not None else {}

    def _stamp(self, msg: dict) -> None:
        # NetGate hook: refresh the cumulative fired-counter report
        # after matching (so a fault firing on this very frame is
        # already counted) but before the frame is encoded.
        msg["net_fired"] = self._fired()

    def _send(self, sock, msg: dict, payload=None,
              gated: bool = False) -> str:
        old = sock.gettimeout()
        sock.settimeout(_SEND_TIMEOUT)
        try:
            if gated and self._gate is not None and self._gate.specs:
                return self._gate.send(sock, msg, payload)
            send_frame(sock, msg, payload)
            return "sent"
        except socket.timeout as exc:
            raise OSError(f"send timed out: {exc}") from exc
        finally:
            try:
                sock.settimeout(old)
            except OSError:
                pass


def run_worker(host: str, port: int, name: str = None,
               heartbeat_interval: float = 0.5,
               reconnect_timeout: float = 60.0,
               process_faults: bool = True) -> str:
    """Module-level worker entry point (multiprocessing/CLI target)."""
    return FleetWorker(
        host, port, name=name,
        heartbeat_interval=heartbeat_interval,
        reconnect_timeout=reconnect_timeout,
        process_faults=process_faults,
    ).run()
