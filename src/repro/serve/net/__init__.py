"""Fault-tolerant distributed fleet serving over TCP.

The socket transport for the serving stack (docs/distributed.md):

* :mod:`repro.serve.net.framing` — length-prefixed, CRC32-checksummed
  JSON+pickle frames, the incremental :class:`FrameBuffer` decoder, and
  the :class:`NetGate` that injects the deterministic ``net_*`` fault
  family of :mod:`repro.faults` at this layer;
* :class:`FleetServer` — shards a window stream over remote workers
  with per-task deadlines, exponential-backoff retries, heartbeat
  liveness, idempotent at-least-once delivery, a circuit breaker and a
  degradation ladder down to local serving
  (:mod:`repro.serve.net.server`);
* :class:`FleetWorker` — the auto-reconnecting client that serves
  attempts on its own platform via the same
  :class:`~repro.serve.pool.AttemptServer` core pool workers use
  (:mod:`repro.serve.net.worker`);
* ``python -m repro.serve.net`` — ``server``/``worker`` entry points
  plus the ``smoke`` loopback chaos drill CI runs
  (:mod:`repro.serve.net.__main__`).

Deliberately not imported by :mod:`repro.serve` itself: the transport
is opt-in and the serve package stays import-light.
"""

from repro.serve.net.framing import (
    MAGIC,
    MAX_FRAME,
    ConnectionClosed,
    FrameBuffer,
    FrameError,
    NetGate,
    decode_body,
    encode_frame,
    free_port,
    read_frame,
    send_frame,
)
from repro.serve.net.server import FleetServer
from repro.serve.net.worker import FleetWorker, run_worker

__all__ = [
    "ConnectionClosed",
    "FleetServer",
    "FleetWorker",
    "FrameBuffer",
    "FrameError",
    "MAGIC",
    "MAX_FRAME",
    "NetGate",
    "decode_body",
    "encode_frame",
    "free_port",
    "read_frame",
    "run_worker",
    "send_frame",
]
