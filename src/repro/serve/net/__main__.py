"""CLI entry points for the fleet transport: server, worker, smoke.

Three subcommands (see docs/distributed.md):

* ``server`` — serve a synthetic respiration stream over the fleet,
  waiting for remote workers to register::

      python -m repro.serve.net server --port 7420 --windows 8

* ``worker`` — one remote platform, dialing a server::

      python -m repro.serve.net worker --host 10.0.0.5 --port 7420

* ``smoke`` — the self-contained loopback chaos drill CI runs: a
  sequential baseline, then a fleet session with injected frame drops
  and delays plus one worker killed mid-stream, stopped halfway
  (simulating a server restart), then a second session resuming from
  the shared checkpoint — asserting the merged report is bit-identical
  to the baseline::

      python -m repro.serve.net smoke --windows 6 --json smoke.json
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import tempfile
import time

#: Worker exit reasons -> process exit codes (``worker`` subcommand).
_WORKER_EXIT = {"fin": 0, "quarantine": 2, "unreachable": 3, "spec_error": 4}


def _add_server_args(parser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port to listen on (0 picks a free one)",
    )
    parser.add_argument("--config", default="cpu_vwr2a")
    parser.add_argument(
        "--windows", type=int, default=8,
        help="synthetic stream length in application windows",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="checkpoint file for resume across restarts",
    )
    parser.add_argument(
        "--every", type=int, default=4,
        help="checkpoint cadence in completed windows",
    )
    parser.add_argument("--retries", type=int, default=2)
    parser.add_argument(
        "--deadline", type=float, default=None,
        help="per-task deadline in seconds (off by default)",
    )
    parser.add_argument(
        "--heartbeat-timeout", type=float, default=None,
        help="declare a silent worker dead after this many seconds",
    )
    parser.add_argument(
        "--register-timeout", type=float, default=10.0,
        help="seconds to wait for the first worker before degrading",
    )
    parser.add_argument(
        "--no-local-fallback", action="store_true",
        help="error out instead of degrading to the local pool",
    )


def _cmd_server(args) -> int:
    from repro.app.mbiotracker import WINDOW
    from repro.app.signals import respiration_signal
    from repro.serve import StreamCheckpoint, WindowStream
    from repro.serve.net.server import FleetServer

    stream = WindowStream(
        respiration_signal(args.windows * WINDOW), window=WINDOW
    )
    checkpoint = (
        StreamCheckpoint(args.checkpoint, every=args.every)
        if args.checkpoint else None
    )
    server = FleetServer(
        config=args.config,
        host=args.host,
        port=args.port,
        max_retries=args.retries,
        task_deadline=args.deadline,
        heartbeat_timeout=args.heartbeat_timeout,
        register_timeout=args.register_timeout,
        local_fallback=not args.no_local_fallback,
    )
    host, port = server.bind()
    print(f"fleet server listening on {host}:{port} "
          f"({stream.n_windows} windows)")
    report = server.run(stream, checkpoint)
    print(report.summary())
    if report.resilience:
        print(f"resilience: {dict(sorted(report.resilience.items()))}")
    return 0 if report.n_failed == 0 else 1


def _cmd_worker(args) -> int:
    from repro.serve.net.worker import run_worker

    reason = run_worker(
        args.host, args.port,
        name=args.name,
        heartbeat_interval=args.heartbeat,
        reconnect_timeout=args.reconnect_timeout,
        process_faults=not args.no_process_faults,
    )
    print(f"worker exited: {reason}")
    return _WORKER_EXIT.get(reason, 1)


def _spawn_workers(host: str, port: int, n: int):
    from repro.serve.net.worker import run_worker
    from repro.serve.pool import _default_start_method

    ctx = multiprocessing.get_context(_default_start_method())
    procs = []
    for i in range(n):
        proc = ctx.Process(
            target=run_worker,
            args=(host, port),
            kwargs={
                "name": f"smoke-{i}",
                "heartbeat_interval": 0.25,
                "reconnect_timeout": 60.0,
                "process_faults": True,
            },
            daemon=True,
        )
        proc.start()
        procs.append(proc)
    return procs


def _reap(procs) -> None:
    for proc in procs:
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)


def _cmd_smoke(args) -> int:
    from repro.app.mbiotracker import WINDOW
    from repro.app.signals import respiration_signal
    from repro.faults import FaultPlan, FaultSpec
    from repro.serve import StreamCheckpoint, StreamScheduler, WindowStream
    from repro.serve.net.server import FleetServer

    n = args.windows
    stream = WindowStream(respiration_signal(n * WINDOW), window=WINDOW)
    print(f"smoke: {stream.n_windows} windows, {args.workers} workers")

    t0 = time.perf_counter()
    baseline = StreamScheduler(config=args.config).run(stream)
    base_wall = time.perf_counter() - t0
    print(f"sequential baseline: {base_wall:.2f}s")

    # The chaos menu: a dropped task frame, a delayed one, a corrupted
    # result frame, and one worker killed mid-window. Recoverable by
    # design — the drill proves recovery is invisible in the results.
    plan = FaultPlan(specs=(
        FaultSpec(kind="net_drop", window=0, persist=1),
        FaultSpec(kind="net_delay", window=1 % n, persist=1, delay_ms=150),
        FaultSpec(kind="net_corrupt", window=2 % n, persist=1,
                  offset=40, xor_mask=0x10),
        FaultSpec(kind="worker_kill", window=3 % n, persist=1),
    ))

    def server_for(stop_after=None):
        return FleetServer(
            config=args.config,
            host="127.0.0.1",
            port=getattr(server_for, "port", 0),
            fault_plan=plan,
            max_retries=2,
            task_deadline=5.0,
            heartbeat_timeout=15.0,
            register_timeout=60.0,
            local_fallback=False,
            stop_after=stop_after,
        )

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "smoke.ckpt")
        half = max(1, stream.n_windows // 2)

        # Session 1: serve half the stream, then stop — the "server
        # restart". Workers keep running and reconnect-loop.
        server = server_for(stop_after=half)
        host, port = server.bind()
        server_for.port = port  # session 2 rebinds the same port
        procs = _spawn_workers(host, port, args.workers)
        try:
            t1 = time.perf_counter()
            partial = server.run(
                stream, StreamCheckpoint(path, every=1)
            )
            print(f"session 1 (stopped after {half}): "
                  f"{partial.n_windows} served in "
                  f"{time.perf_counter() - t1:.2f}s, resilience="
                  f"{dict(sorted(partial.resilience.items()))}")

            # Session 2: a fresh server on the same port resumes from
            # the checkpoint; surviving workers reconnect.
            t2 = time.perf_counter()
            report = server_for().run(
                stream, StreamCheckpoint(path, every=1)
            )
            print(f"session 2 (resumed): {report.n_windows} served in "
                  f"{time.perf_counter() - t2:.2f}s")
        finally:
            _reap(procs)

    mismatch = report.identical_to(baseline, engines=False)
    complete = report.n_windows == stream.n_windows and not report.n_failed
    reconnected = report.resilience.get("net_reconnects", 0) > 0
    ok = mismatch is None and complete and reconnected
    print(f"resilience: {dict(sorted(report.resilience.items()))}")
    print("bit-identical to sequential baseline: "
          + ("yes" if mismatch is None else f"NO — {mismatch}"))
    if not reconnected:
        print("NO reconnects recorded — the restart drill proved nothing")
    print("smoke verdict: " + ("ok" if ok else "FAILED"))

    if args.json:
        with open(args.json, "w") as handle:
            json.dump({
                "ok": ok,
                "windows": stream.n_windows,
                "workers": args.workers,
                "served": report.n_windows,
                "failed": report.n_failed,
                "bit_identical": mismatch is None,
                "mismatch": mismatch,
                "resilience": dict(report.resilience),
                "baseline_wall_seconds": base_wall,
                "faults": [
                    {"kind": s.kind, "window": s.window,
                     "persist": s.persist}
                    for s in plan.specs
                ],
            }, handle, indent=2)
        print(f"report written to {args.json}")
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.net",
        description="Fault-tolerant fleet serving over TCP.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    server = sub.add_parser(
        "server", help="serve a synthetic stream over remote workers"
    )
    _add_server_args(server)
    server.set_defaults(func=_cmd_server)

    worker = sub.add_parser("worker", help="serve windows for a server")
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument("--port", type=int, required=True)
    worker.add_argument("--name", default=None)
    worker.add_argument("--heartbeat", type=float, default=0.5)
    worker.add_argument("--reconnect-timeout", type=float, default=60.0)
    worker.add_argument(
        "--no-process-faults", action="store_true",
        help="ignore lethal process faults in the shipped plan",
    )
    worker.set_defaults(func=_cmd_worker)

    smoke = sub.add_parser(
        "smoke",
        help="loopback chaos drill: faults + restart + resume (CI job)",
    )
    smoke.add_argument("--windows", type=int, default=6)
    smoke.add_argument("--workers", type=int, default=3)
    smoke.add_argument("--config", default="cpu_vwr2a")
    smoke.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the drill report as JSON",
    )
    smoke.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
