"""Per-window and aggregate results of a served stream.

A :class:`StreamReport` is what :class:`~repro.serve.StreamScheduler.run`
returns: one :class:`WindowResult` per window (cycles, event deltas, the
kernel launches with their engine/fallback decisions, staging DMA split,
optional energy) plus stream-level aggregates — total cycles and events,
the engine decision mix, configuration-store cache deltas, and the
double-buffer pipelining estimate.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter
from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError


def merge_counts(into: dict, delta: dict) -> dict:
    """Sum the counters of ``delta`` into ``into`` (in place) and return it.

    The arithmetic behind mergeable reports: store-cache stats and event
    tallies produced by different runners (checkpoint sessions, pool
    workers) combine by plain addition.
    """
    for name, count in delta.items():
        into[name] = into.get(name, 0) + count
    return into


def step_energy_uj(model, config: str, step) -> float:
    """Energy (µJ) of one application :class:`~repro.app.StepResult`.

    Sums the three platform contributions the Table-5 column is made of:
    the VWR2A domain (only powered in the ``cpu_vwr2a`` configuration),
    the fixed-function FFT accelerator, and the CPU's active/sleep split.
    """
    vwr2a = (
        model.vwr2a_report(step.events, step.cycles).total_uj
        if config == "cpu_vwr2a" else 0.0
    )
    accel = model.accel_report(step.events, 0).total_uj
    cpu = (step.cpu_active * model.table.cpu_pj_per_cycle
           + step.cpu_sleep * model.table.cpu_sleep_pj_per_cycle) * 1e-6
    return vwr2a + accel + cpu


def app_energy_uj(model, config: str, app) -> float:
    """Energy (µJ) of a whole :class:`~repro.app.AppResult` window."""
    return sum(
        step_energy_uj(model, config, step) for step in app.steps.values()
    )


@dataclass
class WindowResult:
    """Everything one served window produced."""

    index: int        #: window number within the stream
    start: int        #: sample offset of the window in the trace
    app: object       #: the pipeline's return value (AppResult by default)
    cycles: int       #: platform cycles the window consumed (active+sleep)
    events: dict      #: event-count delta of the window
    launches: tuple   #: RunResult of every kernel launch in the window
    staging_in_cycles: int   #: DMA cycles staging data in (SRAM -> SPM)
    staging_out_cycles: int  #: DMA cycles staging results out (SPM -> SRAM)
    energy_uj: float = None  #: modeled energy, when the scheduler has a model
    #: Histogram-folded datapath pJ per kernel name (compiled launches
    #: only; None when the scheduler has no energy model). The per-block
    #: attribution behind it stays available on each launch's
    #: ``RunResult.energy_by_block``.
    kernel_energy_pj: dict = None

    @property
    def engine_counts(self) -> dict:
        """Launch tally by executing engine, e.g. ``{"compiled": 12}``."""
        return dict(Counter(r.engine for r in self.launches))

    @property
    def fallbacks(self) -> tuple:
        """``(kernel_name, fallback_reason)`` of reference-fallback launches."""
        return tuple(
            (r.name, r.fallback_reason)
            for r in self.launches if r.fallback_reason
        )

    @property
    def label(self):
        """The application's predicted label (None for custom pipelines)."""
        return getattr(self.app, "label", None)


@dataclass(frozen=True)
class FailedWindow:
    """A window quarantined after exhausting its retry budget.

    Quarantine is the explicit alternative to aborting the stream: the
    window's index, position and failure pedigree are preserved in
    :attr:`StreamReport.failed_windows` (and in the checkpoint, where a
    later resume gives it a fresh chance), while every other window's
    result stays valid. ``kinds`` are the fault kinds the last attempt
    detected; ``detail`` is the last failure's short description.
    """

    index: int      #: window number within the stream
    start: int      #: sample offset of the window in the trace
    attempts: int   #: serving attempts consumed (including any fallback)
    kinds: tuple    #: fault kinds detected on the final attempt
    detail: str     #: human-readable reason of the final attempt


@dataclass
class StreamReport:
    """Aggregate outcome of one served window stream."""

    config: str             #: application configuration (or pipeline repr)
    engine: str             #: the SoC's engine selection ("auto" usually)
    window: int             #: window size in samples
    hop: int                #: stride between window starts
    windows: list = field(default_factory=list)  #: WindowResult per window
    wall_seconds: float = 0.0   #: host wall-clock time spent serving
    store_stats: dict = field(default_factory=dict)  #: config-store cache delta
    double_buffered: bool = False  #: whether staging alternated SRAM halves
    #: FailedWindow per quarantined window (retry budget exhausted),
    #: index-ordered. Empty on every healthy run.
    failed_windows: list = field(default_factory=list)
    #: Resilience counters: retries, respawns, worker_deaths, hangs,
    #: quarantined, reference_recoveries, late_results, fault:<kind>...
    #: Empty when the run needed no supervision intervention.
    resilience: dict = field(default_factory=dict)

    # -- merge arithmetic ---------------------------------------------------

    def add_window(self, result: WindowResult) -> None:
        """Insert ``result`` keeping ``windows`` ordered by window index.

        Order-stable merging is what makes the report independent of
        *who* served each window: checkpoint resumes and pool workers
        complete windows out of order, but the assembled report reads
        exactly like a sequential one. Duplicate indices raise — a merge
        that serves the same window twice is a sharding bug, not a tie to
        break silently.
        """
        position = bisect_left(
            self.windows, result.index, key=lambda w: w.index
        )
        if position < len(self.windows) \
                and self.windows[position].index == result.index:
            raise ConfigurationError(
                f"window {result.index} is already in the report"
            )
        self.windows.insert(position, result)

    def merge_store_stats(self, delta: dict) -> None:
        """Sum a store-cache counter delta into :attr:`store_stats`."""
        merge_counts(self.store_stats, delta)

    def merge(self, other: "StreamReport") -> "StreamReport":
        """Absorb ``other`` (a disjoint shard of the same stream).

        Both reports must describe the same stream shape and platform
        (config, engine, window, hop, staging policy); their windows must
        not overlap. Windows interleave by index, store stats add, and
        wall time accumulates (shards measured by concurrent workers are
        better timed by the pool itself). Returns ``self``.
        """
        for name in ("config", "engine", "window", "hop", "double_buffered"):
            if getattr(self, name) != getattr(other, name):
                raise ConfigurationError(
                    f"cannot merge stream reports with different {name}: "
                    f"{getattr(self, name)!r} != {getattr(other, name)!r}"
                )
        for result in other.windows:
            self.add_window(result)
        for failed in other.failed_windows:
            self.add_failed(failed)
        merge_counts(self.resilience, other.resilience)
        self.merge_store_stats(other.store_stats)
        self.wall_seconds += other.wall_seconds
        return self

    def add_failed(self, failed: FailedWindow) -> None:
        """Record a quarantined window, keeping the list index-ordered."""
        if any(w.index == failed.index for w in self.windows) or any(
            f.index == failed.index for f in self.failed_windows
        ):
            raise ConfigurationError(
                f"window {failed.index} is already in the report"
            )
        position = bisect_left(
            self.failed_windows, failed.index, key=lambda f: f.index
        )
        self.failed_windows.insert(position, failed)

    # -- aggregates ---------------------------------------------------------

    @property
    def n_windows(self) -> int:
        return len(self.windows)

    @property
    def n_failed(self) -> int:
        """Windows quarantined instead of served (see docs/robustness.md)."""
        return len(self.failed_windows)

    @property
    def total_cycles(self) -> int:
        """Simulated platform cycles, summed over windows (sequential)."""
        return sum(w.cycles for w in self.windows)

    @property
    def total_events(self) -> dict:
        """Event counts summed over all windows."""
        total = Counter()
        for w in self.windows:
            total.update(w.events)
        return dict(total)

    @property
    def total_energy_uj(self):
        """Total modeled energy (µJ), or None when energy was not computed."""
        energies = [w.energy_uj for w in self.windows]
        if not energies or any(e is None for e in energies):
            return None
        return sum(energies)

    @property
    def engine_counts(self) -> dict:
        """Stream-wide launch tally by executing engine."""
        total = Counter()
        for w in self.windows:
            total.update(Counter(r.engine for r in w.launches))
        return dict(total)

    @property
    def energy_by_kernel(self) -> dict:
        """Histogram-folded datapath pJ per kernel, summed over windows.

        The per-window attribution (:attr:`WindowResult.kernel_energy_pj`)
        aggregated stream-wide; empty when the stream was served without
        an energy model. Covers the column-datapath events of compiled
        launches — leakage, staging DMA and CPU energy remain part of the
        window-level ``energy_uj`` model.
        """
        total = {}
        for w in self.windows:
            if w.kernel_energy_pj:
                merge_counts(total, w.kernel_energy_pj)
        return total

    @property
    def fallbacks(self) -> tuple:
        """Every reference fallback in the stream: (window, kernel, reason)."""
        return tuple(
            (w.index, name, reason)
            for w in self.windows for name, reason in w.fallbacks
        )

    @property
    def labels(self) -> list:
        """Per-window predicted labels (the served inference output)."""
        return [w.label for w in self.windows]

    @property
    def windows_per_second(self) -> float:
        """Host-side serving throughput (windows / wall second)."""
        if self.wall_seconds <= 0.0:
            return float("inf") if self.windows else 0.0
        return self.n_windows / self.wall_seconds

    # -- double-buffer pipelining model -------------------------------------

    @property
    def overlap_saved_cycles(self) -> int:
        """Platform cycles the double-buffered timeline hides.

        With staging alternating between two SRAM halves, window *k+1*'s
        stage-in DMA can proceed while the host drains window *k*'s
        staged-out results, so consecutive windows overlap by
        ``min(out_k, in_k+1)`` cycles. This is a model over the per-window
        staging ledgers — the simulated per-window results themselves stay
        bit-identical to sequential execution.
        """
        if not self.double_buffered:
            return 0
        return sum(
            min(prev.staging_out_cycles, cur.staging_in_cycles)
            for prev, cur in zip(self.windows, self.windows[1:])
        )

    @property
    def pipelined_total_cycles(self) -> int:
        """Modeled stream makespan with double-buffered staging overlap."""
        return self.total_cycles - self.overlap_saved_cycles

    # -- bit-identity -------------------------------------------------------

    def identical_to(self, other: "StreamReport",
                     engines: bool = True) -> str:
        """First simulated difference from ``other``, or ``None`` if none.

        The machine-checkable form of the serving layer's determinism
        contract, shared by the differential tests and the fault
        campaigns: compares every window's cycles, events, energy,
        staging split, kernel launch sequence and application output
        (features/labels when present). ``engines=False`` skips the
        per-launch engine decisions — a window recovered on the
        reference-fallback tier is bit-identical in everything the
        simulation produces, but honestly records which engine ran.
        """
        if [w.index for w in self.windows] \
                != [w.index for w in other.windows]:
            return (
                f"window sets differ: {[w.index for w in self.windows]} "
                f"vs {[w.index for w in other.windows]}"
            )
        for a, b in zip(self.windows, other.windows):
            for name in ("start", "cycles", "events", "energy_uj",
                         "staging_in_cycles", "staging_out_cycles",
                         "kernel_energy_pj"):
                if getattr(a, name) != getattr(b, name):
                    return (
                        f"window {a.index}: {name} differs "
                        f"({getattr(a, name)!r} vs {getattr(b, name)!r})"
                    )
            mine = [(r.name, r.cycles) for r in a.launches]
            theirs = [(r.name, r.cycles) for r in b.launches]
            if mine != theirs:
                return f"window {a.index}: launch sequence differs"
            if engines and [r.engine for r in a.launches] \
                    != [r.engine for r in b.launches]:
                return f"window {a.index}: engine decisions differ"
            if hasattr(a.app, "features"):
                if a.app.features != getattr(b.app, "features", None):
                    return f"window {a.index}: features differ"
                if a.app.label != getattr(b.app, "label", None):
                    return f"window {a.index}: label differs"
            elif a.app != b.app:
                return f"window {a.index}: app result differs"
        return None

    # -- rendering ----------------------------------------------------------

    def summary(self) -> str:
        """Human-readable multi-line digest of the stream."""
        lines = [
            f"stream: {self.n_windows} windows of {self.window} "
            f"(hop {self.hop}) under {self.config!r} [engine={self.engine}]",
            f"  cycles: {self.total_cycles} total"
            + (f", {self.pipelined_total_cycles} pipelined "
               f"(-{self.overlap_saved_cycles} overlap)"
               if self.double_buffered else ""),
        ]
        if self.total_energy_uj is not None:
            lines.append(f"  energy: {self.total_energy_uj:.2f} uJ")
        counts = self.engine_counts
        if counts:
            mix = ", ".join(
                f"{engine}: {count}" for engine, count in sorted(counts.items())
            )
            lines.append(f"  launches: {sum(counts.values())} ({mix})")
        if self.fallbacks:
            lines.append(f"  fallbacks: {len(self.fallbacks)} "
                         f"(first: window {self.fallbacks[0][0]}, "
                         f"kernel {self.fallbacks[0][1]!r})")
        if self.store_stats:
            lines.append(
                "  store cache: "
                f"{self.store_stats.get('dedup_hits', 0)} dedup hits, "
                f"{self.store_stats.get('encode_misses', 0)} encode misses, "
                f"{self.store_stats.get('hazard_misses', 0)} hazard misses"
            )
        if self.failed_windows:
            first = self.failed_windows[0]
            lines.append(
                f"  quarantined: {self.n_failed} windows "
                f"(first: window {first.index} after {first.attempts} "
                f"attempts, {first.detail})"
            )
        if self.resilience:
            mix = ", ".join(
                f"{name}: {count}"
                for name, count in sorted(self.resilience.items())
            )
            lines.append(f"  resilience: {mix}")
        if self.wall_seconds:
            lines.append(
                f"  host: {self.wall_seconds:.3f} s wall "
                f"({self.windows_per_second:.1f} windows/s)"
            )
        return "\n".join(lines)
