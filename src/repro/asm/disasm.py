"""Disassembler: configuration words back to readable listings.

Round-trips through ``repro.isa.encoding``: ``disassemble_words`` decodes
raw configuration-memory integers, ``listing`` renders a structured program
in the style of the paper's Table 1.
"""

from __future__ import annotations

from repro.isa.encoding import decode_bundle
from repro.isa.program import ColumnProgram


def listing(program: ColumnProgram) -> str:
    """Table-1-style listing of a column program."""
    header = f"{'PC':>3}  {'LCU':<28} {'LSU':<40} {'MXCU':<22} RC0-3"
    lines = [header, "-" * len(header)]
    for pc, bundle in enumerate(program.bundles):
        rc_txt = " | ".join(str(rc) for rc in bundle.rcs)
        lines.append(
            f"{pc:>3}  {str(bundle.lcu):<28} {str(bundle.lsu):<40} "
            f"{str(bundle.mxcu):<22} {rc_txt}"
        )
    if program.srf_init:
        init = ", ".join(
            f"SRF[{entry}]={value}"
            for entry, value in sorted(program.srf_init.items())
        )
        lines.append(f"SRF init: {init}")
    return "\n".join(lines)


def disassemble_words(words, n_rcs: int = 4) -> list:
    """Decode raw configuration words into bundles."""
    return [decode_bundle(word, n_rcs=n_rcs) for word in words]


def disassemble_listing(words, n_rcs: int = 4) -> str:
    """Decode raw configuration words and render a listing."""
    bundles = disassemble_words(words, n_rcs=n_rcs)
    return listing(ColumnProgram(bundles=bundles))
