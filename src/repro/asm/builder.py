"""Macro-assembler for VWR2A column programs.

The paper maps kernels by hand (Sec. 2: "We have currently mapped the code
manually on VWR2A"). The :class:`ProgramBuilder` is the reproducible form
of that hand-mapping: kernel generators emit bundles through it, using
symbolic labels for branch targets; :meth:`build` resolves labels and
returns a hazard-checkable :class:`~repro.isa.program.ColumnProgram`.
"""

from __future__ import annotations

import dataclasses

from repro.core.errors import ProgramError
from repro.isa.bundle import make_bundle
from repro.isa.lcu import LCU_NOP, LCUInstr, LCUOp, exit_
from repro.isa.lsu import LSU_NOP, LSUInstr
from repro.isa.mxcu import MXCU_NOP, MXCUInstr
from repro.isa.program import ColumnProgram
from repro.isa.rc import RCInstr


class ProgramBuilder:
    """Incrementally builds one column's program."""

    def __init__(self, n_rcs: int = 4) -> None:
        self.n_rcs = n_rcs
        self._bundles = []
        self._labels = {}
        self._srf_init = {}

    # -- emission -----------------------------------------------------------

    @property
    def pc(self) -> int:
        """PC of the next emitted bundle."""
        return len(self._bundles)

    def label(self, name: str) -> None:
        """Attach ``name`` to the next emitted bundle."""
        if name in self._labels:
            raise ProgramError(f"label {name!r} defined twice")
        self._labels[name] = self.pc

    def emit(
        self,
        lcu: LCUInstr = LCU_NOP,
        lsu: LSUInstr = LSU_NOP,
        mxcu: MXCUInstr = MXCU_NOP,
        rcs=None,
    ) -> int:
        """Append one bundle; returns its PC."""
        bundle = make_bundle(
            lcu=lcu, lsu=lsu, mxcu=mxcu, rcs=rcs, n_rcs=self.n_rcs
        )
        self._bundles.append(bundle)
        return len(self._bundles) - 1

    def nop(self, count: int = 1) -> None:
        """Emit ``count`` all-NOP bundles."""
        for _ in range(count):
            self.emit()

    def rc_all(self, instr: RCInstr, lcu=LCU_NOP, lsu=LSU_NOP,
               mxcu=MXCU_NOP) -> int:
        """Emit a bundle executing the same instruction on every RC."""
        return self.emit(lcu=lcu, lsu=lsu, mxcu=mxcu,
                         rcs=[instr] * self.n_rcs)

    def srf(self, entry: int, value: int) -> None:
        """Set an initial SRF value (installed at configuration load)."""
        self._srf_init[entry] = value

    def exit(self) -> int:
        """Emit the end-of-kernel bundle."""
        return self.emit(lcu=exit_())

    # -- finalization ---------------------------------------------------------

    def build(self) -> ColumnProgram:
        """Resolve labels and return the finished program."""
        resolved = []
        for pc, bundle in enumerate(self._bundles):
            lcu = bundle.lcu
            if isinstance(lcu.target, str):
                if lcu.target not in self._labels:
                    raise ProgramError(
                        f"bundle {pc}: undefined label {lcu.target!r}"
                    )
                lcu = dataclasses.replace(
                    lcu, target=self._labels[lcu.target]
                )
                bundle = dataclasses.replace(bundle, lcu=lcu)
            resolved.append(bundle)
        if not any(b.lcu.op is LCUOp.EXIT for b in resolved):
            raise ProgramError(
                "program has no EXIT bundle; the synchronizer would never "
                "see the kernel finish"
            )
        return ColumnProgram(bundles=resolved, srf_init=dict(self._srf_init))
