"""Textual assembly front-end for VWR2A column programs.

Grammar (one bundle per line; unit slots separated by ``|``; missing slots
are NOPs; ``;`` starts a comment)::

    .srf <entry> <value>          ; initial SRF contents
    <label>:
        LCU SETI R0, 0 | LSU LD.VWR A, 1, +1 | MXCU SETK 0 | RC* SADD VWRC, VWRA, VWRB
        LCU ADDI R0, 1 | MXCU UPD 1
        LCU BLT R0, 32, <label>
        LCU EXIT

Unit syntaxes:

* ``LCU``: ``SETI Rd, imm`` / ``ADDI Rd, imm`` / ``LDSRF Rd, SRFe`` /
  ``BLT|BGE|BEQ|BNE Rd, (imm|Rn|SRFn), target`` / ``JUMP target`` / ``EXIT``
* ``LSU``: ``LD.VWR A|B|C, addr[, +inc]`` / ``ST.VWR ...`` /
  ``LD.SRF data, addr[, +inc]`` / ``ST.SRF data, addr[, +inc]`` /
  ``SET.SRF entry, value`` / ``SHUF MODE``
* ``MXCU``: ``SETK k`` / ``UPD inc[, and=m][, xor=m][, srfand=e]``
* ``RC<i>`` or ``RC*`` (all cells): ``OP DST, A[, B]`` with operands
  ``VWRA|VWRB|VWRC|R0|R1|RCT|RCB|ZERO|SRFn|#imm`` and destinations
  ``VWRA|VWRB|VWRC|R0|R1|SRFn|NONE``.
"""

from __future__ import annotations

import re

from repro.core.errors import ProgramError
from repro.asm.builder import ProgramBuilder
from repro.isa.fields import (
    DST_NONE,
    Dest,
    Operand,
    RCDstKind,
    RCSrcKind,
    ShuffleMode,
    Vwr,
)
from repro.isa.lcu import (
    LCUInstr,
    addi,
    beq,
    bge,
    blt,
    bne,
    exit_,
    jump,
    ldsrf,
    seti,
)
from repro.isa.lsu import LSUInstr, ld_srf, ld_vwr, set_srf, shuf, st_srf, st_vwr
from repro.isa.mxcu import MXCUInstr, MXCUOp, setk
from repro.isa.program import ColumnProgram
from repro.isa.rc import RCInstr, RCOp

_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*):$")
_SRF_DIRECTIVE_RE = re.compile(r"^\.srf\s+(\d+)\s+(-?\d+)$")

_RC_SRC = {
    "VWRA": Operand(RCSrcKind.VWR_A),
    "VWRB": Operand(RCSrcKind.VWR_B),
    "VWRC": Operand(RCSrcKind.VWR_C),
    "R0": Operand(RCSrcKind.R0),
    "R1": Operand(RCSrcKind.R1),
    "RCT": Operand(RCSrcKind.RCT),
    "RCB": Operand(RCSrcKind.RCB),
    "ZERO": Operand(RCSrcKind.ZERO),
}

_RC_DST = {
    "VWRA": Dest(RCDstKind.VWR_A),
    "VWRB": Dest(RCDstKind.VWR_B),
    "VWRC": Dest(RCDstKind.VWR_C),
    "R0": Dest(RCDstKind.R0),
    "R1": Dest(RCDstKind.R1),
    "NONE": DST_NONE,
}

_VWR_NAMES = {"A": Vwr.A, "B": Vwr.B, "C": Vwr.C}


class AsmError(ProgramError):
    """Syntax error in a textual assembly source."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")


def _parse_int(token: str, line_no: int) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        raise AsmError(line_no, f"expected an integer, got {token!r}")


def _parse_operand(token: str, line_no: int) -> Operand:
    token = token.strip().upper()
    if token in _RC_SRC:
        return _RC_SRC[token]
    if token.startswith("SRF"):
        return Operand(RCSrcKind.SRF, _parse_int(token[3:], line_no))
    if token.startswith("#"):
        return Operand(RCSrcKind.IMM, _parse_int(token[1:], line_no))
    raise AsmError(line_no, f"unknown RC operand {token!r}")


def _parse_dest(token: str, line_no: int) -> Dest:
    token = token.strip().upper()
    if token in _RC_DST:
        return _RC_DST[token]
    if token.startswith("SRF"):
        return Dest(RCDstKind.SRF, _parse_int(token[3:], line_no))
    raise AsmError(line_no, f"unknown RC destination {token!r}")


def _split_args(rest: str):
    return [arg.strip() for arg in rest.split(",")] if rest.strip() else []


def _parse_rc(body: str, line_no: int) -> RCInstr:
    parts = body.strip().split(None, 1)
    mnemonic = parts[0].upper()
    if mnemonic == "NOP":
        return RCInstr()
    try:
        op = RCOp[mnemonic]
    except KeyError:
        raise AsmError(line_no, f"unknown RC op {mnemonic!r}")
    args = _split_args(parts[1] if len(parts) > 1 else "")
    if not args:
        raise AsmError(line_no, f"{mnemonic} needs a destination")
    dst = _parse_dest(args[0], line_no)
    a = _parse_operand(args[1], line_no) if len(args) > 1 else _RC_SRC["ZERO"]
    b = _parse_operand(args[2], line_no) if len(args) > 2 else _RC_SRC["ZERO"]
    return RCInstr(op=op, dst=dst, a=a, b=b)


def _parse_lsu(body: str, line_no: int) -> LSUInstr:
    parts = body.strip().split(None, 1)
    mnemonic = parts[0].upper()
    args = _split_args(parts[1] if len(parts) > 1 else "")

    def inc_of(index: int) -> int:
        if len(args) > index:
            token = args[index]
            if not token.startswith("+") and not token.startswith("-"):
                raise AsmError(line_no, f"increment must be signed: {token!r}")
            return _parse_int(token, line_no)
        return 0

    if mnemonic == "NOP":
        return LSUInstr()
    if mnemonic in ("LD.VWR", "ST.VWR"):
        vwr_name = args[0].upper()
        if vwr_name not in _VWR_NAMES:
            raise AsmError(line_no, f"unknown VWR {args[0]!r}")
        ctor = ld_vwr if mnemonic == "LD.VWR" else st_vwr
        return ctor(_VWR_NAMES[vwr_name], _parse_int(args[1], line_no),
                    inc_of(2))
    if mnemonic in ("LD.SRF", "ST.SRF"):
        ctor = ld_srf if mnemonic == "LD.SRF" else st_srf
        return ctor(_parse_int(args[0], line_no),
                    _parse_int(args[1], line_no), inc_of(2))
    if mnemonic == "SET.SRF":
        return set_srf(_parse_int(args[0], line_no),
                       _parse_int(args[1], line_no))
    if mnemonic == "SHUF":
        mode_name = args[0].upper()
        try:
            return shuf(ShuffleMode[mode_name])
        except KeyError:
            raise AsmError(line_no, f"unknown shuffle mode {args[0]!r}")
    raise AsmError(line_no, f"unknown LSU op {mnemonic!r}")


def _parse_mxcu(body: str, line_no: int) -> MXCUInstr:
    parts = body.strip().split(None, 1)
    mnemonic = parts[0].upper()
    args = _split_args(parts[1] if len(parts) > 1 else "")
    if mnemonic == "NOP":
        return MXCUInstr()
    if mnemonic == "SETK":
        return setk(_parse_int(args[0], line_no))
    if mnemonic == "UPD":
        inc = _parse_int(args[0], line_no) if args else 0
        and_mask, xor_mask, srf_and = 0x1F, 0, -1
        for extra in args[1:]:
            key, _, value = extra.partition("=")
            key = key.strip().lower()
            if key == "and":
                and_mask = _parse_int(value, line_no)
            elif key == "xor":
                xor_mask = _parse_int(value, line_no)
            elif key == "srfand":
                srf_and = _parse_int(value, line_no)
            else:
                raise AsmError(line_no, f"unknown UPD option {extra!r}")
        return MXCUInstr(op=MXCUOp.UPD, inc=inc, and_mask=and_mask,
                         xor_mask=xor_mask, srf_and=srf_and)
    raise AsmError(line_no, f"unknown MXCU op {mnemonic!r}")


def _parse_lcu(body: str, line_no: int) -> LCUInstr:
    parts = body.strip().split(None, 1)
    mnemonic = parts[0].upper()
    args = _split_args(parts[1] if len(parts) > 1 else "")

    def reg_of(token: str) -> int:
        token = token.strip().upper()
        if not token.startswith("R"):
            raise AsmError(line_no, f"expected a register, got {token!r}")
        return _parse_int(token[1:], line_no)

    if mnemonic == "NOP":
        return LCUInstr()
    if mnemonic == "SETI":
        return seti(reg_of(args[0]), _parse_int(args[1], line_no))
    if mnemonic == "ADDI":
        return addi(reg_of(args[0]), _parse_int(args[1], line_no))
    if mnemonic == "LDSRF":
        entry_token = args[1].strip().upper()
        if not entry_token.startswith("SRF"):
            raise AsmError(line_no, f"LDSRF needs SRF<n>, got {args[1]!r}")
        return ldsrf(reg_of(args[0]), _parse_int(entry_token[3:], line_no))
    if mnemonic in ("BLT", "BGE", "BEQ", "BNE"):
        ctor = {"BLT": blt, "BGE": bge, "BEQ": beq, "BNE": bne}[mnemonic]
        cmp_token = args[1].strip().upper()
        if cmp_token.startswith("SRF"):
            cmp = ("srf", _parse_int(cmp_token[3:], line_no))
        elif cmp_token.startswith("R") and cmp_token[1:].isdigit():
            cmp = ("reg", _parse_int(cmp_token[1:], line_no))
        else:
            cmp = _parse_int(cmp_token, line_no)
        return ctor(reg_of(args[0]), cmp, args[2])
    if mnemonic == "JUMP":
        return jump(args[0])
    if mnemonic == "EXIT":
        return exit_()
    raise AsmError(line_no, f"unknown LCU op {mnemonic!r}")


def parse_program(source: str, n_rcs: int = 4) -> ColumnProgram:
    """Assemble a textual source into a :class:`ColumnProgram`."""
    builder = ProgramBuilder(n_rcs=n_rcs)
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        directive = _SRF_DIRECTIVE_RE.match(line)
        if directive:
            builder.srf(int(directive.group(1)), int(directive.group(2)))
            continue
        label = _LABEL_RE.match(line)
        if label:
            builder.label(label.group(1))
            continue
        slots = {"lcu": None, "lsu": None, "mxcu": None}
        rcs = {}
        for slot in line.split("|"):
            slot = slot.strip()
            if not slot:
                continue
            unit, _, body = slot.partition(" ")
            unit = unit.upper()
            if unit == "LCU":
                slots["lcu"] = _parse_lcu(body, line_no)
            elif unit == "LSU":
                slots["lsu"] = _parse_lsu(body, line_no)
            elif unit == "MXCU":
                slots["mxcu"] = _parse_mxcu(body, line_no)
            elif unit == "RC*":
                instr = _parse_rc(body, line_no)
                for i in range(n_rcs):
                    rcs[i] = instr
            elif unit.startswith("RC"):
                index = int(unit[2:])
                if not 0 <= index < n_rcs:
                    raise AsmError(line_no, f"no such RC: {unit}")
                rcs[index] = _parse_rc(body, line_no)
            else:
                raise AsmError(line_no, f"unknown unit {unit!r}")
        builder.emit(
            lcu=slots["lcu"] or LCUInstr(),
            lsu=slots["lsu"] or LSUInstr(),
            mxcu=slots["mxcu"] or MXCUInstr(),
            rcs=rcs,
        )
    return builder.build()
