"""Assembler tooling: builder API, textual parser, disassembler."""

from repro.asm.builder import ProgramBuilder
from repro.asm.disasm import disassemble_listing, disassemble_words, listing
from repro.asm.parser import AsmError, parse_program

__all__ = [
    "ProgramBuilder",
    "disassemble_listing",
    "disassemble_words",
    "listing",
    "AsmError",
    "parse_program",
]
