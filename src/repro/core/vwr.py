"""Very-wide registers (Sec. 3.2).

A VWR is a single-ported 4096-bit latch array: 128 words of 32 bits in the
paper's configuration. It has an asymmetric interface — the wide side talks
to the SPM (whole register per access) and the datapath side exposes single
words through the MXCU-controlled mux network, where each RC sees one
quarter of the width. Only the mux outputs switch on datapath reads, which
is why word reads are far cheaper than register-file reads (the energy
model reflects this).

Port discipline (enforced by the column, recorded here as events): one wide
access *or* datapath activity per cycle; a latch-based register supports a
read-early/write-late word access pair within one cycle, which Table 1 of
the paper uses (``VWRA = VWRA - VWRB``).
"""

from __future__ import annotations

from repro.core.errors import AddressError
from repro.core.events import Ev, EventCounters
from repro.utils.bits import to_signed32


class VeryWideRegister:
    """One VWR: flat word storage plus event logging."""

    def __init__(self, name: str, words: int, events: EventCounters) -> None:
        self.name = name
        self.n_words = words
        self._events = events
        self._data = [0] * words

    def read_word(self, index: int) -> int:
        """Datapath-side single-word read (through the mux network)."""
        self._check(index)
        self._events.add(Ev.VWR_WORD_READ)
        return self._data[index]

    def write_word(self, index: int, value: int) -> None:
        """Datapath-side single-word write at the MXCU-provided index."""
        self._check(index)
        self._events.add(Ev.VWR_WORD_WRITE)
        self._data[index] = to_signed32(value)

    def read_wide(self) -> list:
        """Wide-side read of the full register (SPM store / shuffle in)."""
        self._events.add(Ev.VWR_WIDE_READ)
        return list(self._data)

    def write_wide(self, values) -> None:
        """Wide-side write of the full register (SPM load / shuffle out)."""
        if len(values) != self.n_words:
            raise AddressError(
                f"{self.name}: wide write of {len(values)} words into a "
                f"{self.n_words}-word register"
            )
        self._events.add(Ev.VWR_WIDE_WRITE)
        # In-place update: the compiled engine's closures capture this list.
        self._data[:] = [to_signed32(v) for v in values]

    def peek(self, index: int) -> int:
        """Debug/test access without event logging."""
        self._check(index)
        return self._data[index]

    def peek_all(self) -> list:
        return list(self._data)

    def poke(self, index: int, value: int) -> None:
        """Debug/test write without event logging."""
        self._check(index)
        self._data[index] = to_signed32(value)

    def _check(self, index: int) -> None:
        if not 0 <= index < self.n_words:
            raise AddressError(
                f"{self.name}: word index {index} out of range "
                f"[0, {self.n_words})"
            )
