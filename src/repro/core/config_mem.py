"""The configuration memory (Fig. 1, Sec. 3.1).

"The configuration words are stored in the configuration memory and loaded
to the RCs' local program memory when a kernel execution starts." We store
kernels both as structured :class:`KernelConfig` objects and as their exact
binary encodings (``repro.isa.encoding``), so the capacity accounting and
the load-cycle cost are real.

Because the FFT engines regenerate structurally identical kernels on every
launch (fresh objects, same code, different ``srf_init``), ``store`` keeps
two structural caches keyed on the bundle sequence:

* **encode cache** — configuration-word encodings, so re-storing identical
  code performs zero re-encoding;
* **hazard cache** — via :func:`repro.core.hazards.check_program_cached`,
  so re-storing identical code performs zero hazard re-checks.

A store whose name, code *and* ``srf_init`` all match the kernel already
in the memory is deduplicated outright (``stats.dedup_hits``), which makes
the historical double-store flow (``KernelRunner.store`` followed by
``Vwr2a.execute``) free. ``stats`` exposes the hit/miss counters.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import asdict, dataclass

from repro.core.errors import ConfigurationError
from repro.core.hazards import check_program_cached
from repro.isa.encoding import bundle_bits, encode_bundle
from repro.isa.program import KernelConfig

#: Encode-cache capacity (bundle sequences, FIFO-evicted).
_ENCODE_CAP = 512


@dataclass
class StoreStats:
    """Observable cache behaviour of :meth:`ConfigurationMemory.store`."""

    stores: int = 0         #: store() calls
    dedup_hits: int = 0     #: identical name+code+srf_init: store skipped
    encode_hits: int = 0    #: per-column encode cache hits
    encode_misses: int = 0  #: per-column encodes actually performed
    hazard_hits: int = 0    #: per-column hazard re-checks skipped
    hazard_misses: int = 0  #: per-column hazard checks actually run
    analysis_hits: int = 0    #: SPM-conflict verdicts reused off the config
    analysis_misses: int = 0  #: SPM-conflict verdicts actually computed

    def as_dict(self) -> dict:
        """The counters as a plain ``name -> count`` dict.

        The public read API for consumers that want all counters at once
        — benchmarks, the metrics bus
        (:func:`repro.obs.instruments.record_store_stats`) — instead of
        reaching into the attributes field by field.
        """
        return asdict(self)

    def snapshot(self) -> dict:
        """An immutable copy of the counters (pairs with :meth:`since`)."""
        return self.as_dict()

    def since(self, snapshot: dict) -> dict:
        """Counter deltas accumulated since a :meth:`snapshot`.

        The stream scheduler (``repro.serve``) reports this per served
        stream: a warm stream shows ``dedup_hits`` growing with zero new
        ``encode_misses``/``hazard_misses``.
        """
        return {
            name: count - snapshot.get(name, 0)
            for name, count in self.as_dict().items()
        }


class ConfigurationMemory:
    """Holds the configurations of every kernel known to the array."""

    def __init__(self, params) -> None:
        self.params = params
        self._kernels = {}
        self._encoded = {}
        self._encode_cache = OrderedDict()
        self.stats = StoreStats()

    # -- structural caches -------------------------------------------------

    def _encode_program(self, program) -> tuple:
        key = tuple(program.bundles)
        words = self._encode_cache.get(key)
        if words is not None:
            self.stats.encode_hits += 1
            self._encode_cache.move_to_end(key)
            return words
        self.stats.encode_misses += 1
        words = tuple(encode_bundle(b) for b in key)
        self._encode_cache[key] = words
        if len(self._encode_cache) > _ENCODE_CAP:
            self._encode_cache.popitem(last=False)
        return words

    def _is_duplicate(self, config: KernelConfig) -> bool:
        """True when ``config`` matches the stored kernel of that name."""
        existing = self._kernels.get(config.name)
        if existing is None:
            return False
        if existing is config:
            return True
        if existing.columns.keys() != config.columns.keys():
            return False
        for col, program in config.columns.items():
            stored = existing.columns[col]
            if tuple(stored.bundles) != tuple(program.bundles):
                return False
            if stored.srf_init != program.srf_init:
                return False
        return True

    # -- store / fetch ------------------------------------------------------

    def store(self, config: KernelConfig) -> None:
        """Validate, hazard-check, encode and store a kernel configuration.

        All three steps are cached structurally (see the module docstring);
        a byte-identical re-store of an already-stored kernel only stamps
        the configuration-word fingerprints on the fresh program objects.
        """
        self.stats.stores += 1
        if self._is_duplicate(config):
            self.stats.dedup_hits += 1
            encoded = self._encoded[config.name]
            for col, program in config.columns.items():
                program._fingerprint = encoded[col]
            return
        config.validate(self.params)
        encoded = {}
        for col, program in config.columns.items():
            if check_program_cached(program.bundles):
                self.stats.hazard_hits += 1
            else:
                self.stats.hazard_misses += 1
            words = self._encode_program(program)
            # Encode/decode are exact inverses, so the configuration words
            # are a lossless structural fingerprint; the compiled engine
            # and the SPM-conflict analysis key their memos on it (hashing
            # ints, not instruction trees — kernels regenerated per launch
            # hit the memos cheaply).
            program._fingerprint = words
            encoded[col] = words
        self._kernels[config.name] = config
        self._encoded[config.name] = encoded

    def get(self, name: str) -> KernelConfig:
        if name not in self._kernels:
            raise ConfigurationError(
                f"kernel {name!r} is not in the configuration memory "
                f"(known: {sorted(self._kernels)})"
            )
        return self._kernels[name]

    def encoded(self, name: str) -> dict:
        """Binary configuration words of a stored kernel, per column."""
        self.get(name)
        return self._encoded[name]

    def __contains__(self, name: str) -> bool:
        return name in self._kernels

    def kernels(self) -> list:
        return sorted(self._kernels)

    def total_bits(self) -> int:
        """Total configuration storage currently used, in bits."""
        word_bits = bundle_bits(self.params.rcs_per_column)
        return sum(
            word_bits * len(words)
            for encoded in self._encoded.values()
            for words in encoded.values()
        )
