"""The configuration memory (Fig. 1, Sec. 3.1).

"The configuration words are stored in the configuration memory and loaded
to the RCs' local program memory when a kernel execution starts." We store
kernels both as structured :class:`KernelConfig` objects and as their exact
binary encodings (``repro.isa.encoding``), so the capacity accounting and
the load-cycle cost are real.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.isa.encoding import bundle_bits, encode_bundle
from repro.isa.program import KernelConfig


class ConfigurationMemory:
    """Holds the configurations of every kernel known to the array."""

    def __init__(self, params) -> None:
        self.params = params
        self._kernels = {}
        self._encoded = {}

    def store(self, config: KernelConfig) -> None:
        """Validate, encode and store a kernel configuration."""
        config.validate(self.params)
        encoded = {
            col: [encode_bundle(b) for b in program.bundles]
            for col, program in config.columns.items()
        }
        for col, program in config.columns.items():
            # Encode/decode are exact inverses, so the configuration words
            # are a lossless structural fingerprint; the compiled engine
            # keys its program memo on it (hashing ints, not instruction
            # trees — kernels regenerated per launch hit the memo cheaply).
            program._fingerprint = tuple(encoded[col])
        self._kernels[config.name] = config
        self._encoded[config.name] = encoded

    def get(self, name: str) -> KernelConfig:
        if name not in self._kernels:
            raise ConfigurationError(
                f"kernel {name!r} is not in the configuration memory "
                f"(known: {sorted(self._kernels)})"
            )
        return self._kernels[name]

    def encoded(self, name: str) -> dict:
        """Binary configuration words of a stored kernel, per column."""
        self.get(name)
        return self._encoded[name]

    def __contains__(self, name: str) -> bool:
        return name in self._kernels

    def kernels(self) -> list:
        return sorted(self._kernels)

    def total_bits(self) -> int:
        """Total configuration storage currently used, in bits."""
        word_bits = bundle_bits(self.params.rcs_per_column)
        return sum(
            word_bits * len(words)
            for encoded in self._encoded.values()
            for words in encoded.values()
        )
