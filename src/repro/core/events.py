"""Activity-event accounting.

Every architectural component logs named events into a shared
:class:`EventCounters`; the energy model (``repro.energy``) multiplies the
counts by calibrated per-event energies. This mirrors what the paper does
with gate-level switching activity and PrimePower, at event rather than
net granularity.

Event name convention: ``component.action`` — e.g. ``spm.wide_read``.
"""

from __future__ import annotations

from collections import Counter


class Ev:
    """Canonical event names (component.action)."""

    # Scratchpad memory (wide accelerator port / narrow system port).
    SPM_WIDE_READ = "spm.wide_read"
    SPM_WIDE_WRITE = "spm.wide_write"
    SPM_WORD_READ = "spm.word_read"
    SPM_WORD_WRITE = "spm.word_write"
    # Very-wide registers: wide side (SPM/shuffle) vs datapath side (muxes).
    VWR_WIDE_READ = "vwr.wide_read"
    VWR_WIDE_WRITE = "vwr.wide_write"
    VWR_WORD_READ = "vwr.word_read"
    VWR_WORD_WRITE = "vwr.word_write"
    # Scalar register file.
    SRF_READ = "srf.read"
    SRF_WRITE = "srf.write"
    # Reconfigurable cells.
    RC_ISSUE = "rc.issue"
    RC_ALU_ADD = "rc.alu_add"
    RC_ALU_MUL = "rc.alu_mul"
    RC_ALU_SHIFT = "rc.alu_shift"
    RC_ALU_LOGIC = "rc.alu_logic"
    RC_ALU_MOV = "rc.alu_mov"
    RC_RF_READ = "rc.rf_read"
    RC_RF_WRITE = "rc.rf_write"
    # Specialized slots and control.
    LSU_ISSUE = "lsu.issue"
    LCU_ISSUE = "lcu.issue"
    LCU_BRANCH = "lcu.branch"
    MXCU_ISSUE = "mxcu.issue"
    SHUFFLE_OP = "shuffle.op"
    PM_FETCH = "pm.fetch"
    CONFIG_WORD = "config.word"
    COLUMN_CYCLE = "column.cycle"
    # DMA / system side.
    DMA_BEAT = "dma.beat"
    DMA_SETUP = "dma.setup"
    BUS_BEAT = "bus.beat"
    BUS_SETUP = "bus.setup"
    SRAM_READ = "sram.read"
    SRAM_WRITE = "sram.write"
    # Host CPU and fixed-function FFT accelerator (SoC substrate).
    CPU_CYCLE = "cpu.cycle"
    FFT_ACCEL_CYCLE = "fft_accel.cycle"
    FFT_ACCEL_BUTTERFLY = "fft_accel.butterfly"
    FFT_ACCEL_MEM = "fft_accel.mem"
    FFT_ACCEL_IO = "fft_accel.io"


class EventCounters:
    """A named-event tally shared by all components of one simulation."""

    def __init__(self) -> None:
        self._counts = Counter()

    def add(self, name: str, count: int = 1) -> None:
        """Record ``count`` occurrences of event ``name``."""
        if count:
            self._counts[name] += count

    def add_many(self, counts: dict) -> None:
        """Bulk-record a ``{name: count}`` batch in one update.

        Equivalent to calling :meth:`add` per entry (zero counts are
        skipped so snapshots stay free of empty keys); used by the wide
        DMA paths and by the compiled engine's end-of-kernel event fold.
        """
        if any(count == 0 for count in counts.values()):
            counts = {
                name: count for name, count in counts.items() if count
            }
        self._counts.update(counts)

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def merge(self, other: "EventCounters") -> None:
        """Fold another tally into this one."""
        self._counts.update(other._counts)

    def snapshot(self) -> dict:
        """An immutable copy of the current counts."""
        return dict(self._counts)

    def diff(self, before: dict) -> dict:
        """Counts accumulated since ``before`` (a :meth:`snapshot`)."""
        return {
            name: count - before.get(name, 0)
            for name, count in self._counts.items()
            if count != before.get(name, 0)
        }

    def reset(self) -> None:
        self._counts.clear()

    def items(self):
        return self._counts.items()

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        top = ", ".join(
            f"{name}={count}"
            for name, count in sorted(self._counts.items())[:6]
        )
        return f"EventCounters({top}{'...' if len(self._counts) > 6 else ''})"
