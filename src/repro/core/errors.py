"""Simulator error types.

The simulator is strict: structural-hazard violations (single-ported SRF /
VWR over-subscription), out-of-range addresses and malformed programs raise
instead of silently mis-executing, so every kernel that ships in
``repro.kernels`` is hazard-clean by construction.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator errors."""


class ProgramError(SimulationError):
    """Malformed program: bad targets, missing EXIT, PC overrun."""


class StructuralHazardError(SimulationError):
    """A single-ported resource was requested more than once in a cycle."""

    def __init__(self, resource: str, pc: int, detail: str = "") -> None:
        message = f"structural hazard on {resource} at PC {pc}"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.resource = resource
        self.pc = pc


class AddressError(SimulationError):
    """Out-of-range SPM/VWR/SRF access."""


class ConfigurationError(SimulationError):
    """Bad kernel configuration (unknown kernel, oversized program...)."""
