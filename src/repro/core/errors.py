"""Simulator error types.

The simulator is strict: structural-hazard violations (single-ported SRF /
VWR over-subscription), out-of-range addresses and malformed programs raise
instead of silently mis-executing, so every kernel that ships in
``repro.kernels`` is hazard-clean by construction.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator errors."""


class ProgramError(SimulationError):
    """Malformed program: bad targets, missing EXIT, PC overrun."""


class StructuralHazardError(SimulationError):
    """A single-ported resource was requested more than once in a cycle."""

    def __init__(self, resource: str, pc: int, detail: str = "") -> None:
        message = f"structural hazard on {resource} at PC {pc}"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.resource = resource
        self.pc = pc


class AddressError(SimulationError):
    """Out-of-range SPM/VWR/SRF access."""


class ConfigurationError(SimulationError):
    """Bad kernel configuration (unknown kernel, oversized program...)."""


class BrownoutError(SimulationError):
    """A power domain browned out (was forced off) mid-execution.

    Raised by :class:`repro.soc.power_domains.PowerManager` when an armed
    brownout fuse (:meth:`~repro.soc.power_domains.PowerManager.schedule_brownout`,
    the fault-injection hook of :mod:`repro.faults`) trips while time is
    being charged to the domain — i.e. in the middle of a kernel, DMA
    transfer or CPU phase that had the domain powered. The serving layer
    treats it as a detected, retryable fault (docs/robustness.md), never
    as a simulator bug.
    """

    def __init__(self, domain, cycles_in: int) -> None:
        name = getattr(domain, "value", domain)
        super().__init__(
            f"power domain {name!r} browned out {cycles_in} cycles into "
            "the current phase (injected fault; the domain is now gated)"
        )
        self.domain = domain
        self.cycles_in = cycles_in


class SpmConflictError(SimulationError):
    """A kernel's columns communicate through the SPM mid-kernel.

    Raised when the compiled engine is *forced* onto a kernel whose static
    cross-column SPM analysis found overlapping footprints (the block-
    granularity scheduler cannot guarantee the reference interleaving).
    ``engine="auto"`` routes such kernels to the reference interpreter
    instead of raising. ``conflicts`` holds the offending
    :class:`repro.engine.conflicts.SpmConflict` records.
    """

    def __init__(self, kernel: str, conflicts) -> None:
        detail = "; ".join(str(c) for c in conflicts)
        super().__init__(
            f"kernel {kernel!r} has cross-column SPM conflicts that the "
            "compiled engine's block-granularity scheduler cannot order "
            f"({detail}); run it with engine='auto' or engine='reference'"
        )
        self.kernel = kernel
        self.conflicts = tuple(conflicts)
