"""The hardcoded shuffle unit (Sec. 3.3.1).

"It takes as input the data contained in the VWRs A and B, applies a
hardcoded shuffle operation on the data, and stores the result in the
VWR C." All four operations view the inputs as the 2V-word concatenation
A:B (V = VWR width in words) and produce V words:

* *Words interleaving*: A and B words are interleaved; the result is twice
  a VWR, the LO/HI mode selects the lower or upper half.
* *Even / odd index pruning*: removes the even- (resp. odd-) indexed
  elements of A and of B and outputs the remaining elements of both.
* *Bit-reversal*: bit-reversal permutation of the 2V concatenation; LO/HI
  selects a half.
* *Circular shift*: the concatenation is shifted up by one RC slice
  (32 words in the paper's configuration) circularly — the upper slice
  wraps to the lower positions; LO/HI selects a half.
"""

from __future__ import annotations

from repro.isa.fields import ShuffleMode
from repro.utils.bits import bit_reverse, clog2, is_power_of_two


def shuffle(a, b, mode: ShuffleMode, slice_words: int = 32) -> list:
    """Apply ``mode`` to VWR contents ``a`` and ``b``; return V words.

    ``a`` and ``b`` must have equal power-of-two length V; the result list
    also has length V. ``slice_words`` sets the circular-shift distance
    (one RC slice).
    """
    if len(a) != len(b):
        raise ValueError(f"VWR length mismatch: {len(a)} vs {len(b)}")
    width = len(a)
    if not is_power_of_two(width):
        raise ValueError(f"VWR width must be a power of two, got {width}")
    concat = list(a) + list(b)

    if mode in (ShuffleMode.INTERLEAVE_LO, ShuffleMode.INTERLEAVE_HI):
        interleaved = [0] * (2 * width)
        interleaved[0::2] = a
        interleaved[1::2] = b
        half = 0 if mode is ShuffleMode.INTERLEAVE_LO else width
        return interleaved[half:half + width]

    if mode is ShuffleMode.EVEN_PRUNE:
        # Even-indexed elements pruned: the odd-indexed ones remain.
        return list(a[1::2]) + list(b[1::2])

    if mode is ShuffleMode.ODD_PRUNE:
        return list(a[0::2]) + list(b[0::2])

    if mode in (ShuffleMode.BITREV_LO, ShuffleMode.BITREV_HI):
        bits = clog2(2 * width)
        reordered = [concat[bit_reverse(i, bits)] for i in range(2 * width)]
        half = 0 if mode is ShuffleMode.BITREV_LO else width
        return reordered[half:half + width]

    if mode in (ShuffleMode.CSHIFT_LO, ShuffleMode.CSHIFT_HI):
        size = 2 * width
        shifted = [
            concat[(i - slice_words) % size] for i in range(size)
        ]
        half = 0 if mode is ShuffleMode.CSHIFT_LO else width
        return shifted[half:half + width]

    raise ValueError(f"unknown shuffle mode {mode!r}")
