"""The hardcoded shuffle unit (Sec. 3.3.1).

"It takes as input the data contained in the VWRs A and B, applies a
hardcoded shuffle operation on the data, and stores the result in the
VWR C." All four operations view the inputs as the 2V-word concatenation
A:B (V = VWR width in words) and produce V words:

* *Words interleaving*: A and B words are interleaved; the result is twice
  a VWR, the LO/HI mode selects the lower or upper half.
* *Even / odd index pruning*: removes the even- (resp. odd-) indexed
  elements of A and of B and outputs the remaining elements of both.
* *Bit-reversal*: bit-reversal permutation of the 2V concatenation; LO/HI
  selects a half.
* *Circular shift*: the concatenation is shifted up by one RC slice
  (32 words in the paper's configuration) circularly — the upper slice
  wraps to the lower positions; LO/HI selects a half.
"""

from __future__ import annotations

from operator import itemgetter

from repro.isa.fields import ShuffleMode
from repro.utils.bits import bit_reverse, clog2, is_power_of_two

#: Memoized permutation gathers: (mode, width, slice_words) -> itemgetter
#: of V indices into the A:B concatenation. The wiring of the hardcoded
#: unit is static, so every call is one C-level table-driven gather.
_TABLES = {}


def _table(mode: ShuffleMode, width: int, slice_words: int) -> list:
    size = 2 * width
    if mode in (ShuffleMode.INTERLEAVE_LO, ShuffleMode.INTERLEAVE_HI):
        # Position 2i holds A[i], position 2i+1 holds B[i] (= concat
        # index width + i); LO/HI selects a half of that interleaving.
        interleaved = [0] * size
        interleaved[0::2] = range(width)
        interleaved[1::2] = range(width, size)
        half = 0 if mode is ShuffleMode.INTERLEAVE_LO else width
        return interleaved[half:half + width]
    if mode is ShuffleMode.EVEN_PRUNE:
        # Even-indexed elements pruned: the odd-indexed ones remain.
        return list(range(1, width, 2)) + list(range(width + 1, size, 2))
    if mode is ShuffleMode.ODD_PRUNE:
        return list(range(0, width, 2)) + list(range(width, size, 2))
    if mode in (ShuffleMode.BITREV_LO, ShuffleMode.BITREV_HI):
        bits = clog2(size)
        reordered = [bit_reverse(i, bits) for i in range(size)]
        half = 0 if mode is ShuffleMode.BITREV_LO else width
        return reordered[half:half + width]
    if mode in (ShuffleMode.CSHIFT_LO, ShuffleMode.CSHIFT_HI):
        shifted = [(i - slice_words) % size for i in range(size)]
        half = 0 if mode is ShuffleMode.CSHIFT_LO else width
        return shifted[half:half + width]
    raise ValueError(f"unknown shuffle mode {mode!r}")


def shuffle(a, b, mode: ShuffleMode, slice_words: int = 32) -> list:
    """Apply ``mode`` to VWR contents ``a`` and ``b``; return V words.

    ``a`` and ``b`` must have equal power-of-two length V; the result list
    also has length V. ``slice_words`` sets the circular-shift distance
    (one RC slice).
    """
    if len(a) != len(b):
        raise ValueError(f"VWR length mismatch: {len(a)} vs {len(b)}")
    width = len(a)
    if not is_power_of_two(width):
        raise ValueError(f"VWR width must be a power of two, got {width}")
    key = (mode, width, slice_words)
    gather = _TABLES.get(key)
    if gather is None:
        indices = _table(mode, width, slice_words)
        if len(indices) == 1:
            # itemgetter with one index returns a bare item, not a tuple.
            def gather(concat, index=indices[0]):
                return (concat[index],)
        else:
            gather = itemgetter(*indices)
        _TABLES[key] = gather
    concat = list(a)
    concat += b
    return list(gather(concat))
