"""The synchronizer (Fig. 1).

The synchronizer sequences kernel launches, observes the LCU end-of-kernel
notifications and raises the interrupt line towards the host CPU when a
kernel execution or a DMA transfer completes (Sec. 4.2). In this model it
is the bookkeeping point for kernel completions; the host platform polls or
registers a callback for the interrupt.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class KernelCompletion:
    """Record of one finished kernel execution."""

    name: str
    cycles: int
    columns: tuple


class Synchronizer:
    """Tracks running kernels and signals completion interrupts."""

    def __init__(self) -> None:
        self.completions = []
        self.irq_pending = False
        self._irq_callback = None

    def on_irq(self, callback) -> None:
        """Register a host callback fired on every completion."""
        self._irq_callback = callback

    def kernel_started(self, name: str, columns) -> None:
        self._running = (name, tuple(columns))

    def kernel_finished(self, name: str, cycles: int, columns) -> None:
        record = KernelCompletion(
            name=name, cycles=cycles, columns=tuple(columns)
        )
        self.completions.append(record)
        self.irq_pending = True
        if self._irq_callback is not None:
            self._irq_callback(record)

    def dma_finished(self) -> None:
        self.irq_pending = True

    def acknowledge(self) -> None:
        """Host CPU clears the interrupt."""
        self.irq_pending = False

    @property
    def total_kernel_cycles(self) -> int:
        return sum(c.cycles for c in self.completions)
