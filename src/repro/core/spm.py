"""The shared scratchpad memory (Sec. 3.2).

"VWR2A contains a dedicated 32 KiB SPM shared by all the columns. The SPM
has a double interface: on the system side, it has the system bus width.
On the accelerator side, it has the same width as the VWRs." The wide side
moves one full line (= one VWR, 128 words) per cycle and is line-aligned —
the wide interface is built by concatenating narrower memory macros, so
unaligned wide access does not exist. The narrow side moves single 32-bit
words (used by the DMA).
"""

from __future__ import annotations

from repro.core.errors import AddressError
from repro.core.events import Ev, EventCounters
from repro.utils.bits import to_signed32


class Scratchpad:
    """Dual-interface SPM: wide line port + narrow word port."""

    def __init__(
        self, n_lines: int, line_words: int, events: EventCounters
    ) -> None:
        self.n_lines = n_lines
        self.line_words = line_words
        self.n_words = n_lines * line_words
        self._events = events
        self._data = [0] * self.n_words

    # -- wide (accelerator-side) interface --------------------------------

    def read_line(self, line: int) -> list:
        """One-cycle wide read of a full line."""
        self._check_line(line)
        self._events.add(Ev.SPM_WIDE_READ)
        base = line * self.line_words
        return self._data[base:base + self.line_words]

    def write_line(self, line: int, values) -> None:
        """One-cycle wide write of a full line."""
        self._check_line(line)
        if len(values) != self.line_words:
            raise AddressError(
                f"wide write of {len(values)} words; lines hold "
                f"{self.line_words}"
            )
        self._events.add(Ev.SPM_WIDE_WRITE)
        base = line * self.line_words
        self._data[base:base + self.line_words] = [
            to_signed32(v) for v in values
        ]

    # -- narrow (system-side) interface -----------------------------------

    def read_word(self, addr: int) -> int:
        self._check_word(addr)
        self._events.add(Ev.SPM_WORD_READ)
        return self._data[addr]

    def write_word(self, addr: int, value: int) -> None:
        self._check_word(addr)
        self._events.add(Ev.SPM_WORD_WRITE)
        self._data[addr] = to_signed32(value)

    def read_words(self, addrs) -> list:
        """Batch of narrow-port reads (one event record for the batch)."""
        data = self._data
        n_words = self.n_words
        for addr in addrs:
            if not 0 <= addr < n_words:
                self._check_word(addr)
        self._events.add(Ev.SPM_WORD_READ, len(addrs))
        return [data[addr] for addr in addrs]

    def write_words(self, addr: int, values) -> None:
        """Batch of consecutive narrow-port writes (bulk event record)."""
        if addr < 0 or addr + len(values) > self.n_words:
            self._check_word(addr if addr < 0 else addr + len(values) - 1)
        self._events.add(Ev.SPM_WORD_WRITE, len(values))
        self._data[addr:addr + len(values)] = [
            to_signed32(v) for v in values
        ]

    # -- whole-memory state (no events) ------------------------------------

    def snapshot(self) -> list:
        """Copy of the full SPM contents (no event logging).

        Used by the compiled engine to restore pre-launch state before
        replaying an aborted kernel on the reference interpreter.
        """
        return list(self._data)

    def restore(self, state) -> None:
        """In-place restore of a :meth:`snapshot` (no event logging)."""
        if len(state) != self.n_words:
            raise AddressError(
                f"restore of {len(state)} words into a {self.n_words}-word "
                "SPM"
            )
        # In-place: the compiled engine's closures capture this list.
        self._data[:] = state

    # -- fault injection (no events) ----------------------------------------
    #
    # Hooks for repro.faults: faults mutate the backing store in place, so
    # both the reference interpreter and the compiled engine's closures
    # (which capture ``_data`` directly) observe them. Injection returns
    # the displaced word so the injector can heal the cell afterwards —
    # the model for ECC scrub-on-detect. No events are recorded: an upset
    # is not architectural activity.

    def inject_bitflip(self, addr: int, bit: int) -> int:
        """Flip one bit of the word at ``addr``; returns the original word."""
        self._check_word(addr)
        if not 0 <= bit < 32:
            raise AddressError(f"bit index {bit} out of range [0, 32)")
        original = self._data[addr]
        self._data[addr] = to_signed32(original ^ (1 << bit))
        return original

    def inject_stuck(self, addr: int, value: int) -> int:
        """Force the word at ``addr`` to ``value``; returns the original.

        A stuck-at cell keeps reasserting itself: the injector re-applies
        this at every kernel-launch boundary while the fault is armed, so
        writes that land on the cell are lost again before the next
        kernel reads it.
        """
        self._check_word(addr)
        original = self._data[addr]
        self._data[addr] = to_signed32(value)
        return original

    def heal_word(self, addr: int, value: int) -> None:
        """Restore a word displaced by an injection (scrub; no events)."""
        self._check_word(addr)
        self._data[addr] = to_signed32(value)

    # -- debug/test accessors (no events) ----------------------------------

    def peek_words(self, addr: int, count: int) -> list:
        if count < 0 or addr < 0 or addr + count > self.n_words:
            raise AddressError(
                f"peek of {count} words at {addr} exceeds SPM "
                f"({self.n_words} words)"
            )
        return self._data[addr:addr + count]

    def poke_words(self, addr: int, values) -> None:
        if addr < 0 or addr + len(values) > self.n_words:
            raise AddressError(
                f"poke of {len(values)} words at {addr} exceeds SPM "
                f"({self.n_words} words)"
            )
        self._data[addr:addr + len(values)] = [
            to_signed32(v) for v in values
        ]

    def _check_line(self, line: int) -> None:
        if not 0 <= line < self.n_lines:
            raise AddressError(
                f"SPM line {line} out of range [0, {self.n_lines})"
            )

    def _check_word(self, addr: int) -> None:
        if not 0 <= addr < self.n_words:
            raise AddressError(
                f"SPM word address {addr} out of range [0, {self.n_words})"
            )
