"""Static structural-hazard checking.

Both single-ported resources of a column — the SRF and the VWRs — are
scheduled at compile time: which unit touches which resource in a bundle is
fully determined by the configuration word, never by runtime values. The
checks therefore run once, when a kernel is loaded, and the per-cycle
execution path stays check-free. This mirrors the hardware reality: the
paper's kernels are mapped by hand such that no two units ever contend for
the SRF port or a VWR port.

Rules enforced per bundle:

* **SRF** (Sec. 3.2: "single-ported, allowing one access at a time from the
  different units"): at most one of {LCU, LSU, MXCU, RC group} may use the
  SRF. Within the RC group, all readers must target the same entry (one
  broadcast read), at most one RC may write, and reads and writes cannot
  mix.
* **VWR**: a wide-side access (LSU load/store, shuffle) excludes any
  datapath-side access to the same VWR in the same cycle. Datapath word
  read + word write of the same VWR is allowed (latch-based registers,
  read-early/write-late — Table 1's ``VWRA = VWRA - VWRB``).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.errors import StructuralHazardError
from repro.isa.bundle import Bundle
from repro.isa.fields import RCSrcKind

#: Structural memo of hazard-clean bundle sequences (FIFO-evicted).
#: Failures are not cached: a hazardous program raises every time.
_CHECKED = OrderedDict()
_CHECKED_CAP = 512


def rc_group_srf_usage(bundle: Bundle):
    """Return (read_entries, write_entries) the RC group requests."""
    reads = set()
    writes = set()
    for instr in bundle.rcs:
        for operand in instr.operands():
            if operand.kind is RCSrcKind.SRF:
                reads.add(operand.index)
        if not instr.is_nop and instr.dst.writes_srf:
            writes.add(instr.dst.index)
    return reads, writes


def check_bundle(bundle: Bundle, pc: int) -> None:
    """Raise :class:`StructuralHazardError` when ``bundle`` over-subscribes
    a single-ported resource."""
    # --- SRF port ---------------------------------------------------------
    users = []
    if bundle.lcu.uses_srf:
        users.append("LCU")
    if bundle.lsu.uses_srf:
        users.append("LSU")
    if bundle.mxcu.uses_srf:
        users.append("MXCU")
    rc_reads, rc_writes = rc_group_srf_usage(bundle)
    if rc_reads or rc_writes:
        users.append("RCs")
        if len(rc_reads) > 1:
            raise StructuralHazardError(
                "SRF", pc,
                f"RCs broadcast-read different entries {sorted(rc_reads)}",
            )
        if len(rc_writes) > 1:
            raise StructuralHazardError(
                "SRF", pc,
                f"multiple RCs write entries {sorted(rc_writes)}",
            )
        if rc_reads and rc_writes:
            raise StructuralHazardError(
                "SRF", pc, "RC group mixes SRF read and write"
            )
    if len(users) > 1:
        raise StructuralHazardError(
            "SRF", pc, f"requested by {', '.join(users)} in the same cycle"
        )

    # --- VWR ports --------------------------------------------------------
    wide = set(bundle.lsu.vwrs_touched())
    datapath = set()
    for instr in bundle.rcs:
        for operand in instr.operands():
            vwr = operand.vwr()
            if vwr is not None:
                datapath.add(vwr)
        if not instr.is_nop:
            vwr = instr.dst.vwr()
            if vwr is not None:
                datapath.add(vwr)
    conflict = wide & datapath
    if conflict:
        names = ", ".join(f"VWR {v.name}" for v in sorted(conflict))
        raise StructuralHazardError(
            "VWR", pc,
            f"{names}: wide-side (LSU/shuffle) and datapath access in the "
            "same cycle",
        )


def check_program(bundles, base_pc: int = 0) -> None:
    """Check every bundle of a program."""
    for offset, bundle in enumerate(bundles):
        check_bundle(bundle, base_pc + offset)


def check_program_cached(bundles) -> bool:
    """Hazard-check a program, memoized on the bundle sequence.

    Which unit touches which single-ported resource is fixed by the
    configuration words, so the verdict is structural: kernels regenerated
    per launch with identical code (the FFT engines do this constantly)
    skip the re-check entirely. Returns True on a cache hit, False when
    the check actually ran; raises :class:`StructuralHazardError` exactly
    like :func:`check_program`.
    """
    key = tuple(bundles)
    if key in _CHECKED:
        _CHECKED.move_to_end(key)
        return True
    check_program(key)
    _CHECKED[key] = True
    if len(_CHECKED) > _CHECKED_CAP:
        _CHECKED.popitem(last=False)
    return False
