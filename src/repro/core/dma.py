"""VWR2A's DMA engine.

"A DMA performs the data transfers between the SPM and the system memory"
(Sec. 3.2) through VWR2A's AHB master port (Sec. 4.2). Transfers are
word-granular on both sides — the system side is bus-width limited and the
SPM narrow port is word-wide — which is what makes the FIR kernel's
overlapped data layout and sparse-output compaction free to *arrange*
(though every word still pays its bus and memory energy/cycles).

The cycle cost of a transfer of N words is::

    dma_setup + bus.burst_cycles(N)

where ``dma_setup`` covers the CPU programming the descriptor over the
slave port, and the bus term models AHB burst transfers (address phase per
burst + one data beat per word).
"""

from __future__ import annotations

from repro.core.errors import AddressError
from repro.core.events import Ev, EventCounters


class Dma:
    """Word-granular DMA between a system memory and the SPM."""

    def __init__(self, spm, bus, events: EventCounters, setup_cycles: int = 24):
        self.spm = spm
        self.bus = bus
        self.events = events
        self.setup_cycles = setup_cycles

    # -- system memory -> SPM ----------------------------------------------

    def to_spm(self, sram, src_word: int, dst_word: int, n_words: int) -> int:
        """Copy ``n_words`` from system memory into the SPM; return cycles."""
        return self.to_spm_gather(
            sram, range(src_word, src_word + n_words), dst_word
        )

    def to_spm_gather(self, sram, src_words, dst_word: int) -> int:
        """Gather system-memory words (arbitrary order, repeats allowed)
        into consecutive SPM words starting at ``dst_word``.

        Uses the batch word interfaces: one event record per burst instead
        of one per word (identical counts, far less accounting overhead).
        """
        src_words = list(src_words)
        self.spm.write_words(dst_word, sram.read_words(src_words))
        return self._transfer_cycles(len(src_words))

    # -- SPM -> system memory ----------------------------------------------

    def from_spm(self, sram, src_word: int, dst_word: int, n_words: int) -> int:
        """Copy ``n_words`` from the SPM into system memory; return cycles."""
        return self.from_spm_gather(
            sram, range(src_word, src_word + n_words), dst_word
        )

    def from_spm_gather(self, sram, src_words, dst_word: int) -> int:
        """Gather SPM words (arbitrary order — used to compact the FIR
        kernel's sparse output) into consecutive system-memory words."""
        src_words = list(src_words)
        sram.write_words(dst_word, self.spm.read_words(src_words))
        return self._transfer_cycles(len(src_words))

    # -- cost model ---------------------------------------------------------

    def _transfer_cycles(self, n_words: int) -> int:
        if n_words < 0:
            raise AddressError(f"negative transfer length {n_words}")
        if n_words == 0:
            return 0
        self.events.add_many({Ev.DMA_SETUP: 1, Ev.DMA_BEAT: n_words})
        return self.setup_cycles + self.bus.burst_cycles(n_words)
