"""The scalar register file (Sec. 3.2).

"The scalar register file (SRF) has 8 32-bit entries used for scalar values
that are kernel-dependent, such as addresses for the SPM, masking values
for the VWRs index computation, or loop parameters for the kernel execution
control. The SRF is single-ported, allowing one access at a time from the
different units (RCs, LSU, MXCU, and LCU)."

The one-unit-per-cycle rule is enforced by the column's hazard checker; the
SRF itself just stores words and logs read/write events. A broadcast read
of one entry by all RCs counts as a single access.
"""

from __future__ import annotations

from repro.core.errors import AddressError
from repro.core.events import Ev, EventCounters
from repro.utils.bits import to_signed32


class ScalarRegisterFile:
    """Single-ported scalar register file of one column."""

    def __init__(self, entries: int, events: EventCounters) -> None:
        self.n_entries = entries
        self._events = events
        self._data = [0] * entries

    def read(self, entry: int) -> int:
        self._check(entry)
        self._events.add(Ev.SRF_READ)
        return self._data[entry]

    def write(self, entry: int, value: int) -> None:
        self._check(entry)
        self._events.add(Ev.SRF_WRITE)
        self._data[entry] = to_signed32(value)

    def peek(self, entry: int) -> int:
        """Debug/test access without event logging."""
        self._check(entry)
        return self._data[entry]

    def poke(self, entry: int, value: int) -> None:
        """Configuration-time / test write without event logging."""
        self._check(entry)
        self._data[entry] = to_signed32(value)

    def poke_many(self, values: dict) -> None:
        """Batch :meth:`poke` of an ``{entry: value}`` map (one call per
        kernel load instead of one per initial SRF entry)."""
        data = self._data
        for entry, value in values.items():
            self._check(entry)
            data[entry] = to_signed32(value)

    def _check(self, entry: int) -> None:
        if not 0 <= entry < self.n_entries:
            raise AddressError(
                f"SRF entry {entry} out of range [0, {self.n_entries})"
            )
