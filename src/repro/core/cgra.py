"""The VWR2A top level (Fig. 1).

Glues together the two columns, the shared SPM, the configuration memory,
the synchronizer and the DMA. The host-facing API is the one the SoC uses
over the slave port: store kernel configurations, launch kernels, trigger
DMA transfers, and receive completion interrupts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch import DEFAULT_PARAMS, ArchParams, ArchSpec
from repro.core.column import Column
from repro.core.config_mem import ConfigurationMemory
from repro.core.dma import Dma
from repro.core.errors import ConfigurationError
from repro.core.events import Ev, EventCounters
from repro.core.spm import Scratchpad
from repro.core.synchronizer import Synchronizer
from repro.isa.program import KernelConfig


@dataclass(frozen=True)
class RunResult:
    """Outcome of one kernel execution on the array."""

    name: str
    cycles: int            #: execution cycles (excludes configuration load)
    config_cycles: int     #: cycles spent loading the configuration words
    column_steps: dict     #: per-column executed-bundle counts
    engine: str = ""       #: engine that actually executed the kernel
    fallback_reason: str = None   #: why ``auto`` chose the reference path
    spm_conflicts: tuple = ()     #: SpmConflict records behind the fallback
    superblocks: dict = None      #: closed-form loop counters (compiled runs)
    block_histogram: tuple = ()   #: ((column, leader, count, delta), ...)

    @property
    def total_cycles(self) -> int:
        return self.cycles + self.config_cycles

    def energy_by_block(self, model) -> dict:
        """Histogram-native per-block energy attribution.

        Maps ``(column, leader)`` to the per-component pJ dict of that
        basic block's executions, folded straight from the static event
        deltas (:meth:`repro.energy.EnergyModel.fold_histogram`) — no
        intermediate event-counter materialization. Empty for launches
        executed on the reference interpreter (which has no block
        histogram); leakage and staging energy are window-level concerns
        and are deliberately not attributed here.
        """
        grouped = {}
        for column, leader, count, delta in self.block_histogram:
            grouped.setdefault((column, leader), []).append((delta, count))
        return {
            key: model.fold_histogram(rows).by_component
            for key, rows in grouped.items()
        }

    def energy_pj(self, model) -> dict:
        """Per-component pJ of this launch's datapath activity (folded)."""
        return model.fold_histogram(
            (delta, count)
            for _, _, count, delta in self.block_histogram
        ).by_component


class Vwr2a:
    """A VWR2A instance: reconfigurable array + memories + DMA.

    ``engine`` selects how kernels execute: ``"auto"`` (the default) runs
    the compile-time cross-column SPM analysis at ``load_kernel`` and
    executes conflict-free kernels on the compiled fast path, falling back
    to the per-cycle reference interpreter when columns communicate
    through the SPM mid-kernel (docs/engine.md); ``"compiled"`` forces the
    fast path (raising :class:`~repro.core.errors.SpmConflictError` on
    conflicting kernels); ``"reference"`` is the original cycle-by-cycle
    interpreter (``Column.step``), kept as the golden model. All engines
    produce identical cycle counts and event snapshots; ``RunResult``
    records which engine ran and why.
    """

    #: Runaway guard for kernel execution.
    DEFAULT_MAX_CYCLES = 10_000_000

    def __init__(
        self,
        params: ArchParams = DEFAULT_PARAMS,
        events: EventCounters = None,
        bus=None,
        dma_setup_cycles: int = 24,
        engine: str = "auto",
        spec: ArchSpec = None,
    ) -> None:
        from repro.engine import make_engine

        if spec is not None:
            if params is not DEFAULT_PARAMS and params != spec.arch:
                raise ConfigurationError(
                    "Vwr2a params disagree with spec.arch: pass one source "
                    "of geometry"
                )
            params = spec.arch
        else:
            spec = ArchSpec(arch=params)
        #: The full design point this instance was built from. ``params``
        #: stays the geometry projection every structural memo keys on.
        self.spec = spec
        self.params = params
        self._engine = make_engine(engine)
        self.events = events if events is not None else EventCounters()
        self.spm = Scratchpad(
            params.spm_lines, params.line_words, self.events
        )
        self.columns = [
            Column(i, params, self.spm, self.events)
            for i in range(params.n_columns)
        ]
        self.config_mem = ConfigurationMemory(params)
        self.synchronizer = Synchronizer()
        self.dma = None
        if bus is not None:
            self.attach_bus(bus, dma_setup_cycles)

    def attach_bus(self, bus, dma_setup_cycles: int = 24) -> None:
        """Connect the AHB master port: enables DMA transfers."""
        self.dma = Dma(
            self.spm, bus, self.events, setup_cycles=dma_setup_cycles
        )

    # -- configuration ------------------------------------------------------

    def store_kernel(self, config: KernelConfig) -> None:
        """Validate (including hazards) and store a kernel configuration.

        Encoding and hazard checks are cached structurally in the
        configuration memory (``config_mem.stats`` exposes the counters),
        so re-storing a structurally identical kernel — the FFT engines
        regenerate theirs every launch, and the runner/``execute`` flows
        historically stored twice — performs zero re-encoding and zero
        hazard re-checks.
        """
        self.config_mem.store(config)

    def load_kernel(self, name: str) -> int:
        """Copy a stored configuration into the program memories.

        Returns the cycle cost (one cycle per configuration word plus one
        per initial SRF entry, per column). Under the ``auto`` and
        ``compiled`` engines this is also where the cross-column SPM
        analysis runs — its verdict is cached on the stored configuration
        object (``config_mem.stats.analysis_hits``), so warm launches of
        regenerated kernels skip re-analysis entirely.
        """
        config = self.config_mem.get(name)
        if self._engine.name != "reference":
            self._conflict_report(config)
        return self._install(config)

    def _install(self, config: KernelConfig) -> int:
        config_words = 0
        srf_writes = 0
        for col, program in config.columns.items():
            self.columns[col].load(program)
            config_words += len(program.bundles)
            srf_writes += len(program.srf_init)
        self.events.add_many({
            Ev.CONFIG_WORD: config_words, Ev.SRF_WRITE: srf_writes,
        })
        self.synchronizer.kernel_started(config.name, config.columns.keys())
        return config_words + srf_writes

    def _conflict_report(self, config: KernelConfig):
        """SPM-conflict verdict of ``config``, cached on the config object.

        The structural store cache dedupes regenerated kernels onto one
        stored :class:`KernelConfig`, so stamping the verdict on that
        object makes every warm launch a plain attribute read — no
        fingerprint hashing, no memo lookup (the analysis memo in
        :mod:`repro.engine.conflicts` still backs cold misses).
        ``config_mem.stats.analysis_hits/analysis_misses`` count the cache
        behaviour.
        """
        stats = self.config_mem.stats
        cached = config.__dict__.get("_analysis")
        if cached is not None and cached[0] is self.params:
            stats.analysis_hits += 1
            return cached[1]
        stats.analysis_misses += 1
        if len(config.columns) > 1:
            from repro.engine.conflicts import analyze_columns

            report = analyze_columns(config.columns, self.params)
        else:
            from repro.engine.conflicts import EMPTY_REPORT

            report = EMPTY_REPORT
        config._analysis = (self.params, report)
        return report

    # -- execution -----------------------------------------------------------

    @property
    def engine(self) -> str:
        """Name of the active execution engine."""
        return self._engine.name

    @property
    def engine_decisions(self) -> dict:
        """Lifetime launch tally by the engine that actually executed.

        ``{"compiled": n, "reference": m}`` — under ``engine="auto"`` the
        split shows how many launches the SPM-conflict analysis kept on
        the fast path; ``repro.serve`` reports the same split per stream
        from its launch log.
        """
        return dict(self._engine.decisions)

    def run(self, name: str, max_cycles: int = None) -> RunResult:
        """Load and execute a stored kernel to completion."""
        if max_cycles is None:
            max_cycles = self.DEFAULT_MAX_CYCLES
        # Single configuration fetch: _install reuses it for the load,
        # and the conflict verdict rides on the stored config object.
        config = self.config_mem.get(name)
        report = self._conflict_report(config) \
            if self._engine.name != "reference" else None
        config_cycles = self._install(config)
        active = [self.columns[col] for col in config.columns]
        cycles = self._engine.run_kernel(
            self, name, active, max_cycles, report=report
        )
        self.synchronizer.kernel_finished(name, cycles, config.columns.keys())
        info = getattr(self._engine, "last_run_info", None)
        return RunResult(
            name=name,
            cycles=cycles,
            config_cycles=config_cycles,
            column_steps={col.index: col.steps for col in active},
            engine=info.engine if info else self._engine.name,
            fallback_reason=info.fallback_reason if info else None,
            spm_conflicts=tuple(info.conflicts) if info else (),
            superblocks=info.superblocks if info else None,
            block_histogram=info.histogram if info else (),
        )

    def execute(self, config: KernelConfig, max_cycles: int = None) -> RunResult:
        """Store + run in one call (convenience for tests and examples)."""
        self.store_kernel(config)
        return self.run(config.name, max_cycles=max_cycles)

    # -- DMA convenience ------------------------------------------------------

    def dma_to_spm(self, sram, src_word: int, dst_word: int, n: int) -> int:
        self._need_dma()
        cycles = self.dma.to_spm(sram, src_word, dst_word, n)
        self.synchronizer.dma_finished()
        return cycles

    def dma_from_spm(self, sram, src_word: int, dst_word: int, n: int) -> int:
        self._need_dma()
        cycles = self.dma.from_spm(sram, src_word, dst_word, n)
        self.synchronizer.dma_finished()
        return cycles

    def _need_dma(self) -> None:
        if self.dma is None:
            raise ConfigurationError(
                "no bus attached: construct Vwr2a(bus=...) or call "
                "attach_bus() before using the DMA"
            )
