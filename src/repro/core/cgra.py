"""The VWR2A top level (Fig. 1).

Glues together the two columns, the shared SPM, the configuration memory,
the synchronizer and the DMA. The host-facing API is the one the SoC uses
over the slave port: store kernel configurations, launch kernels, trigger
DMA transfers, and receive completion interrupts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch import DEFAULT_PARAMS, ArchParams
from repro.core.column import Column
from repro.core.config_mem import ConfigurationMemory
from repro.core.dma import Dma
from repro.core.errors import ConfigurationError
from repro.core.events import Ev, EventCounters
from repro.core.spm import Scratchpad
from repro.core.synchronizer import Synchronizer
from repro.isa.program import KernelConfig


@dataclass(frozen=True)
class RunResult:
    """Outcome of one kernel execution on the array."""

    name: str
    cycles: int            #: execution cycles (excludes configuration load)
    config_cycles: int     #: cycles spent loading the configuration words
    column_steps: dict     #: per-column executed-bundle counts
    engine: str = ""       #: engine that actually executed the kernel
    fallback_reason: str = None   #: why ``auto`` chose the reference path
    spm_conflicts: tuple = ()     #: SpmConflict records behind the fallback

    @property
    def total_cycles(self) -> int:
        return self.cycles + self.config_cycles


class Vwr2a:
    """A VWR2A instance: reconfigurable array + memories + DMA.

    ``engine`` selects how kernels execute: ``"auto"`` (the default) runs
    the compile-time cross-column SPM analysis at ``load_kernel`` and
    executes conflict-free kernels on the compiled fast path, falling back
    to the per-cycle reference interpreter when columns communicate
    through the SPM mid-kernel (docs/engine.md); ``"compiled"`` forces the
    fast path (raising :class:`~repro.core.errors.SpmConflictError` on
    conflicting kernels); ``"reference"`` is the original cycle-by-cycle
    interpreter (``Column.step``), kept as the golden model. All engines
    produce identical cycle counts and event snapshots; ``RunResult``
    records which engine ran and why.
    """

    #: Runaway guard for kernel execution.
    DEFAULT_MAX_CYCLES = 10_000_000

    def __init__(
        self,
        params: ArchParams = DEFAULT_PARAMS,
        events: EventCounters = None,
        bus=None,
        dma_setup_cycles: int = 24,
        engine: str = "auto",
    ) -> None:
        from repro.engine import make_engine

        self.params = params
        self._engine = make_engine(engine)
        self.events = events if events is not None else EventCounters()
        self.spm = Scratchpad(
            params.spm_lines, params.line_words, self.events
        )
        self.columns = [
            Column(i, params, self.spm, self.events)
            for i in range(params.n_columns)
        ]
        self.config_mem = ConfigurationMemory(params)
        self.synchronizer = Synchronizer()
        self.dma = None
        if bus is not None:
            self.attach_bus(bus, dma_setup_cycles)

    def attach_bus(self, bus, dma_setup_cycles: int = 24) -> None:
        """Connect the AHB master port: enables DMA transfers."""
        self.dma = Dma(
            self.spm, bus, self.events, setup_cycles=dma_setup_cycles
        )

    # -- configuration ------------------------------------------------------

    def store_kernel(self, config: KernelConfig) -> None:
        """Validate (including hazards) and store a kernel configuration.

        Encoding and hazard checks are cached structurally in the
        configuration memory (``config_mem.stats`` exposes the counters),
        so re-storing a structurally identical kernel — the FFT engines
        regenerate theirs every launch, and the runner/``execute`` flows
        historically stored twice — performs zero re-encoding and zero
        hazard re-checks.
        """
        self.config_mem.store(config)

    def load_kernel(self, name: str) -> int:
        """Copy a stored configuration into the program memories.

        Returns the cycle cost (one cycle per configuration word plus one
        per initial SRF entry, per column). Under the ``auto`` and
        ``compiled`` engines this is also where the cross-column SPM
        analysis runs (memoized on the configuration-word fingerprints).
        """
        return self._install(self.config_mem.get(name))

    def _install(self, config: KernelConfig) -> int:
        cycles = 0
        for col, program in config.columns.items():
            self.columns[col].load(program)
            cost = len(program.bundles) + len(program.srf_init)
            self.events.add(Ev.CONFIG_WORD, len(program.bundles))
            self.events.add(Ev.SRF_WRITE, len(program.srf_init))
            cycles += cost
        if self._engine.name != "reference" and len(config.columns) > 1:
            # Warm the conflict analysis at load time; the engines reuse
            # the memoized report at launch.
            from repro.engine.conflicts import analyze_columns

            analyze_columns(config.columns, self.params)
        self.synchronizer.kernel_started(config.name, config.columns.keys())
        return cycles

    # -- execution -----------------------------------------------------------

    @property
    def engine(self) -> str:
        """Name of the active execution engine."""
        return self._engine.name

    @property
    def engine_decisions(self) -> dict:
        """Lifetime launch tally by the engine that actually executed.

        ``{"compiled": n, "reference": m}`` — under ``engine="auto"`` the
        split shows how many launches the SPM-conflict analysis kept on
        the fast path; ``repro.serve`` reports the same split per stream
        from its launch log.
        """
        return dict(self._engine.decisions)

    def run(self, name: str, max_cycles: int = None) -> RunResult:
        """Load and execute a stored kernel to completion."""
        if max_cycles is None:
            max_cycles = self.DEFAULT_MAX_CYCLES
        # Single configuration fetch: _install reuses it for the load.
        config = self.config_mem.get(name)
        config_cycles = self._install(config)
        active = [self.columns[col] for col in config.columns]
        cycles = self._engine.run_kernel(self, name, active, max_cycles)
        self.synchronizer.kernel_finished(name, cycles, config.columns.keys())
        info = getattr(self._engine, "last_run_info", None)
        return RunResult(
            name=name,
            cycles=cycles,
            config_cycles=config_cycles,
            column_steps={col.index: col.steps for col in active},
            engine=info.engine if info else self._engine.name,
            fallback_reason=info.fallback_reason if info else None,
            spm_conflicts=tuple(info.conflicts) if info else (),
        )

    def execute(self, config: KernelConfig, max_cycles: int = None) -> RunResult:
        """Store + run in one call (convenience for tests and examples)."""
        self.store_kernel(config)
        return self.run(config.name, max_cycles=max_cycles)

    # -- DMA convenience ------------------------------------------------------

    def dma_to_spm(self, sram, src_word: int, dst_word: int, n: int) -> int:
        self._need_dma()
        cycles = self.dma.to_spm(sram, src_word, dst_word, n)
        self.synchronizer.dma_finished()
        return cycles

    def dma_from_spm(self, sram, src_word: int, dst_word: int, n: int) -> int:
        self._need_dma()
        cycles = self.dma.from_spm(sram, src_word, dst_word, n)
        self.synchronizer.dma_finished()
        return cycles

    def _need_dma(self) -> None:
        if self.dma is None:
            raise ConfigurationError(
                "no bus attached: construct Vwr2a(bus=...) or call "
                "attach_bus() before using the DMA"
            )
