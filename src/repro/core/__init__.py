"""Cycle-level VWR2A simulator: columns, memories, DMA, top level."""

from repro.core.alu import alu_execute
from repro.core.cgra import RunResult, Vwr2a
from repro.core.column import Column
from repro.core.config_mem import ConfigurationMemory
from repro.core.dma import Dma
from repro.core.errors import (
    AddressError,
    ConfigurationError,
    ProgramError,
    SimulationError,
    StructuralHazardError,
)
from repro.core.events import Ev, EventCounters
from repro.core.hazards import check_bundle, check_program
from repro.core.shuffle import shuffle
from repro.core.spm import Scratchpad
from repro.core.srf import ScalarRegisterFile
from repro.core.synchronizer import Synchronizer
from repro.core.vwr import VeryWideRegister

__all__ = [
    "alu_execute",
    "RunResult",
    "Vwr2a",
    "Column",
    "ConfigurationMemory",
    "Dma",
    "AddressError",
    "ConfigurationError",
    "ProgramError",
    "SimulationError",
    "StructuralHazardError",
    "Ev",
    "EventCounters",
    "check_bundle",
    "check_program",
    "shuffle",
    "Scratchpad",
    "ScalarRegisterFile",
    "Synchronizer",
    "VeryWideRegister",
]
