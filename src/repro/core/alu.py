"""The RC 32-bit ALU (Sec. 3.1).

All operations complete in one clock cycle. The multiplier has two modes:
standard (low 32 bits kept) and fixed-point 16.15 (low 16 bits of the
product discarded, next 32 kept — implemented as an arithmetic shift by 15,
see ``repro.utils.fixed_point``). Arithmetic wraps in two's complement as a
synthesized ALU does; shifts use the low five bits of the shift amount.
Operand isolation (the paper's energy trick) is an energy-model concern,
not a functional one: NOP slots simply log no ALU events.
"""

from __future__ import annotations

from repro.core.events import Ev
from repro.isa.rc import RCOp
from repro.utils.bits import to_signed32, to_unsigned32
from repro.utils.fixed_point import fx_mul, wrap32

#: ALU op -> energy-event class logged when the op executes.
ALU_EVENT = {
    RCOp.SADD: Ev.RC_ALU_ADD,
    RCOp.SSUB: Ev.RC_ALU_ADD,
    RCOp.SMAX: Ev.RC_ALU_ADD,
    RCOp.SMIN: Ev.RC_ALU_ADD,
    RCOp.SMUL: Ev.RC_ALU_MUL,
    RCOp.FXPMUL: Ev.RC_ALU_MUL,
    RCOp.SADD16: Ev.RC_ALU_ADD,
    RCOp.SSUB16: Ev.RC_ALU_ADD,
    RCOp.FXPMUL16: Ev.RC_ALU_MUL,
    RCOp.SLL: Ev.RC_ALU_SHIFT,
    RCOp.SRL: Ev.RC_ALU_SHIFT,
    RCOp.SRA: Ev.RC_ALU_SHIFT,
    RCOp.LAND: Ev.RC_ALU_LOGIC,
    RCOp.LOR: Ev.RC_ALU_LOGIC,
    RCOp.LXOR: Ev.RC_ALU_LOGIC,
    RCOp.LNOT: Ev.RC_ALU_LOGIC,
    RCOp.MOV: Ev.RC_ALU_MOV,
}


def alu_execute(op: RCOp, a: int, b: int) -> int:
    """Compute ``op(a, b)`` on signed 32-bit words; wraps on overflow."""
    if op is RCOp.SADD:
        return wrap32(a + b)
    if op is RCOp.SSUB:
        return wrap32(a - b)
    if op is RCOp.SMUL:
        return wrap32(a * b)
    if op is RCOp.FXPMUL:
        return fx_mul(a, b)
    if op is RCOp.SLL:
        return wrap32(to_unsigned32(a) << (b & 31))
    if op is RCOp.SRL:
        return to_signed32(to_unsigned32(a) >> (b & 31))
    if op is RCOp.SRA:
        return a >> (b & 31)
    if op is RCOp.LAND:
        return to_signed32(to_unsigned32(a) & to_unsigned32(b))
    if op is RCOp.LOR:
        return to_signed32(to_unsigned32(a) | to_unsigned32(b))
    if op is RCOp.LXOR:
        return to_signed32(to_unsigned32(a) ^ to_unsigned32(b))
    if op is RCOp.LNOT:
        return to_signed32(~to_unsigned32(a))
    if op is RCOp.MOV:
        return wrap32(a)
    if op is RCOp.SMAX:
        return a if a >= b else b
    if op is RCOp.SMIN:
        return a if a <= b else b
    if op in (RCOp.SADD16, RCOp.SSUB16, RCOp.FXPMUL16):
        return _simd16(op, a, b)
    raise ValueError(f"cannot execute {op!r}")


def _simd16(op: RCOp, a: int, b: int) -> int:
    """Two independent signed 16-bit lanes (the paper's Sec. 5.1.1
    proposed 16-bit mode). Lanes wrap like the 32-bit datapath does."""
    from repro.utils.bits import sign_extend

    result = 0
    for shift in (0, 16):
        la = sign_extend(to_unsigned32(a) >> shift, 16)
        lb = sign_extend(to_unsigned32(b) >> shift, 16)
        if op is RCOp.SADD16:
            lane = la + lb
        elif op is RCOp.SSUB16:
            lane = la - lb
        else:
            lane = (la * lb) >> 15
        result |= (lane & 0xFFFF) << shift
    return to_signed32(result)
