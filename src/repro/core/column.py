"""One column of the reconfigurable array.

A column bundles four RCs, their three VWRs, the SRF, the shuffle unit and
the three specialized slots (LCU, LSU, MXCU), all advancing in lock-step
under a shared program counter (Sec. 3.1). ``step()`` executes exactly one
cycle: the MXCU's index update is combinational (its output indexes the
VWRs within the same cycle), reads observe cycle-start state, writes commit
at cycle end, and each RC latches its result into an output register that
neighbouring RCs can read in the *next* cycle.
"""

from __future__ import annotations

from repro.arch import ArchParams
from repro.core.alu import ALU_EVENT, alu_execute
from repro.core.errors import ProgramError
from repro.core.events import Ev, EventCounters
from repro.core.shuffle import shuffle
from repro.core.spm import Scratchpad
from repro.core.srf import ScalarRegisterFile
from repro.core.vwr import VeryWideRegister
from repro.isa.fields import RCDstKind, RCSrcKind, Vwr
from repro.isa.lcu import LCUCmp, LCUOp
from repro.isa.lsu import LSUOp
from repro.isa.mxcu import NO_SRF, MXCUOp
from repro.isa.program import ColumnProgram
from repro.utils.fixed_point import wrap32


class Column:
    """Execution state and single-cycle semantics of one column."""

    def __init__(
        self,
        index: int,
        params: ArchParams,
        spm: Scratchpad,
        events: EventCounters,
    ) -> None:
        self.index = index
        self.params = params
        self.spm = spm
        self.events = events
        self.vwrs = {
            v: VeryWideRegister(
                f"col{index}.VWR{v.name}", params.vwr_words, events
            )
            for v in Vwr
        }
        self.srf = ScalarRegisterFile(params.srf_entries, events)
        self.rc_regs = [[0] * params.rc_registers
                        for _ in range(params.rcs_per_column)]
        self.rc_out = [0] * params.rcs_per_column
        self.lcu_regs = [0] * params.lcu_registers
        self.k = 0
        self.pc = 0
        self.done = True
        self.steps = 0
        self.program = None

    # -- kernel loading ----------------------------------------------------

    def load(self, program: ColumnProgram) -> None:
        """Install a program (already hazard-checked by the top level)."""
        self.program = program
        self.pc = 0
        self.k = 0
        self.done = False
        self.steps = 0
        # In-place reset: the compiled engine's closures capture this list.
        self.rc_out[:] = [0] * self.params.rcs_per_column
        self.srf.poke_many(program.srf_init)

    # -- whole-column architectural state (no events) ----------------------

    def state_snapshot(self) -> dict:
        """Copy of all architectural state (registers, VWRs, PC, index).

        Paired with :meth:`state_restore`; used by the compiled engine to
        rewind an aborted launch before replaying it cycle-by-cycle on the
        reference interpreter (docs/engine.md).
        """
        return {
            "srf": list(self.srf._data),
            "vwrs": {v: list(vwr._data) for v, vwr in self.vwrs.items()},
            "rc_regs": [list(regs) for regs in self.rc_regs],
            "rc_out": list(self.rc_out),
            "lcu_regs": list(self.lcu_regs),
            "k": self.k,
            "pc": self.pc,
            "done": self.done,
            "steps": self.steps,
        }

    def state_restore(self, state: dict) -> None:
        """In-place restore of a :meth:`state_snapshot`.

        All list updates are in place because the compiled engine's block
        closures capture the backing lists.
        """
        self.srf._data[:] = state["srf"]
        for v, words in state["vwrs"].items():
            self.vwrs[v]._data[:] = words
        for regs, saved in zip(self.rc_regs, state["rc_regs"]):
            regs[:] = saved
        self.rc_out[:] = state["rc_out"]
        self.lcu_regs[:] = state["lcu_regs"]
        self.k = state["k"]
        self.pc = state["pc"]
        self.done = state["done"]
        self.steps = state["steps"]

    # -- one cycle ---------------------------------------------------------

    def step(self) -> None:
        """Advance the column by one clock cycle."""
        if self.done:
            return
        if self.program is None:
            raise ProgramError(f"column {self.index}: no program loaded")
        if not 0 <= self.pc < len(self.program):
            raise ProgramError(
                f"column {self.index}: PC {self.pc} ran past the program "
                "without an EXIT"
            )
        bundle = self.program[self.pc]
        self.steps += 1
        self.events.add(Ev.COLUMN_CYCLE)
        # One program-memory fetch per unit per cycle (predecoded words).
        self.events.add(Ev.PM_FETCH, 3 + self.params.rcs_per_column)

        self._exec_mxcu(bundle.mxcu)
        self._exec_rcs(bundle.rcs)
        self._exec_lsu(bundle.lsu)
        self._exec_lcu(bundle.lcu)

    # -- unit semantics ----------------------------------------------------

    def _exec_mxcu(self, instr) -> None:
        if instr.op is MXCUOp.NOP:
            return
        self.events.add(Ev.MXCU_ISSUE)
        slice_mask = self.params.slice_words - 1
        if instr.op is MXCUOp.SETK:
            self.k = instr.k & slice_mask
            return
        # UPD: k = ((k + inc) & and_mask) ^ xor_mask, truncated to the
        # index register width (log2(slice_words) bits).
        if instr.srf_and != NO_SRF:
            and_mask = self.srf.read(instr.srf_and)
        else:
            and_mask = instr.and_mask
        self.k = (((self.k + instr.inc) & and_mask) ^ instr.xor_mask) \
            & slice_mask

    def _exec_rcs(self, instrs) -> None:
        slice_words = self.params.slice_words
        prev_outs = list(self.rc_out)
        n_rcs = self.params.rcs_per_column
        srf_cache = {}
        results = []

        for i, instr in enumerate(instrs):
            if instr.is_nop:
                continue
            self.events.add(Ev.RC_ISSUE)
            self.events.add(ALU_EVENT[instr.op])
            values = []
            for operand in instr.operands():
                kind = operand.kind
                if kind is RCSrcKind.ZERO:
                    values.append(0)
                elif kind is RCSrcKind.IMM:
                    values.append(operand.index)
                elif kind is RCSrcKind.R0:
                    self.events.add(Ev.RC_RF_READ)
                    values.append(self.rc_regs[i][0])
                elif kind is RCSrcKind.R1:
                    self.events.add(Ev.RC_RF_READ)
                    values.append(self.rc_regs[i][1])
                elif kind is RCSrcKind.RCT:
                    values.append(prev_outs[(i - 1) % n_rcs])
                elif kind is RCSrcKind.RCB:
                    values.append(prev_outs[(i + 1) % n_rcs])
                elif kind is RCSrcKind.SRF:
                    entry = operand.index
                    if entry not in srf_cache:
                        # One broadcast read for the whole RC group; the
                        # hazard checker guarantees a single entry.
                        srf_cache[entry] = self.srf.read(entry)
                    values.append(srf_cache[entry])
                else:
                    vwr = self.vwrs[operand.vwr()]
                    values.append(
                        vwr.read_word(i * slice_words + self.k)
                    )
            a = values[0]
            b = values[1] if len(values) > 1 else 0
            results.append((i, instr, alu_execute(instr.op, a, b)))

        # Commit phase: all writes observe cycle-start reads.
        for i, instr, value in results:
            self.rc_out[i] = value
            kind = instr.dst.kind
            if kind is RCDstKind.NONE:
                continue
            if kind is RCDstKind.R0:
                self.events.add(Ev.RC_RF_WRITE)
                self.rc_regs[i][0] = value
            elif kind is RCDstKind.R1:
                self.events.add(Ev.RC_RF_WRITE)
                self.rc_regs[i][1] = value
            elif kind is RCDstKind.SRF:
                self.srf.write(instr.dst.index, value)
            else:
                vwr = self.vwrs[instr.dst.vwr()]
                vwr.write_word(i * slice_words + self.k, value)

    def _exec_lsu(self, instr) -> None:
        if instr.op is LSUOp.NOP:
            return
        self.events.add(Ev.LSU_ISSUE)
        op = instr.op
        if op is LSUOp.LD_VWR:
            line = self.srf.read(instr.addr)
            self.vwrs[instr.vwr].write_wide(self.spm.read_line(line))
            self._post_increment(instr, line)
        elif op is LSUOp.ST_VWR:
            line = self.srf.read(instr.addr)
            self.spm.write_line(line, self.vwrs[instr.vwr].read_wide())
            self._post_increment(instr, line)
        elif op is LSUOp.LD_SRF:
            addr = self.srf.read(instr.addr)
            value = self.spm.read_word(addr)
            self.srf.poke(instr.data, value)
            self.events.add(Ev.SRF_WRITE)
            self._post_increment(instr, addr)
        elif op is LSUOp.ST_SRF:
            addr = self.srf.read(instr.addr)
            value = self.srf.peek(instr.data)
            self.events.add(Ev.SRF_READ)
            self.spm.write_word(addr, value)
            self._post_increment(instr, addr)
        elif op is LSUOp.SET_SRF:
            self.srf.write(instr.data, instr.value)
        elif op is LSUOp.SHUF:
            self.events.add(Ev.SHUFFLE_OP)
            result = shuffle(
                self.vwrs[Vwr.A].read_wide(),
                self.vwrs[Vwr.B].read_wide(),
                instr.mode,
                slice_words=self.params.slice_words,
            )
            self.vwrs[Vwr.C].write_wide(result)
        else:
            raise ProgramError(f"unhandled LSU op {op!r}")

    def _post_increment(self, instr, current: int) -> None:
        """Post-increment write-back of the LSU address SRF entry."""
        if instr.inc:
            self.srf.poke(instr.addr, current + instr.inc)
            self.events.add(Ev.SRF_WRITE)

    def _exec_lcu(self, instr) -> None:
        next_pc = self.pc + 1
        op = instr.op
        if op is not LCUOp.NOP:
            self.events.add(Ev.LCU_ISSUE)
        if op is LCUOp.SETI:
            self.lcu_regs[instr.rd] = wrap32(instr.imm)
        elif op is LCUOp.ADDI:
            self.lcu_regs[instr.rd] = wrap32(
                self.lcu_regs[instr.rd] + instr.imm
            )
        elif op is LCUOp.LDSRF:
            self.lcu_regs[instr.rd] = self.srf.read(instr.cmp)
        elif op is LCUOp.JUMP:
            self.events.add(Ev.LCU_BRANCH)
            next_pc = instr.target
        elif op is LCUOp.EXIT:
            self.done = True
        elif instr.is_branch:
            self.events.add(Ev.LCU_BRANCH)
            if instr.cmp_kind is LCUCmp.IMM:
                cmp_value = instr.cmp
            elif instr.cmp_kind is LCUCmp.REG:
                cmp_value = self.lcu_regs[instr.cmp]
            else:
                cmp_value = self.srf.read(instr.cmp)
            lhs = self.lcu_regs[instr.rd]
            taken = {
                LCUOp.BLT: lhs < cmp_value,
                LCUOp.BGE: lhs >= cmp_value,
                LCUOp.BEQ: lhs == cmp_value,
                LCUOp.BNE: lhs != cmp_value,
            }[op]
            if taken:
                next_pc = instr.target
        self.pc = next_pc

    # -- debug helpers -----------------------------------------------------

    def vwr_words(self, which: Vwr) -> list:
        """Test/debug view of a VWR's contents (no events)."""
        return self.vwrs[which].peek_all()
