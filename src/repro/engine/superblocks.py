"""Superblock tier: closed-form self-loops and vectorized steady state.

Three layers of the compiled engine share the machinery in this module:

* :func:`loop_summary` — one symbolic walk of a fused self-loop body. Each
  SRF entry and LCU register is classified per trip as affine
  (``("d", delta)`` — trip-start value plus a constant), constant
  (``("c", v)`` — rewritten every trip), or data-dependent (``("u",)``).
  The cross-column SPM analysis (:mod:`repro.engine.conflicts`) uses it to
  accelerate loops abstractly; the compiler (:mod:`repro.engine.compiler`)
  uses the *same* walk to prove a loop's trip count is computable at loop
  entry from concrete LCU/SRF state.
* :func:`trip_count` — the closed-form solution of the loop branch: given
  the concrete counter and bound values at loop entry, the exact number of
  body executions (``None`` when the branch stays taken forever, i.e. the
  loop only ends on the cycle budget).
* :class:`LoopPlan` / :func:`plan_loop` — the compiler-facing summary: a
  proven loop carries its counter register, per-trip delta, bound operand
  and (when the body qualifies) generated NumPy source that executes the
  RC/MXCU datapath work of *all* trips at once — gathers and scatters over
  the VWR backing stores indexed by precomputed per-bundle ``k``
  sequences, with the final LCU/RC register state reconstructed from the
  affine summaries. Loop bodies that touch the LSU, write the SRF, or
  carry values between trips through RC registers fall back to the scalar
  fused loop (bit-identity preserved either way).

The vectorized path needs NumPy; when it is unavailable the compiler
simply emits scalar closed-form loops (the simulator itself stays
stdlib-only — NumPy is a test/bench extra).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.fields import RCDstKind, RCSrcKind
from repro.isa.lcu import BRANCH_OPS, LCUCmp, LCUOp
from repro.isa.lsu import LSUOp
from repro.isa.mxcu import NO_SRF, MXCUOp
from repro.isa.rc import RCOp
from repro.utils.bits import to_signed32
from repro.utils.fixed_point import wrap32

try:  # pragma: no cover - exercised via the compiled engine
    import numpy as _np
except ImportError:  # pragma: no cover - stdlib-only deployments
    _np = None

#: Whether the vectorized steady state can be compiled in this process.
NUMPY_AVAILABLE = _np is not None

#: Trip-count windows in which the NumPy body beats the scalar loop:
#: below the minimum the per-call array dispatch overhead dominates (the
#: microbench in ``benchmarks/test_sim_speed.py`` puts the break-even
#: near one hundred trips on commodity hosts — the 16/32-trip Table-1
#: full-slice passes are faster as counted scalar loops), above the
#: maximum the per-trip index tables would hold too much memory at once.
#: Lane-broadcast bodies (one instruction across all RCs) amortize the
#: setup over ``lanes x trips`` elements, so their break-even sits lower
#: than the per-cell fallback's.
VEC_MIN_TRIPS = 256
VEC_MIN_TRIPS_LANES = 96
VEC_MAX_TRIPS = 1 << 18

_INT32_MIN = -(1 << 31)
_INT32_MAX = (1 << 31) - 1


# ---------------------------------------------------------------------------
# Symbolic per-trip loop summary (shared with repro.engine.conflicts)
# ---------------------------------------------------------------------------

def sym_add(sym, inc: int):
    """Add a constant to a symbolic per-trip value."""
    tag = sym[0]
    if tag == "u":
        return sym
    return (tag, sym[1] + inc)


def loop_summary(bundles, pcs, n_srf: int, n_lcu: int) -> dict:
    """One symbolic walk of a self-loop body (static, state-free).

    ``pcs`` are the loop's bundle PCs (leader through the back-branch).
    Returns the summary dict consumed by both the SPM-footprint
    acceleration and the compiler's closed-form loop planner: ``ok`` means
    the back-branch is a BLT/BGE whose counter advances by a non-zero
    constant per trip against a loop-invariant bound, i.e. the trip count
    is a closed-form function of the loop-entry register state.
    """
    srf_sym = {e: ("d", 0) for e in range(n_srf)}
    lcu_sym = {r: ("d", 0) for r in range(n_lcu)}
    sites = []
    ok = True
    for pc in pcs:
        bundle = bundles[pc]
        for instr in bundle.rcs:
            if instr.is_nop:
                continue
            for operand in instr.operands():
                if operand.kind is RCSrcKind.SRF \
                        and not 0 <= operand.index < n_srf:
                    ok = False
            if instr.dst.writes_srf:
                if 0 <= instr.dst.index < n_srf:
                    srf_sym[int(instr.dst.index)] = ("u",)
                else:
                    ok = False
        lsu = bundle.lsu
        access = bundle.spm_access()
        if access is not None:
            granularity, direction, entry, inc = access
            is_line = granularity == "line"
            is_write = direction == "write"
            if not 0 <= entry < n_srf or (
                not is_line and not 0 <= int(lsu.data) < n_srf
            ):
                ok = False
                continue
            sites.append((is_line, is_write, entry, srf_sym[entry]))
            if lsu.op is LSUOp.LD_SRF:
                srf_sym[int(lsu.data)] = ("u",)
            if inc:
                srf_sym[entry] = sym_add(srf_sym[entry], inc)
        elif lsu.op is LSUOp.SET_SRF:
            if 0 <= int(lsu.data) < n_srf:
                srf_sym[int(lsu.data)] = ("c", to_signed32(lsu.value))
            else:
                ok = False
        instr = bundle.lcu
        if instr.op is LCUOp.SETI:
            lcu_sym[instr.rd] = ("c", wrap32(instr.imm))
        elif instr.op is LCUOp.ADDI:
            lcu_sym[instr.rd] = sym_add(lcu_sym[instr.rd], int(instr.imm))
        elif instr.op is LCUOp.LDSRF:
            # Loop-varying load: conservatively data-dependent.
            lcu_sym[instr.rd] = ("u",)
    branch = bundles[pcs[-1]].lcu
    counter = lcu_sym.get(branch.rd, ("u",))
    if branch.op not in (LCUOp.BLT, LCUOp.BGE) \
            or counter[0] != "d" or counter[1] == 0:
        ok = False
    # The comparison operand must be loop-invariant.
    if branch.cmp_kind is LCUCmp.REG \
            and lcu_sym.get(int(branch.cmp)) != ("d", 0):
        ok = False
    if branch.cmp_kind is LCUCmp.SRF and (
        not 0 <= int(branch.cmp) < n_srf
        or srf_sym[int(branch.cmp)] != ("d", 0)
    ):
        ok = False
    return {
        "ok": ok,
        "pcs": pcs,
        "branch": branch,
        "srf_sym": srf_sym,
        "lcu_sym": lcu_sym,
        "sites": sites,
    }


def trip_count(op: LCUOp, delta: int, v0: int, bound: int):
    """Closed-form body-execution count of a proven self-loop.

    ``v0`` is the counter register's value at loop entry, ``bound`` the
    (loop-invariant) comparison value, ``delta`` the counter's per-trip
    increment. The body executes at least once (the branch sits at its
    end); ``None`` means the branch stays taken forever — execution is
    bounded only by the cycle budget. The closed form ignores 32-bit
    counter wrap-around; callers must not use it when
    ``v0 + trips * delta`` leaves the int32 range (the generated code
    guards this at runtime and falls back to the scalar loop).
    """
    if op is LCUOp.BLT:
        if delta <= 0:
            return None if v0 + delta < bound else 1
        return max(1, -((v0 - bound) // delta))
    if delta >= 0:
        return None if v0 + delta >= bound else 1
    return max(1, (v0 - bound) // (-delta) + 1)


# ---------------------------------------------------------------------------
# Runtime helpers for the vectorized steady state
# ---------------------------------------------------------------------------

def k_index_table(k0: int, trips: int, updates, slice_mask: int, srf_masks):
    """Per-bundle ``k`` index arrays over ``trips`` trips, plus the final k.

    ``updates`` describes each body bundle's MXCU action:
    ``("nop",)`` / ``("set", k)`` / ``("upd", inc, and_mask, xor)`` where
    ``and_mask is None`` means the mask comes from the SRF — resolved
    positionally from ``srf_masks`` (loop-invariant by construction, read
    once at loop entry). ``k`` lives in ``[0, slice_words)``, so its
    trip-entry orbit cycles within ``slice_words`` steps: the table is
    built by walking the orbit to its first repeat and tiling.
    Returns ``(table, final_k)`` with ``table[b]`` the int64 index array
    of bundle ``b``.
    """
    resolved = []
    position = 0
    for update in updates:
        if update[0] == "upd" and update[2] is None:
            resolved.append(
                ("upd", update[1], srf_masks[position], update[3])
            )
            position += 1
        else:
            resolved.append(update)
    if all(
        update[0] == "nop"
        or (update[0] == "upd"
            and update[2] & slice_mask == slice_mask and update[3] == 0)
        for update in resolved
    ):
        # Pure modular increments (the Table-1 ``inck`` shape): every
        # bundle's index is an arithmetic progression — no orbit walk.
        trip_stride = sum(
            u[1] for u in resolved if u[0] == "upd"
        )
        base = _np.arange(trips, dtype=_np.int64) * trip_stride + k0
        rows = []
        prefix = 0
        for update in resolved:
            if update[0] == "upd":
                prefix += update[1]
            rows.append((base + prefix) & slice_mask)
        table = _np.stack(rows)
        return table, int(table[-1, -1])
    rows = []
    seen = {}
    cycle_start = None
    k = k0
    while len(rows) < trips:
        if k in seen:
            cycle_start = seen[k]
            break
        seen[k] = len(rows)
        row = []
        for update in resolved:
            if update[0] == "set":
                k = update[1]
            elif update[0] == "upd":
                k = (((k + update[1]) & update[2]) ^ update[3]) & slice_mask
            row.append(k)
        rows.append(row)
    table = _np.array(rows, dtype=_np.int64)
    if len(rows) < trips:
        cycle = table[cycle_start:]
        repeats = -(-(trips - cycle_start) // len(cycle))
        table = _np.concatenate(
            [table[:cycle_start], _np.tile(cycle, (repeats, 1))]
        )[:trips]
    table = table.T
    return table, int(table[-1, -1])


def scatter_writes(target, indices, values, trips: int) -> None:
    """Commit several per-trip VWR write streams in program order.

    ``indices``/``values`` are the body's write sites in bundle order;
    interleaving them trip-major before one fancy assignment reproduces
    the scalar engine's write order exactly (NumPy assigns advanced
    indices in order, so on duplicate indices the last write wins — the
    differential suite pins this down with wrapping-``k`` loops).
    """
    stacked = _np.stack(indices, axis=1).ravel()
    broadcast = [
        value if isinstance(value, _np.ndarray) and value.shape == (trips,)
        else _np.broadcast_to(_np.asarray(value, dtype=_np.int64), (trips,))
        for value in values
    ]
    target[stacked] = _np.stack(broadcast, axis=1).ravel()


def scatter_lanes(target, indices, values, trips: int) -> None:
    """Commit per-trip ``lanes x trips`` write streams in program order.

    The lane-broadcast sibling of :func:`scatter_writes`: each site is a
    2D index/value pair; transposing to trip-major before the flatten
    reproduces the scalar engine's write order (lanes within one bundle
    address disjoint slices, so their relative order is free).
    """
    stacked = _np.concatenate([site.T for site in indices], axis=1).ravel()
    shape = indices[0].shape
    broadcast = [
        value if isinstance(value, _np.ndarray) and value.shape == shape
        else _np.broadcast_to(_np.asarray(value, dtype=_np.int64), shape)
        for value in values
    ]
    target[stacked] = _np.concatenate(
        [value.T for value in broadcast], axis=1
    ).ravel()


def lane_offsets(params):
    """Per-RC VWR slice base offsets as a ``(lanes, 1)`` column array."""
    if _np is None:
        return None
    return (
        _np.arange(params.rcs_per_column, dtype=_np.int64).reshape(-1, 1)
        * params.slice_words
    )


def as_int64(words) -> "object":
    """A VWR/SPM backing list as an int64 array (gather/scatter staging)."""
    return _np.array(words, dtype=_np.int64)


def last_value(value) -> int:
    """Final-trip value of a per-trip result (array or trip-invariant)."""
    if isinstance(value, _np.ndarray):
        return int(value[-1])
    return int(value)


def all_distinct(indices, trips: int) -> bool:
    """True when a per-trip index array never revisits a position.

    The runtime guard of the read-modify-write vector path (the FFT
    butterfly shape: ``VB[k] = VA[k] - VB[k]``): with every trip touching
    a fresh ``k``, gathers of loop-entry state are exact. A repeat (the
    trip count lapping the ``k`` orbit) falls back to the scalar loop.
    """
    return int(_np.unique(indices).size) == trips


def _lane16(word, shift):
    """Sign-extended 16-bit lane of a (vectorized) 32-bit word."""
    lane = ((word & 0xFFFFFFFF) >> shift) & 0xFFFF
    return (lane ^ 0x8000) - 0x8000


def _v16(op):
    def run(a, b):
        result = 0
        for shift in (0, 16):
            la = _lane16(a, shift)
            lb = _lane16(b, shift)
            if op is RCOp.SADD16:
                lane = la + lb
            elif op is RCOp.SSUB16:
                lane = la - lb
            else:
                lane = (la * lb) >> 15
            result = result | ((lane & 0xFFFF) << shift)
        return ((result & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000

    return run


#: Vectorized SIMD16 lane ops (mirror ``repro.core.alu._simd16``).
v16_add = _v16(RCOp.SADD16)
v16_sub = _v16(RCOp.SSUB16)
v16_mul = _v16(RCOp.FXPMUL16)


def vector_namespace() -> dict:
    """Names the generated vectorized loop bodies resolve at bind time."""
    names = {
        "_np": _np,
        "_arr": as_int64,
        "_kseq": k_index_table,
        "_scat": scatter_writes,
        "_last": last_value,
        "_dst": all_distinct,
        "_scat2": scatter_lanes,
        "_v16a": v16_add,
        "_v16s": v16_sub,
        "_v16m": v16_mul,
    }
    if _np is not None:
        names["_nmax"] = _np.maximum
        names["_nmin"] = _np.minimum
    return names


# ---------------------------------------------------------------------------
# Compiler-facing loop plan
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LoopPlan:
    """Everything the compiler needs to accelerate one proven self-loop."""

    counter: int          #: LCU register driving the back-branch
    delta: int            #: per-trip counter increment (non-zero)
    op: "LCUOp"           #: LCUOp.BLT or LCUOp.BGE
    cmp_kind: "LCUCmp"    #: bound operand addressing mode
    cmp_index: int        #: immediate value / LCU register / SRF entry
    lcu_sym: dict         #: per-register symbolic per-trip classification
    vector_lines: tuple   #: generated NumPy body (empty => scalar only)
    lanes: bool = False   #: body lifted as lanes x trips (broadcast RCs)
    #: Why the body stayed scalar (``None`` when vectorized): one of the
    #: static reasons of :class:`_VectorBodyGen` (``lsu_in_body``,
    #: ``cross_trip_recurrence``, ``inadmissible_rmw``, ...) or
    #: ``numpy_unavailable``. Surfaced per loop entry through
    #: ``RunResult.superblocks["vector_rejections"]``.
    vector_reject: str = None

    @property
    def vectorized(self) -> bool:
        return bool(self.vector_lines)

    @property
    def min_trips(self) -> int:
        return VEC_MIN_TRIPS_LANES if self.lanes else VEC_MIN_TRIPS


def plan_loop(bundles, pcs, params) -> LoopPlan:
    """Closed-form plan of a self-loop, or ``None`` when unprovable."""
    summary = loop_summary(
        bundles, pcs, params.srf_entries, params.lcu_registers
    )
    if not summary["ok"]:
        return None
    branch = summary["branch"]
    delta = summary["lcu_sym"][branch.rd][1]
    vector_lines = ()
    lanes = False
    reject = None
    if NUMPY_AVAILABLE:
        generated = _LaneVectorGen(bundles, pcs, params, summary).build()
        lanes = generated is not None
        if generated is None:
            # The per-cell generator subsumes the lane shape, so its
            # rejection reason is the one worth reporting.
            cell_gen = _VectorBodyGen(bundles, pcs, params, summary)
            generated = cell_gen.build()
            if generated is None:
                reject = cell_gen.reject
        if generated is not None:
            vector_lines = tuple(generated)
    else:
        reject = "numpy_unavailable"
    return LoopPlan(
        counter=int(branch.rd),
        delta=delta,
        op=branch.op,
        cmp_kind=branch.cmp_kind,
        cmp_index=int(branch.cmp),
        lcu_sym=summary["lcu_sym"],
        vector_lines=vector_lines,
        lanes=lanes,
        vector_reject=reject,
    )


def bound_expr(plan: LoopPlan) -> str:
    """Source of the loop bound operand at loop entry."""
    if plan.cmp_kind is LCUCmp.IMM:
        return repr(plan.cmp_index)
    if plan.cmp_kind is LCUCmp.REG:
        return f"L[{plan.cmp_index}]"
    return f"S[{plan.cmp_index}]"


def trip_count_lines(plan: LoopPlan) -> list:
    """Source computing ``_t`` (trips or None) from ``_v0`` and ``_bnd``."""
    d = plan.delta
    if plan.op is LCUOp.BLT:
        if d > 0:
            return [
                f"_t = -((_v0 - _bnd) // {d})",
                "if _t < 1: _t = 1",
            ]
        return [f"_t = 1 if _v0 + {d} >= _bnd else None"]
    if d < 0:
        return [
            f"_t = (_v0 - _bnd) // {-d} + 1",
            "if _t < 1: _t = 1",
        ]
    return [f"_t = 1 if _v0 + {d} < _bnd else None"]


# ---------------------------------------------------------------------------
# Vectorized body generation
# ---------------------------------------------------------------------------

_VWR_SRC = {
    RCSrcKind.VWR_A: "VA",
    RCSrcKind.VWR_B: "VB",
    RCSrcKind.VWR_C: "VC",
}
_VWR_DST = {
    RCDstKind.VWR_A: "VA",
    RCDstKind.VWR_B: "VB",
    RCDstKind.VWR_C: "VC",
}


def _wrap(expr: str) -> str:
    return f"((({expr}) + 2147483648 & 4294967295) - 2147483648)"


def _vec_alu(op: RCOp, a: str, b: str) -> str:
    """NumPy-elementwise source of ``alu_execute(op, a, b)``.

    Mirrors the scalar inline expressions of the compiler; every produced
    value is a wrapped signed-32 quantity (as an int64 array or a Python
    int when both operands are trip-invariant).
    """
    if op is RCOp.SADD:
        return _wrap(f"({a}) + ({b})")
    if op is RCOp.SSUB:
        return _wrap(f"({a}) - ({b})")
    if op is RCOp.SMUL:
        return _wrap(f"({a}) * ({b})")
    if op is RCOp.FXPMUL:
        return _wrap(f"(({a}) * ({b})) >> 15")
    if op is RCOp.SLL:
        return _wrap(f"(({a}) & 4294967295) << (({b}) & 31)")
    if op is RCOp.SRL:
        return _wrap(f"(({a}) & 4294967295) >> (({b}) & 31)")
    if op is RCOp.SRA:
        return f"(({a}) >> (({b}) & 31))"
    if op is RCOp.LAND:
        return _wrap(f"({a}) & ({b}) & 4294967295")
    if op is RCOp.LOR:
        return _wrap(f"(({a}) | ({b})) & 4294967295")
    if op is RCOp.LXOR:
        return _wrap(f"(({a}) ^ ({b})) & 4294967295")
    if op is RCOp.LNOT:
        return _wrap(f"(~({a})) & 4294967295")
    if op is RCOp.MOV:
        return _wrap(a)
    if op is RCOp.SMAX:
        return f"_nmax(({a}), ({b}))"
    if op is RCOp.SMIN:
        return f"_nmin(({a}), ({b}))"
    if op is RCOp.SADD16:
        return f"_v16a(({a}), ({b}))"
    if op is RCOp.SSUB16:
        return f"_v16s(({a}), ({b}))"
    if op is RCOp.FXPMUL16:
        return f"_v16m(({a}), ({b}))"
    return None


class _VectorBodyGen:
    """Generates the NumPy steady-state body of one proven self-loop.

    Eligibility (anything else returns ``None`` — the scalar fused loop
    remains the execution path, so rejection is never a correctness
    concern):

    * no LSU work in the body (loads/stores live in the surrounding
      straight-line superblocks in the Table-1 mapping);
    * LCU body ops limited to SETI/ADDI (state reconstructed from the
      affine summary) plus the terminating branch;
    * no RC writes to the SRF, and no statically invalid SRF entry;
    * RC register/neighbour reads (R0/R1/RCT/RCB) only of values written
      earlier in the *same trip* — cross-trip recurrences stay scalar;
    * a VWR that is both read and written (the FFT butterfly's
      ``VB[k] = VA[k] - VB[k]``) is admitted when one bundle does all its
      writes, no later bundle reads it, and reads and writes share one
      ``k`` index — then a runtime guard proves the per-trip indices
      never repeat (``all_distinct``), so gathers of loop-entry state are
      exact; any repeat falls back to the scalar loop mid-function.
    """

    def __init__(self, bundles, pcs, params, summary) -> None:
        self.bundles = bundles
        self.pcs = pcs
        self.params = params
        self.summary = summary
        self.slice_words = params.slice_words
        self.slice_mask = params.slice_words - 1
        self.n_rcs = params.rcs_per_column
        self.n_srf = params.srf_entries
        self.updates = []          # per-bundle MXCU action
        self.mask_entries = []     # SRF entries feeding UPD and-masks
        self.read_vwrs = {}        # vwr -> bundle positions reading it
        self.write_vwrs = {}       # vwr -> bundle positions writing it
        self.compute = []          # (var, expr) in program order
        self.writes = {}           # vwr -> [(index_expr, var)]
        self.defs = {}             # ("O"|"R0"|"R1", cell) -> var
        self.k_used = False
        self.guards = ()           # k epochs needing distinctness proofs
        self.counter = 0
        #: Why ``build`` returned None (the per-loop rejection taxonomy).
        self.reject = None

    # -- operand lowering --------------------------------------------------

    def _temp(self) -> str:
        self.counter += 1
        return f"_x{self.counter}"

    def _operand(self, operand, i: int, b: int):
        kind = operand.kind
        if kind is RCSrcKind.ZERO:
            return "0"
        if kind is RCSrcKind.IMM:
            return repr(int(operand.index))
        if kind in (RCSrcKind.R0, RCSrcKind.R1, RCSrcKind.RCT,
                    RCSrcKind.RCB):
            if kind is RCSrcKind.R0:
                var = self.defs.get(("R0", i))
            elif kind is RCSrcKind.R1:
                var = self.defs.get(("R1", i))
            elif kind is RCSrcKind.RCT:
                var = self.defs.get(("O", (i - 1) % self.n_rcs))
            else:
                var = self.defs.get(("O", (i + 1) % self.n_rcs))
            if var is None:
                # Reads a value not written earlier in the same trip:
                # a cross-trip recurrence — inherently sequential.
                self.reject = "cross_trip_recurrence"
            return var
        if kind is RCSrcKind.SRF:
            if not 0 <= operand.index < self.n_srf:
                self.reject = "bad_srf_entry"
                return None
            return f"S[{int(operand.index)}]"
        name = _VWR_SRC[kind]
        self.read_vwrs.setdefault(name, set()).add(b)
        self.k_used = True
        return f"_g{name}[{i * self.slice_words} + _k{b}]"

    # -- body walk ---------------------------------------------------------

    def build(self):
        for b, pc in enumerate(self.pcs):
            bundle = self.bundles[pc]
            if bundle.lsu.op is not LSUOp.NOP:
                self.reject = "lsu_in_body"
                return None
            lcu = bundle.lcu
            if lcu.op not in (LCUOp.NOP, LCUOp.SETI, LCUOp.ADDI) \
                    and not (pc == self.pcs[-1] and lcu.op in BRANCH_OPS):
                self.reject = "lcu_op_in_body"
                return None
            if not self._mxcu(bundle.mxcu):
                self.reject = self.reject or "bad_srf_entry"
                return None
            if not self._rcs(bundle.rcs, b):
                self.reject = self.reject or "unsupported_op"
                return None
        if any(sym[0] == "u" for sym in self.summary["lcu_sym"].values()):
            self.reject = "unknown_lcu_state"
            return None
        if not self._resolve_hazards():
            self.reject = "inadmissible_rmw"
            return None
        lines = self._emit()
        if lines is None:
            self.reject = self.reject or "static_index"
        return lines

    def _resolve_hazards(self) -> bool:
        """Admit read+write VWRs behind a runtime index-distinctness guard."""
        epochs = []
        last = -1
        for position, update in enumerate(self.updates):
            if update[0] != "nop":
                last = position
            epochs.append(last)
        guards = set()
        for name in set(self.read_vwrs) & set(self.write_vwrs):
            write_bundles = self.write_vwrs[name]
            if len(write_bundles) != 1:
                return False
            writer = next(iter(write_bundles))
            read_bundles = self.read_vwrs[name]
            if any(b > writer for b in read_bundles):
                return False
            involved = {epochs[b] for b in read_bundles}
            involved.add(epochs[writer])
            if len(involved) != 1 or -1 in involved:
                return False
            guards.add(involved.pop())
        self.guards = tuple(sorted(guards))
        return True

    def _mxcu(self, instr) -> bool:
        if instr.op is MXCUOp.NOP:
            self.updates.append(("nop",))
            return True
        if instr.op is MXCUOp.SETK:
            self.updates.append(("set", instr.k & self.slice_mask))
            return True
        if instr.srf_and != NO_SRF:
            if not 0 <= instr.srf_and < self.n_srf:
                return False
            self.mask_entries.append(int(instr.srf_and))
            self.updates.append(
                ("upd", int(instr.inc), None, int(instr.xor_mask))
            )
            return True
        self.updates.append(
            ("upd", int(instr.inc), int(instr.and_mask),
             int(instr.xor_mask))
        )
        return True

    def _rcs(self, instrs, b: int) -> bool:
        commits = []
        for i, instr in enumerate(instrs):
            if instr.is_nop:
                continue
            operands = instr.operands()
            a = self._operand(operands[0], i, b) if operands else "0"
            bexpr = self._operand(operands[1], i, b) \
                if len(operands) > 1 else "0"
            if a is None or bexpr is None:
                return False
            expr = _vec_alu(instr.op, a, bexpr)
            if expr is None:
                return False
            var = self._temp()
            self.compute.append((var, expr))
            commits.append((i, instr, var))
        # Commit phase after the whole bundle: reads above observed
        # bundle-start definitions only.
        for i, instr, var in commits:
            self.defs[("O", i)] = var
            kind = instr.dst.kind
            if kind is RCDstKind.R0:
                self.defs[("R0", i)] = var
            elif kind is RCDstKind.R1:
                self.defs[("R1", i)] = var
            elif kind is RCDstKind.SRF:
                self.reject = "srf_write_in_body"
                return False
            elif kind in _VWR_DST:
                name = _VWR_DST[kind]
                self.write_vwrs.setdefault(name, set()).add(b)
                self.k_used = True
                self.writes.setdefault(name, []).append(
                    (f"{i * self.slice_words} + _k{b}", var)
                )
        return True

    # -- emission ----------------------------------------------------------

    def _emit(self) -> list:
        lines = []
        has_updates = any(u[0] != "nop" for u in self.updates)
        if self.k_used and not has_updates:
            # k never changes: every trip touches the same word — the
            # scalar loop is both simpler and exact for that rare shape.
            return None
        if has_updates:
            masks = ", ".join(f"S[{e}]" for e in self.mask_entries)
            masks = f"({masks},)" if masks else "()"
            lines.append(
                f"_kt, _kf = _kseq(k, _t, {tuple(self.updates)!r}, "
                f"{self.slice_mask}, {masks})"
            )
            used = self._index_vars_used()
            for b in range(len(self.updates)):
                if f"_k{b}" in used:
                    lines.append(f"_k{b} = _kt[{b}]")
        indent = ""
        if self.guards:
            cond = " and ".join(
                f"_dst(_k{epoch}, _t)" for epoch in self.guards
            )
            lines.append(f"if {cond}:")
            indent = "    "
        for name in sorted(self.read_vwrs):
            lines.append(f"{indent}_g{name} = _arr({name})")
        for var, expr in self.compute:
            lines.append(f"{indent}{var} = {expr}")
        self._emit_writes(lines, indent)
        self._emit_reg_finals(lines, indent)
        for reg, sym in sorted(self.summary["lcu_sym"].items()):
            if sym[0] == "c":
                lines.append(f"{indent}L[{reg}] = {sym[1]}")
            elif sym[1]:
                lines.append(
                    f"{indent}L[{reg}] = ((L[{reg}] + _t * {sym[1]} "
                    "+ 2147483648) & 4294967295) - 2147483648"
                )
        if has_updates:
            lines.append(f"{indent}col.k = _kf")
        lines.append(f"{indent}_VEC[0] += 1")
        lines.append(f"{indent}return _pc, _t")
        if self.guards:
            # A repeated per-trip index fails the distinctness proof:
            # record the runtime rejection and fall through to the exact
            # scalar loop.
            lines.append("else:")
            lines.append("    _REJ['rmw_index_repeat'] += 1")
        return lines

    #: Scatter helper the emitted multi-site writes call (the lane
    #: variant swaps in its 2D-aware sibling).
    SCATTER = "_scat"

    def _emit_writes(self, lines, indent) -> None:
        for name in sorted(self.writes):
            sites = self.writes[name]
            lines.append(f"{indent}_a{name} = _arr({name})")
            if len(sites) == 1:
                index, var = sites[0]
                lines.append(f"{indent}_a{name}[{index}] = {var}")
            else:
                idx = ", ".join(f"({index})" for index, _ in sites)
                vals = ", ".join(var for _, var in sites)
                lines.append(
                    f"{indent}{self.SCATTER}(_a{name}, ({idx}), "
                    f"({vals}), _t)"
                )
            lines.append(f"{indent}{name}[:] = _a{name}.tolist()")

    def _emit_reg_finals(self, lines, indent) -> None:
        for (kind, cell), var in self.defs.items():
            if kind == "O":
                lines.append(f"{indent}O[{cell}] = _last({var})")
            else:
                lines.append(f"{indent}R{cell}[{0 if kind == 'R0' else 1}] "
                             f"= _last({var})")

    def _index_vars_used(self) -> set:
        used = {f"_k{epoch}" for epoch in self.guards}
        for _, expr in self.compute:
            for b in range(len(self.updates)):
                if f"_k{b}" in expr:
                    used.add(f"_k{b}")
        for sites in self.writes.values():
            for index, _ in sites:
                for b in range(len(self.updates)):
                    if f"_k{b}" in index:
                        used.add(f"_k{b}")
        return used


class _LaneVectorGen(_VectorBodyGen):
    """Lane-broadcast variant: one array operation per *bundle*.

    The Table-1 idiom broadcasts one RC instruction to every cell, so the
    whole RC group is a single ``lanes x trips`` NumPy expression —
    gathers index ``_lofs + k`` (the per-RC slice offsets column against
    the per-trip index row), and the register files are slot-shared
    (every lane holds the same instruction, so R0/R1/O definitions are 2D
    arrays covering all cells at once). Bodies mixing per-cell
    instructions fall back to the per-cell generator. Neighbour reads
    (RCT/RCB) couple lanes and stay scalar.
    """

    def __init__(self, bundles, pcs, params, summary) -> None:
        super().__init__(bundles, pcs, params, summary)
        self.twod = set()

    def _slot_operand(self, operand, b: int):
        """Returns ``(expr, is_2d)`` or ``None`` when not lane-liftable."""
        kind = operand.kind
        if kind is RCSrcKind.ZERO:
            return "0", False
        if kind is RCSrcKind.IMM:
            return repr(int(operand.index)), False
        if kind is RCSrcKind.R0 or kind is RCSrcKind.R1:
            slot = "R0" if kind is RCSrcKind.R0 else "R1"
            var = self.defs.get((slot, None))
            if var is None:
                return None
            return var, var in self.twod
        if kind in (RCSrcKind.RCT, RCSrcKind.RCB):
            return None
        if kind is RCSrcKind.SRF:
            if not 0 <= operand.index < self.n_srf:
                return None
            return f"S[{int(operand.index)}]", False
        name = _VWR_SRC[kind]
        self.read_vwrs.setdefault(name, set()).add(b)
        self.k_used = True
        return f"_g{name}[_lofs + _k{b}]", True

    def _rcs(self, instrs, b: int) -> bool:
        active = [instr for instr in instrs if not instr.is_nop]
        if not active:
            return True
        if len(active) != self.n_rcs:
            return False
        first = active[0]
        if any(instr != first for instr in active[1:]):
            return False
        operands = first.operands()
        a = self._slot_operand(operands[0], b) if operands else ("0", False)
        bexpr = self._slot_operand(operands[1], b) \
            if len(operands) > 1 else ("0", False)
        if a is None or bexpr is None:
            return False
        expr = _vec_alu(first.op, a[0], bexpr[0])
        if expr is None:
            return False
        var = self._temp()
        self.compute.append((var, expr))
        if a[1] or bexpr[1]:
            self.twod.add(var)
        self.defs[("O", None)] = var
        kind = first.dst.kind
        if kind is RCDstKind.R0:
            self.defs[("R0", None)] = var
        elif kind is RCDstKind.R1:
            self.defs[("R1", None)] = var
        elif kind is RCDstKind.SRF:
            return False
        elif kind in _VWR_DST:
            name = _VWR_DST[kind]
            self.write_vwrs.setdefault(name, set()).add(b)
            self.k_used = True
            self.writes.setdefault(name, []).append(
                (f"_lofs + _k{b}", var)
            )
        return True

    SCATTER = "_scat2"

    def _emit_reg_finals(self, lines, indent) -> None:
        for (kind, _), var in self.defs.items():
            for cell in range(self.n_rcs):
                value = f"int({var}[{cell}, -1])" if var in self.twod \
                    else f"int({var})"
                if kind == "O":
                    lines.append(f"{indent}O[{cell}] = {value}")
                else:
                    slot = 0 if kind == "R0" else 1
                    lines.append(f"{indent}R{cell}[{slot}] = {value}")
