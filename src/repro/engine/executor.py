"""Execution engines: the compiled block dispatcher and the reference loop.

Two interchangeable engines drive kernel execution for
:class:`repro.core.cgra.Vwr2a`:

* :class:`ReferenceEngine` — the original cycle-by-cycle interpreter
  (``Column.step`` per column per cycle). It is the golden model.
* :class:`CompiledEngine` — binds each column's
  :class:`~repro.engine.compiler.CompiledProgram` to the column's storage
  and dispatches whole basic blocks (and fused self-loops) per iteration.
  Event counting happens as per-block execution histograms that are folded
  into the shared :class:`~repro.core.events.EventCounters` once at kernel
  end (:meth:`BoundColumn.finish`) — bit-identical to per-cycle logging
  because every bundle's event delta is static (see
  :mod:`repro.engine.deltas`).

Multi-column kernels run under a virtual-time scheduler: the column with
the smallest cycle count advances by one block. Columns therefore
synchronize at block (not cycle) granularity; kernels where columns
communicate through the SPM *inside* a basic block must use the reference
engine (no seed kernel does — columns partition the SPM by construction;
``tests/test_engine_equivalence.py`` checks every kernel).
"""

from __future__ import annotations

from collections import OrderedDict
from functools import partial

from repro.core.alu import _simd16
from repro.core.errors import AddressError, ProgramError
from repro.core.shuffle import shuffle
from repro.engine.compiler import compile_program
from repro.isa.fields import ShuffleMode, Vwr
from repro.isa.rc import RCOp


def _budget_error(name: str, max_cycles: int) -> ProgramError:
    return ProgramError(
        f"kernel {name!r} exceeded {max_cycles} cycles; "
        f"missing EXIT or diverging loop?"
    )


def _past_end_error(column_index: int, pc: int) -> ProgramError:
    return ProgramError(
        f"column {column_index}: PC {pc} ran past the program "
        f"without an EXIT"
    )


def _raise_srf(entry: int, n_entries: int):
    raise AddressError(f"SRF entry {entry} out of range [0, {n_entries})")


class ReferenceEngine:
    """The golden per-cycle interpreter (``Column.step`` in lock-step)."""

    name = "reference"

    def run_kernel(self, vwr2a, name, active, max_cycles) -> int:
        cycles = 0
        while any(not col.done for col in active):
            if cycles >= max_cycles:
                raise _budget_error(name, max_cycles)
            for col in active:
                col.step()
            cycles += 1
        return cycles


class BoundColumn:
    """A compiled program bound to one column's storage.

    Binding executes the generated module once, capturing the column's SRF
    / VWR / SPM backing lists and register files as default arguments of
    the block functions; re-running the same kernel afterwards only resets
    the execution histogram.
    """

    def __init__(self, column, compiled) -> None:
        self.column = column
        self.compiled = compiled
        namespace = self._namespace(column)
        exec(compiled.code, namespace)
        table = {}
        for blk in compiled.blocks:
            table[blk.leader] = (
                namespace[blk.fn_name],
                blk.n_cycles,
                blk.index,
                blk.exit_next,
                blk.is_loop,
            )
        self.table = table
        self.counts = [0] * len(compiled.blocks)
        self.steps = 0
        self.pc = 0

    @staticmethod
    def _namespace(column) -> dict:
        g = {
            "col": column,
            "S": column.srf._data,
            "M": column.spm._data,
            "VA": column.vwrs[Vwr.A]._data,
            "VB": column.vwrs[Vwr.B]._data,
            "VC": column.vwrs[Vwr.C]._data,
            "O": column.rc_out,
            "L": column.lcu_regs,
            "AddressError": AddressError,
            "_raise_srf": _raise_srf,
            "_s16a": partial(_simd16, RCOp.SADD16),
            "_s16s": partial(_simd16, RCOp.SSUB16),
            "_s16m": partial(_simd16, RCOp.FXPMUL16),
        }
        for i, regs in enumerate(column.rc_regs):
            g[f"R{i}"] = regs
        slice_words = column.params.slice_words
        for mode in ShuffleMode:
            g[f"_shuf{int(mode)}"] = partial(
                _mode_shuffle, mode, slice_words
            )
        return g

    def begin(self) -> None:
        self.counts = [0] * len(self.compiled.blocks)
        self.steps = 0
        self.pc = 0

    def run_to_exit(self, kernel_name: str, max_cycles: int) -> int:
        """Single-column fast path: dispatch blocks until EXIT."""
        table = self.table
        counts = self.counts
        steps = 0
        pc = 0
        try:
            while True:
                entry = table.get(pc)
                if entry is None:
                    raise _past_end_error(self.column.index, pc)
                fn, n_cycles, index, exit_next, is_loop = entry
                if is_loop:
                    limit = (max_cycles - steps) // n_cycles
                    if limit <= 0:
                        raise _budget_error(kernel_name, max_cycles)
                    pc, trips = fn(limit)
                    counts[index] += trips
                    steps += trips * n_cycles
                else:
                    if steps + n_cycles > max_cycles:
                        raise _budget_error(kernel_name, max_cycles)
                    counts[index] += 1
                    steps += n_cycles
                    pc = fn()
                    if pc < 0:
                        pc = exit_next
                        break
        finally:
            # Persist progress even when aborting (budget / address
            # errors), so the error-path event fold sees it.
            self.steps = steps
            self.pc = pc
        return steps

    def advance(self, kernel_name: str, max_cycles: int,
                horizon: int = None) -> bool:
        """Execute one block (or fused loop run); False once EXITed.

        ``horizon`` (multi-column scheduling) caps a fused self-loop so
        this column stops as soon as its virtual time passes the other
        running columns' — preserving block-granularity alignment.
        """
        entry = self.table.get(self.pc)
        if entry is None:
            raise _past_end_error(self.column.index, self.pc)
        fn, n_cycles, index, exit_next, is_loop = entry
        if is_loop:
            limit = (max_cycles - self.steps) // n_cycles
            if limit <= 0:
                raise _budget_error(kernel_name, max_cycles)
            if horizon is not None:
                limit = min(
                    limit, max(1, (horizon - self.steps) // n_cycles + 1)
                )
            self.pc, trips = fn(limit)
            self.counts[index] += trips
            self.steps += trips * n_cycles
            return True
        if self.steps + n_cycles > max_cycles:
            raise _budget_error(kernel_name, max_cycles)
        self.counts[index] += 1
        self.steps += n_cycles
        pc = fn()
        if pc < 0:
            self.pc = exit_next
            return False
        self.pc = pc
        return True

    def flush(self, events) -> None:
        """Fold the execution histogram into the shared event tally and
        sync the column's architectural bookkeeping (also on aborts)."""
        totals = {}
        counts = self.counts
        for blk in self.compiled.blocks:
            count = counts[blk.index]
            if not count:
                continue
            for name, n in blk.delta:
                totals[name] = totals.get(name, 0) + n * count
        events.add_many(totals)
        self.column.steps = self.steps
        self.column.pc = self.pc

    def finish(self, events) -> None:
        """Successful-completion fold: flush, then mark the column done."""
        self.flush(events)
        self.column.done = True

    def pc_histogram(self) -> list:
        """Per-PC executed-bundle counts (diagnostics / tests)."""
        histogram = [0] * self.compiled.n_bundles
        for blk in self.compiled.blocks:
            count = self.counts[blk.index]
            if count:
                for pc in range(blk.leader, blk.leader + blk.n_cycles):
                    histogram[pc] += count
        return histogram


def _mode_shuffle(mode, slice_words, a, b):
    return shuffle(a, b, mode, slice_words=slice_words)


class CompiledEngine:
    """Compile-once / execute-many engine (the fast path)."""

    name = "compiled"

    #: Bound programs kept per column (identity-keyed, FIFO-evicted).
    CACHE_CAP = 128

    def __init__(self) -> None:
        self._bound = {}

    def _bind(self, column) -> BoundColumn:
        compiled = compile_program(column.program, column.params)
        per_column = self._bound.setdefault(column.index, OrderedDict())
        entry = per_column.get(id(compiled))
        if entry is not None and entry[0] is compiled:
            per_column.move_to_end(id(compiled))
            return entry[1]
        bound = BoundColumn(column, compiled)
        per_column[id(compiled)] = (compiled, bound)
        if len(per_column) > self.CACHE_CAP:
            per_column.popitem(last=False)
        return bound

    def run_kernel(self, vwr2a, name, active, max_cycles) -> int:
        bounds = [self._bind(col) for col in active]
        for bound in bounds:
            bound.begin()
        try:
            if len(bounds) == 1:
                cycles = bounds[0].run_to_exit(name, max_cycles)
            else:
                cycles = self._interleave(bounds, name, max_cycles)
        except BaseException:
            # Aborted kernels (budget overruns, address faults) still
            # account the blocks they executed, like the interpreter's
            # per-cycle logging would have (at block granularity).
            for bound in bounds:
                bound.flush(vwr2a.events)
            raise
        for bound in bounds:
            bound.finish(vwr2a.events)
        return cycles

    @staticmethod
    def _interleave(bounds, name, max_cycles) -> int:
        """Virtual-time scheduling: the column with the smallest cycle
        count advances by one block, so columns stay aligned to within a
        basic block of each other (the reference interleaves per cycle).
        Fused self-loops are capped at the next column's virtual time so
        a loop cannot race ahead of the other running columns; once only
        one column is still running it executes unthrottled (done columns
        no longer step in the reference either)."""
        running = list(bounds)
        while running:
            best = running[0]
            horizon = None
            for bound in running[1:]:
                if bound.steps < best.steps:
                    best, horizon = bound, best.steps
                elif horizon is None or bound.steps < horizon:
                    horizon = bound.steps
            if not best.advance(name, max_cycles, horizon):
                running.remove(best)
        return max(bound.steps for bound in bounds)
