"""Execution engines: the compiled block dispatcher and the reference loop.

Two interchangeable engines drive kernel execution for
:class:`repro.core.cgra.Vwr2a`:

* :class:`ReferenceEngine` — the original cycle-by-cycle interpreter
  (``Column.step`` per column per cycle). It is the golden model.
* :class:`CompiledEngine` — binds each column's
  :class:`~repro.engine.compiler.CompiledProgram` to the column's storage
  and dispatches whole basic blocks (and fused self-loops) per iteration.
  Event counting happens as per-block execution histograms that are folded
  into the shared :class:`~repro.core.events.EventCounters` once at kernel
  end (:meth:`BoundColumn.finish`) — bit-identical to per-cycle logging
  because every bundle's event delta is static (see
  :mod:`repro.engine.deltas`).

Multi-column kernels run under a virtual-time scheduler: the column with
the smallest cycle count advances by one block. Columns therefore
synchronize at block (not cycle) granularity; the static cross-column SPM
analysis (:mod:`repro.engine.conflicts`) proves per launch that no column
writes addresses another column touches, so the relaxed ordering is
unobservable. Kernels that *do* communicate through the SPM mid-kernel
raise :class:`~repro.core.errors.SpmConflictError` on the forced compiled
engine, and are routed to the reference interpreter automatically by
:class:`AutoEngine` (``engine="auto"``, the default).

Aborted launches (``AddressError`` / ``ProgramError``) are rewound to the
pre-launch snapshot and replayed cycle-by-cycle on the reference
interpreter, so events and column state after a fault are bit-identical to
per-cycle execution — not just block-aligned.
"""

from __future__ import annotations

from collections import Counter, OrderedDict, namedtuple
from functools import partial

from repro.core.alu import _simd16
from repro.core.errors import AddressError, ProgramError, SpmConflictError
from repro.core.shuffle import shuffle
from repro.engine.compiler import compile_program
from repro.engine.conflicts import EMPTY_REPORT, analyze_active
from repro.isa.fields import ShuffleMode, Vwr
from repro.isa.rc import RCOp

#: Per-launch engine decision, surfaced on ``RunResult`` by ``Vwr2a.run``.
RunInfo = namedtuple("RunInfo", ["engine", "fallback_reason", "conflicts"])


def _budget_error(name: str, max_cycles: int) -> ProgramError:
    return ProgramError(
        f"kernel {name!r} exceeded {max_cycles} cycles; "
        f"missing EXIT or diverging loop?"
    )


def _past_end_error(column_index: int, pc: int) -> ProgramError:
    return ProgramError(
        f"column {column_index}: PC {pc} ran past the program "
        f"without an EXIT"
    )


def _raise_srf(entry: int, n_entries: int):
    raise AddressError(f"SRF entry {entry} out of range [0, {n_entries})")


class ReferenceEngine:
    """The golden per-cycle interpreter (``Column.step`` in lock-step)."""

    name = "reference"

    def __init__(self) -> None:
        self.last_run_info = RunInfo("reference", None, ())
        #: Lifetime launch tally by executing engine (``Vwr2a.engine_decisions``).
        self.decisions = Counter()

    def run_kernel(self, vwr2a, name, active, max_cycles) -> int:
        self.last_run_info = RunInfo("reference", None, ())
        self.decisions["reference"] += 1
        cycles = 0
        while any(not col.done for col in active):
            if cycles >= max_cycles:
                raise _budget_error(name, max_cycles)
            for col in active:
                col.step()
            cycles += 1
        return cycles


class BoundColumn:
    """A compiled program bound to one column's storage.

    Binding executes the generated module once, capturing the column's SRF
    / VWR / SPM backing lists and register files as default arguments of
    the block functions; re-running the same kernel afterwards only resets
    the execution histogram.
    """

    def __init__(self, column, compiled) -> None:
        self.column = column
        self.compiled = compiled
        namespace = self._namespace(column)
        exec(compiled.code, namespace)
        table = {}
        for blk in compiled.blocks:
            table[blk.leader] = (
                namespace[blk.fn_name],
                blk.n_cycles,
                blk.index,
                blk.exit_next,
                blk.is_loop,
            )
        self.table = table
        self.counts = [0] * len(compiled.blocks)
        self.steps = 0
        self.pc = 0

    @staticmethod
    def _namespace(column) -> dict:
        g = {
            "col": column,
            "S": column.srf._data,
            "M": column.spm._data,
            "VA": column.vwrs[Vwr.A]._data,
            "VB": column.vwrs[Vwr.B]._data,
            "VC": column.vwrs[Vwr.C]._data,
            "O": column.rc_out,
            "L": column.lcu_regs,
            "AddressError": AddressError,
            "_raise_srf": _raise_srf,
            "_s16a": partial(_simd16, RCOp.SADD16),
            "_s16s": partial(_simd16, RCOp.SSUB16),
            "_s16m": partial(_simd16, RCOp.FXPMUL16),
        }
        for i, regs in enumerate(column.rc_regs):
            g[f"R{i}"] = regs
        slice_words = column.params.slice_words
        for mode in ShuffleMode:
            g[f"_shuf{int(mode)}"] = partial(
                _mode_shuffle, mode, slice_words
            )
        return g

    def begin(self) -> None:
        self.counts = [0] * len(self.compiled.blocks)
        self.steps = 0
        self.pc = 0

    def run_to_exit(self, kernel_name: str, max_cycles: int) -> int:
        """Single-column fast path: dispatch blocks until EXIT."""
        table = self.table
        counts = self.counts
        steps = 0
        pc = 0
        try:
            while True:
                entry = table.get(pc)
                if entry is None:
                    raise _past_end_error(self.column.index, pc)
                fn, n_cycles, index, exit_next, is_loop = entry
                if is_loop:
                    limit = (max_cycles - steps) // n_cycles
                    if limit <= 0:
                        raise _budget_error(kernel_name, max_cycles)
                    pc, trips = fn(limit)
                    counts[index] += trips
                    steps += trips * n_cycles
                else:
                    if steps + n_cycles > max_cycles:
                        raise _budget_error(kernel_name, max_cycles)
                    counts[index] += 1
                    steps += n_cycles
                    pc = fn()
                    if pc < 0:
                        pc = exit_next
                        break
        finally:
            # Persist progress even when aborting (budget / address
            # errors), so the error-path event fold sees it.
            self.steps = steps
            self.pc = pc
        return steps

    def advance(self, kernel_name: str, max_cycles: int,
                horizon: int = None) -> bool:
        """Execute one block (or fused loop run); False once EXITed.

        ``horizon`` (multi-column scheduling) caps a fused self-loop so
        this column stops as soon as its virtual time passes the other
        running columns' — preserving block-granularity alignment.
        """
        entry = self.table.get(self.pc)
        if entry is None:
            raise _past_end_error(self.column.index, self.pc)
        fn, n_cycles, index, exit_next, is_loop = entry
        if is_loop:
            limit = (max_cycles - self.steps) // n_cycles
            if limit <= 0:
                raise _budget_error(kernel_name, max_cycles)
            if horizon is not None:
                limit = min(
                    limit, max(1, (horizon - self.steps) // n_cycles + 1)
                )
            self.pc, trips = fn(limit)
            self.counts[index] += trips
            self.steps += trips * n_cycles
            return True
        if self.steps + n_cycles > max_cycles:
            raise _budget_error(kernel_name, max_cycles)
        self.counts[index] += 1
        self.steps += n_cycles
        pc = fn()
        if pc < 0:
            self.pc = exit_next
            return False
        self.pc = pc
        return True

    def flush(self, events) -> None:
        """Fold the execution histogram into the shared event tally and
        sync the column's architectural bookkeeping (also on aborts)."""
        totals = {}
        counts = self.counts
        for blk in self.compiled.blocks:
            count = counts[blk.index]
            if not count:
                continue
            for name, n in blk.delta:
                totals[name] = totals.get(name, 0) + n * count
        events.add_many(totals)
        self.column.steps = self.steps
        self.column.pc = self.pc

    def finish(self, events) -> None:
        """Successful-completion fold: flush, then mark the column done."""
        self.flush(events)
        self.column.done = True

    def pc_histogram(self) -> list:
        """Per-PC executed-bundle counts (diagnostics / tests)."""
        histogram = [0] * self.compiled.n_bundles
        for blk in self.compiled.blocks:
            count = self.counts[blk.index]
            if count:
                for pc in range(blk.leader, blk.leader + blk.n_cycles):
                    histogram[pc] += count
        return histogram


def _mode_shuffle(mode, slice_words, a, b):
    return shuffle(a, b, mode, slice_words=slice_words)


def _snapshot_launch(vwr2a, active) -> tuple:
    """Pre-launch state of the SPM and the active columns (no events)."""
    return (
        vwr2a.spm.snapshot(),
        [(col, col.state_snapshot()) for col in active],
    )


def _restore_launch(vwr2a, snapshot) -> None:
    spm_state, column_states = snapshot
    vwr2a.spm.restore(spm_state)
    for col, state in column_states:
        col.state_restore(state)


class CompiledEngine:
    """Compile-once / execute-many engine (the fast path).

    Multi-column kernels are admitted only when the static SPM analysis
    proves their footprints disjoint; conflicting kernels raise
    :class:`SpmConflictError` (use ``engine="auto"`` for automatic
    fallback). Aborted launches replay on the reference interpreter from
    the pre-launch snapshot, so fault-path events and state are exact.
    """

    name = "compiled"

    #: Bound programs kept per column (identity-keyed, FIFO-evicted).
    CACHE_CAP = 128

    def __init__(self) -> None:
        self._bound = {}
        self.last_run_info = RunInfo("compiled", None, ())
        #: Lifetime launch tally by executing engine (``Vwr2a.engine_decisions``).
        self.decisions = Counter()

    def _bind(self, column) -> BoundColumn:
        compiled = compile_program(column.program, column.params)
        per_column = self._bound.setdefault(column.index, OrderedDict())
        entry = per_column.get(id(compiled))
        if entry is not None and entry[0] is compiled:
            per_column.move_to_end(id(compiled))
            return entry[1]
        bound = BoundColumn(column, compiled)
        per_column[id(compiled)] = (compiled, bound)
        if len(per_column) > self.CACHE_CAP:
            per_column.popitem(last=False)
        return bound

    def run_kernel(self, vwr2a, name, active, max_cycles,
                   report=None) -> int:
        # ``report`` lets AutoEngine hand down its already-verified
        # analysis instead of re-hashing the memo key per launch.
        if report is None:
            report = analyze_active(active, vwr2a.params) \
                if len(active) > 1 else EMPTY_REPORT
        if report.conflicts:
            raise SpmConflictError(name, report.conflicts)
        self.last_run_info = RunInfo("compiled", None, ())
        self.decisions["compiled"] += 1
        snapshot = _snapshot_launch(vwr2a, active)
        bounds = [self._bind(col) for col in active]
        for bound in bounds:
            bound.begin()
        try:
            if len(bounds) == 1:
                cycles = bounds[0].run_to_exit(name, max_cycles)
            else:
                cycles = self._interleave(bounds, name, max_cycles)
        except (AddressError, ProgramError) as fault:
            # Aborted kernel: rewind to the pre-launch state and replay on
            # the per-cycle interpreter. Conflict-free kernels execute
            # deterministically, so the replay reaches the same fault —
            # with events and column state accounted cycle by cycle,
            # including the final partial bundle, exactly like the
            # reference (docs/engine.md).
            _restore_launch(vwr2a, snapshot)
            ReferenceEngine().run_kernel(vwr2a, name, active, max_cycles)
            # A completed replay means the two engines disagree on whether
            # the kernel faults at all — an engine bug, never silently
            # reported as the stale compiled-path exception.
            raise ProgramError(
                f"engine divergence on kernel {name!r}: the compiled "
                f"engine aborted ({fault}) but the reference replay "
                f"completed; please report"
            ) from fault
        except BaseException:
            # Non-simulation aborts (e.g. KeyboardInterrupt) still account
            # the blocks executed so far, at block granularity.
            for bound in bounds:
                bound.flush(vwr2a.events)
            raise
        for bound in bounds:
            bound.finish(vwr2a.events)
        return cycles

    @staticmethod
    def _interleave(bounds, name, max_cycles) -> int:
        """Virtual-time scheduling: the column with the smallest cycle
        count advances by one block, so columns stay aligned to within a
        basic block of each other (the reference interleaves per cycle).
        Fused self-loops are capped at the next column's virtual time so
        a loop cannot race ahead of the other running columns; once only
        one column is still running it executes unthrottled (done columns
        no longer step in the reference either)."""
        running = list(bounds)
        while running:
            best = running[0]
            horizon = None
            for bound in running[1:]:
                if bound.steps < best.steps:
                    best, horizon = bound, best.steps
                elif horizon is None or bound.steps < horizon:
                    horizon = bound.steps
            if not best.advance(name, max_cycles, horizon):
                running.remove(best)
        return max(bound.steps for bound in bounds)


class AutoEngine:
    """Conflict-aware engine selection (the default).

    Runs the compile-time cross-column SPM analysis per launch (memoized
    structurally, so regenerated kernels pay a dictionary hit): kernels
    proven conflict-free execute on the compiled fast path; kernels whose
    columns communicate through the SPM mid-kernel fall back to the
    reference interpreter, bit-identically to ``engine="reference"``. The
    decision is surfaced on ``RunResult.engine`` /
    ``RunResult.fallback_reason`` / ``RunResult.spm_conflicts``.
    """

    name = "auto"

    def __init__(self) -> None:
        self.compiled = CompiledEngine()
        self.reference = ReferenceEngine()
        self.last_run_info = RunInfo("compiled", None, ())

    @property
    def decisions(self) -> Counter:
        """Lifetime launch tally by the engine that actually executed.

        Derived from the sub-engines' own counters (they tick on every
        launch routed to them, including launches that later abort), so
        there is exactly one tally to keep consistent —
        ``Vwr2a.engine_decisions`` exposes it.
        """
        return self.compiled.decisions + self.reference.decisions

    def run_kernel(self, vwr2a, name, active, max_cycles) -> int:
        report = analyze_active(active, vwr2a.params) \
            if len(active) > 1 else EMPTY_REPORT
        if report.conflicts:
            self.last_run_info = RunInfo(
                "reference", report.reason(), report.conflicts
            )
            return self.reference.run_kernel(
                vwr2a, name, active, max_cycles
            )
        cycles = self.compiled.run_kernel(
            vwr2a, name, active, max_cycles, report=report
        )
        self.last_run_info = self.compiled.last_run_info
        return cycles
