"""Execution engines: the compiled block dispatcher and the reference loop.

Two interchangeable engines drive kernel execution for
:class:`repro.core.cgra.Vwr2a`:

* :class:`ReferenceEngine` — the original cycle-by-cycle interpreter
  (``Column.step`` per column per cycle). It is the golden model.
* :class:`CompiledEngine` — binds each column's
  :class:`~repro.engine.compiler.CompiledProgram` to the column's storage
  and dispatches whole superblocks (fused straight-line chains and
  self-loops; closed-form loops complete a full run — possibly as a NumPy
  steady state — in one dispatch, see :mod:`repro.engine.superblocks`).
  Event counting happens as per-superblock execution histograms folded
  into the shared :class:`~repro.core.events.EventCounters` once at kernel
  end (:meth:`BoundColumn.finish`, one mat-vec over the program's static
  event matrix) — bit-identical to per-cycle logging because every
  bundle's event delta is static (see :mod:`repro.engine.deltas`).

Multi-column kernels run under a virtual-time scheduler: the column with
the smallest cycle count advances superblocks until its virtual time
passes the smallest of the other running columns'. Columns therefore
synchronize at superblock (not cycle) granularity; the static
cross-column SPM analysis (:mod:`repro.engine.conflicts`) proves per
launch that no column writes addresses another column touches, so the
relaxed ordering is unobservable. Kernels that *do* communicate through
the SPM mid-kernel raise :class:`~repro.core.errors.SpmConflictError` on
the forced compiled engine, and are routed to the reference interpreter
automatically by :class:`AutoEngine` (``engine="auto"``, the default).

Aborted launches (``AddressError`` / ``ProgramError``) are rewound to the
pre-launch snapshot and replayed cycle-by-cycle on the reference
interpreter, so events and column state after a fault are bit-identical to
per-cycle execution — not just block-aligned.
"""

from __future__ import annotations

from collections import Counter, OrderedDict, namedtuple
from functools import partial

from repro.core.alu import _simd16
from repro.core.errors import AddressError, ProgramError, SpmConflictError
from repro.core.shuffle import shuffle
from repro.engine.compiler import compile_program
from repro.engine.conflicts import EMPTY_REPORT, analyze_active
from repro.engine.superblocks import _np, lane_offsets, vector_namespace
from repro.isa.fields import ShuffleMode, Vwr
from repro.isa.rc import RCOp

#: Per-launch engine decision plus superblock accounting, surfaced on
#: ``RunResult`` by ``Vwr2a.run``. ``superblocks`` is the accelerated-loop
#: counter dict (None on the reference path); ``histogram`` the per-block
#: execution histogram ``((column, leader, count, delta), ...)``.
RunInfo = namedtuple(
    "RunInfo",
    ["engine", "fallback_reason", "conflicts", "superblocks", "histogram"],
    defaults=(None, ()),
)


def _budget_error(name: str, max_cycles: int) -> ProgramError:
    return ProgramError(
        f"kernel {name!r} exceeded {max_cycles} cycles; "
        "missing EXIT or diverging loop?"
    )


def _past_end_error(column_index: int, pc: int) -> ProgramError:
    return ProgramError(
        f"column {column_index}: PC {pc} ran past the program "
        "without an EXIT"
    )


def _raise_srf(entry: int, n_entries: int):
    raise AddressError(f"SRF entry {entry} out of range [0, {n_entries})")


class ReferenceEngine:
    """The golden per-cycle interpreter (``Column.step`` in lock-step)."""

    name = "reference"

    def __init__(self) -> None:
        self.last_run_info = RunInfo("reference", None, ())
        #: Lifetime launch tally by executing engine (``Vwr2a.engine_decisions``).
        self.decisions = Counter()

    def run_kernel(self, vwr2a, name, active, max_cycles,
                   report=None) -> int:
        # ``report`` (the pre-verified conflict analysis) is accepted for
        # interface uniformity; the per-cycle interpreter never needs it.
        self.last_run_info = RunInfo("reference", None, ())
        self.decisions["reference"] += 1
        cycles = 0
        while any(not col.done for col in active):
            if cycles >= max_cycles:
                raise _budget_error(name, max_cycles)
            for col in active:
                col.step()
            cycles += 1
        return cycles


class BoundColumn:
    """A compiled program bound to one column's storage.

    Binding executes the generated module once, capturing the column's SRF
    / VWR / SPM backing lists and register files as default arguments of
    the block functions; re-running the same kernel afterwards only resets
    the execution histogram.
    """

    def __init__(self, column, compiled) -> None:
        self.column = column
        self.compiled = compiled
        self.vec_counter = [0]
        #: Per-loop-entry tally of why the NumPy steady state was not
        #: taken: static reasons stamped at compile time plus the runtime
        #: guards (trip window, counter wrap, RMW index repeats).
        self.rejections = Counter()
        namespace = self._namespace(column)
        namespace["_VEC"] = self.vec_counter
        namespace["_REJ"] = self.rejections
        exec(compiled.code, namespace)
        table = {}
        for blk in compiled.blocks:
            table[blk.leader] = (
                namespace[blk.fn_name],
                blk.n_cycles,
                blk.index,
                blk.exit_next,
                blk.is_loop,
                blk.closed_form,
            )
        self.table = table
        self.counts = [0] * len(compiled.blocks)
        self.steps = 0
        self.pc = 0
        self.loops_accelerated = 0
        self.trips_accelerated = 0
        # Execution histograms of deterministic kernels repeat launch
        # after launch: the event fold and the per-block histogram rows
        # are memoized on the count vector (bounded; cleared wholesale).
        self._fold_memo = {}
        self._hist_memo = {}

    @staticmethod
    def _namespace(column) -> dict:
        g = {
            "col": column,
            "S": column.srf._data,
            "M": column.spm._data,
            "VA": column.vwrs[Vwr.A]._data,
            "VB": column.vwrs[Vwr.B]._data,
            "VC": column.vwrs[Vwr.C]._data,
            "O": column.rc_out,
            "L": column.lcu_regs,
            "AddressError": AddressError,
            "_raise_srf": _raise_srf,
            "_s16a": partial(_simd16, RCOp.SADD16),
            "_s16s": partial(_simd16, RCOp.SSUB16),
            "_s16m": partial(_simd16, RCOp.FXPMUL16),
        }
        for i, regs in enumerate(column.rc_regs):
            g[f"R{i}"] = regs
        slice_words = column.params.slice_words
        for mode in ShuffleMode:
            g[f"_shuf{int(mode)}"] = partial(
                _mode_shuffle, mode, slice_words
            )
        g.update(vector_namespace())
        g["_lofs"] = lane_offsets(column.params)
        return g

    def begin(self) -> None:
        self.counts = [0] * len(self.compiled.blocks)
        self.steps = 0
        self.pc = 0
        self.loops_accelerated = 0
        self.trips_accelerated = 0
        self.vec_counter[0] = 0
        self.rejections.clear()

    def run_to_exit(self, kernel_name: str, max_cycles: int) -> int:
        """Single-column fast path: dispatch superblocks until EXIT."""
        table = self.table
        counts = self.counts
        steps = 0
        pc = 0
        try:
            while True:
                entry = table.get(pc)
                if entry is None:
                    raise _past_end_error(self.column.index, pc)
                fn, n_cycles, index, exit_next, is_loop, closed = entry
                if is_loop:
                    limit = (max_cycles - steps) // n_cycles
                    if limit <= 0:
                        raise _budget_error(kernel_name, max_cycles)
                    pc, trips = fn(limit)
                    counts[index] += trips
                    steps += trips * n_cycles
                    if closed:
                        self.loops_accelerated += 1
                        self.trips_accelerated += trips
                else:
                    if steps + n_cycles > max_cycles:
                        raise _budget_error(kernel_name, max_cycles)
                    counts[index] += 1
                    steps += n_cycles
                    pc = fn()
                    if pc < 0:
                        pc = exit_next
                        break
        finally:
            # Persist progress even when aborting (budget / address
            # errors), so the error-path event fold sees it.
            self.steps = steps
            self.pc = pc
        return steps

    def run_until(self, kernel_name: str, max_cycles: int,
                  horizon: int = None) -> bool:
        """Advance whole superblocks until the horizon; False once EXITed.

        ``horizon`` (multi-column scheduling) is the smallest virtual
        time of the *other* running columns: this column executes
        superblock after superblock and hands control back as soon as its
        own virtual time passes it (``None`` runs unthrottled to EXIT).
        Fused self-loops without a closed-form plan are additionally
        capped so one loop run stops just past the horizon; loops **with**
        a closed-form plan complete in a single advance however far ahead
        that lands them — their trip count is proven to depend only on
        column-private state, and the launch was admitted conflict-free,
        so the other columns cannot observe the difference.
        """
        table = self.table
        counts = self.counts
        steps = self.steps
        pc = self.pc
        try:
            while True:
                entry = table.get(pc)
                if entry is None:
                    raise _past_end_error(self.column.index, pc)
                fn, n_cycles, index, exit_next, is_loop, closed = entry
                if is_loop:
                    limit = (max_cycles - steps) // n_cycles
                    if limit <= 0:
                        raise _budget_error(kernel_name, max_cycles)
                    if horizon is not None and not closed:
                        limit = min(
                            limit, max(1, (horizon - steps) // n_cycles + 1)
                        )
                    pc, trips = fn(limit)
                    counts[index] += trips
                    steps += trips * n_cycles
                    if closed:
                        self.loops_accelerated += 1
                        self.trips_accelerated += trips
                else:
                    if steps + n_cycles > max_cycles:
                        raise _budget_error(kernel_name, max_cycles)
                    counts[index] += 1
                    steps += n_cycles
                    pc = fn()
                    if pc < 0:
                        pc = exit_next
                        return False
                if horizon is not None and steps > horizon:
                    return True
        finally:
            # Persist progress even when aborting (budget / address
            # errors), so the error-path event fold sees it.
            self.steps = steps
            self.pc = pc

    def flush(self, events) -> None:
        """Fold the execution histogram into the shared event tally and
        sync the column's architectural bookkeeping (also on aborts).

        One integer mat-vec over the per-superblock static event matrix
        (:func:`repro.engine.deltas.delta_matrix`) when NumPy is present;
        the dictionary walk otherwise — identical totals either way.
        """
        compiled = self.compiled
        key = tuple(self.counts)
        totals = self._fold_memo.get(key)
        if totals is None:
            if _np is not None:
                folded = _np.asarray(key, dtype=_np.int64) \
                    @ compiled.event_matrix
                totals = {
                    name: int(total)
                    for name, total in zip(compiled.event_names, folded)
                    if total
                }
            else:
                totals = {}
                for blk in compiled.blocks:
                    count = key[blk.index]
                    if not count:
                        continue
                    for name, n in blk.delta:
                        totals[name] = totals.get(name, 0) + n * count
            if len(self._fold_memo) > 64:
                self._fold_memo.clear()
            self._fold_memo[key] = totals
        events.add_many(totals)
        self.column.steps = self.steps
        self.column.pc = self.pc

    def finish(self, events) -> None:
        """Successful-completion fold: flush, then mark the column done."""
        self.flush(events)
        self.column.done = True

    def pc_histogram(self) -> list:
        """Per-PC executed-bundle counts (diagnostics / tests)."""
        histogram = [0] * self.compiled.n_bundles
        for blk in self.compiled.blocks:
            count = self.counts[blk.index]
            if count:
                for leader, n_cycles, _ in blk.members:
                    for pc in range(leader, leader + n_cycles):
                        histogram[pc] += count
        return histogram

    def block_histogram(self) -> tuple:
        """Executed basic blocks as ``(column, leader, count, delta)`` rows.

        Superblocks expand to their member blocks (each member executes
        exactly once per superblock execution), so the rows stay at
        basic-block granularity — the unit the histogram-native energy
        fold (:meth:`repro.energy.EnergyModel.fold_histogram`) attributes
        pJ to.
        """
        key = tuple(self.counts)
        rows = self._hist_memo.get(key)
        if rows is None:
            column = self.column.index
            rows = []
            for blk in self.compiled.blocks:
                count = key[blk.index]
                if count:
                    for leader, _, delta in blk.members:
                        rows.append((column, leader, count, delta))
            rows = tuple(rows)
            if len(self._hist_memo) > 64:
                self._hist_memo.clear()
            self._hist_memo[key] = rows
        return rows

    def superblock_stats(self) -> dict:
        """Closed-form loop accounting of the last run.

        ``vector_rejections`` maps rejection reason -> loop entries that
        stayed off the NumPy steady state for it: static reasons
        (``non_concrete_trip``, ``lsu_in_body``, ``cross_trip_recurrence``,
        ``inadmissible_rmw``, ...) count per entry of their loop, runtime
        reasons (``trip_below_floor``, ``trip_above_ceiling``,
        ``counter_wrap``, ``rmw_index_repeat``) count per entry that
        failed the corresponding guard.
        """
        return {
            "accelerated_loops": self.loops_accelerated,
            "accelerated_trips": self.trips_accelerated,
            "vectorized_loops": self.vec_counter[0],
            "vector_rejections": dict(self.rejections),
        }


def _mode_shuffle(mode, slice_words, a, b):
    return shuffle(a, b, mode, slice_words=slice_words)


def _snapshot_launch(vwr2a, active) -> tuple:
    """Pre-launch state of the SPM and the active columns (no events)."""
    return (
        vwr2a.spm.snapshot(),
        [(col, col.state_snapshot()) for col in active],
    )


def _restore_launch(vwr2a, snapshot) -> None:
    spm_state, column_states = snapshot
    vwr2a.spm.restore(spm_state)
    for col, state in column_states:
        col.state_restore(state)


class CompiledEngine:
    """Compile-once / execute-many engine (the fast path).

    Multi-column kernels are admitted only when the static SPM analysis
    proves their footprints disjoint; conflicting kernels raise
    :class:`SpmConflictError` (use ``engine="auto"`` for automatic
    fallback). Aborted launches replay on the reference interpreter from
    the pre-launch snapshot, so fault-path events and state are exact.
    """

    name = "compiled"

    #: Bound programs kept per column (identity-keyed, FIFO-evicted).
    CACHE_CAP = 128

    def __init__(self) -> None:
        self._bound = {}
        self.last_run_info = RunInfo("compiled", None, ())
        #: Lifetime launch tally by executing engine (``Vwr2a.engine_decisions``).
        self.decisions = Counter()

    def _bind(self, column) -> BoundColumn:
        compiled = compile_program(column.program, column.params)
        per_column = self._bound.setdefault(column.index, OrderedDict())
        entry = per_column.get(id(compiled))
        if entry is not None and entry[0] is compiled:
            per_column.move_to_end(id(compiled))
            return entry[1]
        bound = BoundColumn(column, compiled)
        per_column[id(compiled)] = (compiled, bound)
        if len(per_column) > self.CACHE_CAP:
            per_column.popitem(last=False)
        return bound

    def run_kernel(self, vwr2a, name, active, max_cycles,
                   report=None) -> int:
        # ``report`` lets AutoEngine hand down its already-verified
        # analysis instead of re-hashing the memo key per launch.
        if report is None:
            report = analyze_active(active, vwr2a.params) \
                if len(active) > 1 else EMPTY_REPORT
        if report.conflicts:
            raise SpmConflictError(name, report.conflicts)
        self.last_run_info = RunInfo("compiled", None, ())
        self.decisions["compiled"] += 1
        snapshot = _snapshot_launch(vwr2a, active)
        bounds = [self._bind(col) for col in active]
        for bound in bounds:
            bound.begin()
        try:
            if len(bounds) == 1:
                cycles = bounds[0].run_to_exit(name, max_cycles)
            else:
                cycles = self._interleave(bounds, name, max_cycles)
        except (AddressError, ProgramError) as fault:
            # Aborted kernel: rewind to the pre-launch state and replay on
            # the per-cycle interpreter. Conflict-free kernels execute
            # deterministically, so the replay reaches the same fault —
            # with events and column state accounted cycle by cycle,
            # including the final partial bundle, exactly like the
            # reference (docs/engine.md).
            _restore_launch(vwr2a, snapshot)
            ReferenceEngine().run_kernel(vwr2a, name, active, max_cycles)
            # A completed replay means the two engines disagree on whether
            # the kernel faults at all — an engine bug, never silently
            # reported as the stale compiled-path exception.
            raise ProgramError(
                f"engine divergence on kernel {name!r}: the compiled "
                f"engine aborted ({fault}) but the reference replay "
                "completed; please report"
            ) from fault
        except BaseException:
            # Non-simulation aborts (e.g. KeyboardInterrupt) still account
            # the blocks executed so far, at block granularity.
            for bound in bounds:
                bound.flush(vwr2a.events)
            raise
        superblocks = {
            "accelerated_loops": 0,
            "accelerated_trips": 0,
            "vectorized_loops": 0,
            "vector_rejections": {},
        }
        histogram = []
        rejections = superblocks["vector_rejections"]
        for bound in bounds:
            bound.finish(vwr2a.events)
            for stat, value in bound.superblock_stats().items():
                if stat == "vector_rejections":
                    for reason, count in value.items():
                        rejections[reason] = \
                            rejections.get(reason, 0) + count
                else:
                    superblocks[stat] += value
            histogram.extend(bound.block_histogram())
        self.last_run_info = RunInfo(
            "compiled", None, (), superblocks, tuple(histogram)
        )
        return cycles

    @staticmethod
    def _interleave(bounds, name, max_cycles) -> int:
        """Virtual-time scheduling: the column with the smallest cycle
        count advances whole superblocks until its virtual time passes
        the smallest of the other running columns' (the reference
        interleaves per cycle; the conflict analysis proves the coarser
        alignment unobservable). Fused self-loops without a closed-form
        trip plan are capped at that horizon so one run cannot race
        arbitrarily far ahead; once only one column is still running it
        executes unthrottled to EXIT (done columns no longer step in the
        reference either)."""
        running = list(bounds)
        while running:
            best = running[0]
            horizon = None
            for bound in running[1:]:
                if bound.steps < best.steps:
                    best, horizon = bound, best.steps
                elif horizon is None or bound.steps < horizon:
                    horizon = bound.steps
            if not best.run_until(name, max_cycles, horizon):
                running.remove(best)
        return max(bound.steps for bound in bounds)


class AutoEngine:
    """Conflict-aware engine selection (the default).

    Runs the compile-time cross-column SPM analysis per launch (memoized
    structurally, so regenerated kernels pay a dictionary hit): kernels
    proven conflict-free execute on the compiled fast path; kernels whose
    columns communicate through the SPM mid-kernel fall back to the
    reference interpreter, bit-identically to ``engine="reference"``. The
    decision is surfaced on ``RunResult.engine`` /
    ``RunResult.fallback_reason`` / ``RunResult.spm_conflicts``.
    ``Vwr2a.run`` hands the verdict down from its per-config cache
    (``config_mem.stats.analysis_hits``), so warm launches skip the
    analysis memo lookup entirely.
    """

    name = "auto"

    def __init__(self) -> None:
        self.compiled = CompiledEngine()
        self.reference = ReferenceEngine()
        self.last_run_info = RunInfo("compiled", None, ())

    @property
    def decisions(self) -> Counter:
        """Lifetime launch tally by the engine that actually executed.

        Derived from the sub-engines' own counters (they tick on every
        launch routed to them, including launches that later abort), so
        there is exactly one tally to keep consistent —
        ``Vwr2a.engine_decisions`` exposes it.
        """
        return self.compiled.decisions + self.reference.decisions

    def run_kernel(self, vwr2a, name, active, max_cycles,
                   report=None) -> int:
        if report is None:
            report = analyze_active(active, vwr2a.params) \
                if len(active) > 1 else EMPTY_REPORT
        if report.conflicts:
            self.last_run_info = RunInfo(
                "reference", report.reason(), report.conflicts
            )
            return self.reference.run_kernel(
                vwr2a, name, active, max_cycles
            )
        cycles = self.compiled.run_kernel(
            vwr2a, name, active, max_cycles, report=report
        )
        self.last_run_info = self.compiled.last_run_info
        return cycles
