"""Precompiled micro-op execution engine for the VWR2A simulator.

``compile once at load_kernel, execute many`` — see docs/engine.md for the
design. Select per instance via ``Vwr2a(engine="compiled"|"reference")``.
"""

from repro.core.errors import ConfigurationError
from repro.engine.compiler import CompiledProgram, compile_program
from repro.engine.deltas import bundle_event_delta
from repro.engine.executor import BoundColumn, CompiledEngine, ReferenceEngine

#: Engine registry: name -> factory.
ENGINES = {
    CompiledEngine.name: CompiledEngine,
    ReferenceEngine.name: ReferenceEngine,
}


def make_engine(name: str):
    """Instantiate an execution engine by name."""
    try:
        factory = ENGINES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r} (choose from {sorted(ENGINES)})"
        ) from None
    return factory()


__all__ = [
    "BoundColumn",
    "CompiledEngine",
    "CompiledProgram",
    "ReferenceEngine",
    "ENGINES",
    "bundle_event_delta",
    "compile_program",
    "make_engine",
]
