"""Precompiled micro-op execution engine for the VWR2A simulator.

``compile once at load_kernel, execute many`` — see docs/engine.md for the
design. Select per instance via ``Vwr2a(engine="auto"|"compiled"|
"reference")``. ``auto`` (the default) runs the compile-time cross-column
SPM analysis (:mod:`repro.engine.conflicts`) and routes each launch to the
compiled fast path when proven conflict-free, or to the reference
interpreter when columns communicate through the SPM mid-kernel.
"""

from repro.core.errors import ConfigurationError
from repro.engine.compiler import CompiledProgram, compile_program
from repro.engine.conflicts import (
    ColumnFootprint,
    ConflictReport,
    SpmConflict,
    analyze_columns,
    column_footprint,
)
from repro.engine.deltas import bundle_event_delta
from repro.engine.executor import (
    AutoEngine,
    BoundColumn,
    CompiledEngine,
    ReferenceEngine,
)

#: Engine registry: name -> factory.
ENGINES = {
    AutoEngine.name: AutoEngine,
    CompiledEngine.name: CompiledEngine,
    ReferenceEngine.name: ReferenceEngine,
}


def make_engine(name: str):
    """Instantiate an execution engine by name."""
    try:
        factory = ENGINES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r} (choose from {sorted(ENGINES)})"
        ) from None
    return factory()


__all__ = [
    "AutoEngine",
    "BoundColumn",
    "ColumnFootprint",
    "CompiledEngine",
    "CompiledProgram",
    "ConflictReport",
    "ReferenceEngine",
    "SpmConflict",
    "ENGINES",
    "analyze_columns",
    "bundle_event_delta",
    "column_footprint",
    "compile_program",
    "make_engine",
]
