"""Compile-time cross-column SPM access analysis.

The compiled engine's virtual-time scheduler synchronizes columns at
basic-block granularity, so a kernel in which one column reads SPM
addresses another column writes *mid-kernel* could observe a different
interleaving than the per-cycle reference interpreter. This module closes
that soundness hole statically: at ``load_kernel`` every column program is
abstractly executed over its configuration words to derive the **footprint**
of SPM addresses it may read and write, and the footprints of concurrently
live columns are intersected.

The analysis leans on the same property the static event-delta fold relies
on (:mod:`repro.engine.deltas`): *which* SPM addresses a kernel touches is
determined by the configuration words — ``srf_init`` values, ``SET_SRF``
immediates and post-increment chains — never by the data flowing through
the datapath. Data-dependent addresses do exist (``LD_SRF`` results or RC
writes into the SRF used as addresses); those are widened to
"may touch anything" and the kernel conservatively falls back.

Abstract domain
---------------
SRF entries and LCU registers hold either a concrete ``int`` or
:data:`UNKNOWN`. Execution walks the program concretely over that state:

* straight-line bundles and known branches step one bundle at a time;
* branches on :data:`UNKNOWN` fork both successors (worklist + visited
  states, bounded by :data:`MAX_STEPS`);
* the Table-1 self-loop blocks (the dominant pattern in every kernel) are
  **accelerated**: one symbolic walk of the block derives each register's
  per-trip affine delta and each LSU site's address progression, the trip
  count is solved from the branch in closed form, and the whole loop
  contributes ``{base + j*stride}`` to the footprint in one step.

Exceeding the step budget marks the column *unbounded* (sound: unbounded
footprints conflict with everything another column touches). Out-of-range
addresses end the abstract path, exactly as the ``AddressError`` would end
the run.

Results are memoized structurally — keyed on the configuration-word
fingerprint stamped by the configuration memory plus the ``srf_init``
values — so the per-launch cost of the analysis on regenerated kernels
(the FFT engines rebuild configs every launch) is a dictionary hit.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from itertools import combinations

from repro.engine.compiler import block_pcs
from repro.engine.superblocks import loop_summary, trip_count
from repro.isa.fields import RCSrcKind
from repro.isa.lcu import BRANCH_OPS, LCUCmp, LCUOp
from repro.isa.lsu import LSUOp
from repro.utils.bits import to_signed32
from repro.utils.fixed_point import wrap32

#: Abstract "data-dependent value" (any LD_SRF result or RC->SRF write).
UNKNOWN = object()

#: Abstract-execution budget per column (bundle steps + accelerated loops).
MAX_STEPS = 40_000

#: Memo caps (structural keys, FIFO eviction — mirrors the compile memo).
_FOOTPRINT_CAP = 512
_REPORT_CAP = 512

_FOOTPRINT_MEMO = OrderedDict()
_REPORT_MEMO = OrderedDict()

#: Analysis cache behaviour, observable by tests and benchmarks.
ANALYSIS_STATS = {
    "footprint_hits": 0,
    "footprint_misses": 0,
    "report_hits": 0,
    "report_misses": 0,
}



# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

def address_runs(words) -> tuple:
    """Group a word-address set into inclusive ``(lo, hi)`` runs."""
    runs = []
    lo = hi = None
    for w in sorted(words):
        if lo is None:
            lo = hi = w
        elif w == hi + 1:
            hi = w
        else:
            runs.append((lo, hi))
            lo = hi = w
    if lo is not None:
        runs.append((lo, hi))
    return tuple(runs)


def format_words(words) -> str:
    """Compact ``[lo..hi]`` run formatting of a word-address set."""
    if not words:
        return "(none)"
    txt = ", ".join(
        f"[{a}..{b}]" if a != b else f"[{a}]"
        for a, b in address_runs(words)
    )
    return f"words {txt}"


@dataclass(frozen=True)
class ColumnFootprint:
    """May-touch SPM address sets (word granularity) of one column."""

    reads: frozenset
    writes: frozenset
    unbounded_reads: bool = False
    unbounded_writes: bool = False

    @property
    def touches_anything(self) -> bool:
        return bool(
            self.reads or self.writes
            or self.unbounded_reads or self.unbounded_writes
        )


@dataclass(frozen=True)
class SpmConflict:
    """One cross-column overlap the block scheduler cannot order safely."""

    kind: str        #: ``"write-read"`` or ``"write-write"``
    writer: int      #: column whose writes overlap
    other: int       #: column reading (or also writing) the overlap
    words: tuple     #: sorted overlapping word addresses (() if unbounded)
    unbounded: bool = False

    def ranges(self) -> tuple:
        """Overlap as inclusive ``(lo, hi)`` word-address runs."""
        return address_runs(self.words)

    def describe(self) -> str:
        if self.unbounded:
            return (
                f"column {self.writer}'s SPM footprint cannot be bounded "
                f"statically and column {self.other} touches the SPM"
            )
        verb = "also writes" if self.kind == "write-write" else "reads"
        return (
            f"column {self.writer} writes SPM {format_words(self.words)} "
            f"that column {self.other} {verb}"
        )

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class ConflictReport:
    """Outcome of the cross-column analysis for one kernel launch."""

    conflicts: tuple                 #: SpmConflict records (empty == safe)
    footprints: tuple                #: ((column, ColumnFootprint), ...)

    @property
    def conflict_free(self) -> bool:
        return not self.conflicts

    def reason(self) -> str:
        """One-line fallback reason (``RunResult.fallback_reason``)."""
        if self.conflict_free:
            return ""
        return "; ".join(c.describe() for c in self.conflicts)


EMPTY_REPORT = ConflictReport(conflicts=(), footprints=())


# ---------------------------------------------------------------------------
# Abstract interpreter
# ---------------------------------------------------------------------------

class _FootprintAnalyzer:
    """Derives one column program's may-touch SPM footprint."""

    def __init__(self, program, params) -> None:
        self.bundles = tuple(program.bundles)
        self.params = params
        self.n_srf = params.srf_entries
        self.n_lcu = params.lcu_registers
        self.spm_lines = params.spm_lines
        self.spm_words = params.spm_words
        self.line_words = params.line_words
        self.reads = set()
        self.writes = set()
        self.unbounded_reads = False
        self.unbounded_writes = False
        # ``Column.load`` applies ``srf_init`` but does NOT reset the other
        # SRF entries or the LCU registers — they carry whatever a previous
        # launch left behind. Anything not pinned by this kernel's own
        # configuration must therefore start as UNKNOWN, or carried-over
        # state could invalidate the conflict-free proof (and its memo,
        # which is keyed on the configuration alone). Seed kernels
        # establish every address register via srf_init / SET_SRF and
        # every loop counter via SETI before use, so they stay precise.
        srf0 = [UNKNOWN] * self.n_srf
        for entry, value in program.srf_init.items():
            if 0 <= entry < self.n_srf:
                srf0[entry] = to_signed32(value)
        self.srf0 = srf0
        self._loops = {}
        for pcs in block_pcs(self.bundles):
            last = self.bundles[pcs[-1]].lcu
            if last.op in BRANCH_OPS and last.target == pcs[0]:
                # One symbolic walk per self-loop block — the machinery is
                # shared with the compiler's closed-form loop planner
                # (repro.engine.superblocks), so the abstract analysis and
                # the execution path agree on which loops are provable.
                self._loops[pcs[0]] = loop_summary(
                    self.bundles, pcs, self.n_srf, self.n_lcu
                )

    # -- driver -----------------------------------------------------------

    def run(self) -> ColumnFootprint:
        start = (0, tuple(self.srf0), (UNKNOWN,) * self.n_lcu)
        worklist = [start]
        seen = {start}
        steps = 0
        while worklist:
            pc, srf_t, lcu_t = worklist.pop()
            srf = list(srf_t)
            lcu = list(lcu_t)
            steps += 1
            if steps > MAX_STEPS:
                self._give_up()
                break
            if not 0 <= pc < len(self.bundles):
                continue  # runtime ProgramError ends the run here
            summary = self._loops.get(pc)
            nxt = None
            if summary is not None:
                nxt = self._accelerate(summary, srf, lcu)
            if nxt is None:
                nxt = self._apply(pc, srf, lcu)
            kind = nxt[0]
            if kind == "stop":
                continue
            targets = nxt[1:]
            for target in targets:
                state = (target, tuple(srf), tuple(lcu))
                if state not in seen:
                    seen.add(state)
                    worklist.append(state)
        return ColumnFootprint(
            reads=frozenset(self.reads),
            writes=frozenset(self.writes),
            unbounded_reads=self.unbounded_reads,
            unbounded_writes=self.unbounded_writes,
        )

    def _give_up(self) -> None:
        self.unbounded_reads = True
        self.unbounded_writes = True

    # -- footprint recording ----------------------------------------------

    def _record(self, addr, is_line: bool, is_write: bool) -> bool:
        """Record one access; False when it would fault (path ends)."""
        if addr is UNKNOWN:
            if is_write:
                self.unbounded_writes = True
            else:
                self.unbounded_reads = True
            return True
        if is_line:
            if not 0 <= addr < self.spm_lines:
                return False
            words = range(
                addr * self.line_words, (addr + 1) * self.line_words
            )
        else:
            if not 0 <= addr < self.spm_words:
                return False
            words = (addr,)
        (self.writes if is_write else self.reads).update(words)
        return True

    # -- one-bundle transfer function -------------------------------------

    def _apply(self, pc: int, srf: list, lcu: list):
        bundle = self.bundles[pc]

        # RC group: SRF operand faults end the path; SRF writes are
        # data-dependent values (the address property does not cover them).
        for instr in bundle.rcs:
            if instr.is_nop:
                continue
            for operand in instr.operands():
                if operand.kind is RCSrcKind.SRF \
                        and not 0 <= operand.index < self.n_srf:
                    return ("stop",)
            if instr.dst.writes_srf:
                if not 0 <= instr.dst.index < self.n_srf:
                    return ("stop",)
                srf[int(instr.dst.index)] = UNKNOWN

        # LSU: the only unit touching the SPM (Bundle.spm_access is the
        # shared static description of that access).
        lsu = bundle.lsu
        access = bundle.spm_access()
        if access is not None:
            granularity, direction, entry, inc = access
            is_line = granularity == "line"
            is_write = direction == "write"
            if not 0 <= entry < self.n_srf:
                return ("stop",)
            if not is_line and not 0 <= int(lsu.data) < self.n_srf:
                return ("stop",)
            addr = srf[entry]
            if not self._record(addr, is_line, is_write):
                return ("stop",)
            if lsu.op is LSUOp.LD_SRF:
                srf[int(lsu.data)] = UNKNOWN
            if inc:
                srf[entry] = UNKNOWN if addr is UNKNOWN \
                    else to_signed32(addr + inc)
        elif lsu.op is LSUOp.SET_SRF:
            if not 0 <= int(lsu.data) < self.n_srf:
                return ("stop",)
            srf[int(lsu.data)] = to_signed32(lsu.value)

        # LCU: register updates and control flow.
        instr = bundle.lcu
        op = instr.op
        if op is LCUOp.SETI:
            lcu[instr.rd] = wrap32(instr.imm)
        elif op is LCUOp.ADDI:
            v = lcu[instr.rd]
            lcu[instr.rd] = UNKNOWN if v is UNKNOWN \
                else wrap32(v + instr.imm)
        elif op is LCUOp.LDSRF:
            if not 0 <= int(instr.cmp) < self.n_srf:
                return ("stop",)
            lcu[instr.rd] = srf[int(instr.cmp)]
        elif op is LCUOp.JUMP:
            return ("next", instr.target)
        elif op is LCUOp.EXIT:
            return ("stop",)
        elif op in BRANCH_OPS:
            lhs = lcu[instr.rd]
            if instr.cmp_kind is LCUCmp.IMM:
                rhs = int(instr.cmp)
            elif instr.cmp_kind is LCUCmp.REG:
                if not 0 <= int(instr.cmp) < self.n_lcu:
                    return ("stop",)
                rhs = lcu[int(instr.cmp)]
            else:
                if not 0 <= int(instr.cmp) < self.n_srf:
                    return ("stop",)
                rhs = srf[int(instr.cmp)]
            if lhs is UNKNOWN or rhs is UNKNOWN:
                return ("next", instr.target, pc + 1)
            taken = {
                LCUOp.BLT: lhs < rhs,
                LCUOp.BGE: lhs >= rhs,
                LCUOp.BEQ: lhs == rhs,
                LCUOp.BNE: lhs != rhs,
            }[op]
            return ("next", instr.target if taken else pc + 1)
        return ("next", pc + 1)

    # -- self-loop acceleration --------------------------------------------
    #
    # Symbolic per-trip values: ("d", delta)  == trip-start value + delta,
    #                           ("c", v)      == the constant v,
    #                           ("u",)        == data-dependent.
    # The walk itself lives in repro.engine.superblocks.loop_summary.

    def _trip_count(self, summary, srf, lcu):
        """Closed-form trip count, or None when not statically solvable."""
        branch = summary["branch"]
        v0 = lcu[branch.rd]
        if v0 is UNKNOWN:
            return None
        d = summary["lcu_sym"][branch.rd][1]
        if branch.cmp_kind is LCUCmp.IMM:
            bound = int(branch.cmp)
        elif branch.cmp_kind is LCUCmp.REG:
            bound = lcu[int(branch.cmp)]
        else:
            bound = srf[int(branch.cmp)]
        if bound is UNKNOWN:
            return None
        return trip_count(branch.op, d, v0, bound)

    def _accelerate(self, summary, srf: list, lcu: list):
        """Fold a whole self-loop run into footprint + post-state."""
        if not summary["ok"]:
            return None
        trips = self._trip_count(summary, srf, lcu)
        if trips is None:
            return None
        for is_line, is_write, entry, sym in summary["sites"]:
            base = srf[entry]
            final = summary["srf_sym"][entry]
            if sym[0] == "u" or base is UNKNOWN or final[0] == "u":
                if is_write:
                    self.unbounded_writes = True
                else:
                    self.unbounded_reads = True
                continue
            if sym[0] == "c":
                self._record(sym[1], is_line, is_write)
                continue
            offset = sym[1]
            if final[0] == "c":
                # The entry is reset every trip: the site sees the initial
                # value once, then the reset value on every later trip.
                self._record(base + offset, is_line, is_write)
                if trips > 1:
                    self._record(final[1] + offset, is_line, is_write)
                continue
            stride = final[1]
            addr = base + offset
            limit = self.spm_lines if is_line else self.spm_words
            for _ in range(trips):
                if not 0 <= addr < limit:
                    break  # monotone progression left the SPM: faults
                self._record(addr, is_line, is_write)
                if stride == 0:
                    break
                addr += stride
        for entry in range(self.n_srf):
            final = summary["srf_sym"][entry]
            if final[0] == "u":
                srf[entry] = UNKNOWN
            elif final[0] == "c":
                srf[entry] = final[1]
            elif final[1] and srf[entry] is not UNKNOWN:
                srf[entry] = to_signed32(srf[entry] + trips * final[1])
        for reg in range(self.n_lcu):
            final = summary["lcu_sym"][reg]
            if final[0] == "u":
                lcu[reg] = UNKNOWN
            elif final[0] == "c":
                lcu[reg] = final[1]
            elif final[1] and lcu[reg] is not UNKNOWN:
                lcu[reg] = wrap32(lcu[reg] + trips * final[1])
        return ("next", summary["pcs"][-1] + 1)


# ---------------------------------------------------------------------------
# Public API (memoized)
# ---------------------------------------------------------------------------

def _column_key(program, params):
    fingerprint = getattr(program, "_fingerprint", None)
    structure = fingerprint if fingerprint is not None \
        else tuple(program.bundles)
    return (params, structure, tuple(sorted(program.srf_init.items())))


def column_footprint(program, params) -> ColumnFootprint:
    """May-touch SPM footprint of one column program (memoized)."""
    key = _column_key(program, params)
    footprint = _FOOTPRINT_MEMO.get(key)
    if footprint is not None:
        ANALYSIS_STATS["footprint_hits"] += 1
        _FOOTPRINT_MEMO.move_to_end(key)
        return footprint
    ANALYSIS_STATS["footprint_misses"] += 1
    footprint = _FootprintAnalyzer(program, params).run()
    _FOOTPRINT_MEMO[key] = footprint
    if len(_FOOTPRINT_MEMO) > _FOOTPRINT_CAP:
        _FOOTPRINT_MEMO.popitem(last=False)
    return footprint


def _pair_conflicts(col_a, fp_a, col_b, fp_b):
    conflicts = []
    if fp_a.unbounded_writes and fp_b.touches_anything:
        conflicts.append(SpmConflict(
            kind="write-read", writer=col_a, other=col_b,
            words=(), unbounded=True,
        ))
    if fp_b.unbounded_writes and fp_a.touches_anything:
        conflicts.append(SpmConflict(
            kind="write-read", writer=col_b, other=col_a,
            words=(), unbounded=True,
        ))
    if fp_a.unbounded_reads and (fp_b.writes or fp_b.unbounded_writes):
        conflicts.append(SpmConflict(
            kind="write-read", writer=col_b, other=col_a,
            words=(), unbounded=True,
        ))
    if fp_b.unbounded_reads and (fp_a.writes or fp_a.unbounded_writes):
        conflicts.append(SpmConflict(
            kind="write-read", writer=col_a, other=col_b,
            words=(), unbounded=True,
        ))
    if conflicts:
        return conflicts
    ww = fp_a.writes & fp_b.writes
    if ww:
        conflicts.append(SpmConflict(
            kind="write-write", writer=col_a, other=col_b,
            words=tuple(sorted(ww)),
        ))
    wr = fp_a.writes & fp_b.reads
    if wr:
        conflicts.append(SpmConflict(
            kind="write-read", writer=col_a, other=col_b,
            words=tuple(sorted(wr)),
        ))
    rw = fp_a.reads & fp_b.writes
    if rw:
        conflicts.append(SpmConflict(
            kind="write-read", writer=col_b, other=col_a,
            words=tuple(sorted(rw)),
        ))
    return conflicts


def analyze_columns(columns: dict, params) -> ConflictReport:
    """Cross-column SPM conflict report for one kernel (memoized).

    ``columns`` maps column index to :class:`ColumnProgram`. Kernels using
    a single column are trivially conflict-free and return instantly.
    """
    if len(columns) <= 1:
        return EMPTY_REPORT
    key = tuple(
        (col, _column_key(columns[col], params))
        for col in sorted(columns)
    )
    report = _REPORT_MEMO.get(key)
    if report is not None:
        ANALYSIS_STATS["report_hits"] += 1
        _REPORT_MEMO.move_to_end(key)
        return report
    ANALYSIS_STATS["report_misses"] += 1
    footprints = OrderedDict(
        (col, column_footprint(columns[col], params))
        for col in sorted(columns)
    )
    conflicts = []
    for (col_a, fp_a), (col_b, fp_b) in combinations(
        footprints.items(), 2
    ):
        conflicts.extend(_pair_conflicts(col_a, fp_a, col_b, fp_b))
    report = ConflictReport(
        conflicts=tuple(conflicts),
        footprints=tuple(footprints.items()),
    )
    _REPORT_MEMO[key] = report
    if len(_REPORT_MEMO) > _REPORT_CAP:
        _REPORT_MEMO.popitem(last=False)
    return report


def analyze_active(active, params) -> ConflictReport:
    """Report for a list of loaded :class:`~repro.core.column.Column`."""
    return analyze_columns(
        {col.index: col.program for col in active}, params
    )
