"""Static per-bundle event deltas.

Every event :meth:`repro.core.column.Column.step` logs is determined by the
configuration word alone — data values only steer the next PC and the
datapath results, never *which* counters tick. (This is the same property
that lets the hazard checker run once at load time: "which unit touches
which resource in a bundle is fully determined by the configuration word,
never by runtime values".)

The compiled engine exploits it: this module derives, once per bundle at
compile time, the exact :class:`~repro.core.events.EventCounters` delta one
execution of the bundle produces. The executor then only counts bundle
executions and folds ``count x delta`` into the shared tally at kernel end,
instead of paying ~10 ``Counter`` updates per simulated cycle.

The enumeration below mirrors ``Column.step`` line by line; the
differential tests (``tests/test_engine_equivalence.py``) assert the fold
matches the interpreter's per-cycle logging bit for bit on every kernel.

:func:`delta_matrix` assembles the per-superblock deltas of one compiled
program into a dense ``superblocks x events`` count matrix: the executor's
end-of-kernel fold is then one integer mat-vec (execution counts times the
matrix) instead of a per-block dictionary walk, and the histogram-native
energy path (:meth:`repro.energy.EnergyModel.fold_histogram`) consumes the
same static rows.
"""

from __future__ import annotations

from collections import Counter

from repro.core.alu import ALU_EVENT
from repro.core.events import Ev
from repro.isa.fields import RCDstKind, RCSrcKind
from repro.isa.lcu import BRANCH_OPS, LCUCmp, LCUOp
from repro.isa.lsu import LSUOp
from repro.isa.mxcu import NO_SRF, MXCUOp

_RC_REG_SRCS = (RCSrcKind.R0, RCSrcKind.R1)
_VWR_SRCS = (RCSrcKind.VWR_A, RCSrcKind.VWR_B, RCSrcKind.VWR_C)
_VWR_DSTS = (RCDstKind.VWR_A, RCDstKind.VWR_B, RCDstKind.VWR_C)

#: Events one LSU op logs, beyond LSU_ISSUE and the post-increment write.
_LSU_EVENTS = {
    LSUOp.LD_VWR: ((Ev.SRF_READ, 1), (Ev.SPM_WIDE_READ, 1),
                   (Ev.VWR_WIDE_WRITE, 1)),
    LSUOp.ST_VWR: ((Ev.SRF_READ, 1), (Ev.VWR_WIDE_READ, 1),
                   (Ev.SPM_WIDE_WRITE, 1)),
    LSUOp.LD_SRF: ((Ev.SRF_READ, 1), (Ev.SPM_WORD_READ, 1),
                   (Ev.SRF_WRITE, 1)),
    LSUOp.ST_SRF: ((Ev.SRF_READ, 2), (Ev.SPM_WORD_WRITE, 1)),
    LSUOp.SET_SRF: ((Ev.SRF_WRITE, 1),),
    LSUOp.SHUF: ((Ev.SHUFFLE_OP, 1), (Ev.VWR_WIDE_READ, 2),
                 (Ev.VWR_WIDE_WRITE, 1)),
}

#: LSU ops whose ``inc`` field post-increments an SRF address entry.
_LSU_POST_INC = (LSUOp.LD_VWR, LSUOp.ST_VWR, LSUOp.LD_SRF, LSUOp.ST_SRF)


def bundle_event_delta(bundle, params) -> dict:
    """The exact event counts one execution of ``bundle`` logs."""
    d = Counter()
    d[Ev.COLUMN_CYCLE] = 1
    # One program-memory fetch per unit per cycle (predecoded words).
    d[Ev.PM_FETCH] = 3 + params.rcs_per_column

    mxcu = bundle.mxcu
    if mxcu.op is not MXCUOp.NOP:
        d[Ev.MXCU_ISSUE] += 1
        if mxcu.op is MXCUOp.UPD and mxcu.srf_and != NO_SRF:
            d[Ev.SRF_READ] += 1

    # RC group: one broadcast SRF read per distinct entry per cycle.
    srf_reads = set()
    for instr in bundle.rcs:
        if instr.is_nop:
            continue
        d[Ev.RC_ISSUE] += 1
        d[ALU_EVENT[instr.op]] += 1
        for operand in instr.operands():
            kind = operand.kind
            if kind in _RC_REG_SRCS:
                d[Ev.RC_RF_READ] += 1
            elif kind is RCSrcKind.SRF:
                srf_reads.add(operand.index)
            elif kind in _VWR_SRCS:
                d[Ev.VWR_WORD_READ] += 1
        dst = instr.dst.kind
        if dst in (RCDstKind.R0, RCDstKind.R1):
            d[Ev.RC_RF_WRITE] += 1
        elif dst is RCDstKind.SRF:
            d[Ev.SRF_WRITE] += 1
        elif dst in _VWR_DSTS:
            d[Ev.VWR_WORD_WRITE] += 1
    if srf_reads:
        d[Ev.SRF_READ] += len(srf_reads)

    lsu = bundle.lsu
    if lsu.op is not LSUOp.NOP:
        d[Ev.LSU_ISSUE] += 1
        for name, count in _LSU_EVENTS[lsu.op]:
            d[name] += count
        if lsu.op in _LSU_POST_INC and lsu.inc:
            d[Ev.SRF_WRITE] += 1

    lcu = bundle.lcu
    if lcu.op is not LCUOp.NOP:
        d[Ev.LCU_ISSUE] += 1
        if lcu.op is LCUOp.LDSRF:
            d[Ev.SRF_READ] += 1
        elif lcu.op is LCUOp.JUMP:
            d[Ev.LCU_BRANCH] += 1
        elif lcu.op in BRANCH_OPS:
            d[Ev.LCU_BRANCH] += 1
            if lcu.cmp_kind is LCUCmp.SRF:
                d[Ev.SRF_READ] += 1

    return dict(d)


def delta_matrix(deltas) -> tuple:
    """Dense static event matrix of a sequence of block deltas.

    ``deltas`` are ``((event, count), ...)`` rows (one per superblock, as
    :class:`~repro.engine.compiler.BlockInfo` carries them). Returns
    ``(events, rows)``: the sorted union of event names and one aligned
    count list per input delta. The executor folds execution histograms
    through this matrix in one pass; zero-count products are dropped at
    fold time, so the result matches the per-entry dictionary walk
    exactly.
    """
    events = sorted({name for delta in deltas for name, _ in delta})
    index = {name: position for position, name in enumerate(events)}
    rows = []
    for delta in deltas:
        row = [0] * len(events)
        for name, count in delta:
            row[index[name]] = count
        rows.append(row)
    return tuple(events), rows
