"""Bundle predecoder: ColumnProgram -> basic-block micro-op closures.

The reference interpreter re-decodes every bundle on every cycle: enum
``is``-chains select the unit semantics, operand kinds are re-dispatched,
and ~10 ``EventCounters.add`` calls tick per column cycle. This module
performs that decode exactly once per program:

* every bundle is lowered to flat Python source whose operand fetches are
  resolved into direct list accesses (``VA[96 + k]``, ``S[3]``,
  ``R2[0]``, ...) and whose ALU semantics are inlined two's-complement
  expressions;
* straight-line bundle runs between branch targets are fused into one
  generated function per **basic block**, so the execute loop dispatches
  whole blocks instead of cycles;
* a block whose terminating branch targets its own leader (the Table-1
  two-bundle vector loop) is additionally fused into a **self-loop**: the
  generated function iterates internally and reports how many trips it
  made, eliminating per-iteration dispatch entirely;
* straight-line block chains (single successor feeding a single
  predecessor) are fused into **superblocks** — one generated function,
  one dispatch, one event fold per chain execution — and a chain whose
  tail branches back to the chain head becomes a fused multi-block
  self-loop;
* self-loops whose trip state is provably concrete (the closed-form
  machinery shared with the SPM-conflict analysis,
  :mod:`repro.engine.superblocks`) compute their **trip count once** at
  loop entry; when the body qualifies, the per-trip RC/MXCU datapath work
  runs as NumPy array operations over all trips at once, with the final
  register state reconstructed from the loop's affine summary;
* each block carries the static event delta of one execution
  (:mod:`repro.engine.deltas`) — the executor folds ``delta x count`` into
  the shared tally at kernel end, multiplying (never iterating) the
  per-trip deltas of fused loops.

Compilation is memoized two ways: per :class:`ColumnProgram` object, and
structurally by ``(params, bundles)`` — kernels regenerated per launch
with identical code but different ``srf_init`` (the FFT engines do this
constantly) hit the structural memo and compile exactly once.

The generated code binds the column's storage (SRF/VWR/SPM backing lists)
via default arguments at bind time (:class:`repro.engine.executor
.BoundColumn`), so the hot path performs only local-variable indexing.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass

from repro.core.errors import ProgramError
from repro.engine.deltas import bundle_event_delta, delta_matrix
from repro.engine.superblocks import (
    NUMPY_AVAILABLE,
    VEC_MAX_TRIPS,
    bound_expr,
    plan_loop,
    trip_count_lines,
)
from repro.isa.fields import RCDstKind, RCSrcKind
from repro.isa.lcu import BRANCH_OPS, LCUCmp, LCUOp
from repro.isa.lsu import LSUOp
from repro.isa.mxcu import NO_SRF, MXCUOp
from repro.isa.rc import RCOp
from repro.utils.bits import to_signed32
from repro.utils.fixed_point import wrap32

#: LCU ops that end a basic block.
_TERMINATORS = frozenset(BRANCH_OPS) | {LCUOp.JUMP, LCUOp.EXIT}

_CMP_SYMBOL = {
    LCUOp.BLT: "<",
    LCUOp.BGE: ">=",
    LCUOp.BEQ: "==",
    LCUOp.BNE: "!=",
}

_VWR_SRC_NAMES = {
    RCSrcKind.VWR_A: "VA",
    RCSrcKind.VWR_B: "VB",
    RCSrcKind.VWR_C: "VC",
}

_VWR_DST_NAMES = {
    RCDstKind.VWR_A: "VA",
    RCDstKind.VWR_B: "VB",
    RCDstKind.VWR_C: "VC",
}

_LSU_VWR_NAMES = {0: "VA", 1: "VB", 2: "VC"}

#: Structural memo: (params, bundles) -> CompiledProgram.
_MEMO = OrderedDict()
_MEMO_CAP = 256


def _w(expr: str) -> str:
    """Inline ``wrap32``: signed 32-bit two's-complement wrap of ``expr``."""
    return f"((({expr}) + 2147483648 & 4294967295) - 2147483648)"


def _alu_expr(op: RCOp, a: str, b: str) -> str:
    """Inline source of ``alu_execute(op, a, b)`` (see repro.core.alu)."""
    if op is RCOp.SADD:
        return _w(f"({a}) + ({b})")
    if op is RCOp.SSUB:
        return _w(f"({a}) - ({b})")
    if op is RCOp.SMUL:
        return _w(f"({a}) * ({b})")
    if op is RCOp.FXPMUL:
        return _w(f"(({a}) * ({b})) >> 15")
    if op is RCOp.SLL:
        return _w(f"(({a}) & 4294967295) << (({b}) & 31)")
    if op is RCOp.SRL:
        return _w(f"(({a}) & 4294967295) >> (({b}) & 31)")
    if op is RCOp.SRA:
        return f"(({a}) >> (({b}) & 31))"
    if op is RCOp.LAND:
        return _w(f"({a}) & ({b}) & 4294967295")
    if op is RCOp.LOR:
        return _w(f"(({a}) | ({b})) & 4294967295")
    if op is RCOp.LXOR:
        return _w(f"(({a}) ^ ({b})) & 4294967295")
    if op is RCOp.LNOT:
        return _w(f"(~({a})) & 4294967295")
    if op is RCOp.MOV:
        return _w(a)
    if op is RCOp.SMAX:
        return f"max(({a}), ({b}))"
    if op is RCOp.SMIN:
        return f"min(({a}), ({b}))"
    if op is RCOp.SADD16:
        return f"_s16a(({a}), ({b}))"
    if op is RCOp.SSUB16:
        return f"_s16s(({a}), ({b}))"
    if op is RCOp.FXPMUL16:
        return f"_s16m(({a}), ({b}))"
    raise ProgramError(f"cannot compile RC op {op!r}")


@dataclass
class _BundleCode:
    lines: list
    uses_k: bool = False
    sets_k: bool = False
    #: LCU counter bookkeeping (SETI/ADDI) — kept separable so
    #: closed-form loops can skip it per trip and reconstruct the final
    #: register values from the affine loop summary instead.
    lcu_lines: list = None

    def all_lines(self) -> list:
        if self.lcu_lines:
            return self.lines + self.lcu_lines
        return self.lines


class _BundleGen:
    """Lowers one bundle into flat source lines."""

    def __init__(self, params) -> None:
        self.params = params
        self.slice_words = params.slice_words
        self.slice_mask = params.slice_words - 1
        self.n_rcs = params.rcs_per_column
        self.srf_entries = params.srf_entries

    # -- operand / guard helpers -----------------------------------------

    def _srf_guard(self, entry: int, guards: list) -> None:
        """Invalid static SRF entries raise the SRF's AddressError when the
        bundle executes (the reference raises mid-bundle; the compiled form
        raises before the bundle's side effects — see docs/engine.md)."""
        if not 0 <= entry < self.srf_entries:
            guards.append(f"_raise_srf({entry}, {self.srf_entries})")

    def _operand(self, operand, i: int, guards: list):
        kind = operand.kind
        if kind is RCSrcKind.ZERO:
            return "0", False
        if kind is RCSrcKind.IMM:
            return repr(int(operand.index)), False
        if kind is RCSrcKind.R0:
            return f"R{i}[0]", False
        if kind is RCSrcKind.R1:
            return f"R{i}[1]", False
        if kind is RCSrcKind.RCT:
            return f"O[{(i - 1) % self.n_rcs}]", False
        if kind is RCSrcKind.RCB:
            return f"O[{(i + 1) % self.n_rcs}]", False
        if kind is RCSrcKind.SRF:
            self._srf_guard(operand.index, guards)
            return f"S[{int(operand.index)}]", False
        name = _VWR_SRC_NAMES[kind]
        if i == 0:
            return f"{name}[k]", True
        return f"{name}[{i * self.slice_words} + k]", True

    # -- per-unit lowering -------------------------------------------------

    def gen(self, bundle) -> _BundleCode:
        code = _BundleCode(lines=[])
        guards = []
        self._gen_mxcu(bundle.mxcu, code, guards)
        self._gen_rcs(bundle.rcs, code, guards)
        self._gen_lsu(bundle.lsu, code, guards)
        self._gen_lcu_state(bundle.lcu, code, guards)
        if guards:
            # Any statically invalid SRF entry faults the whole bundle.
            code.lines = guards[:1] + code.lines
        return code

    def _gen_mxcu(self, instr, code, guards) -> None:
        if instr.op is MXCUOp.NOP:
            return
        if instr.op is MXCUOp.SETK:
            code.lines.append(f"k = {instr.k & self.slice_mask}")
            code.sets_k = True
            return
        if instr.srf_and != NO_SRF:
            self._srf_guard(instr.srf_and, guards)
            code.lines.append(
                f"k = (((k + {instr.inc}) & S[{instr.srf_and}]) ^ "
                f"{int(instr.xor_mask)}) & {self.slice_mask}"
            )
        else:
            # Constant masks fold: the slice mask subsumes an immediate
            # AND mask that already fits it, and a fitting XOR mask
            # cannot push the index back out of range.
            and_eff = int(instr.and_mask) & self.slice_mask
            xor_eff = int(instr.xor_mask) & self.slice_mask
            update = f"(k + {instr.inc}) & {and_eff}"
            if xor_eff:
                update = f"({update}) ^ {xor_eff}"
            if (int(instr.and_mask) | int(instr.xor_mask)) \
                    & ~self.slice_mask:
                update = f"({update}) & {self.slice_mask}"
            code.lines.append(f"k = {update}")
        code.uses_k = True
        code.sets_k = True

    def _gen_rcs(self, instrs, code, guards) -> None:
        computes = []
        commits = []
        for i, instr in enumerate(instrs):
            if instr.is_nop:
                continue
            operands = instr.operands()
            a_expr, a_k = self._operand(operands[0], i, guards) \
                if operands else ("0", False)
            if len(operands) > 1:
                b_expr, b_k = self._operand(operands[1], i, guards)
            else:
                b_expr, b_k = "0", False
            computes.append(f"v{i} = {_alu_expr(instr.op, a_expr, b_expr)}")
            code.uses_k |= a_k or b_k
            # Commit phase: all writes observe cycle-start reads.
            commits.append(f"O[{i}] = v{i}")
            kind = instr.dst.kind
            if kind is RCDstKind.R0:
                commits.append(f"R{i}[0] = v{i}")
            elif kind is RCDstKind.R1:
                commits.append(f"R{i}[1] = v{i}")
            elif kind is RCDstKind.SRF:
                self._srf_guard(instr.dst.index, guards)
                commits.append(f"S[{int(instr.dst.index)}] = v{i}")
            elif kind in _VWR_DST_NAMES:
                name = _VWR_DST_NAMES[kind]
                offset = f"{i * self.slice_words} + k" if i else "k"
                commits.append(f"{name}[{offset}] = v{i}")
                code.uses_k = True
        code.lines += computes + commits

    def _gen_lsu(self, instr, code, guards) -> None:
        op = instr.op
        if op is LSUOp.NOP:
            return
        params = self.params
        lines = code.lines
        if op in (LSUOp.LD_VWR, LSUOp.ST_VWR):
            self._srf_guard(instr.addr, guards)
            vwr = _LSU_VWR_NAMES[int(instr.vwr)]
            line_words = params.line_words
            lines.append(f"_a = S[{int(instr.addr)}]")
            lines.append(
                f"if not 0 <= _a < {params.spm_lines}: "
                "raise AddressError('SPM line %d out of range [0, "
                f"{params.spm_lines})' % _a)"
            )
            lines.append(f"_b = _a * {line_words}")
            if op is LSUOp.LD_VWR:
                lines.append(f"{vwr}[:] = M[_b:_b + {line_words}]")
            else:
                lines.append(f"M[_b:_b + {line_words}] = {vwr}")
            self._post_increment(instr, lines)
        elif op in (LSUOp.LD_SRF, LSUOp.ST_SRF):
            self._srf_guard(instr.addr, guards)
            self._srf_guard(instr.data, guards)
            lines.append(f"_a = S[{int(instr.addr)}]")
            lines.append(
                f"if not 0 <= _a < {params.spm_words}: "
                "raise AddressError('SPM word address %d out of range [0, "
                f"{params.spm_words})' % _a)"
            )
            if op is LSUOp.LD_SRF:
                lines.append(f"S[{int(instr.data)}] = M[_a]")
            else:
                lines.append(f"M[_a] = S[{int(instr.data)}]")
            self._post_increment(instr, lines)
        elif op is LSUOp.SET_SRF:
            self._srf_guard(instr.data, guards)
            lines.append(
                f"S[{int(instr.data)}] = {to_signed32(instr.value)}"
            )
        elif op is LSUOp.SHUF:
            lines.append(f"VC[:] = _shuf{int(instr.mode)}(VA, VB)")
        else:
            raise ProgramError(f"cannot compile LSU op {op!r}")

    def _post_increment(self, instr, lines) -> None:
        if instr.inc:
            lines.append(
                f"S[{int(instr.addr)}] = " + _w(f"_a + {int(instr.inc)}")
            )

    def _gen_lcu_state(self, instr, code, guards) -> None:
        """The LCU's register-file side; control flow is the block's job."""
        op = instr.op
        if op is LCUOp.SETI:
            code.lcu_lines = [f"L[{instr.rd}] = {wrap32(instr.imm)}"]
        elif op is LCUOp.ADDI:
            code.lcu_lines = [
                f"L[{instr.rd}] = " + _w(f"L[{instr.rd}] + {int(instr.imm)}")
            ]
        elif op is LCUOp.LDSRF:
            self._srf_guard(instr.cmp, guards)
            code.lines.append(f"L[{instr.rd}] = S[{int(instr.cmp)}]")
        elif op in BRANCH_OPS and instr.cmp_kind is LCUCmp.SRF:
            self._srf_guard(instr.cmp, guards)


def _branch_cond(instr) -> str:
    """Source of the taken-condition of a branch LCU instruction."""
    if instr.cmp_kind is LCUCmp.IMM:
        cmp_expr = repr(int(instr.cmp))
    elif instr.cmp_kind is LCUCmp.REG:
        cmp_expr = f"L[{int(instr.cmp)}]"
    else:
        cmp_expr = f"S[{int(instr.cmp)}]"
    return f"L[{instr.rd}] {_CMP_SYMBOL[instr.op]} {cmp_expr}"


@dataclass
class BlockInfo:
    """Static description of one compiled superblock (fused block chain)."""

    index: int
    leader: int          #: PC of the superblock's first bundle
    n_cycles: int        #: bundles (= cycles) per straight execution
    fn_name: str
    delta: tuple         #: ((event, count), ...) for one execution
    exit_next: int       #: reference PC after EXIT (-1 when not an exit)
    is_loop: bool        #: self-loop fused: fn(limit) -> (next_pc, trips)
    closed_form: bool    #: loop trips solvable at entry (no horizon needed)
    vectorized: bool     #: loop body carries a NumPy steady-state path
    members: tuple       #: ((leader, n_cycles, delta), ...) per basic block
    #: Static reason this self-loop cannot take the NumPy steady state
    #: (``None`` for vectorized loops and non-loop blocks); the generated
    #: code additionally counts runtime rejections (trip window, counter
    #: wrap, RMW index repeats) per loop entry into the bound ``_REJ``
    #: tally surfaced as ``RunResult.superblocks["vector_rejections"]``.
    vector_reject: str = None


class CompiledProgram:
    """Code object + block metadata of one compiled ColumnProgram."""

    __slots__ = ("params", "source", "code", "blocks", "n_bundles",
                 "event_names", "event_matrix")

    def __init__(self, params, source, code, blocks, n_bundles) -> None:
        self.params = params
        self.source = source
        self.code = code
        self.blocks = blocks
        self.n_bundles = n_bundles
        # Per-superblock static event matrix: the end-of-kernel fold is
        # one integer mat-vec over the execution histogram
        # (repro.engine.deltas.delta_matrix).
        names, rows = delta_matrix([blk.delta for blk in blocks])
        self.event_names = names
        if NUMPY_AVAILABLE:
            import numpy

            self.event_matrix = numpy.array(rows, dtype=numpy.int64)
        else:
            self.event_matrix = rows

    def listing(self) -> str:
        """The generated Python source (debug aid)."""
        return self.source


def _leaders(bundles) -> set:
    leaders = {0}
    n = len(bundles)
    for pc, bundle in enumerate(bundles):
        op = bundle.lcu.op
        if op in BRANCH_OPS or op is LCUOp.JUMP:
            leaders.add(bundle.lcu.target)
            if pc + 1 < n:
                leaders.add(pc + 1)
        elif op is LCUOp.EXIT and pc + 1 < n:
            leaders.add(pc + 1)
    return leaders


def block_pcs(bundles) -> list:
    """Partition PCs into basic blocks (leader-to-terminator runs).

    Shared by the code generator below and the cross-column SPM analysis
    (:mod:`repro.engine.conflicts`), so both agree on what a block is.
    """
    leaders = _leaders(bundles)
    blocks = []
    current = []
    for pc in range(len(bundles)):
        if current and pc in leaders:
            blocks.append(current)
            current = []
        current.append(pc)
        if bundles[pc].lcu.op in _TERMINATORS:
            blocks.append(current)
            current = []
    if current:
        blocks.append(current)
    return blocks


def signature_names(params) -> list:
    """Bind-time names the generated functions take as default args."""
    names = ["col", "S", "M", "VA", "VB", "VC", "O", "L"]
    names += [f"R{i}" for i in range(params.rcs_per_column)]
    return names


def superblock_chains(bundles) -> list:
    """Fuse basic blocks into superblock chains.

    A chain extends while the current block has exactly one successor
    (fall-through or JUMP) that is another block's leader with exactly one
    predecessor — so every execution of the head runs the whole chain, and
    no other control flow can enter mid-chain (the fused function stays
    the only way to reach its members, keeping the per-block execution
    histogram exact). Single-block self-loops stay their own superblock; a
    chain whose *tail* branches back to the chain head becomes a fused
    multi-block self-loop.

    Returns a list of chains, each a list of member-PC lists.
    """
    raw_blocks = block_pcs(bundles)
    leader_to = {pcs[0]: i for i, pcs in enumerate(raw_blocks)}
    succs = []
    self_loop = []
    for pcs in raw_blocks:
        last = bundles[pcs[-1]].lcu
        op = last.op
        if op is LCUOp.EXIT:
            targets = ()
        elif op is LCUOp.JUMP:
            targets = (last.target,)
        elif op in BRANCH_OPS:
            targets = (last.target, pcs[-1] + 1)
        else:
            targets = (pcs[-1] + 1,)
        succs.append(targets)
        self_loop.append(op in BRANCH_OPS and last.target == pcs[0])
    preds = Counter()
    preds[raw_blocks[0][0]] += 1  # program entry
    for targets in succs:
        for target in targets:
            if target in leader_to:
                preds[target] += 1
    chains = []
    consumed = set()
    for index, pcs in enumerate(raw_blocks):
        if index in consumed:
            continue
        chain = [index]
        consumed.add(index)
        if not self_loop[index]:
            current = index
            while len(succs[current]) == 1:
                target = succs[current][0]
                nxt = leader_to.get(target)
                if nxt is None or nxt in consumed or self_loop[nxt] \
                        or preds[target] != 1:
                    break
                chain.append(nxt)
                consumed.add(nxt)
                current = nxt
        chains.append([raw_blocks[i] for i in chain])
    return chains


def compile_program(program, params) -> CompiledProgram:
    """Compile ``program`` (memoized per object and per structure)."""
    cached = getattr(program, "_compiled", None)
    if cached is not None and cached[0] is params:
        return cached[1]
    # Prefer the configuration-word fingerprint stamped at store time
    # (ints hash orders of magnitude faster than instruction trees); fall
    # back to the bundle tuple for programs loaded outside the config
    # memory (direct Column.load in tests).
    fingerprint = getattr(program, "_fingerprint", None)
    key = (params, fingerprint if fingerprint is not None
           else tuple(program.bundles))
    compiled = _MEMO.get(key)
    if compiled is None:
        compiled = _compile(tuple(program.bundles), params)
        _MEMO[key] = compiled
        if len(_MEMO) > _MEMO_CAP:
            _MEMO.popitem(last=False)
    program._compiled = (params, compiled)
    return compiled


_RC_READ_KINDS = (RCSrcKind.RCT, RCSrcKind.RCB)


def _hoistable_commits(bundles, pcs, body_lines) -> tuple:
    """Split a counted-loop body into per-trip lines and hoistable tails.

    Inside a loop whose trip count is known up front, the RC output
    latches (``O[i] = v``) and register-file writes (``R{i}[j] = v``) are
    dead until the final trip *when the body never reads them* — the
    compute temporaries carry the last trip's values, so the commits can
    replay once after the loop. VWR and SRF state stays per-trip (it is
    the loop's memory effect). Returns ``(loop_lines, post_lines)``.
    """
    reads_o = False
    read_regs = set()
    for pc in pcs:
        for i, instr in enumerate(bundles[pc].rcs):
            if instr.is_nop:
                continue
            for operand in instr.operands():
                kind = operand.kind
                if kind in _RC_READ_KINDS:
                    reads_o = True
                elif kind is RCSrcKind.R0:
                    read_regs.add((i, 0))
                elif kind is RCSrcKind.R1:
                    read_regs.add((i, 1))
    def _dead_latch(line: str) -> bool:
        target, _, _ = line.partition(" = ")
        if target.startswith("O["):
            return not reads_o
        if target.startswith("R") and target[1:2].isdigit() \
                and "[" in target:
            cell, _, slot = target[1:-1].partition("[")
            return cell.isdigit() and slot.isdigit() \
                and (int(cell), int(slot)) not in read_regs
        return False

    last_assign = {}
    last_commit = {}
    for position, line in enumerate(body_lines):
        target, _, _ = line.partition(" = ")
        if target.startswith("v") and target[1:].isdigit():
            last_assign[target] = position
        if _dead_latch(line):
            last_commit[target] = position
    loop_lines = []
    post = []
    for position, line in enumerate(body_lines):
        target, _, source = line.partition(" = ")
        if target in last_commit:
            if position != last_commit[target]:
                # Overwritten later in the same trip and never read in
                # the body: fully dead.
                continue
            if last_assign.get(source, -1) <= position:
                # The temporary still holds this value after the final
                # trip: replay the commit once, after the loop.
                post.append(line)
                continue
        loop_lines.append(line)
    return loop_lines, list(post)


def _member_info(members, deltas) -> tuple:
    """Per-basic-block (leader, n_cycles, delta) rows of one superblock."""
    rows = []
    for pcs in members:
        delta = Counter()
        for pc in pcs:
            delta.update(deltas[pc])
        rows.append((pcs[0], len(pcs), tuple(sorted(delta.items()))))
    return tuple(rows)


def _compile(bundles, params) -> CompiledProgram:
    gen = _BundleGen(params)
    bodies = [gen.gen(bundle) for bundle in bundles]
    deltas = [bundle_event_delta(bundle, params) for bundle in bundles]
    sig = ", ".join(f"{name}={name}" for name in signature_names(params))

    blocks = []
    sources = []
    for index, members in enumerate(superblock_chains(bundles)):
        pcs = [pc for member in members for pc in member]
        leader = pcs[0]
        last = bundles[pcs[-1]]
        uses_k = any(bodies[pc].uses_k for pc in pcs)
        sets_k = any(bodies[pc].sets_k for pc in pcs)
        op = last.lcu.op
        is_loop = op in BRANCH_OPS and last.lcu.target == leader
        plan = plan_loop(bundles, pcs, params) if is_loop else None
        counted = plan is not None and all(
            sym[0] != "u" for sym in plan.lcu_sym.values()
        )
        vector_reject = None
        if is_loop:
            if plan is None:
                vector_reject = "non_concrete_trip"
            elif not counted:
                vector_reject = plan.vector_reject or "unknown_lcu_state"
            elif not plan.vectorized:
                vector_reject = plan.vector_reject or "not_vectorized"

        fn_name = f"_b{leader}"
        lines = [f"def {fn_name}({'limit, ' if is_loop else ''}{sig}):"]
        indent = "    "
        if uses_k or sets_k:
            lines.append(f"{indent}k = col.k")
        if is_loop and not counted:
            # Loops the closed-form machinery cannot accelerate at all:
            # count the static reason once per loop entry.
            lines.append(f"{indent}_REJ[{vector_reject!r}] += 1")
        if counted:
            # Closed-form trip count, computed once at loop entry. While
            # the counter provably stays inside int32, the loop runs
            # without per-trip branch evaluation: the NumPy steady state
            # when the trip count lands in the profitable window, a
            # counted scalar loop otherwise — both reconstruct the LCU
            # registers from the affine summary. Counter wrap-around
            # falls through to the exact per-trip loop below.
            lines.append(f"{indent}_v0 = L[{plan.counter}]")
            lines.append(f"{indent}_bnd = {bound_expr(plan)}")
            for line in trip_count_lines(plan):
                lines.append(indent + line)
            lines.append(f"{indent}if _t is None or _t > limit:")
            lines.append(f"{indent}    _t = limit")
            lines.append(f"{indent}    _pc = {leader}")
            lines.append(f"{indent}else:")
            lines.append(f"{indent}    _pc = {pcs[-1] + 1}")
            lines.append(
                f"{indent}if -2147483648 <= _v0 + _t * {plan.delta} "
                "<= 2147483647:"
            )
            if plan.vectorized:
                lines.append(f"{indent}    if _t < {plan.min_trips}:")
                lines.append(f"{indent}        _REJ['trip_below_floor']"
                             " += 1")
                lines.append(f"{indent}    elif _t > {VEC_MAX_TRIPS}:")
                lines.append(f"{indent}        _REJ['trip_above_ceiling']"
                             " += 1")
                lines.append(f"{indent}    else:")
                for line in plan.vector_lines:
                    lines.append(f"{indent}        {line}")
            else:
                lines.append(f"{indent}    _REJ[{vector_reject!r}] += 1")
            counted_body, post_commits = _hoistable_commits(
                bundles, pcs,
                [line for pc in pcs for line in bodies[pc].lines],
            )
            if counted_body:
                lines.append(f"{indent}    for _ in range(_t):")
                for line in counted_body:
                    lines.append(f"{indent}        {line}")
            for line in post_commits:
                lines.append(f"{indent}    {line}")
            for reg, sym in sorted(plan.lcu_sym.items()):
                if sym[0] == "c":
                    lines.append(f"{indent}    L[{reg}] = {sym[1]}")
                elif sym[1]:
                    lines.append(
                        f"{indent}    L[{reg}] = ((L[{reg}] + _t * {sym[1]} "
                        "+ 2147483648) & 4294967295) - 2147483648"
                    )
            if sets_k:
                lines.append(f"{indent}    col.k = k")
            lines.append(f"{indent}    return _pc, _t")
            # int32 guard failed: the closed form would mispredict the
            # wrap-around — count it and run the exact per-trip loop.
            lines.append(f"{indent}else:")
            lines.append(f"{indent}    _REJ['counter_wrap'] += 1")
        if is_loop:
            lines.append(f"{indent}_n = 0")
            lines.append(f"{indent}while True:")
            body_indent = indent + "    "
        else:
            body_indent = indent
        for pc in pcs:
            for line in bodies[pc].all_lines():
                lines.append(body_indent + line)
        if is_loop:
            # Taken branch loops internally (bounded by the cycle budget);
            # fall-through or an exhausted limit returns to the dispatcher.
            lines.append(f"{body_indent}_n += 1")
            lines.append(f"{body_indent}if {_branch_cond(last.lcu)}:")
            lines.append(f"{body_indent}    if _n < limit: continue")
            lines.append(f"{body_indent}    _pc = {leader}")
            lines.append(f"{body_indent}else:")
            lines.append(f"{body_indent}    _pc = {pcs[-1] + 1}")
            lines.append(f"{body_indent}break")
            if sets_k:
                lines.append(f"{indent}col.k = k")
            lines.append(f"{indent}return _pc, _n")
        else:
            if sets_k:
                lines.append(f"{indent}col.k = k")
            if op is LCUOp.JUMP:
                ret = f"return {last.lcu.target}"
            elif op is LCUOp.EXIT:
                ret = "return -1"
            elif op in BRANCH_OPS:
                ret = (
                    f"return {last.lcu.target} if {_branch_cond(last.lcu)} "
                    f"else {pcs[-1] + 1}"
                )
            else:
                ret = f"return {pcs[-1] + 1}"
            lines.append(indent + ret)
        sources.append("\n".join(lines))

        delta = Counter()
        for pc in pcs:
            delta.update(deltas[pc])
        blocks.append(BlockInfo(
            index=index,
            leader=leader,
            n_cycles=len(pcs),
            fn_name=fn_name,
            delta=tuple(sorted(delta.items())),
            exit_next=(pcs[-1] + 1) if op is LCUOp.EXIT else -1,
            is_loop=is_loop,
            closed_form=plan is not None,
            vectorized=plan is not None and plan.vectorized,
            members=_member_info(members, deltas),
            vector_reject=vector_reject,
        ))

    source = "\n\n".join(sources)
    code = compile(source, "<vwr2a-compiled-program>", "exec")
    return CompiledProgram(params, source, code, blocks, len(bundles))
