"""VWR2A reproduction: cycle-level simulator, energy model and evaluation.

Public entry points:

* :class:`repro.core.Vwr2a` — the array simulator.
* :class:`repro.asm.ProgramBuilder` / :func:`repro.asm.parse_program` —
  writing kernels.
* ``repro.kernels`` — the paper's kernel mappings (FFT, FIR, biosignal).
* ``repro.soc`` — the host SoC substrate (CPU model, bus, FFT accelerator).
* ``repro.energy`` — the calibrated activity-based energy model.
* ``repro.app`` — the MBioTracker application of the paper's Table 5.
* ``repro.serve`` — batched window-stream serving and parameter sweeps
  for long traces on top of the fast engine (docs/serving.md).
"""

from repro.arch import DEFAULT_PARAMS, DEFAULT_SOC_PARAMS, ArchParams, SocParams
from repro.core import EventCounters, RunResult, Vwr2a

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_PARAMS",
    "DEFAULT_SOC_PARAMS",
    "ArchParams",
    "SocParams",
    "EventCounters",
    "RunResult",
    "Vwr2a",
    "__version__",
]
