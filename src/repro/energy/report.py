"""Rendering of Table-3-style power breakdowns."""

from __future__ import annotations

from repro.energy.model import EnergyReport, VWR2A_COMPONENTS

#: Display order/labels matching the paper's Table 3 rows.
TABLE3_ROWS = (
    ("dma", "DMA"),
    ("memories", "Memories"),
    ("control", "Control"),
    ("datapath", "Datapath"),
)


def table3_breakdown(report: EnergyReport) -> dict:
    """Per-component power (mW) and share, Table-3 style."""
    total_mw = sum(
        report.power_mw(component) for component in VWR2A_COMPONENTS
    )
    rows = {}
    for component, label in TABLE3_ROWS:
        power = report.power_mw(component)
        share = power / total_mw if total_mw else 0.0
        rows[label] = {"mw": power, "share": share}
    rows["Total"] = {"mw": total_mw, "share": 1.0}
    return rows


def render_table3(
    vwr2a_rows: dict, accel_rows: dict = None, title: str = ""
) -> str:
    """ASCII rendering of one or two power-breakdown columns."""
    lines = []
    if title:
        lines.append(title)
    if accel_rows is not None:
        lines.append(
            f"{'Instance':<12} {'ACCEL mW':>10} {'%':>5}   "
            f"{'VWR2A mW':>10} {'%':>5}   {'ratio':>6}"
        )
        for label in [row[1] for row in TABLE3_ROWS] + ["Total"]:
            accel = accel_rows[label]
            ours = vwr2a_rows[label]
            ratio = ours["mw"] / accel["mw"] if accel["mw"] else float("inf")
            lines.append(
                f"{label:<12} {accel['mw']:>10.4f} {accel['share']:>5.0%}   "
                f"{ours['mw']:>10.4f} {ours['share']:>5.0%}   {ratio:>6.1f}"
            )
    else:
        lines.append(f"{'Instance':<12} {'mW':>10} {'%':>6}")
        for label in [row[1] for row in TABLE3_ROWS] + ["Total"]:
            row = vwr2a_rows[label]
            lines.append(
                f"{label:<12} {row['mw']:>10.4f} {row['share']:>6.1%}"
            )
    return "\n".join(lines)
