"""Activity-based energy model.

``EnergyTable`` maps event names to per-event energies (pJ) and components
to leakage (pJ/cycle); ``EnergyModel`` folds an event tally plus elapsed
cycles into per-component energies, mirroring the paper's
switching-activity -> PrimePower flow at event granularity.

Component taxonomy (Table 3 of the paper):

* ``dma`` / ``memories`` (SPM + VWRs) / ``control`` / ``datapath`` —
  the VWR2A breakdown;
* ``accel_*`` — the fixed-function FFT accelerator;
* ``cpu`` / ``system`` — the host processor and the bus/SRAM traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import Ev

#: Which Table-3 component each event belongs to.
COMPONENT_OF_EVENT = {
    Ev.SPM_WIDE_READ: "memories",
    Ev.SPM_WIDE_WRITE: "memories",
    Ev.SPM_WORD_READ: "memories",
    Ev.SPM_WORD_WRITE: "memories",
    Ev.VWR_WIDE_READ: "memories",
    Ev.VWR_WIDE_WRITE: "memories",
    Ev.VWR_WORD_READ: "memories",
    Ev.VWR_WORD_WRITE: "memories",
    Ev.SRF_READ: "control",
    Ev.SRF_WRITE: "control",
    Ev.PM_FETCH: "control",
    Ev.LCU_ISSUE: "control",
    Ev.LCU_BRANCH: "control",
    Ev.LSU_ISSUE: "control",
    Ev.MXCU_ISSUE: "control",
    Ev.CONFIG_WORD: "control",
    Ev.COLUMN_CYCLE: "control",
    Ev.RC_ISSUE: "datapath",
    Ev.RC_ALU_ADD: "datapath",
    Ev.RC_ALU_MUL: "datapath",
    Ev.RC_ALU_SHIFT: "datapath",
    Ev.RC_ALU_LOGIC: "datapath",
    Ev.RC_ALU_MOV: "datapath",
    Ev.RC_RF_READ: "datapath",
    Ev.RC_RF_WRITE: "datapath",
    Ev.SHUFFLE_OP: "memories",
    Ev.DMA_BEAT: "dma",
    Ev.DMA_SETUP: "dma",
    Ev.BUS_BEAT: "system",
    Ev.BUS_SETUP: "system",
    Ev.SRAM_READ: "system",
    Ev.SRAM_WRITE: "system",
    Ev.CPU_CYCLE: "cpu",
    Ev.FFT_ACCEL_BUTTERFLY: "accel_datapath",
    Ev.FFT_ACCEL_MEM: "accel_memories",
    Ev.FFT_ACCEL_IO: "accel_dma",
    Ev.FFT_ACCEL_CYCLE: "accel_control",
}

#: VWR2A-side components with per-cycle leakage (charged while the
#: accelerator power domain is on).
VWR2A_COMPONENTS = ("dma", "memories", "control", "datapath")
ACCEL_COMPONENTS = (
    "accel_dma", "accel_memories", "accel_control", "accel_datapath"
)


@dataclass(frozen=True)
class EnergyTable:
    """Per-event energies (pJ) and per-component leakage (pJ/cycle)."""

    per_event_pj: dict
    leakage_pj_per_cycle: dict
    cpu_pj_per_cycle: float
    cpu_sleep_pj_per_cycle: float

    def event_energy(self, name: str) -> float:
        return self.per_event_pj.get(name, 0.0)


@dataclass
class EnergyReport:
    """Per-component energies in pJ for one measured window."""

    by_component: dict
    cycles: int
    clock_hz: float

    @property
    def total_pj(self) -> float:
        return sum(self.by_component.values())

    @property
    def total_uj(self) -> float:
        return self.total_pj * 1e-6

    @property
    def seconds(self) -> float:
        return self.cycles / self.clock_hz

    def power_mw(self, component: str = None) -> float:
        """Average power over the window, total or per component."""
        if self.seconds == 0:
            return 0.0
        pj = (
            self.total_pj if component is None
            else self.by_component.get(component, 0.0)
        )
        return pj * 1e-12 / self.seconds * 1e3

    def component_uj(self, component: str) -> float:
        return self.by_component.get(component, 0.0) * 1e-6


class EnergyModel:
    """Folds event tallies into energies with a given table."""

    #: Per-delta memo capacity (distinct static block deltas are few).
    _DELTA_MEMO_CAP = 4096

    def __init__(self, table: EnergyTable, clock_hz: float = 80e6) -> None:
        self.table = table
        self.clock_hz = clock_hz
        self._delta_memo = {}

    def _delta_components(self, delta: tuple) -> dict:
        """Per-component pJ of ONE execution of a static event delta.

        Memoized on the delta tuple: block deltas are compile-time
        constants shared across launches, so the histogram fold multiplies
        cached component vectors instead of walking events.
        """
        folded = self._delta_memo.get(delta)
        if folded is None:
            folded = {}
            for name, count in delta:
                component = COMPONENT_OF_EVENT.get(name)
                if component is None or name == Ev.CPU_CYCLE:
                    continue
                folded[component] = folded.get(component, 0.0) \
                    + count * self.table.event_energy(name)
            if len(self._delta_memo) >= self._DELTA_MEMO_CAP:
                self._delta_memo.clear()
            self._delta_memo[delta] = folded
        return folded

    def fold_histogram(
        self,
        histogram,
        cycles: int = 0,
        powered_components=(),
    ) -> EnergyReport:
        """Energy of a per-block execution histogram (the fast path).

        ``histogram`` iterates ``(delta, count)`` pairs — a block's static
        event delta (``((event, count), ...)``, as
        :attr:`repro.core.RunResult.block_histogram` carries them) and how
        many times the block executed. Each distinct delta is folded to a
        per-component pJ vector once and cached, so no intermediate
        event-counter dict is ever materialized; leakage is charged for
        ``powered_components`` over ``cycles`` exactly like
        :meth:`report`. Equal to :meth:`report` over the materialized
        event sum, up to float summation order.
        """
        by_component = {}
        for delta, count in histogram:
            for component, pj in self._delta_components(delta).items():
                by_component[component] = by_component.get(component, 0.0) \
                    + pj * count
        for component in powered_components:
            leak = self.table.leakage_pj_per_cycle.get(component, 0.0)
            by_component[component] = by_component.get(component, 0.0) \
                + leak * cycles
        return EnergyReport(
            by_component=by_component, cycles=cycles, clock_hz=self.clock_hz
        )

    def report(
        self,
        events: dict,
        cycles: int,
        powered_components=VWR2A_COMPONENTS,
        cpu_active_cycles: int = 0,
        cpu_sleep_cycles: int = 0,
    ) -> EnergyReport:
        """Energy of a window of ``cycles`` with activity ``events``.

        ``events`` is an event-count dict (e.g. ``EventCounters.diff``);
        ``powered_components`` lists the components whose leakage is
        charged for the whole window.
        """
        by_component = {}

        def add(component: str, pj: float) -> None:
            by_component[component] = by_component.get(component, 0.0) + pj

        for name, count in events.items():
            component = COMPONENT_OF_EVENT.get(name)
            if component is None or name == Ev.CPU_CYCLE:
                continue
            add(component, count * self.table.event_energy(name))
        for component in powered_components:
            leak = self.table.leakage_pj_per_cycle.get(component, 0.0)
            add(component, leak * cycles)
        if cpu_active_cycles:
            add("cpu", cpu_active_cycles * self.table.cpu_pj_per_cycle)
        if cpu_sleep_cycles:
            add("cpu", cpu_sleep_cycles * self.table.cpu_sleep_pj_per_cycle)
        return EnergyReport(
            by_component=by_component, cycles=cycles, clock_hz=self.clock_hz
        )

    def vwr2a_report(self, events: dict, cycles: int) -> EnergyReport:
        """VWR2A-only view (the paper's Table 3 scope)."""
        filtered = {
            name: count for name, count in events.items()
            if COMPONENT_OF_EVENT.get(name) in VWR2A_COMPONENTS
        }
        return self.report(
            filtered, cycles, powered_components=VWR2A_COMPONENTS
        )

    def accel_report(self, events: dict, cycles: int) -> EnergyReport:
        """FFT-accelerator-only view."""
        filtered = {
            name: count for name, count in events.items()
            if COMPONENT_OF_EVENT.get(name) in ACCEL_COMPONENTS
        }
        return self.report(
            filtered, cycles, powered_components=ACCEL_COMPONENTS
        )

    def cpu_energy_uj(self, cycles: int) -> float:
        """Energy of a CPU-only phase."""
        return cycles * self.table.cpu_pj_per_cycle * 1e-6
