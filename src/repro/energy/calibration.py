"""Calibration: paper anchors + simulated activity -> per-event energies.

The paper measures power with PrimePower on post-synthesis switching
activity; its Table 3 gives per-component power for one anchor workload
(the 512-point real-valued FFT). We invert that: run the *same* anchor on
our simulator to obtain event counts, then solve per-event energies such
that the modelled power reproduces the anchor exactly::

    P_c * T = L_c * cycles + scale_c * sum_e(w_e * N_e)      per component

with L_c fixed by the documented leakage fraction and ``w_e`` the relative
dynamic weights below (architectural reasoning: a 4096-bit wide access
costs ~a full line; a mux-side word read only switches the mux output —
the paper's Sec. 2 argument; a multiply costs ~3x an add; ...). Only the
*scale* of each component is fitted — one degree of freedom per component,
anchored to one measured number per component.

Energies for every *other* workload (FIR, delineation, the full
application) are then predictions of the model, not fits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import Ev
from repro.energy import anchors
from repro.energy.model import EnergyTable

#: Relative dynamic-energy weights within each calibrated group.
SPM_WEIGHTS = {
    Ev.SPM_WIDE_READ: 1.0,
    Ev.SPM_WIDE_WRITE: 1.05,
    Ev.SPM_WORD_READ: 0.03,
    Ev.SPM_WORD_WRITE: 0.035,
}

VWR_WEIGHTS = {
    Ev.VWR_WIDE_READ: 1.0,
    Ev.VWR_WIDE_WRITE: 1.1,
    # Only the mux outputs switch on a datapath-side read (Sec. 2).
    Ev.VWR_WORD_READ: 0.02,
    Ev.VWR_WORD_WRITE: 0.05,
    Ev.SHUFFLE_OP: 0.5,
}

CONTROL_WEIGHTS = {
    Ev.PM_FETCH: 1.0,
    Ev.LCU_ISSUE: 0.6,
    Ev.LSU_ISSUE: 0.6,
    Ev.MXCU_ISSUE: 0.6,
    Ev.LCU_BRANCH: 1.0,
    Ev.SRF_READ: 2.0,
    Ev.SRF_WRITE: 2.5,
    Ev.CONFIG_WORD: 6.0,
}

DATAPATH_WEIGHTS = {
    Ev.RC_ISSUE: 0.3,
    Ev.RC_ALU_ADD: 1.0,
    Ev.RC_ALU_MUL: 2.8,
    Ev.RC_ALU_SHIFT: 0.9,
    Ev.RC_ALU_LOGIC: 0.7,
    Ev.RC_ALU_MOV: 0.4,
    Ev.RC_RF_READ: 0.3,
    Ev.RC_RF_WRITE: 0.4,
}

DMA_WEIGHTS = {
    Ev.DMA_BEAT: 1.0,
    Ev.DMA_SETUP: 8.0,
}

ACCEL_MEM_WEIGHTS = {Ev.FFT_ACCEL_MEM: 1.0}
ACCEL_DP_WEIGHTS = {Ev.FFT_ACCEL_BUTTERFLY: 1.0}
ACCEL_IO_WEIGHTS = {Ev.FFT_ACCEL_IO: 1.0}


@dataclass(frozen=True)
class ActivityAnchor:
    """Event counts + elapsed cycles of one anchor workload run."""

    events: dict
    cycles: int


def _solve_group(
    weights: dict,
    events: dict,
    cycles: int,
    power_mw: float,
    leak_fraction: float,
    clock_hz: float,
):
    """Return (per_event_pj, leak_pj_per_cycle) for one component group."""
    total_pj = power_mw * 1e-3 / clock_hz * cycles * 1e12
    leak_pj = leak_fraction * total_pj / cycles if cycles else 0.0
    dynamic_pj = (1.0 - leak_fraction) * total_pj
    weighted = sum(
        weight * events.get(name, 0) for name, weight in weights.items()
    )
    scale = dynamic_pj / weighted if weighted else 0.0
    per_event = {name: weight * scale for name, weight in weights.items()}
    return per_event, leak_pj


def calibrate(
    vwr2a_anchor: ActivityAnchor,
    accel_anchor: ActivityAnchor,
    clock_hz: float = anchors.CLOCK_HZ,
    group_scales: dict = None,
) -> EnergyTable:
    """Solve the full energy table from the two Table-3 anchor runs.

    ``group_scales`` optionally multiplies each VWR2A group's anchor
    power before solving — how :func:`repro.energy.tables.table_for`
    retargets the Table-3 calibration at a non-paper geometry (see
    :mod:`repro.energy.scaling`). Absent groups default to ``1.0``;
    ``None`` (the default) leaves every anchor power untouched.
    """
    per_event = {}
    leakage = {}
    frac = anchors.LEAK_FRACTION
    mem_mw = anchors.VWR2A_POWER_MW["memories"]
    if group_scales is None:
        group_scales = {}

    groups = [
        ("spm", SPM_WEIGHTS, mem_mw * anchors.SPM_SHARE_OF_MEMORIES,
         frac["spm"]),
        ("vwr", VWR_WEIGHTS, mem_mw * anchors.VWR_SHARE_OF_MEMORIES,
         frac["vwr"]),
        ("control", CONTROL_WEIGHTS, anchors.VWR2A_POWER_MW["control"],
         frac["control"]),
        ("datapath", DATAPATH_WEIGHTS, anchors.VWR2A_POWER_MW["datapath"],
         frac["datapath"]),
        ("dma", DMA_WEIGHTS, anchors.VWR2A_POWER_MW["dma"], frac["dma"]),
    ]
    mem_leak = 0.0
    for name, weights, power_mw, leak_fraction in groups:
        events_pj, leak_pj = _solve_group(
            weights, vwr2a_anchor.events, vwr2a_anchor.cycles,
            power_mw * group_scales.get(name, 1.0), leak_fraction, clock_hz,
        )
        per_event.update(events_pj)
        if name in ("spm", "vwr"):
            mem_leak += leak_pj
        else:
            leakage[name] = leak_pj
    leakage["memories"] = mem_leak

    accel_groups = [
        ("accel_memories", ACCEL_MEM_WEIGHTS,
         anchors.FFT_ACCEL_POWER_MW["memories"], frac["accel_memories"]),
        ("accel_datapath", ACCEL_DP_WEIGHTS,
         anchors.FFT_ACCEL_POWER_MW["datapath"], frac["accel_datapath"]),
        ("accel_dma", ACCEL_IO_WEIGHTS,
         anchors.FFT_ACCEL_POWER_MW["dma"], frac["accel_dma"]),
    ]
    for name, weights, power_mw, leak_fraction in accel_groups:
        events_pj, leak_pj = _solve_group(
            weights, accel_anchor.events, accel_anchor.cycles,
            power_mw, leak_fraction, clock_hz,
        )
        per_event.update(events_pj)
        leakage[name] = leak_pj
    # Accelerator control is modelled as pure per-cycle cost.
    leakage["accel_control"] = (
        anchors.FFT_ACCEL_POWER_MW["control"] * 1e-3 / clock_hz * 1e12
    )

    # System side: documented estimates (see anchors module).
    per_event[Ev.SRAM_READ] = anchors.SRAM_ACCESS_PJ
    per_event[Ev.SRAM_WRITE] = anchors.SRAM_ACCESS_PJ * 1.1
    per_event[Ev.BUS_BEAT] = anchors.BUS_BEAT_PJ
    per_event[Ev.BUS_SETUP] = anchors.BUS_BEAT_PJ * 2

    return EnergyTable(
        per_event_pj=per_event,
        leakage_pj_per_cycle=leakage,
        cpu_pj_per_cycle=anchors.CPU_PJ_PER_CYCLE,
        cpu_sleep_pj_per_cycle=anchors.CPU_SLEEP_PJ_PER_CYCLE,
    )
