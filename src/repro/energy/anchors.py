"""Published power/energy anchors used for calibration.

Everything here is a number printed in the paper (or directly derivable
from two printed numbers); the calibration in ``repro.energy.calibration``
turns these into per-event energies using the *simulated* activity of the
same anchor workload, exactly as PrimePower turns switching activity into
power using library energies.
"""

from __future__ import annotations

#: Clock of every measurement (Sec. 4.3).
CLOCK_HZ = 80e6

# -- Table 3: power @ 512-point real-valued FFT, in mW -----------------------
VWR2A_POWER_MW = {
    "dma": 0.0947,
    "memories": 3.49,
    "control": 0.100,
    "datapath": 1.72,
}
VWR2A_TOTAL_MW = 5.41

FFT_ACCEL_POWER_MW = {
    "dma": 0.0107,
    "memories": 0.668,
    "control": 0.0625,
    "datapath": 0.242,
}
FFT_ACCEL_TOTAL_MW = 0.983

#: Sec. 5.1.1: within the Memories category, the SPM and the VWRs account
#: for 46% and 54% of the total (memories) power respectively.
SPM_SHARE_OF_MEMORIES = 0.46
VWR_SHARE_OF_MEMORIES = 0.54

#: Average M4 active power in pJ/cycle, from Tables 4/5 (six independent
#: cycles/energy pairs all land between 14.9 and 16.0 pJ/cycle).
CPU_PJ_PER_CYCLE = 15.0

#: CPU leakage while sleeping (WFI) — not printed in the paper; assumed
#: small and documented (affects totals < 2%).
CPU_SLEEP_PJ_PER_CYCLE = 0.5

#: System-side per-access energies (documented estimates for a 40 nm LP
#: node; these only appear in DMA-transfer phases and shift kernel totals
#: by a few percent).
SRAM_ACCESS_PJ = 10.0
BUS_BEAT_PJ = 4.0

# -- assumed leakage fractions per component (documented assumptions) --------
# The paper separates dynamic and leakage only implicitly ("wider VWRs have
# higher leakage"); these fractions control how much of each component's
# anchor power is charged per cycle vs per event. They are chosen so that
# (a) VWR latch arrays are leakage-dominated, (b) logic is
# switching-dominated, and (c) the mostly-idle DMA is leakage-dominated
# during kernels.
LEAK_FRACTION = {
    "spm": 0.35,
    "vwr": 0.60,
    "control": 0.45,
    "datapath": 0.25,
    "dma": 0.70,
    "accel_memories": 0.30,
    "accel_datapath": 0.20,
    "accel_control": 0.60,
    "accel_dma": 0.80,
}

# -- ULP-SRP comparison (Sec. 5.1.1) ------------------------------------------
ULP_SRP_FFT256_TIME_US = 839.1
ULP_SRP_FFT256_ENERGY_UJ = 19.9
VWR2A_FFT256_TIME_US = 35.6      #: paper-reported, for cross-checking
VWR2A_FFT256_ENERGY_UJ = 0.3
