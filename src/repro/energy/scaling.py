"""Geometry scaling of the Table-3 calibration powers.

The paper's Table 3 measures per-component power for *one* synthesized
design point. When ``repro.explore`` sweeps the geometry around it, each
component's anchor power is scaled by capacity/width ratios raised to the
exponents in :class:`repro.arch.EnergyScaling` — a CACTI-flavored
modeling assumption (storage arrays grow sublinearly with capacity, port
energy roughly linearly with port width), documented here rather than
hidden in hard-coded design-point shares.

Every ratio is exactly ``1.0`` at the paper's geometry, so the default
:class:`~repro.arch.ArchSpec` reproduces the published calibration
bit-identically (``x / x == 1.0`` and ``1.0 ** e == 1.0`` are exact in
IEEE-754).
"""

from __future__ import annotations

from repro.arch import DEFAULT_PARAMS, ArchSpec


def group_power_scales(spec: ArchSpec) -> dict:
    """Per-calibration-group power multipliers of ``spec`` vs the paper.

    Keys match the VWR2A group names in
    :func:`repro.energy.calibration.calibrate`: ``spm``/``vwr`` (the two
    shares of the "memories" row), ``control``, ``datapath`` and ``dma``.
    The fixed-function accelerator and the system side (CPU, SRAM, bus)
    are not part of the array geometry and never scale.
    """
    arch, knobs = spec.arch, spec.energy
    base = DEFAULT_PARAMS
    spm = (
        (arch.spm_bytes / base.spm_bytes) ** knobs.spm_capacity_exp
        * (arch.line_words / base.line_words) ** knobs.spm_port_exp
    )
    vwr_bits = arch.n_columns * arch.n_vwrs * arch.vwr_bits
    base_bits = base.n_columns * base.n_vwrs * base.vwr_bits
    vwr = (vwr_bits / base_bits) ** knobs.vwr_bits_exp
    srf_total = arch.n_columns * arch.srf_entries
    base_srf = base.n_columns * base.srf_entries
    control = (
        (arch.n_columns / base.n_columns) ** knobs.control_column_exp
        * (srf_total / base_srf) ** knobs.control_srf_exp
    )
    rc_total = arch.n_columns * arch.rcs_per_column
    base_rc = base.n_columns * base.rcs_per_column
    datapath = (rc_total / base_rc) ** knobs.datapath_rc_exp
    dma = (arch.line_words / base.line_words) ** knobs.dma_port_exp
    return {
        "spm": spm,
        "vwr": vwr,
        "control": control,
        "datapath": datapath,
        "dma": dma,
    }
