"""The calibrated energy tables, keyed by design point.

Calibration runs the paper's Table 3 anchor workload — the 512-point
real-valued FFT — once on our VWR2A simulator and once on the FFT
accelerator model, and solves the per-event energies so the modelled
per-component powers reproduce the published ones exactly (see
``repro.energy.calibration``). Results are cached per process, one table
per distinct :class:`~repro.arch.ArchSpec`; the paper's design point
(:func:`default_table`) keeps its historical bit-identical path, while
off-default geometries re-run the anchor on their own platform and scale
the anchor powers through :mod:`repro.energy.scaling`.
"""

from __future__ import annotations

from functools import lru_cache

from repro.arch import DEFAULT_SPEC, ArchSpec
from repro.core.errors import ConfigurationError
from repro.energy.anchors import CLOCK_HZ
from repro.energy.calibration import ActivityAnchor, calibrate
from repro.energy.model import EnergyModel, EnergyTable
from repro.energy.scaling import group_power_scales

ANCHOR_FFT_POINTS = 512


def _vwr2a_anchor(spec: ArchSpec = DEFAULT_SPEC) -> ActivityAnchor:
    from repro.app.signals import respiration_signal
    from repro.kernels.rfft import RfftEngine
    from repro.kernels.runner import KernelRunner

    runner = KernelRunner(spec=spec)
    engine = RfftEngine(runner, ANCHOR_FFT_POINTS)
    engine.prepare()
    samples = respiration_signal(ANCHOR_FFT_POINTS)
    before = runner.events_snapshot()
    result = engine.run(samples)
    return ActivityAnchor(
        events=runner.events_since(before),
        cycles=result.run.total_cycles,
    )


def _accel_anchor() -> ActivityAnchor:
    from repro.app.signals import respiration_signal
    from repro.core.events import EventCounters
    from repro.soc.fft_accel import FftAccelerator

    events = EventCounters()
    accel = FftAccelerator(events)
    result = accel.real_fft(respiration_signal(ANCHOR_FFT_POINTS))
    return ActivityAnchor(events=events.snapshot(), cycles=result.cycles)


@lru_cache(maxsize=1)
def default_table() -> EnergyTable:
    """The Table-3-calibrated energy table (computed once per process)."""
    return calibrate(_vwr2a_anchor(), _accel_anchor())


@lru_cache(maxsize=None)
def table_for(spec: ArchSpec) -> EnergyTable:
    """The energy table calibrated for ``spec``'s geometry.

    The paper's design point returns :func:`default_table` untouched
    (``ArchSpec.name`` is excluded from equality, so a renamed default
    still hits the same table). Other geometries re-run the anchor
    workload on their own platform and solve against the scaled anchor
    powers of :func:`~repro.energy.scaling.group_power_scales`. When a
    geometry cannot execute the 512-point anchor at all (e.g. an SPM too
    small to hold it), the paper-geometry activity stands in: the solve
    then only reflects the scaled powers, which is the dominant effect.
    """
    if spec == DEFAULT_SPEC:
        return default_table()
    try:
        vwr2a = _vwr2a_anchor(spec)
    except ConfigurationError:
        vwr2a = _vwr2a_anchor()
    return calibrate(
        vwr2a,
        _accel_anchor(),
        clock_hz=spec.arch.clock_hz,
        group_scales=group_power_scales(spec),
    )


def model_for(spec: ArchSpec) -> EnergyModel:
    """An :class:`EnergyModel` calibrated for ``spec``."""
    return EnergyModel(table_for(spec), clock_hz=spec.arch.clock_hz)


def default_model(clock_hz: float = CLOCK_HZ) -> EnergyModel:
    """An :class:`EnergyModel` over the default table."""
    return EnergyModel(default_table(), clock_hz=clock_hz)
