"""The default calibrated energy table.

Calibration runs the paper's Table 3 anchor workload — the 512-point
real-valued FFT — once on our VWR2A simulator and once on the FFT
accelerator model, and solves the per-event energies so the modelled
per-component powers reproduce the published ones exactly (see
``repro.energy.calibration``). The result is cached per process.
"""

from __future__ import annotations

from functools import lru_cache

from repro.energy.anchors import CLOCK_HZ
from repro.energy.calibration import ActivityAnchor, calibrate
from repro.energy.model import EnergyModel, EnergyTable

ANCHOR_FFT_POINTS = 512


def _vwr2a_anchor() -> ActivityAnchor:
    from repro.app.signals import respiration_signal
    from repro.kernels.rfft import RfftEngine
    from repro.kernels.runner import KernelRunner

    runner = KernelRunner()
    engine = RfftEngine(runner, ANCHOR_FFT_POINTS)
    engine.prepare()
    samples = respiration_signal(ANCHOR_FFT_POINTS)
    before = runner.events_snapshot()
    result = engine.run(samples)
    return ActivityAnchor(
        events=runner.events_since(before),
        cycles=result.run.total_cycles,
    )


def _accel_anchor() -> ActivityAnchor:
    from repro.app.signals import respiration_signal
    from repro.core.events import EventCounters
    from repro.soc.fft_accel import FftAccelerator

    events = EventCounters()
    accel = FftAccelerator(events)
    result = accel.real_fft(respiration_signal(ANCHOR_FFT_POINTS))
    return ActivityAnchor(events=events.snapshot(), cycles=result.cycles)


@lru_cache(maxsize=1)
def default_table() -> EnergyTable:
    """The Table-3-calibrated energy table (computed once per process)."""
    return calibrate(_vwr2a_anchor(), _accel_anchor())


def default_model(clock_hz: float = CLOCK_HZ) -> EnergyModel:
    """An :class:`EnergyModel` over the default table."""
    return EnergyModel(default_table(), clock_hz=clock_hz)
