"""Activity-based energy model calibrated to the paper's anchors."""

from repro.energy import anchors
from repro.energy.calibration import ActivityAnchor, calibrate
from repro.energy.model import (
    ACCEL_COMPONENTS,
    COMPONENT_OF_EVENT,
    VWR2A_COMPONENTS,
    EnergyModel,
    EnergyReport,
    EnergyTable,
)
from repro.energy.report import TABLE3_ROWS, render_table3, table3_breakdown
from repro.energy.scaling import group_power_scales
from repro.energy.tables import (
    default_model,
    default_table,
    model_for,
    table_for,
)

__all__ = [
    "anchors",
    "ActivityAnchor",
    "calibrate",
    "ACCEL_COMPONENTS",
    "COMPONENT_OF_EVENT",
    "VWR2A_COMPONENTS",
    "EnergyModel",
    "EnergyReport",
    "EnergyTable",
    "TABLE3_ROWS",
    "render_table3",
    "table3_breakdown",
    "default_model",
    "default_table",
    "group_power_scales",
    "model_for",
    "table_for",
]
