"""Shared low-level helpers: fixed-point arithmetic, bit tricks, tables."""

from repro.utils.bits import (
    bit_reverse,
    bit_reverse_indices,
    clog2,
    is_power_of_two,
    sign_extend,
    to_signed32,
    to_unsigned32,
)
from repro.utils.fixed_point import (
    FX_FRAC_BITS,
    Q15_MAX,
    Q15_MIN,
    float_to_fx,
    float_to_q15,
    fx_mul,
    fx_to_float,
    q15_add_sat,
    q15_mul,
    q15_to_float,
    sat32,
    wrap32,
)

__all__ = [
    "bit_reverse",
    "bit_reverse_indices",
    "clog2",
    "is_power_of_two",
    "sign_extend",
    "to_signed32",
    "to_unsigned32",
    "FX_FRAC_BITS",
    "Q15_MAX",
    "Q15_MIN",
    "float_to_fx",
    "float_to_q15",
    "fx_mul",
    "fx_to_float",
    "q15_add_sat",
    "q15_mul",
    "q15_to_float",
    "sat32",
    "wrap32",
]
