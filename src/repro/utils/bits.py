"""Bit-manipulation helpers used across the ISA, simulator and kernels.

All VWR2A datapath values are 32-bit two's-complement words. The simulator
stores them as Python ints in signed range [-2**31, 2**31 - 1]; these helpers
convert between signed/unsigned views and implement the bit-reversal
permutation used by the FFT kernels and the shuffle unit.
"""

from __future__ import annotations

_WORD_BITS = 32
_WORD_MASK = (1 << _WORD_BITS) - 1
_SIGN_BIT = 1 << (_WORD_BITS - 1)


def to_unsigned32(value: int) -> int:
    """Return the unsigned 32-bit view of ``value`` (any Python int)."""
    return value & _WORD_MASK


def to_signed32(value: int) -> int:
    """Return the signed 32-bit two's-complement view of ``value``."""
    value &= _WORD_MASK
    if value & _SIGN_BIT:
        return value - (1 << _WORD_BITS)
    return value


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the low ``bits`` bits of ``value`` to a Python int."""
    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    mask = (1 << bits) - 1
    value &= mask
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def clog2(value: int) -> int:
    """Ceiling log2 for positive integers (clog2(1) == 0)."""
    if value <= 0:
        raise ValueError(f"clog2 requires a positive value, got {value}")
    return (value - 1).bit_length()


def bit_reverse(index: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``index``.

    Example: bit_reverse(0b001, 3) == 0b100 and bit_reverse(0b0011, 4) ==
    0b1100. Used for the FFT output reorder and the shuffle unit's
    bit-reversal mode.
    """
    if index < 0 or index >= (1 << bits):
        raise ValueError(f"index {index} out of range for {bits} bits")
    result = 0
    for _ in range(bits):
        result = (result << 1) | (index & 1)
        index >>= 1
    return result


def bit_reverse_indices(n: int) -> list:
    """Bit-reversal permutation for a power-of-two length ``n``."""
    if not is_power_of_two(n):
        raise ValueError(f"length must be a power of two, got {n}")
    bits = clog2(n)
    return [bit_reverse(i, bits) for i in range(n)]
