"""Fixed-point arithmetic used by the VWR2A datapath and the CPU baselines.

Two formats matter in the paper:

* **16.15** — the RC multiplier's fixed-point mode (Sec. 3.1): the 64-bit
  product of two 32-bit operands is shifted right by 15... precisely, "the
  lower 16 bits are discarded, and the next 32 bits are kept". With operands
  interpreted as Q16.15 (1 sign + 16 integer + 15 fraction bits held in a
  32-bit word), discarding 16 bits of the Q32.30 product and keeping the next
  32 yields a Q17.14 value; the hardware convention (and ours) is that the
  product is pre-shifted left by one so the result is again Q16.15. The
  net effect is ``(a * b) >> 15`` truncated into 32 bits.
* **q15** — CMSIS-DSP's 16-bit format used by the Cortex-M4 baselines.

The datapath wraps (two's complement) like the synthesized ALU would; the
CMSIS-style helpers saturate like the ARM DSP instructions do.
"""

from __future__ import annotations

from repro.utils.bits import to_signed32

#: Fraction bits of the RC multiplier's fixed-point mode (16.15 format).
FX_FRAC_BITS = 15

Q15_MIN = -(1 << 15)
Q15_MAX = (1 << 15) - 1

_INT32_MIN = -(1 << 31)
_INT32_MAX = (1 << 31) - 1


def wrap32(value: int) -> int:
    """Wrap ``value`` into signed 32-bit two's-complement range."""
    return to_signed32(value)


def sat32(value: int) -> int:
    """Saturate ``value`` into signed 32-bit range."""
    if value > _INT32_MAX:
        return _INT32_MAX
    if value < _INT32_MIN:
        return _INT32_MIN
    return value


def fx_mul(a: int, b: int) -> int:
    """16.15 fixed-point multiply, the RC multiplier's fixed-point mode.

    Both operands and the result are signed 32-bit words holding Q16.15
    values. The full product is arithmetically shifted right by 15 and
    wrapped into 32 bits (overflow wraps, as a plain synthesized multiplier
    would).
    """
    return wrap32((a * b) >> FX_FRAC_BITS)


def float_to_fx(value: float) -> int:
    """Convert a float to the RC 16.15 fixed-point representation."""
    return wrap32(int(round(value * (1 << FX_FRAC_BITS))))


def fx_to_float(value: int) -> float:
    """Convert a 16.15 fixed-point word back to float."""
    return to_signed32(value) / float(1 << FX_FRAC_BITS)


def q15_sat(value: int) -> int:
    """Saturate into q15 range, as ARM ``SSAT #16`` does."""
    if value > Q15_MAX:
        return Q15_MAX
    if value < Q15_MIN:
        return Q15_MIN
    return value


def q15_add_sat(a: int, b: int) -> int:
    """Saturating q15 addition (CMSIS ``__QADD16`` behaviour per lane)."""
    return q15_sat(a + b)


def q15_mul(a: int, b: int) -> int:
    """q15 x q15 -> q15 multiply with rounding, as CMSIS-DSP computes it."""
    return q15_sat((a * b + (1 << 14)) >> 15)


def float_to_q15(value: float) -> int:
    """Convert a float in [-1, 1) to q15 (saturating)."""
    return q15_sat(int(round(value * (1 << 15))))


def q15_to_float(value: int) -> float:
    """Convert a q15 integer to float."""
    return value / float(1 << 15)
