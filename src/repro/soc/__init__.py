"""The host SoC substrate: bus, SRAM, CPU model, FFT accelerator, platform."""

from repro.soc.bus import AhbBus
from repro.soc.cpu import CortexM4Model
from repro.soc.fft_accel import AccelResult, FftAccelerator
from repro.soc.irq import InterruptController
from repro.soc.platform import BiosignalSoC
from repro.soc.power_domains import Domain, PowerManager
from repro.soc.sram import BankedSram

__all__ = [
    "AhbBus",
    "CortexM4Model",
    "AccelResult",
    "FftAccelerator",
    "InterruptController",
    "BiosignalSoC",
    "Domain",
    "PowerManager",
    "BankedSram",
]
