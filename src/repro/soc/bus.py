"""AMBA-AHB-style system bus model (Sec. 4.1/4.2).

"The SoC elements (e.g., accelerators, memories, processor) are connected
through the AMBA-AHB bus interface." We model the property the paper cares
about: "the performance of algorithms with many data accesses is dependent
on the system bus latency and bandwidth" (Sec. 2). A transfer of N words
costs one address/setup phase per burst plus one data beat per word::

    cycles = ceil(N / burst_len) * setup_cycles + N

Masters (the CPU, the SoC DMA, VWR2A's DMA) share this cost model; we do
not arbitrate concurrent masters because the paper's flows are sequential
(the CPU sleeps while accelerators work).
"""

from __future__ import annotations

from repro.arch import DEFAULT_SOC_PARAMS, SocParams
from repro.core.events import Ev, EventCounters


class AhbBus:
    """Burst-based bus cost model with event logging."""

    def __init__(
        self,
        params: SocParams = DEFAULT_SOC_PARAMS,
        events: EventCounters = None,
    ) -> None:
        self.params = params
        self.events = events if events is not None else EventCounters()

    def burst_cycles(self, n_words: int) -> int:
        """Cycle cost of transferring ``n_words`` over the bus."""
        if n_words < 0:
            raise ValueError(f"negative transfer size {n_words}")
        if n_words == 0:
            return 0
        burst_len = self.params.bus_burst_len
        n_bursts = -(-n_words // burst_len)
        self.events.add(Ev.BUS_BEAT, n_words)
        self.events.add(Ev.BUS_SETUP, n_bursts)
        return n_bursts * self.params.bus_setup_cycles + n_words

    def single_cycles(self) -> int:
        """Cycle cost of one single (non-burst) word access."""
        return self.burst_cycles(1)
