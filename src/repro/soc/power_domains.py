"""Power-domain accounting (Sec. 4.1/4.2).

"The SoC has multiple power domains that can be turned on and off during
execution to optimize energy consumption further." VWR2A "is included in
the same power domain as the other accelerators and can therefore be power
gated." The application model uses this to keep the FFT accelerator gated
during steps it cannot accelerate (the paper's preprocessing/delineation
rows show 0.0% savings precisely because the accelerator stays gated, not
because it burns idle power).

The manager tracks, per domain, how many cycles it spent powered; the
energy model multiplies those by per-domain leakage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.errors import BrownoutError, ConfigurationError


class Domain(enum.Enum):
    CPU = "cpu"
    SRAM = "sram"
    ACCELERATORS = "accelerators"  #: FFT accelerator + VWR2A + peripherals
    AFE = "afe"                    #: analog front end (not modelled further)


@dataclass
class _DomainState:
    powered: bool = False
    on_cycles: int = 0


class PowerManager:
    """On/off state and powered-time accounting for every domain."""

    def __init__(self) -> None:
        self._domains = {domain: _DomainState() for domain in Domain}
        self._domains[Domain.CPU].powered = True
        self._domains[Domain.SRAM].powered = True
        #: Armed brownout fuse: ``[domain, cycles_remaining]`` or None.
        self._brownout = None

    def power_on(self, domain: Domain) -> None:
        self._domains[domain].powered = True

    def power_off(self, domain: Domain) -> None:
        self._domains[domain].powered = False

    def is_powered(self, domain: Domain) -> bool:
        return self._domains[domain].powered

    def require(self, domain: Domain) -> None:
        """Guard used by accelerator wrappers before running."""
        if not self._domains[domain].powered:
            raise ConfigurationError(
                f"power domain {domain.value!r} is gated; power it on "
                "before use"
            )

    def advance(self, cycles: int) -> None:
        """Advance wall-clock time; charges on-time to powered domains.

        With a brownout fuse armed (:meth:`schedule_brownout`), the fuse
        burns down by ``cycles``; when it trips, the target domain is
        gated and :class:`~repro.core.errors.BrownoutError` is raised —
        mid-kernel from the execution layer's point of view, since kernel
        and DMA phases charge their whole cycle span through one call.
        """
        if cycles < 0:
            raise ValueError(f"negative time advance {cycles}")
        for state in self._domains.values():
            if state.powered:
                state.on_cycles += cycles
        if self._brownout is not None:
            self._brownout[1] -= cycles
            if self._brownout[1] <= 0:
                domain, remaining = self._brownout
                self._brownout = None
                self.power_off(domain)
                raise BrownoutError(domain, cycles + remaining)

    # -- fault injection -----------------------------------------------------

    def schedule_brownout(self, domain: Domain, after_cycles: int) -> None:
        """Arm a brownout: ``domain`` loses power ``after_cycles`` from now.

        The fault-injection hook of :mod:`repro.faults`: the fuse trips
        inside a later :meth:`advance` call (i.e. during whatever kernel,
        DMA transfer or CPU phase is charging time when the budget runs
        out) by gating the domain and raising
        :class:`~repro.core.errors.BrownoutError`. Only one fuse can be
        armed at a time; re-arming replaces the previous fuse.
        """
        if after_cycles <= 0:
            raise ConfigurationError(
                f"brownout must be scheduled in the future, got "
                f"{after_cycles} cycles"
            )
        self._brownout = [domain, after_cycles]

    def cancel_brownout(self) -> None:
        """Disarm a scheduled brownout that has not tripped yet."""
        self._brownout = None

    @property
    def brownout_armed(self) -> bool:
        return self._brownout is not None

    def on_cycles(self, domain: Domain) -> int:
        return self._domains[domain].on_cycles

    def reset_accounting(self) -> None:
        for state in self._domains.values():
            state.on_cycles = 0
