"""The SoC's banked SRAM (Sec. 4.1).

"192 KiB of static random access memory (SRAM) (divided into six banks
that can be individually power gated)". Word-granular storage with bank
power gating: accessing a gated bank is an error (software must power it
up first), and the energy model charges leakage only for powered banks.
"""

from __future__ import annotations

from repro.arch import DEFAULT_SOC_PARAMS, SocParams
from repro.core.errors import AddressError
from repro.core.events import Ev, EventCounters
from repro.utils.bits import to_signed32


class BankedSram:
    """Six-bank, power-gateable system SRAM."""

    def __init__(
        self,
        params: SocParams = DEFAULT_SOC_PARAMS,
        events: EventCounters = None,
    ) -> None:
        self.params = params
        self.events = events if events is not None else EventCounters()
        self.n_words = params.sram_bytes // params.bus_word_bytes
        self.words_per_bank = self.n_words // params.sram_banks
        self._data = [0] * self.n_words
        self._bank_on = [True] * params.sram_banks

    # -- power gating --------------------------------------------------------

    def bank_of(self, addr: int) -> int:
        self._check(addr)
        return addr // self.words_per_bank

    def set_bank_power(self, bank: int, powered: bool) -> None:
        if not 0 <= bank < self.params.sram_banks:
            raise AddressError(f"no SRAM bank {bank}")
        self._bank_on[bank] = powered

    def powered_banks(self) -> int:
        return sum(self._bank_on)

    # -- word access -----------------------------------------------------------

    def read_word(self, addr: int) -> int:
        self._check_powered(addr)
        self.events.add(Ev.SRAM_READ)
        return self._data[addr]

    def write_word(self, addr: int, value: int) -> None:
        self._check_powered(addr)
        self.events.add(Ev.SRAM_WRITE)
        self._data[addr] = to_signed32(value)

    def read_words(self, addrs) -> list:
        """Batch of word reads (one event record for the whole batch)."""
        data = self._data
        n_words = self.n_words
        bank_on = self._bank_on
        words_per_bank = self.words_per_bank
        for addr in addrs:
            if not 0 <= addr < n_words or not bank_on[addr // words_per_bank]:
                self._check_powered(addr)
        self.events.add(Ev.SRAM_READ, len(addrs))
        return [data[addr] for addr in addrs]

    def write_words(self, addr: int, values) -> None:
        """Batch of consecutive word writes (bulk event record)."""
        if values:
            self._check(addr)
            self._check(addr + len(values) - 1)
            first = addr // self.words_per_bank
            last = (addr + len(values) - 1) // self.words_per_bank
            for bank in range(first, last + 1):
                if not self._bank_on[bank]:
                    self._check_powered(bank * self.words_per_bank)
        self.events.add(Ev.SRAM_WRITE, len(values))
        self._data[addr:addr + len(values)] = [
            to_signed32(v) for v in values
        ]

    # -- debug/test accessors (no events) ----------------------------------------

    def peek_words(self, addr: int, count: int) -> list:
        self._check(addr)
        if addr + count > self.n_words:
            raise AddressError(
                f"peek of {count} words at {addr} exceeds SRAM"
            )
        return self._data[addr:addr + count]

    def poke_words(self, addr: int, values) -> None:
        self._check(addr)
        if addr + len(values) > self.n_words:
            raise AddressError(
                f"poke of {len(values)} words at {addr} exceeds SRAM"
            )
        self._data[addr:addr + len(values)] = [to_signed32(v) for v in values]

    def _check(self, addr: int) -> None:
        if not 0 <= addr < self.n_words:
            raise AddressError(
                f"SRAM word address {addr} out of range [0, {self.n_words})"
            )

    def _check_powered(self, addr: int) -> None:
        self._check(addr)
        bank = addr // self.words_per_bank
        if not self._bank_on[bank]:
            raise AddressError(
                f"SRAM bank {bank} is power-gated; address {addr} is "
                "inaccessible until the bank is powered up"
            )
