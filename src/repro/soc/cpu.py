"""The host CPU: an ARM Cortex-M4F cycle-cost model.

The paper uses the M4 only as a measured baseline: its kernels run the
CMSIS-DSP q15 library and are characterized by total cycles and an average
power of ~1.2 mW (derivable from Tables 4 and 5: e.g. FIR-256 takes
24 747 cycles and 0.37 uJ -> 14.95 pJ/cycle at 80 MHz). We therefore model
the CPU as: (a) bit-accurate functional execution of the baseline kernels
(``repro.baselines``), and (b) an accumulator of cycles charged by each
kernel's calibrated cost model. The cost constants live with the kernels;
this class owns the accounting and the "CPU runs / sleeps" state the
application model uses.
"""

from __future__ import annotations

from repro.core.events import Ev, EventCounters


class CortexM4Model:
    """Cycle accountant for the host processor."""

    def __init__(self, events: EventCounters = None) -> None:
        self.events = events if events is not None else EventCounters()
        self.active_cycles = 0
        self.sleep_cycles = 0

    def charge(self, cycles: int) -> int:
        """Account for ``cycles`` of active CPU execution."""
        if cycles < 0:
            raise ValueError(f"negative cycle charge {cycles}")
        self.active_cycles += cycles
        self.events.add(Ev.CPU_CYCLE, cycles)
        return cycles

    def sleep(self, cycles: int) -> int:
        """Account for cycles spent in WFI while an accelerator works.

        Sleeping costs no active-power cycles; the energy model charges
        only leakage for this time.
        """
        if cycles < 0:
            raise ValueError(f"negative sleep {cycles}")
        self.sleep_cycles += cycles
        return cycles

    def reset(self) -> None:
        self.active_cycles = 0
        self.sleep_cycles = 0
