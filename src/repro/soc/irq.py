"""Interrupt lines of the SoC.

"VWR2A informs the processor when a kernel execution, or a DMA transfer,
is finished through an interrupt line." (Sec. 4.2.) The controller is a
set of named lines with pending flags; the CPU model's wait-for-interrupt
is what converts accelerator busy time into CPU sleep time.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError


class InterruptController:
    """Named interrupt lines with pending/acknowledge semantics."""

    def __init__(self, lines=("vwr2a", "fft_accel", "dma")) -> None:
        self._pending = {name: False for name in lines}

    def raise_line(self, name: str) -> None:
        self._check(name)
        self._pending[name] = True

    def pending(self, name: str) -> bool:
        self._check(name)
        return self._pending[name]

    def acknowledge(self, name: str) -> None:
        self._check(name)
        self._pending[name] = False

    def any_pending(self) -> bool:
        return any(self._pending.values())

    def _check(self, name: str) -> None:
        if name not in self._pending:
            raise ConfigurationError(
                f"unknown interrupt line {name!r} "
                f"(known: {sorted(self._pending)})"
            )
