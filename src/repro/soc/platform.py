"""The full biosignal SoC (Sec. 4.1/4.2).

Wires together the Cortex-M4 model, the banked SRAM, the AHB bus, the
fixed-function FFT accelerator and VWR2A — the platform the paper
integrates VWR2A into. All components share one :class:`EventCounters`,
so a platform-level energy breakdown falls out of a single run.
"""

from __future__ import annotations

from repro.arch import (
    DEFAULT_PARAMS,
    DEFAULT_SOC_PARAMS,
    ArchParams,
    ArchSpec,
    SocParams,
)
from repro.core.cgra import Vwr2a
from repro.core.errors import ConfigurationError
from repro.core.events import EventCounters
from repro.soc.bus import AhbBus
from repro.soc.cpu import CortexM4Model
from repro.soc.fft_accel import FftAccelerator
from repro.soc.irq import InterruptController
from repro.soc.power_domains import Domain, PowerManager
from repro.soc.sram import BankedSram

#: The platform's default execution-engine selection (see docs/engine.md).
#: The single source of truth — the serving layer reads it rather than
#: mirroring the string.
DEFAULT_ENGINE = "auto"


class BiosignalSoC:
    """The MUSEIC-like platform hosting VWR2A."""

    def __init__(
        self,
        params: ArchParams = None,
        soc_params: SocParams = None,
        engine: str = DEFAULT_ENGINE,
        spec: ArchSpec = None,
    ) -> None:
        if spec is None:
            spec = ArchSpec(
                arch=params if params is not None else DEFAULT_PARAMS,
                soc=soc_params if soc_params is not None else
                DEFAULT_SOC_PARAMS,
            )
        elif (params is not None and params != spec.arch) or (
            soc_params is not None and soc_params != spec.soc
        ):
            raise ConfigurationError(
                "pass either spec= or params=/soc_params=, not disagreeing "
                "both: the spec is the single source of geometry"
            )
        self.spec = spec
        self.params = spec.arch
        self.soc_params = spec.soc
        params, soc_params = self.params, self.soc_params
        self.events = EventCounters()
        self.bus = AhbBus(soc_params, self.events)
        self.sram = BankedSram(soc_params, self.events)
        self.cpu = CortexM4Model(self.events)
        self.fft_accel = FftAccelerator(self.events)
        self.vwr2a = Vwr2a(
            params,
            events=self.events,
            bus=self.bus,
            dma_setup_cycles=soc_params.dma_setup_cycles,
            engine=engine,
            spec=spec,
        )
        self.power = PowerManager()
        self.irq = InterruptController()
        self.vwr2a.synchronizer.on_irq(
            lambda record: self.irq.raise_line("vwr2a")
        )

    # -- accelerator access with power-domain discipline ----------------------

    def with_accelerators(self):
        """Power the accelerator domain on (idempotent)."""
        self.power.power_on(Domain.ACCELERATORS)

    def without_accelerators(self):
        """Gate the accelerator domain (CPU-only phases)."""
        self.power.power_off(Domain.ACCELERATORS)

    def run_vwr2a_kernel(self, name: str, max_cycles: int = None):
        """Run a stored kernel; the CPU sleeps until the completion IRQ."""
        self.power.require(Domain.ACCELERATORS)
        result = self.vwr2a.run(name, max_cycles=max_cycles)
        total = result.total_cycles
        self.cpu.sleep(total)
        self.power.advance(total)
        self.irq.acknowledge("vwr2a")
        return result

    def run_cpu(self, cycles: int) -> int:
        """Account for a CPU-executed phase of ``cycles``."""
        charged = self.cpu.charge(cycles)
        self.power.advance(charged)
        return charged

    def dma_to_vwr2a(self, src_word: int, dst_word: int, n_words: int) -> int:
        """SRAM -> SPM transfer through VWR2A's DMA; CPU sleeps meanwhile."""
        self.power.require(Domain.ACCELERATORS)
        cycles = self.vwr2a.dma_to_spm(self.sram, src_word, dst_word, n_words)
        self.cpu.sleep(cycles)
        self.power.advance(cycles)
        return cycles

    def dma_from_vwr2a(self, src_word: int, dst_word: int, n_words: int) -> int:
        """SPM -> SRAM transfer through VWR2A's DMA."""
        self.power.require(Domain.ACCELERATORS)
        cycles = self.vwr2a.dma_from_spm(
            self.sram, src_word, dst_word, n_words
        )
        self.cpu.sleep(cycles)
        self.power.advance(cycles)
        return cycles
