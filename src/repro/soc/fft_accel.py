"""The fixed-function FFT accelerator of the host SoC (Sec. 4.1).

"It computes FFTs and inverse FFTs up to 4096 points, with an optimized
flow for real-valued inputs. The FFT weights are stored in internal ROMs,
whereas a dual-port memory is used to store the data. To avoid overflow,
this custom FFT accelerator uses an internal representation of 18 bits with
dynamic scaling." The SoC implementation is "a mixed radix-2 and radix-4
implementation" (Sec. 4.4.1).

Functional model
----------------
Block-floating-point FFT on 18-bit integers: before each stage, the whole
block is shifted right when its magnitude approaches the 18-bit limit and
the scale exponent is incremented (classic dynamic scaling). Twiddles are
q15 ROM values. The numeric result is radix-independent, so the functional
pass uses radix-2 stages; the *cycle* model counts the mixed radix-2/4
stage structure the RTL uses.

Cycle model
-----------
::

    cycles = SETUP + IO_WORD * io_words
           + R4_BUTTERFLY * n_radix4_butterflies
           + R2_BUTTERFLY * n_radix2_butterflies
           + RECOMB * n_recombine          (real-valued flow only)

The five constants are least-squares fitted to the six accelerator cycle
counts of the paper's Table 2 (fit residuals < 6%, see EXPERIMENTS.md):
R4 = 8.1, R2 = 4.8, IO_WORD = 1.5, SETUP = 200, RECOMB = 0.4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.core.events import Ev, EventCounters
from repro.utils.bits import clog2, is_power_of_two

#: Internal datapath width (bits) and its signed limits.
DATA_BITS = 18
_DATA_MAX = (1 << (DATA_BITS - 1)) - 1
_DATA_MIN = -(1 << (DATA_BITS - 1))
#: Magnitude threshold that triggers a dynamic-scaling shift: growth of a
#: radix-2 butterfly is bounded by 2x + twiddle rounding, so one headroom
#: bit suffices.
_SCALE_THRESHOLD = 1 << (DATA_BITS - 2)

#: Cycle-model constants fitted to Table 2 (see module docstring).
SETUP_CYCLES = 200
R4_BUTTERFLY_CYCLES = 8.1
R2_BUTTERFLY_CYCLES = 4.8
IO_WORD_CYCLES = 1.5
RECOMB_CYCLES = 0.4

MAX_POINTS = 4096


@dataclass(frozen=True)
class AccelResult:
    """Output of one accelerator run."""

    re: list              #: spectrum real parts (18-bit mantissas)
    im: list              #: spectrum imaginary parts
    scale: int            #: block exponent: X = mantissa * 2**scale / 2**15
    cycles: int           #: modelled execution + IO cycles

    def spectrum(self) -> list:
        """The complex spectrum as floats (undoing q15 + block scaling)."""
        factor = float(2 ** self.scale) / (1 << 15)
        return [
            complex(r * factor, i * factor)
            for r, i in zip(self.re, self.im)
        ]


def _stage_counts(n: int) -> tuple:
    """(radix-4 butterflies, radix-2 butterflies) of the mixed RTL flow."""
    m = clog2(n)
    r4_stages, r2_stages = divmod(m, 2)
    return r4_stages * (n // 4), r2_stages * (n // 2)


def _twiddle_q15(k: int, n: int) -> tuple:
    angle = -2.0 * math.pi * k / n
    return (
        int(round(math.cos(angle) * ((1 << 15) - 1))),
        int(round(math.sin(angle) * ((1 << 15) - 1))),
    )


class FftAccelerator:
    """Functional + cycle model of the SoC's FFT engine."""

    def __init__(self, events: EventCounters = None) -> None:
        self.events = events if events is not None else EventCounters()

    # -- public entry points -------------------------------------------------

    def complex_fft(self, re, im) -> AccelResult:
        """N-point complex FFT; inputs are q15 integers."""
        n = len(re)
        self._check_size(n, len(im))
        work_re = [int(v) for v in re]
        work_im = [int(v) for v in im]
        scale = self._fft_in_place(work_re, work_im)
        bf4, bf2 = _stage_counts(n)
        io_words = 2 * n  # packed complex in + out over the bus
        cycles = self._cycles(bf4, bf2, io_words, 0)
        return AccelResult(re=work_re, im=work_im, scale=scale, cycles=cycles)

    def real_fft(self, samples) -> AccelResult:
        """N-point real-input FFT via the optimized N/2-complex flow.

        Returns the N/2+1 non-redundant spectrum bins.
        """
        n = len(samples)
        self._check_size(n, n)
        half = n // 2
        # Pack even/odd samples as a complex sequence.
        work_re = [int(samples[2 * i]) for i in range(half)]
        work_im = [int(samples[2 * i + 1]) for i in range(half)]
        scale = self._fft_in_place(work_re, work_im)
        out_re, out_im = self._real_recombine(work_re, work_im, n)
        bf4, bf2 = _stage_counts(half)
        io_words = n + (half + 1)
        cycles = self._cycles(bf4, bf2, io_words, half)
        return AccelResult(re=out_re, im=out_im, scale=scale, cycles=cycles)

    # -- internals -----------------------------------------------------------

    def _check_size(self, n: int, other: int) -> None:
        if n != other:
            raise ConfigurationError("re/im length mismatch")
        if not is_power_of_two(n) or not 4 <= n <= MAX_POINTS:
            raise ConfigurationError(
                "the accelerator supports power-of-two sizes 4..4096, "
                f"got {n}"
            )

    def _cycles(self, bf4: int, bf2: int, io_words: int, recomb: int) -> int:
        cycles = int(round(
            SETUP_CYCLES
            + R4_BUTTERFLY_CYCLES * bf4
            + R2_BUTTERFLY_CYCLES * bf2
            + IO_WORD_CYCLES * io_words
            + RECOMB_CYCLES * recomb
        ))
        self.events.add(Ev.FFT_ACCEL_BUTTERFLY, bf4 + bf2)
        # Internal dual-port data-memory traffic: a butterfly reads and
        # writes four complex operands (8 accesses), on top of the IO words
        # streamed in/out over the bus.
        self.events.add(Ev.FFT_ACCEL_MEM, io_words + 8 * (bf4 + bf2))
        self.events.add(Ev.FFT_ACCEL_IO, io_words)
        self.events.add(Ev.FFT_ACCEL_CYCLE, cycles)
        return cycles

    def _fft_in_place(self, re, im) -> int:
        """Radix-2 DIT block-floating-point FFT; returns the exponent."""
        n = len(re)
        bits = clog2(n)
        # Bit-reversed reorder.
        for i in range(n):
            j = int(bin(i)[2:].zfill(bits)[::-1], 2)
            if j > i:
                re[i], re[j] = re[j], re[i]
                im[i], im[j] = im[j], im[i]
        scale = 0
        length = 2
        while length <= n:
            # Dynamic scaling: keep one headroom bit before the stage.
            peak = max(
                max(abs(v) for v in re), max(abs(v) for v in im)
            )
            if peak >= _SCALE_THRESHOLD:
                for i in range(n):
                    re[i] >>= 1
                    im[i] >>= 1
                scale += 1
            half = length // 2
            for start in range(0, n, length):
                for k in range(half):
                    w_re, w_im = _twiddle_q15(k, length)
                    i = start + k
                    j = i + half
                    t_re = (re[j] * w_re - im[j] * w_im) >> 15
                    t_im = (re[j] * w_im + im[j] * w_re) >> 15
                    re[j] = self._clamp(re[i] - t_re)
                    im[j] = self._clamp(im[i] - t_im)
                    re[i] = self._clamp(re[i] + t_re)
                    im[i] = self._clamp(im[i] + t_im)
            length *= 2
        return scale

    def _real_recombine(self, z_re, z_im, n: int) -> tuple:
        """Split the packed N/2 FFT into the N-point real spectrum."""
        half = n // 2
        out_re = [0] * (half + 1)
        out_im = [0] * (half + 1)
        out_re[0] = self._clamp(z_re[0] + z_im[0])
        out_im[0] = 0
        out_re[half] = self._clamp(z_re[0] - z_im[0])
        out_im[half] = 0
        for k in range(1, half):
            j = half - k
            f_re = (z_re[k] + z_re[j]) >> 1          # even part (real)
            f_im = (z_im[k] - z_im[j]) >> 1
            g_re = (z_im[k] + z_im[j]) >> 1          # odd part (x -i*conj)
            g_im = (z_re[j] - z_re[k]) >> 1
            w_re, w_im = _twiddle_q15(k, n)
            t_re = (g_re * w_re - g_im * w_im) >> 15
            t_im = (g_re * w_im + g_im * w_re) >> 15
            out_re[k] = self._clamp(f_re + t_re)
            out_im[k] = self._clamp(f_im + t_im)
        return out_re, out_im

    @staticmethod
    def _clamp(value: int) -> int:
        if value > _DATA_MAX:
            return _DATA_MAX
        if value < _DATA_MIN:
            return _DATA_MIN
        return value
