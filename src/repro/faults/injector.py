"""Per-attempt fault injection and healing on a live platform.

A :class:`FaultInjector` executes a :class:`~repro.faults.FaultPlan`
against one :class:`~repro.kernels.KernelRunner`'s platform, one serving
*attempt* at a time:

``begin_attempt`` looks up the faults scheduled for the window that still
fire at this attempt (``FaultSpec.fires``), applies chunk faults to the
window's samples, arms the power-domain brownout fuse, hooks SPM upsets
onto the runner's kernel-launch boundary, and — in pool workers only —
executes process faults (kill/hang). ``end_attempt`` disarms everything,
heals the SPM (scrub-on-detect: every injection recorded its displaced
word), restores browned-out domains, and reports which fault kinds fired.

**Detection model.** The serving layer does not guess at corruption: a
fault that fired *is* the detection signal, standing in for the parity/
ECC flags and power-good monitors such an SoC carries. Any attempt whose
injector reports fired faults (or that died of a
:class:`~repro.core.errors.BrownoutError`) is discarded and retried;
because transient faults stop firing after ``persist`` attempts and the
injector healed the platform, the retry is clean and bit-identical to an
uninjected run. See docs/robustness.md.
"""

from __future__ import annotations

import os
import signal
import time

from repro.core.errors import BrownoutError, ConfigurationError
from repro.faults.plan import NET_FAULTS, FaultPlan
from repro.serve.stream import corrupt_chunk, truncate_chunk
from repro.soc.power_domains import Domain

#: Exception types that classify a failed attempt as fault-induced even
#: when the injector's fired record alone would not (the brownout raises
#: from inside the platform rather than returning corrupt data).
FAULT_ERRORS = (BrownoutError,)


def is_fault_failure(exc: BaseException, fired: tuple) -> bool:
    """Whether a failed serving attempt should be retried as a fault."""
    return bool(fired) or isinstance(exc, FAULT_ERRORS)


class FaultInjector:
    """Drives a :class:`FaultPlan` against one runner, attempt by attempt.

    ``process_faults`` gates the self-destructive kinds: only pool
    workers enable it — a sequential :class:`~repro.serve.StreamScheduler`
    would kill or hang the host process, so there those specs are counted
    under ``skipped`` instead of executed.
    """

    def __init__(self, plan: FaultPlan, process_faults: bool = False) -> None:
        if not isinstance(plan, FaultPlan):
            raise ConfigurationError(
                f"FaultInjector needs a FaultPlan, got {type(plan).__name__}"
            )
        self.plan = plan
        self.process_faults = process_faults
        #: Lifetime tally of fired fault kinds (observability/campaigns).
        self.counters = {}
        #: Process-fault specs ignored because process_faults is off.
        self.skipped = 0
        #: Called right before a process fault executes. Pool workers
        #: install a results-queue flush here: SIGKILL landing while the
        #: queue's feeder thread is mid-write would leave a torn message
        #: in the pipe and deadlock the host's next read, so every
        #: already-reported result must be fully on the wire first.
        self.before_process_fault = None
        self._runner = None
        self._fired = []
        self._heal = []        # (addr, original) SPM words to scrub back
        self._stuck = []       # (spec) stuck cells reasserted per launch
        self._pending = []     # SPM specs waiting for their launch index
        self._launches = 0
        self._brownout_domain = None

    # -- attempt lifecycle ---------------------------------------------------

    def begin_attempt(self, runner, window, attempt: int,
                      engine: str = "auto"):
        """Arm every fault of ``window`` that fires at ``attempt``.

        Returns the window to actually serve — chunk faults corrupt or
        truncate its samples, everything else passes it through. Process
        faults execute immediately (never returning, by design).
        """
        self._runner = runner
        self._fired = []
        self._heal = []
        self._stuck = []
        self._pending = []
        self._launches = 0
        self._brownout_domain = None
        for spec in self.plan.for_window(window.index):
            if not spec.fires(attempt, engine):
                continue
            kind = spec.kind
            if kind in NET_FAULTS:
                # Transport faults live in the framing layer's NetGate;
                # a platform-side injector passes them through untouched
                # (the fleet strips them via FaultPlan.without_net, but
                # a full plan must stay harmless here regardless).
                continue
            if kind in ("worker_kill", "worker_hang"):
                if not self.process_faults:
                    self.skipped += 1
                    continue
                self._record(kind)
                if self.before_process_fault is not None:
                    self.before_process_fault()
                if kind == "worker_kill":
                    _kill_self()
                else:
                    _hang_self()
            elif kind == "chunk_corrupt":
                self._record(kind)
                window = corrupt_chunk(window, spec.offset, spec.xor_mask)
            elif kind == "chunk_truncate":
                self._record(kind)
                window = truncate_chunk(window, spec.keep)
            elif kind == "brownout":
                self._record(kind)
                domain = Domain(spec.domain)
                self._brownout_domain = domain
                runner.soc.power.schedule_brownout(
                    domain, spec.after_cycles
                )
            else:  # spm_bitflip / spm_stuck wait for their launch
                self._pending.append(spec)
        if self._pending:
            runner.fault_hook = self._on_launch
        return window

    def end_attempt(self) -> tuple:
        """Disarm, heal, and report the attempt's fired fault kinds.

        Healing order is deliberate: stuck cells stop reasserting first,
        then displaced words are scrubbed back newest-first, the brownout
        fuse is cleared and its domain repowered. After this the platform
        is exactly as an uninjected attempt would have left it — the
        bit-identity of fault-free retries depends on it.
        """
        runner, self._runner = self._runner, None
        if runner is None:
            return ()
        runner.fault_hook = None
        self._stuck = []
        self._pending = []
        spm = runner.soc.vwr2a.spm
        for addr, original in reversed(self._heal):
            spm.heal_word(addr, original)
        self._heal = []
        power = runner.soc.power
        power.cancel_brownout()
        if self._brownout_domain is not None:
            power.power_on(self._brownout_domain)
            self._brownout_domain = None
        fired, self._fired = tuple(self._fired), []
        return fired

    # -- launch-boundary hook ------------------------------------------------

    def _on_launch(self, name: str) -> None:
        """Land armed SPM faults at their kernel-launch boundary.

        Called by :meth:`KernelRunner.launch` right before every kernel
        of the attempt. Bit-flips strike once, at the first boundary at
        or past their ``at_launch``; stuck cells strike at theirs and
        then reassert at every later boundary, so kernel writes to the
        cell are lost again before the next reader. A spec whose
        boundary is never reached (kernel-free pipeline) does not fire —
        an upset in memory nobody launches against is unobservable.
        """
        spm = self._runner.soc.vwr2a.spm
        index = self._launches
        self._launches += 1
        still_pending = []
        for spec in self._pending:
            if index < spec.at_launch:
                still_pending.append(spec)
                continue
            self._record(spec.kind)
            if spec.kind == "spm_bitflip":
                original = spm.inject_bitflip(spec.addr, spec.bit)
            else:
                original = spm.inject_stuck(spec.addr, spec.value)
                self._stuck.append(spec)
            self._heal.append((spec.addr, original))
        self._pending = still_pending
        for spec in self._stuck:
            spm.inject_stuck(spec.addr, spec.value)

    def _record(self, kind: str) -> None:
        self._fired.append(kind)
        self.counters[kind] = self.counters.get(kind, 0) + 1


def _kill_self() -> None:
    """Die the way hostile hardware dies: without a traceback."""
    if hasattr(signal, "SIGKILL"):
        os.kill(os.getpid(), signal.SIGKILL)
    os._exit(137)  # deliberate silent death: no atexit, no traceback


def _hang_self() -> None:
    """Stop making progress until the supervisor's hang-kill arrives."""
    while True:
        time.sleep(3600)
