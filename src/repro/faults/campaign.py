"""Chaos campaigns: sweep fault kinds × rates, prove the stack survives.

A :class:`FaultCampaign` is the proof harness on top of the injection
(:mod:`repro.faults.plan`/:mod:`repro.faults.injector`) and resilience
(:class:`~repro.serve.PoolScheduler` supervision, retry ladders,
quarantine) layers. For every cell of a ``kinds × rates × persists``
grid it generates a seeded :class:`FaultPlan`, serves the same trace
through the self-healing pool, and checks the resilience contract of
docs/robustness.md:

* **recoverable cells** (the fault persists fewer attempts than the
  retry ladder is long) must quarantine *nothing* and produce served
  windows bit-identical to an uninjected baseline run — recovery is
  invisible in the simulated results, visible only in the resilience
  counters;
* **unrecoverable cells** must account every window explicitly: served
  windows stay bit-identical, the rest land in
  :attr:`~repro.serve.StreamReport.failed_windows` with their fault
  pedigree — never a crash, never a silent gap.

The module doubles as the CI smoke job::

    python -m repro.faults.campaign --windows 4 --rates 0.5 \
        --kinds spm_bitflip,chunk_corrupt,worker_kill --json report.json

which exits non-zero when any cell breaks the contract.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import asdict, dataclass, field

from repro.core.errors import ConfigurationError
from repro.faults.plan import FAULT_KINDS, NET_FAULTS, FaultPlan
from repro.obs.bus import get_bus

#: Default sweep: one representative of every fault layer.
DEFAULT_KINDS = (
    "spm_bitflip", "spm_stuck", "brownout", "chunk_corrupt",
    "chunk_truncate", "worker_kill",
)


@dataclass(frozen=True)
class CampaignCell:
    """Outcome of one ``(kind, rate, persist)`` cell of the sweep."""

    kind: str          #: fault kind injected in this cell
    rate: float        #: per-window injection probability
    persist: int       #: attempts each fault keeps firing
    seed: int          #: the cell's plan-generation seed
    recoverable: bool  #: expectation: the retry ladder out-lives the fault
    n_faults: int      #: faults the generated plan scheduled
    n_windows: int     #: windows in the stream
    n_served: int      #: windows that produced results
    n_quarantined: int  #: windows quarantined after exhausting retries
    bit_identical: bool  #: served windows match the uninjected baseline
    mismatch: str      #: first difference when they do not (else None)
    resilience: dict   #: the run's resilience counters
    wall_seconds: float  #: host wall clock of the injected run
    #: which executor served the cell: ``"pool"`` (in-process worker
    #: pool) or ``"fleet"`` (TCP loopback fleet — the ``net_*`` kinds).
    transport: str = "pool"

    @property
    def ok(self) -> bool:
        """Whether the cell honored the resilience contract.

        Served windows must be bit-identical to the baseline, every
        window must be accounted for (served or quarantined), and a
        recoverable cell must quarantine nothing.
        """
        if not self.bit_identical:
            return False
        if self.n_served + self.n_quarantined != self.n_windows:
            return False
        if self.recoverable and self.n_quarantined:
            return False
        return True


@dataclass
class CampaignReport:
    """Every cell of one campaign, plus the shared sweep parameters."""

    config: str
    seed: int
    n_windows: int
    workers: int
    max_retries: int
    reference_fallback: bool
    cells: list = field(default_factory=list)
    baseline_wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Every cell honored the contract (and there was at least one)."""
        return bool(self.cells) and all(cell.ok for cell in self.cells)

    @property
    def failures(self) -> list:
        return [cell for cell in self.cells if not cell.ok]

    def to_json(self, indent: int = 2) -> str:
        """The whole report as JSON (the CI artifact format)."""
        return json.dumps(
            {
                "config": self.config,
                "seed": self.seed,
                "n_windows": self.n_windows,
                "workers": self.workers,
                "max_retries": self.max_retries,
                "reference_fallback": self.reference_fallback,
                "baseline_wall_seconds": self.baseline_wall_seconds,
                "ok": self.ok,
                "net": self.net_section(),
                "cells": [
                    dict(asdict(cell), ok=cell.ok) for cell in self.cells
                ],
            },
            indent=indent,
        )

    def net_section(self) -> dict:
        """The network-chaos slice of the report (the ``--net`` cells)."""
        net_cells = [c for c in self.cells if c.transport == "fleet"]
        return {
            "swept": bool(net_cells),
            "cells": len(net_cells),
            "kinds": sorted({c.kind for c in net_cells}),
            "ok": all(c.ok for c in net_cells) if net_cells else True,
        }

    def summary(self) -> str:
        """Human-readable digest, one line per cell."""
        lines = [
            f"fault campaign: {len(self.cells)} cells over "
            f"{self.n_windows} windows under {self.config!r} "
            f"(workers={self.workers}, max_retries={self.max_retries}, "
            f"reference_fallback={self.reference_fallback}, "
            f"seed={self.seed})"
        ]
        for cell in self.cells:
            verdict = "ok" if cell.ok else "CONTRACT BROKEN"
            detail = ""
            if not cell.bit_identical:
                detail = f" [{cell.mismatch}]"
            over = (
                f" over {cell.transport}" if cell.transport != "pool"
                else ""
            )
            lines.append(
                f"  {cell.kind} @ rate={cell.rate} persist={cell.persist}"
                f"{over} "
                f"({'recoverable' if cell.recoverable else 'unrecoverable'}"
                f", {cell.n_faults} faults): {cell.n_served} served, "
                f"{cell.n_quarantined} quarantined — {verdict}{detail}"
            )
        lines.append(
            "  verdict: "
            + ("all cells honored the resilience contract" if self.ok
               else f"{len(self.failures)} cells broke the contract")
        )
        return "\n".join(lines)


class FaultCampaign:
    """Sweeps fault kinds × rates × persistence over the serving stack.

    ``kinds``/``rates``/``persists`` span the grid; every cell draws its
    own :class:`FaultPlan` from a seed derived deterministically from
    ``seed``, so a campaign is exactly reproducible. ``workers`` sizes
    the :class:`~repro.serve.PoolScheduler` each cell runs on
    (``workers=1`` still supervises one worker process — process faults
    need an expendable worker). ``respawn_limit=None`` (default) sizes
    the respawn budget per cell from the plan's own process-fault count;
    ``heartbeat_timeout`` defaults to 5 seconds when the grid includes
    ``worker_hang``.
    """

    def __init__(self, config: str = "cpu_vwr2a", kinds=None,
                 rates=(0.25,), persists=(1,), seed: int = 0,
                 workers: int = 2, max_retries: int = 2,
                 reference_fallback: bool = True, respawn_limit=None,
                 heartbeat_timeout: float = None, params=None,
                 pipeline=None, energy_model=None,
                 compiled_only: bool = False,
                 task_deadline: float = None) -> None:
        kinds = tuple(kinds) if kinds is not None else DEFAULT_KINDS
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown fault kind {kind!r} "
                    f"(choose from {FAULT_KINDS})"
                )
        if not kinds or not tuple(rates) or not tuple(persists):
            raise ConfigurationError(
                "a campaign needs at least one kind, rate and persist"
            )
        self.config = config
        self.kinds = kinds
        self.rates = tuple(rates)
        self.persists = tuple(persists)
        self.seed = seed
        self.workers = workers
        self.max_retries = max_retries
        self.reference_fallback = reference_fallback
        self.respawn_limit = respawn_limit
        if heartbeat_timeout is None and "worker_hang" in kinds:
            heartbeat_timeout = 5.0
        self.heartbeat_timeout = heartbeat_timeout
        self.params = params
        self.pipeline = pipeline
        self.energy_model = energy_model
        self.compiled_only = compiled_only
        #: Per-task deadline for the fleet cells (``net_*`` kinds);
        #: defaults to 3 seconds when such a cell runs.
        self.task_deadline = task_deadline

    def recoverable(self, persist: int, kind: str = None) -> bool:
        """Whether the retry ladder out-lives a fault of ``persist``.

        Attempts ``0 .. max_retries`` run on the primary engine; the
        reference attempt (number ``max_retries + 1``) is clean when the
        fault either stopped persisting or is ``compiled_only`` (the
        damage the reference engine exists to route around). Network
        faults fire per frame *transmission* — one per ladder rung — so
        the same arithmetic applies, except ``compiled_only`` buys them
        nothing (the framing layer has no engines).
        """
        if persist <= self.max_retries:
            return True
        if not self.reference_fallback:
            return False
        if kind is not None and kind in NET_FAULTS:
            return persist <= self.max_retries + 1
        return self.compiled_only or persist <= self.max_retries + 1

    def run(self, trace, window: int = None, hop: int = None,
            tail: str = "drop") -> CampaignReport:
        """Serve ``trace`` once uninjected, then once per grid cell."""
        from repro.serve import StreamScheduler, WindowStream

        if window is None:
            from repro.app.mbiotracker import WINDOW

            window = WINDOW
        stream = WindowStream(trace, window=window, hop=hop, tail=tail)
        if not stream.n_windows:
            raise ConfigurationError(
                "the campaign trace yields no windows — nothing to prove"
            )
        base_start = time.perf_counter()
        baseline = StreamScheduler(
            config=self.config, params=self.params,
            pipeline=self.pipeline, energy_model=self.energy_model,
        ).run(stream)
        report = CampaignReport(
            config=self.config,
            seed=self.seed,
            n_windows=stream.n_windows,
            workers=self.workers,
            max_retries=self.max_retries,
            reference_fallback=self.reference_fallback,
            baseline_wall_seconds=time.perf_counter() - base_start,
        )
        n_cells = len(self.kinds) * len(self.rates) * len(self.persists)
        bus = get_bus()
        if bus is not None:
            bus.set_gauge("repro_campaign_cells", n_cells)
            bus.set_gauge("repro_campaign_cells_done", 0)
        cell_seed = self.seed
        for kind in self.kinds:
            for rate in self.rates:
                for persist in self.persists:
                    cell_seed += 1
                    cell = self._run_cell(
                        stream, baseline, kind, rate, persist, cell_seed,
                    )
                    report.cells.append(cell)
                    bus = get_bus()
                    if bus is not None:
                        bus.set_gauge(
                            "repro_campaign_cells_done", len(report.cells)
                        )
                        bus.inc(
                            "repro_campaign_cells_total",
                            verdict="ok" if cell.ok else "broken",
                        )
        return report

    def _run_cell(self, stream, baseline, kind: str, rate: float,
                  persist: int, cell_seed: int) -> CampaignCell:
        from repro.serve import PoolScheduler

        plan = FaultPlan.generate(
            cell_seed, stream.n_windows, {kind: rate},
            window=stream.window, persist=persist,
            compiled_only=self.compiled_only,
        )
        if kind in NET_FAULTS:
            return self._run_cell_fleet(
                stream, baseline, plan, kind, rate, persist, cell_seed,
            )
        respawn_limit = self.respawn_limit
        if respawn_limit is None:
            # Every scheduled process fault can take a worker with it up
            # to once per persisting attempt; +1 spare for slop.
            respawn_limit = sum(
                min(spec.persist, self.max_retries + 2)
                for spec in plan.specs
                if spec.kind in ("worker_kill", "worker_hang")
            ) + 1
        pool = PoolScheduler(
            config=self.config,
            workers=self.workers,
            params=self.params,
            pipeline=self.pipeline,
            energy_model=self.energy_model,
            fault_plan=plan,
            max_retries=self.max_retries,
            reference_fallback=self.reference_fallback,
            respawn_limit=respawn_limit,
            heartbeat_timeout=self.heartbeat_timeout,
        )
        start = time.perf_counter()
        injected = pool.run(stream)
        wall = time.perf_counter() - start
        mismatch = served_identical(injected, baseline)
        return CampaignCell(
            kind=kind,
            rate=rate,
            persist=persist,
            seed=cell_seed,
            recoverable=self.recoverable(persist),
            n_faults=len(plan),
            n_windows=stream.n_windows,
            n_served=injected.n_windows,
            n_quarantined=injected.n_failed,
            bit_identical=mismatch is None,
            mismatch=mismatch,
            resilience=dict(injected.resilience),
            wall_seconds=wall,
        )

    def _run_cell_fleet(self, stream, baseline, plan, kind: str,
                        rate: float, persist: int,
                        cell_seed: int) -> CampaignCell:
        """One ``net_*`` cell: a loopback TCP fleet instead of the pool.

        The server injects task-side faults through its own
        :class:`~repro.serve.net.framing.NetGate`; result-side specs
        ride to the workers with the spec frame. Worker processes are
        expendable (daemonized, terminated on exit) — the resilience
        story is the server's to prove.
        """
        import multiprocessing

        from repro.serve.net.server import FleetServer
        from repro.serve.net.worker import run_worker
        from repro.serve.pool import _default_start_method

        server = FleetServer(
            config=self.config,
            params=self.params,
            pipeline=self.pipeline,
            energy_model=self.energy_model,
            fault_plan=plan,
            max_retries=self.max_retries,
            reference_fallback=self.reference_fallback,
            task_deadline=self.task_deadline or 3.0,
            heartbeat_timeout=self.heartbeat_timeout or 10.0,
            register_timeout=60.0,
            local_fallback=False,
        )
        host, port = server.bind()
        ctx = multiprocessing.get_context(_default_start_method())
        procs = []
        start = time.perf_counter()
        try:
            for i in range(self.workers):
                proc = ctx.Process(
                    target=run_worker,
                    args=(host, port),
                    kwargs={
                        "name": f"fleet-{i}",
                        "heartbeat_interval": 0.25,
                        "reconnect_timeout": 30.0,
                        "process_faults": True,
                    },
                    daemon=True,
                )
                proc.start()
                procs.append(proc)
            injected = server.run(stream)
        finally:
            server.close()
            for proc in procs:
                proc.join(timeout=5.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
        wall = time.perf_counter() - start
        mismatch = served_identical(injected, baseline)
        return CampaignCell(
            kind=kind,
            rate=rate,
            persist=persist,
            seed=cell_seed,
            recoverable=self.recoverable(persist, kind),
            n_faults=len(plan),
            n_windows=stream.n_windows,
            n_served=injected.n_windows,
            n_quarantined=injected.n_failed,
            bit_identical=mismatch is None,
            mismatch=mismatch,
            resilience=dict(injected.resilience),
            wall_seconds=wall,
            transport="fleet",
        )


def served_identical(report, baseline) -> str:
    """First difference between served windows and their baseline twins.

    Quarantined windows are absent from ``report`` by design, so the
    baseline is narrowed to the indices ``report`` actually served
    before the bit-identity comparison. Engine decisions are excluded —
    a reference-fallback recovery honestly records a different engine
    while producing identical simulated results. Returns ``None`` when
    every served window matches.
    """
    from repro.serve import StreamReport

    indices = {w.index for w in report.windows}
    subset = StreamReport(
        config=baseline.config,
        engine=baseline.engine,
        window=baseline.window,
        hop=baseline.hop,
        double_buffered=baseline.double_buffered,
    )
    for window in baseline.windows:
        if window.index in indices:
            subset.add_window(window)
    return report.identical_to(subset, engines=False)


# -- CLI (the CI smoke job) ---------------------------------------------------


def main(argv=None) -> int:
    """Run a seeded campaign on synthetic respiration; 0 iff contract held."""
    parser = argparse.ArgumentParser(
        description=(
            "Seeded fault-injection campaign over the serving stack "
            "(see docs/robustness.md)."
        )
    )
    parser.add_argument(
        "--windows", type=int, default=4,
        help="stream length in application windows (default 4)",
    )
    parser.add_argument(
        "--kinds", default=",".join(DEFAULT_KINDS),
        help="comma-separated fault kinds to sweep",
    )
    parser.add_argument(
        "--net", action="store_true",
        help=(
            "sweep the network fault family over a loopback TCP fleet "
            "instead of the default kinds (overrides --kinds)"
        ),
    )
    parser.add_argument(
        "--rates", default="0.5",
        help="comma-separated per-window injection rates",
    )
    parser.add_argument(
        "--persists", default="1",
        help="comma-separated persistence values (attempts per fault)",
    )
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--retries", type=int, default=2)
    parser.add_argument(
        "--no-reference", action="store_true",
        help="disable the reference-engine fallback attempt",
    )
    parser.add_argument(
        "--heartbeat", type=float, default=None,
        help="hang-detection timeout in seconds",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the full report as JSON",
    )
    args = parser.parse_args(argv)

    from repro.app.mbiotracker import WINDOW
    from repro.app.signals import respiration_signal

    kinds = tuple(k for k in args.kinds.split(",") if k)
    if args.net:
        kinds = NET_FAULTS
    campaign = FaultCampaign(
        kinds=kinds,
        rates=tuple(float(r) for r in args.rates.split(",") if r),
        persists=tuple(int(p) for p in args.persists.split(",") if p),
        seed=args.seed,
        workers=args.workers,
        max_retries=args.retries,
        reference_fallback=not args.no_reference,
        heartbeat_timeout=args.heartbeat,
    )
    trace = respiration_signal(args.windows * WINDOW)
    report = campaign.run(trace)
    print(report.summary())
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(report.to_json())
        print(f"report written to {args.json}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
