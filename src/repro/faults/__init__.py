"""Fault injection and chaos campaigns for the serving stack.

The resilience layer of docs/robustness.md, in three pieces:

* :class:`FaultPlan` / :class:`FaultSpec` — deterministic, seeded fault
  schedules over a window stream: SPM bit-flips and stuck-at words,
  power-domain brownouts, corrupted/truncated trace chunks, worker
  kills/hangs, and transport faults over the fleet framing layer
  (dropped/delayed/duplicated/corrupted/truncated frames, mid-stream
  disconnects, slow-loris peers) (:mod:`repro.faults.plan`);
* :class:`FaultInjector` — executes a plan against one live platform,
  one serving attempt at a time, healing everything it displaced so
  retries are bit-identical (:mod:`repro.faults.injector`);
* :class:`FaultCampaign` — sweeps fault kinds × rates × persistence
  over the self-healing :class:`~repro.serve.PoolScheduler` and checks
  the resilience contract: recoverable faults leave no trace in the
  results, unrecoverable ones are explicitly quarantined
  (:mod:`repro.faults.campaign`; also ``python -m
  repro.faults.campaign`` for the CI smoke job).
"""

from repro.faults.campaign import (
    CampaignCell,
    CampaignReport,
    FaultCampaign,
    served_identical,
)
from repro.faults.injector import FaultInjector, is_fault_failure
from repro.faults.plan import (
    CHUNK_FAULTS,
    FAULT_KINDS,
    NET_FAULT_SIDES,
    NET_FAULTS,
    POWER_FAULTS,
    PROCESS_FAULTS,
    SPM_FAULTS,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "CHUNK_FAULTS",
    "CampaignCell",
    "CampaignReport",
    "FAULT_KINDS",
    "FaultCampaign",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "NET_FAULTS",
    "NET_FAULT_SIDES",
    "POWER_FAULTS",
    "PROCESS_FAULTS",
    "SPM_FAULTS",
    "is_fault_failure",
    "served_identical",
]
