"""Deterministic, seeded fault schedules.

A :class:`FaultPlan` is the *score* of a chaos experiment: a tuple of
:class:`FaultSpec` records, each pinning one fault — what kind, which
window it strikes, where exactly (SPM address/bit, power domain, chunk
offset, kernel-launch boundary) and how long it persists across retry
attempts. Plans are frozen dataclasses of plain values, so they pickle
into pool workers unchanged, and two runs with the same plan inject the
same faults in the same places regardless of worker count or sharding —
the property every differential in ``tests/test_faults.py`` rests on.

``persist`` is the recoverability dial: a fault fires on attempts
``0 .. persist-1`` of its window, so ``persist=1`` models a transient
upset (the first retry is clean) and ``persist`` beyond the retry budget
models a hard fault that ends in quarantine. ``compiled_only`` faults
spare reference-engine attempts — they model damage to the compiled fast
path, the case the reference-fallback retry tier exists for.

:meth:`FaultPlan.generate` draws a plan from a seed and per-kind rates;
:class:`~repro.faults.FaultCampaign` sweeps those rates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import ConfigurationError

#: Every fault kind a plan may schedule, by the layer it strikes.
SPM_FAULTS = ("spm_bitflip", "spm_stuck")
POWER_FAULTS = ("brownout",)
CHUNK_FAULTS = ("chunk_corrupt", "chunk_truncate")
PROCESS_FAULTS = ("worker_kill", "worker_hang")
#: Transport faults injected at the fleet framing layer
#: (:class:`repro.serve.net.framing.NetGate`), never inside a platform.
NET_FAULTS = (
    "net_drop",        # the frame silently vanishes
    "net_delay",       # the frame arrives late (deadline pressure)
    "net_dup",         # the frame arrives twice (dedup pressure)
    "net_disconnect",  # the sender closes right after the frame
    "net_corrupt",     # a body byte is flipped (checksum pressure)
    "net_truncate",    # a partial frame, then the connection closes
    "net_slow",        # slow-loris: the frame dribbles out in crumbs
)
FAULT_KINDS = (
    SPM_FAULTS + POWER_FAULTS + CHUNK_FAULTS + PROCESS_FAULTS + NET_FAULTS
)

#: Which transport direction each network fault strikes: ``"task"``
#: frames (server -> worker) or ``"result"`` frames (worker -> server).
#: The split keeps each kind's failure signature distinct — task-side
#: kinds exercise the server's deadline/requeue machinery, result-side
#: kinds exercise checksum detection and desync recovery.
NET_FAULT_SIDES = {
    "net_drop": "task",
    "net_delay": "task",
    "net_dup": "task",
    "net_disconnect": "task",
    "net_corrupt": "result",
    "net_truncate": "result",
    "net_slow": "result",
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault. Only the fields of its kind are meaningful."""

    kind: str           #: one of :data:`FAULT_KINDS`
    window: int         #: stream window index the fault strikes
    persist: int = 1    #: attempts 0..persist-1 of that window are faulted
    #: Fault only fires on non-reference attempts: it damages the
    #: compiled fast path, and the reference interpreter is the golden
    #: recovery engine (the PR-2 abort-replay story at window scale).
    compiled_only: bool = False
    # spm_bitflip / spm_stuck
    addr: int = 0       #: SPM word address
    bit: int = 0        #: bit to flip (spm_bitflip)
    value: int = 0      #: forced word value (spm_stuck)
    at_launch: int = 0  #: 0-based kernel launch of the window to strike at
    # brownout
    domain: str = "accelerators"  #: Domain value to gate
    after_cycles: int = 1000      #: fuse length from the attempt's start
    # chunk_corrupt / chunk_truncate — and, for net_corrupt /
    # net_truncate, reinterpreted at the framing layer: ``offset`` is a
    # byte offset into the frame body, ``xor_mask`` the flipped bits,
    # ``keep`` the bytes sent before the connection closes (0 = half).
    offset: int = 0     #: sample offset within the window (corrupt)
    xor_mask: int = 1   #: corruption mask (corrupt)
    keep: int = 0       #: samples that survive the short read (truncate)
    # net_delay / net_slow
    delay_ms: int = 100   #: added transit latency for the frame
    chunk_bytes: int = 7  #: slow-loris dribble size (net_slow)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r} "
                f"(choose from {FAULT_KINDS})"
            )
        if self.window < 0:
            raise ConfigurationError(
                f"fault window must be >= 0, got {self.window}"
            )
        if self.persist < 1:
            raise ConfigurationError(
                f"fault persist must be >= 1 attempt, got {self.persist}"
            )

    def fires(self, attempt: int, engine: str) -> bool:
        """Whether this fault strikes the given attempt."""
        if attempt >= self.persist:
            return False
        if self.compiled_only and engine == "reference":
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults over one window stream."""

    specs: tuple = ()
    seed: int = None  #: generation seed, for report provenance (optional)

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))

    def for_window(self, index: int) -> tuple:
        """Every spec scheduled for window ``index`` (stable order)."""
        return tuple(s for s in self.specs if s.window == index)

    def counts(self) -> dict:
        """Scheduled fault tally by kind (for campaign accounting)."""
        tally = {}
        for spec in self.specs:
            tally[spec.kind] = tally.get(spec.kind, 0) + 1
        return tally

    @property
    def has_process_faults(self) -> bool:
        return any(s.kind in PROCESS_FAULTS for s in self.specs)

    @property
    def has_net_faults(self) -> bool:
        return any(s.kind in NET_FAULTS for s in self.specs)

    def net_specs(self, side: str = None) -> tuple:
        """The transport specs — optionally only one direction's.

        ``side`` is ``"task"`` or ``"result"`` per
        :data:`NET_FAULT_SIDES`; the fleet server arms the task-side
        specs on its own gate and ships the result-side specs to the
        workers inside the worker spec.
        """
        return tuple(
            s for s in self.specs if s.kind in NET_FAULTS
            and (side is None or NET_FAULT_SIDES[s.kind] == side)
        )

    def without_net(self) -> "FaultPlan":
        """This plan minus transport specs — what platforms should see.

        Network faults strike frames, not simulated hardware; the fleet
        hands workers (and its local degradation path) this projection
        so the platform-side injector never sees a kind it cannot arm.
        """
        return FaultPlan(
            specs=tuple(
                s for s in self.specs if s.kind not in NET_FAULTS
            ),
            seed=self.seed,
        )

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:
        mix = ", ".join(
            f"{kind}: {n}" for kind, n in sorted(self.counts().items())
        )
        return f"FaultPlan(seed={self.seed}, {len(self.specs)} faults" + (
            f" [{mix}])" if mix else ")"
        )

    # -- seeded generation ---------------------------------------------------

    @classmethod
    def generate(cls, seed: int, n_windows: int, rates: dict,
                 window: int = 512, spm_words: int = None,
                 persist: int = 1, compiled_only: bool = False,
                 brownout_cycles: tuple = (500, 20_000),
                 max_launch: int = 4) -> "FaultPlan":
        """Draw a plan: each window suffers each kind with its rate.

        ``rates`` maps fault kind -> per-window probability. All
        randomness comes from ``random.Random(seed)``, so the same
        arguments always yield the same plan. ``persist``/
        ``compiled_only`` apply to every generated spec — campaigns
        sweep recoverable (``persist=1``) against unrecoverable
        (``persist`` beyond the retry budget) cells. ``spm_words``
        bounds generated SPM addresses (defaults to the stock
        architecture's SPM size); ``window`` bounds chunk offsets;
        ``max_launch`` bounds which kernel launch of a window SPM
        faults strike at.
        """
        for kind in rates:
            if kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown fault kind {kind!r} "
                    f"(choose from {FAULT_KINDS})"
                )
        if spm_words is None:
            from repro.arch import DEFAULT_PARAMS

            spm_words = DEFAULT_PARAMS.spm_lines * DEFAULT_PARAMS.line_words
        rng = random.Random(seed)
        specs = []
        for index in range(n_windows):
            for kind in sorted(rates):
                if rng.random() >= rates[kind]:
                    continue
                common = dict(
                    kind=kind, window=index, persist=persist,
                    compiled_only=compiled_only,
                )
                if kind == "spm_bitflip":
                    specs.append(FaultSpec(
                        addr=rng.randrange(spm_words),
                        bit=rng.randrange(32),
                        at_launch=rng.randrange(max_launch),
                        **common,
                    ))
                elif kind == "spm_stuck":
                    specs.append(FaultSpec(
                        addr=rng.randrange(spm_words),
                        value=rng.choice((0, -1, 0x5555_5555)),
                        at_launch=rng.randrange(max_launch),
                        **common,
                    ))
                elif kind == "brownout":
                    lo, hi = brownout_cycles
                    specs.append(FaultSpec(
                        after_cycles=rng.randrange(lo, hi), **common,
                    ))
                elif kind == "chunk_corrupt":
                    specs.append(FaultSpec(
                        offset=rng.randrange(window),
                        xor_mask=1 << rng.randrange(14),
                        **common,
                    ))
                elif kind == "chunk_truncate":
                    specs.append(FaultSpec(
                        keep=rng.randrange(window), **common,
                    ))
                elif kind == "net_delay":
                    specs.append(FaultSpec(
                        delay_ms=rng.randrange(50, 400), **common,
                    ))
                elif kind == "net_corrupt":
                    specs.append(FaultSpec(
                        offset=rng.randrange(256),
                        xor_mask=1 << rng.randrange(8),
                        **common,
                    ))
                elif kind == "net_truncate":
                    specs.append(FaultSpec(
                        keep=rng.randrange(4, 64), **common,
                    ))
                elif kind == "net_slow":
                    specs.append(FaultSpec(
                        chunk_bytes=rng.randrange(3, 17),
                        delay_ms=rng.randrange(100, 300),
                        **common,
                    ))
                else:  # worker_kill / worker_hang / net_drop / dup / disc
                    specs.append(FaultSpec(**common))
        return cls(specs=tuple(specs), seed=seed)
