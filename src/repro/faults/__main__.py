"""``python -m repro.faults`` — run a seeded chaos campaign."""

from repro.faults.campaign import main

if __name__ == "__main__":
    raise SystemExit(main())
