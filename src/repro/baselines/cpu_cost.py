"""Cortex-M4 cycle-cost constants, calibrated to the paper.

The paper reports total M4 cycle counts (CMSIS-DSP, q15) for every
baseline; our cost model reproduces them structurally:

**FFT** (Table 2, CPU column). CMSIS ``cfft_q15`` uses radix-4 stages with
a final radix-2 stage for odd log2 sizes. Fitting::

    cycles = SETUP + K4*bf4 + K2*bf2 + K_IO*N            (complex)
    cycles = SETUP + cfft(N/2) + K_RECOMB*N/2 + K_IO*N   (real)

to the six Table 2 CPU counts gives K4 = 64.2, K2 = 51.7, K_RECOMB = 27.2,
K_IO = 2, SETUP = 500, with residuals under 1.1% on all six points.

**FIR** (Table 4). The three measured sizes are almost exactly linear:
cycles = 224 + 95.76 * N for 11 taps. Only the 11-tap point is measured,
so the per-tap/per-output split (FIR_PER_TAP = 7, FIR_PER_OUTPUT = 18.76)
is an assumption — it matches ~7 cycles for a q15 load+MAC+pointer update
on an M4 without SIMD-friendly alignment.

**Application steps** (Table 5, 512-sample window). Delineation:
46 268 cycles / 512 samples = 90.4 cycles per sample of branch-heavy
scanning. Feature extraction minus the Table 2 real-FFT-512 cost leaves
45 712 cycles for time features + band power + SVM; the per-operation
constants below reproduce that total for the nominal workload (see
``repro.app``).
"""

from __future__ import annotations

#: Average active power of the M4 core + SRAM at 80 MHz, derived from
#: Tables 4/5 (e.g. FIR-256: 0.37 uJ / 24 747 cycles = 14.95 pJ/cycle).
CPU_PJ_PER_CYCLE = 15.0

# -- FFT (CMSIS cfft_q15 / rfft_q15) --------------------------------------
FFT_SETUP = 500
FFT_K4 = 64.2          #: cycles per radix-4 butterfly
FFT_K2 = 51.7          #: cycles per radix-2 butterfly
FFT_K_RECOMB = 27.2    #: cycles per real-FFT split-stage element
FFT_K_IO = 2.0         #: cycles per point of buffer handling

# -- FIR (arm_fir_q15) ------------------------------------------------------
FIR_SETUP = 224
FIR_PER_OUTPUT = 18.76  #: loop overhead + store per output sample
FIR_PER_TAP = 7.0       #: load + MAC + pointer update per tap

# -- Delineation (branch-heavy scan) ----------------------------------------
DELINEATION_PER_SAMPLE = 90.4

# -- Feature extraction ------------------------------------------------------
#: Sorting cost (insertion-sort style, per comparison/swap step).
FEAT_SORT_STEP = 14.0
#: Accumulating ops: mean/RMS accumulation per element.
FEAT_MAC = 9.0
#: Band-power accumulation per spectrum bin (|X|^2 = 2 MAC + add).
FEAT_BIN = 20.0
#: Square root / division epilogue per feature.
FEAT_EPILOGUE = 120.0

# -- SVM ---------------------------------------------------------------------
SVM_MAC = 9.0          #: per (support-vector x dimension) MAC
SVM_KERNEL_EPILOGUE = 60.0

# -- Application-level feature lump -------------------------------------------
#: The paper's feature-extraction step (Table 5: 70 639 CPU cycles) is far
#: heavier than the published feature list alone; MBioTracker's full set
#: (Dell'Agnola et al. 2021) includes interpolation, normalization and
#: multi-scale statistics that are not specified in enough detail to
#: implement. The remainder is a calibrated lump charged to the CPU; on
#: VWR2A the same work is charged at the measured VWR2A:CPU speed-up of
#: the feature kernels we did implement (~8x). DESIGN.md records this.
FEAT_APP_CPU_LUMP = 43000
FEAT_APP_VWR2A_RATIO = 8.0


def fft_stage_counts(n: int) -> tuple:
    """(radix-4, radix-2) butterfly counts of CMSIS's mixed-radix flow."""
    m = (n - 1).bit_length()
    r4_stages, r2_stages = divmod(m, 2)
    return r4_stages * (n // 4), r2_stages * (n // 2)


def cfft_cycles(n: int) -> int:
    """Modelled cycles of ``arm_cfft_q15`` for N complex points."""
    bf4, bf2 = fft_stage_counts(n)
    return int(round(FFT_SETUP + FFT_K4 * bf4 + FFT_K2 * bf2 + FFT_K_IO * n))


def rfft_cycles(n: int) -> int:
    """Modelled cycles of ``arm_rfft_q15`` for N real points."""
    half = n // 2
    bf4, bf2 = fft_stage_counts(half)
    return int(round(
        FFT_SETUP
        + FFT_K4 * bf4
        + FFT_K2 * bf2
        + FFT_K_RECOMB * half
        + FFT_K_IO * n
    ))


def fir_cycles(n_samples: int, n_taps: int) -> int:
    """Modelled cycles of ``arm_fir_q15``."""
    return int(round(
        FIR_SETUP + n_samples * (FIR_PER_OUTPUT + FIR_PER_TAP * n_taps)
    ))


def delineation_cycles(n_samples: int) -> int:
    """Modelled cycles of the min/max delineation scan."""
    return int(round(DELINEATION_PER_SAMPLE * n_samples))
