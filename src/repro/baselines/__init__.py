"""Cortex-M4 + CMSIS-DSP baselines: bit-accurate kernels + cycle models."""

from repro.baselines.cmsis_fft import FftResult, cfft_q15, rfft_q15
from repro.baselines.cmsis_fir import (
    FirResult,
    fir_float_reference,
    fir_q15,
    lowpass_taps_q15,
)
from repro.baselines.cpu_cost import (
    CPU_PJ_PER_CYCLE,
    cfft_cycles,
    delineation_cycles,
    fir_cycles,
    rfft_cycles,
)
from repro.baselines.dsp import (
    Delineation,
    FeatureSet,
    band_power,
    delineate,
    extract_features,
    isqrt_int,
    mean_int,
    median_int,
    rms_int,
)
from repro.baselines.svm import SvmModel, SvmResult, default_workload_model, predict

__all__ = [
    "FftResult",
    "cfft_q15",
    "rfft_q15",
    "FirResult",
    "fir_float_reference",
    "fir_q15",
    "lowpass_taps_q15",
    "CPU_PJ_PER_CYCLE",
    "cfft_cycles",
    "delineation_cycles",
    "fir_cycles",
    "rfft_cycles",
    "Delineation",
    "FeatureSet",
    "band_power",
    "delineate",
    "extract_features",
    "isqrt_int",
    "mean_int",
    "median_int",
    "rms_int",
    "SvmModel",
    "SvmResult",
    "default_workload_model",
    "predict",
]
