"""Delineation and feature extraction (MBioTracker steps 2-3, Sec. 4.4.2).

* **Delineation** "detects the maximums and minimums of the filtered signal
  to extract inspiration and expiration times" — implemented as a
  hysteresis state machine: track the running extremum and commit it once
  the signal retreats by more than a threshold. This is the paper's
  "typical example of control-intensive code ... a lot of if conditions
  used to detect the valid minimums and maximums" (Sec. 5.2.2).
* **Time features**: "mean, median, and RMS values" of the inspiration and
  expiration durations (Sec. 4.4.2).
* **Frequency features**: respiration-band power from the FFT of the
  filtered signal.

All functions are integer/fixed-point so that the same reference validates
both the CPU baseline and the VWR2A kernel mappings. Cycle models use the
Table-5-calibrated constants of ``repro.baselines.cpu_cost``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.cpu_cost import (
    DELINEATION_PER_SAMPLE,
    FEAT_BIN,
    FEAT_EPILOGUE,
    FEAT_MAC,
    FEAT_SORT_STEP,
)


@dataclass(frozen=True)
class Delineation:
    """Extrema positions and the derived breath intervals."""

    maxima: list         #: sample indices of committed maxima
    minima: list         #: sample indices of committed minima
    insp_times: list     #: min -> next max durations (samples)
    exp_times: list      #: max -> next min durations (samples)
    cycles: int          #: modelled CPU cycles


def delineate(samples, threshold: int) -> Delineation:
    """Hysteresis min/max detection.

    A maximum is committed when the signal falls ``threshold`` below the
    running peak; a minimum when it rises ``threshold`` above the running
    trough. The first extremum direction is chosen by whichever hysteresis
    band breaks first.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    maxima = []
    minima = []
    state = 0            # 0: undecided, +1: tracking max, -1: tracking min
    best = 0
    best_pos = 0
    low = high = None
    low_pos = high_pos = 0
    for pos, value in enumerate(samples):
        value = int(value)
        if state == 0:
            if low is None or value < low:
                low, low_pos = value, pos
            if high is None or value > high:
                high, high_pos = value, pos
            if value <= high - threshold:
                maxima.append(high_pos)
                state, best, best_pos = -1, value, pos
            elif value >= low + threshold:
                minima.append(low_pos)
                state, best, best_pos = 1, value, pos
        elif state == 1:
            if value > best:
                best, best_pos = value, pos
            elif value <= best - threshold:
                maxima.append(best_pos)
                state, best, best_pos = -1, value, pos
        else:
            if value < best:
                best, best_pos = value, pos
            elif value >= best + threshold:
                minima.append(best_pos)
                state, best, best_pos = 1, value, pos

    insp = _intervals(minima, maxima)
    exp = _intervals(maxima, minima)
    cycles = int(round(DELINEATION_PER_SAMPLE * len(samples)))
    return Delineation(
        maxima=maxima, minima=minima, insp_times=insp, exp_times=exp,
        cycles=cycles,
    )


def _intervals(froms, tos) -> list:
    """Durations from each ``froms`` event to the next ``tos`` event."""
    result = []
    j = 0
    for start in froms:
        while j < len(tos) and tos[j] <= start:
            j += 1
        if j < len(tos):
            result.append(tos[j] - start)
    return result


# -- time/frequency features --------------------------------------------------


@dataclass(frozen=True)
class FeatureSet:
    """The feature vector fed to the SVM, plus modelled CPU cycles."""

    values: list
    cycles: int


def mean_int(values) -> int:
    """Integer mean (rounded toward zero, hardware-style)."""
    if not values:
        return 0
    return int(sum(int(v) for v in values) / len(values))


def median_int(values) -> int:
    """Integer median (lower median for even lengths)."""
    if not values:
        return 0
    ordered = sorted(int(v) for v in values)
    return ordered[(len(ordered) - 1) // 2]


def rms_int(values) -> int:
    """Integer RMS via integer square root."""
    if not values:
        return 0
    acc = sum(int(v) * int(v) for v in values)
    return isqrt_int(acc // len(values))


def isqrt_int(value: int) -> int:
    """Non-negative integer square root."""
    if value < 0:
        raise ValueError("isqrt of a negative value")
    return math.isqrt(value)


def band_power(spectrum_re, spectrum_im, lo_bin: int, hi_bin: int) -> int:
    """Sum of |X[k]|^2 over ``[lo_bin, hi_bin)``."""
    if not 0 <= lo_bin <= hi_bin <= len(spectrum_re):
        raise ValueError(
            f"band [{lo_bin}, {hi_bin}) outside spectrum of "
            f"{len(spectrum_re)} bins"
        )
    return sum(
        int(spectrum_re[k]) ** 2 + int(spectrum_im[k]) ** 2
        for k in range(lo_bin, hi_bin)
    )


def extract_features(
    insp_times, exp_times, spectrum_re, spectrum_im,
    resp_band=(2, 34),
) -> FeatureSet:
    """The eight MBioTracker-style features.

    0-2: mean / median / RMS of inspiration times,
    3-5: mean / median / RMS of expiration times,
    6:   respiration-band power of the filtered-signal spectrum,
    7:   breath count in the window.
    """
    lo_bin, hi_bin = resp_band
    values = [
        mean_int(insp_times),
        median_int(insp_times),
        rms_int(insp_times),
        mean_int(exp_times),
        median_int(exp_times),
        rms_int(exp_times),
        band_power(spectrum_re, spectrum_im, lo_bin, hi_bin),
        len(insp_times),
    ]
    cycles = _feature_cycles(
        len(insp_times), len(exp_times), hi_bin - lo_bin
    )
    return FeatureSet(values=values, cycles=cycles)


def _feature_cycles(n_insp: int, n_exp: int, n_bins: int) -> int:
    """Calibrated CPU cost of the feature computation (without the FFT)."""
    sort_steps = sum(
        n * max(n.bit_length(), 1) for n in (n_insp, n_exp)
    )
    macs = 2 * (n_insp + n_exp)          # mean + RMS accumulation
    return int(round(
        FEAT_SORT_STEP * sort_steps
        + FEAT_MAC * macs
        + FEAT_BIN * n_bins
        + FEAT_EPILOGUE * 8
    ))
