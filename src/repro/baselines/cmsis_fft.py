"""CMSIS-DSP-style q15 FFT (`arm_cfft_q15` / `arm_rfft_q15` semantics).

Functional model: radix-2 decimation-in-time on q15 integers with the
CMSIS overflow policy — every stage downscales by 2, so an N-point
transform returns the spectrum divided by N (log2(N) total shifts). The
real transform packs N reals into N/2 complex points, runs the complex
kernel, and applies the conjugate-symmetric split. Cycle counts come from
the Table-2-calibrated model in ``repro.baselines.cpu_cost``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.cpu_cost import cfft_cycles, rfft_cycles
from repro.utils.bits import bit_reverse_indices, is_power_of_two
from repro.utils.fixed_point import q15_sat


@dataclass(frozen=True)
class FftResult:
    """q15 spectrum + modelled CPU cycles.

    ``scale`` is the divisor the fixed-point flow applied; the true
    spectrum is ``(re + i*im) * scale / 2**15`` in natural units.
    """

    re: list
    im: list
    scale: int
    cycles: int

    def spectrum(self) -> list:
        factor = float(self.scale) / (1 << 15)
        return [complex(r, i) * factor for r, i in zip(self.re, self.im)]


def _twiddle_q15(k: int, n: int) -> tuple:
    angle = -2.0 * math.pi * k / n
    return (
        int(round(math.cos(angle) * ((1 << 15) - 1))),
        int(round(math.sin(angle) * ((1 << 15) - 1))),
    )


def _cfft_q15_in_place(re, im) -> int:
    """Radix-2 DIT with per-stage >>1; returns the applied divisor (N)."""
    n = len(re)
    order = bit_reverse_indices(n)
    re[:] = [re[i] for i in order]
    im[:] = [im[i] for i in order]
    length = 2
    while length <= n:
        half = length // 2
        for start in range(0, n, length):
            for k in range(half):
                w_re, w_im = _twiddle_q15(k, length)
                i = start + k
                j = i + half
                t_re = (re[j] * w_re - im[j] * w_im) >> 15
                t_im = (re[j] * w_im + im[j] * w_re) >> 15
                # CMSIS halves both terms each stage to prevent overflow.
                re[j] = q15_sat((re[i] - t_re) >> 1)
                im[j] = q15_sat((im[i] - t_im) >> 1)
                re[i] = q15_sat((re[i] + t_re) >> 1)
                im[i] = q15_sat((im[i] + t_im) >> 1)
        length *= 2
    return n


def cfft_q15(re, im) -> FftResult:
    """N-point complex q15 FFT (CMSIS scaling: output = X/N)."""
    n = len(re)
    if n != len(im):
        raise ValueError("re/im length mismatch")
    if not is_power_of_two(n) or n < 4:
        raise ValueError(f"size must be a power of two >= 4, got {n}")
    work_re = [int(v) for v in re]
    work_im = [int(v) for v in im]
    scale = _cfft_q15_in_place(work_re, work_im)
    return FftResult(
        re=work_re, im=work_im, scale=scale, cycles=cfft_cycles(n)
    )


def rfft_q15(samples) -> FftResult:
    """N-point real q15 FFT returning the N/2+1 non-redundant bins."""
    n = len(samples)
    if not is_power_of_two(n) or n < 8:
        raise ValueError(f"size must be a power of two >= 8, got {n}")
    half = n // 2
    work_re = [int(samples[2 * i]) for i in range(half)]
    work_im = [int(samples[2 * i + 1]) for i in range(half)]
    divisor = _cfft_q15_in_place(work_re, work_im)

    out_re = [0] * (half + 1)
    out_im = [0] * (half + 1)
    out_re[0] = q15_sat(work_re[0] + work_im[0])
    out_re[half] = q15_sat(work_re[0] - work_im[0])
    for k in range(1, half):
        j = half - k
        f_re = (work_re[k] + work_re[j]) >> 1
        f_im = (work_im[k] - work_im[j]) >> 1
        g_re = (work_im[k] + work_im[j]) >> 1
        g_im = (work_re[j] - work_re[k]) >> 1
        w_re, w_im = _twiddle_q15(k, n)
        t_re = (g_re * w_re - g_im * w_im) >> 15
        t_im = (g_re * w_im + g_im * w_re) >> 15
        out_re[k] = q15_sat(f_re + t_re)
        out_im[k] = q15_sat(f_im + t_im)
    # The packed flow divided by N/2; the split stage is scale-neutral.
    return FftResult(
        re=out_re, im=out_im, scale=divisor, cycles=rfft_cycles(n)
    )
