"""SVM prediction (MBioTracker step 4, Sec. 4.4.2).

"The cognitive workload is estimated using an SVM algorithm." MBioTracker
uses a trained classifier; we provide linear and RBF decision functions in
integer arithmetic (weights in a fixed-point format) so the same model runs
on the CPU baseline and on VWR2A. The tiny prediction cost is part of the
feature-extraction step in the paper's Table 5 accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.cpu_cost import SVM_KERNEL_EPILOGUE, SVM_MAC


@dataclass(frozen=True)
class SvmModel:
    """A trained SVM in fixed point.

    Linear: ``score = w . x + bias`` with ``weights`` holding one vector.
    RBF: ``score = sum_i alpha_i * K(sv_i, x) + bias`` with one row per
    support vector and ``gamma_shift`` implementing a power-of-two gamma.
    """

    weights: list                      #: list of weight rows
    bias: int
    kind: str = "linear"               #: "linear" or "rbf"
    alphas: list = field(default_factory=list)
    gamma_shift: int = 12              #: K = exp(-||d||^2 >> gamma_shift)

    def __post_init__(self) -> None:
        if self.kind not in ("linear", "rbf"):
            raise ValueError(f"unknown SVM kind {self.kind!r}")
        if self.kind == "linear" and len(self.weights) != 1:
            raise ValueError("linear SVM takes exactly one weight row")
        if self.kind == "rbf" and len(self.alphas) != len(self.weights):
            raise ValueError("RBF SVM needs one alpha per support vector")


@dataclass(frozen=True)
class SvmResult:
    score: int
    label: int          #: +1 (high workload) / -1 (low workload)
    cycles: int


def predict(model: SvmModel, features) -> SvmResult:
    """Evaluate the decision function on an integer feature vector."""
    x = [int(v) for v in features]
    dims = len(x)
    for row in model.weights:
        if len(row) != dims:
            raise ValueError(
                f"feature vector has {dims} dims; model expects {len(row)}"
            )
    if model.kind == "linear":
        score = sum(w * v for w, v in zip(model.weights[0], x)) + model.bias
        macs = dims
    else:
        score = model.bias
        for alpha, sv in zip(model.alphas, model.weights):
            dist_sq = sum((a - b) * (a - b) for a, b in zip(sv, x))
            # Integer pseudo-exponential: exp(-d) ~ 2**-(d) on a shifted
            # scale; adequate for a monotone decision function.
            kernel = (1 << 15) >> min(dist_sq >> model.gamma_shift, 31)
            score += alpha * kernel
        macs = 2 * dims * len(model.weights)
    cycles = int(round(
        SVM_MAC * macs + SVM_KERNEL_EPILOGUE * max(len(model.weights), 1)
    ))
    return SvmResult(score=score, label=1 if score >= 0 else -1,
                     cycles=cycles)


def default_workload_model() -> SvmModel:
    """A plausible linear cognitive-workload classifier.

    High workload correlates with shorter, more regular breaths (higher
    breathing rate, lower variability) — signs used by the MBioTracker
    study. The weights act on the application's 11-feature vector: 6 time
    features (mean/median/RMS of inspiration and expiration intervals),
    4 scaled respiration-band powers, and the breath count.
    """
    weights = [[-40, -40, -24, -40, -40, -24, 2, 1, -1, -1, 520]]
    return SvmModel(weights=weights, bias=-6000, kind="linear")
