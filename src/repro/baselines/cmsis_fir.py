"""CMSIS-DSP-style q15 FIR filter (`arm_fir_q15` semantics).

"The processor uses the CMSIS-DSP library with 16-bit data (q15 format)."
(Sec. 5.1.2.) The functional model is bit-faithful to the library: products
accumulate in a wide accumulator, the result is shifted down by 15 and
saturated to q15. Cycle counts come from the Table-4-calibrated model in
``repro.baselines.cpu_cost``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.cpu_cost import fir_cycles
from repro.utils.fixed_point import q15_sat


@dataclass(frozen=True)
class FirResult:
    """Functional output + modelled CPU cycles."""

    samples: list
    cycles: int


def fir_q15(samples, taps, state=None) -> FirResult:
    """Filter ``samples`` (q15 ints) with ``taps`` (q15 ints).

    ``state`` optionally provides the previous ``len(taps) - 1`` input
    samples (block processing); it defaults to zeros, matching a freshly
    initialized ``arm_fir_instance_q15``.
    """
    n_taps = len(taps)
    if n_taps == 0:
        raise ValueError("FIR needs at least one tap")
    history = list(state) if state is not None else [0] * (n_taps - 1)
    if len(history) != n_taps - 1:
        raise ValueError(
            f"state must hold {n_taps - 1} samples, got {len(history)}"
        )
    extended = history + [int(s) for s in samples]
    out = []
    for n in range(len(samples)):
        # extended index of x[n] is n + n_taps - 1
        acc = 0
        base = n + n_taps - 1
        for k in range(n_taps):
            acc += int(taps[k]) * extended[base - k]
        out.append(q15_sat(acc >> 15))
    return FirResult(samples=out, cycles=fir_cycles(len(samples), n_taps))


def fir_float_reference(samples, taps) -> list:
    """Float reference for accuracy tests (zero initial state)."""
    n_taps = len(taps)
    padded = [0.0] * (n_taps - 1) + [float(s) for s in samples]
    return [
        sum(float(taps[k]) * padded[n + n_taps - 1 - k]
            for k in range(n_taps)) / (1 << 15)
        for n in range(len(samples))
    ]


def lowpass_taps_q15(n_taps: int, cutoff: float) -> list:
    """Windowed-sinc low-pass design in q15 (Hamming window).

    ``cutoff`` is the normalized frequency (0..0.5, fraction of the sample
    rate). Used by the preprocessing step of the biosignal application.
    """
    import math

    if not 0.0 < cutoff < 0.5:
        raise ValueError(f"cutoff must be in (0, 0.5), got {cutoff}")
    mid = (n_taps - 1) / 2.0
    taps_float = []
    for i in range(n_taps):
        x = i - mid
        ideal = 2 * cutoff if x == 0 else (
            math.sin(2 * math.pi * cutoff * x) / (math.pi * x)
        )
        window = 0.54 - 0.46 * math.cos(2 * math.pi * i / (n_taps - 1))
        taps_float.append(ideal * window)
    gain = sum(taps_float)
    return [
        q15_sat(int(round(t / gain * (1 << 15)))) for t in taps_float
    ]
