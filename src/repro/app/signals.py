"""Synthetic respiration signals.

MBioTracker's clinical recordings are not public; the evaluation depends
on the signal *shape* (quasi-periodic breathing with detectable extrema
and respiration-band spectral content), which this generator reproduces:
a breathing fundamental with harmonics, baseline wander, and sensor noise,
quantized to q15 like the platform's analog front end would deliver.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.utils.fixed_point import q15_sat


@dataclass(frozen=True)
class RespirationConfig:
    """Signal-shape parameters.

    ``breath_period`` is in samples (e.g. 80 samples at 25.6 Hz is ~18.75
    breaths/min); higher cognitive workload shortens and regularizes the
    breathing — the effect the SVM classifies.
    """

    breath_period: float = 80.0
    amplitude: int = 9000
    harmonic_ratio: float = 0.22
    wander_period: float = 700.0
    wander_amplitude: int = 1200
    noise_amplitude: int = 250
    period_jitter: float = 0.04
    seed: int = 1234


def respiration_signal(n_samples: int, config: RespirationConfig = None):
    """Generate ``n_samples`` of synthetic respiration in q15."""
    if config is None:
        config = RespirationConfig()
    rng = random.Random(config.seed)
    samples = []
    phase = 0.0
    period = config.breath_period
    for i in range(n_samples):
        phase += 2.0 * math.pi / period
        if phase >= 2.0 * math.pi:
            phase -= 2.0 * math.pi
            jitter = 1.0 + config.period_jitter * (2 * rng.random() - 1)
            period = config.breath_period * jitter
        value = (
            config.amplitude * math.sin(phase)
            + config.amplitude * config.harmonic_ratio
            * math.sin(2 * phase + 0.7)
            + config.wander_amplitude
            * math.sin(2.0 * math.pi * i / config.wander_period)
            + rng.gauss(0.0, config.noise_amplitude)
        )
        samples.append(q15_sat(int(round(value))))
    return samples


def high_workload_config(seed: int = 77) -> RespirationConfig:
    """Faster, more regular breathing (high cognitive load)."""
    return RespirationConfig(
        breath_period=52.0,
        amplitude=7800,
        period_jitter=0.015,
        seed=seed,
    )


def low_workload_config(seed: int = 78) -> RespirationConfig:
    """Slower, more variable breathing (resting)."""
    return RespirationConfig(
        breath_period=96.0,
        amplitude=9500,
        period_jitter=0.08,
        seed=seed,
    )
