"""The MBioTracker biosignal application and synthetic signals."""

from repro.app.mbiotracker import (
    BANDS,
    CONFIGS,
    DELINEATION_THRESHOLD,
    WINDOW,
    AppResult,
    StepResult,
    run_application,
)
from repro.app.signals import (
    RespirationConfig,
    high_workload_config,
    low_workload_config,
    respiration_signal,
)

__all__ = [
    "BANDS",
    "CONFIGS",
    "DELINEATION_THRESHOLD",
    "WINDOW",
    "AppResult",
    "StepResult",
    "run_application",
    "RespirationConfig",
    "high_workload_config",
    "low_workload_config",
    "respiration_signal",
]
