"""The MBioTracker biosignal application and synthetic signals."""

from repro.app.mbiotracker import (
    BANDS,
    CONFIGS,
    DELINEATION_THRESHOLD,
    WINDOW,
    AppParams,
    AppResult,
    StepResult,
    run_application,
    window_pipeline,
)
from repro.app.signals import (
    RespirationConfig,
    high_workload_config,
    low_workload_config,
    respiration_signal,
)

__all__ = [
    "BANDS",
    "CONFIGS",
    "DELINEATION_THRESHOLD",
    "WINDOW",
    "AppParams",
    "AppResult",
    "StepResult",
    "run_application",
    "window_pipeline",
    "RespirationConfig",
    "high_workload_config",
    "low_workload_config",
    "respiration_signal",
]
