"""The MBioTracker cognitive-workload application (Sec. 4.4.2, Table 5).

Four steps — preprocessing (11-tap FIR), delineation (extrema detection),
feature extraction (time features + 512-point real FFT + band powers) and
SVM prediction — executed in the paper's three configurations:

* ``cpu``: everything on the Cortex-M4 (CMSIS-DSP q15 models);
* ``cpu_fft_accel``: the CPU offloads only the 512-point real FFT to the
  fixed-function accelerator (which "cannot execute anything else",
  Sec. 5.2.3) — the accelerator stays power-gated in the other steps;
* ``cpu_vwr2a``: the CPU only manages high-level control; FIR,
  delineation, FFT, interval/band-power accumulations and the SVM MACs
  run on VWR2A. The filtered signal and its spectrum stay resident in the
  SPM across steps (the paper's locality argument); only tiny scalars
  cross the bus. The O(10)-element epilogues (means' divides, RMS square
  root, median selection) remain on the CPU as part of its control role.

Every step records cycles and an event window, so the Table 5 energy
column falls out of the calibrated energy model.

The per-window pipeline is exposed to the serving layer
(:mod:`repro.serve`) through :func:`window_pipeline`;
:func:`run_application` is a thin single-window client of the stream
scheduler and keeps its historical signature and bit-identical results.
Application parameters that the sweeps vary (filter taps, delineation
threshold, spectral feature bands) live in :class:`AppParams`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import (
    default_workload_model,
    delineate,
    extract_features,
    fir_q15,
    lowpass_taps_q15,
    predict,
    rfft_q15,
)
from repro.baselines.cpu_cost import (
    FEAT_APP_CPU_LUMP,
    FEAT_APP_VWR2A_RATIO,
    FEAT_EPILOGUE,
    FEAT_SORT_STEP,
)
from repro.baselines.dsp import _intervals, band_power, mean_int, median_int, rms_int
from repro.core.errors import ConfigurationError
from repro.kernels.delineation import run_delineation
from repro.kernels.features import run_accumulate, run_intervals
from repro.kernels.fir import plan_fir, run_fir
from repro.kernels.rfft import RfftEngine
from repro.kernels.runner import KernelRunner
from repro.kernels.vector import elementwise_kernel, scalar_kernel
from repro.isa.rc import RCOp

#: Application window (samples): matches the paper's 512-point FFT in the
#: feature step and its per-step CPU cycle counts.
WINDOW = 512
FIR_TAPS = 11
FIR_CUTOFF = 0.08
DELINEATION_THRESHOLD = 2500
#: Respiration band quartering of the 256 usable spectrum bins.
BANDS = ((1, 8), (8, 24), (24, 64), (64, 256))

CONFIGS = ("cpu", "cpu_fft_accel", "cpu_vwr2a")


@dataclass(frozen=True)
class AppParams:
    """Tunable application parameters (the sweep axes of ``repro.serve``).

    The defaults reproduce the paper's pipeline exactly; a
    :class:`~repro.serve.ParameterSweep` runs the same trace under many
    variants (shorter filters, different spectral feature bands, other
    delineation thresholds) on one shared runner. The FFT size is tied to
    :data:`WINDOW` and is not a free parameter.
    """

    fir_taps: int = FIR_TAPS
    fir_cutoff: float = FIR_CUTOFF
    delineation_threshold: int = DELINEATION_THRESHOLD
    bands: tuple = BANDS


@dataclass
class StepResult:
    """Cycles + activity window of one application step."""

    name: str
    cycles: int = 0
    cpu_active: int = 0
    cpu_sleep: int = 0
    events: dict = field(default_factory=dict)


@dataclass
class AppResult:
    """Per-step results plus the predicted workload label."""

    config: str
    steps: dict
    label: int
    score: int
    features: list

    @property
    def total_cycles(self) -> int:
        return sum(step.cycles for step in self.steps.values())

    def step_cycles(self, name: str) -> int:
        return self.steps[name].cycles


def _epilogue_cycles(n_insp: int, n_exp: int) -> int:
    """CPU cost of the tiny divide/isqrt/median epilogues."""
    sort_steps = sum(
        n * max(n.bit_length(), 1) for n in (n_insp, n_exp)
    )
    return int(round(FEAT_SORT_STEP * sort_steps + FEAT_EPILOGUE * 8))


def _assemble_features(insp, exp, bands) -> list:
    """11-entry feature vector; ``bands`` already path-normalized to the
    common scale (spectrum power >> 24)."""
    return [
        mean_int(insp), median_int(insp), rms_int(insp),
        mean_int(exp), median_int(exp), rms_int(exp),
        *bands,
        len(insp),
    ]


def run_application(samples, config: str, runner: KernelRunner = None,
                    reset_sram: bool = True,
                    params: AppParams = None) -> AppResult:
    """Run one MBioTracker window in the given configuration.

    A caller-provided ``runner`` is reused across windows: by default its
    SRAM bump allocator is rewound first (staging buffers are per-window;
    without the rewind a few windows overflow the SRAM). Pass
    ``reset_sram=False`` if you keep your own SRAM-resident buffers
    allocated through that runner and manage the allocator yourself.
    ``params`` overrides the pipeline's tunables (:class:`AppParams`).

    This is a thin single-window client of the stream API: multi-window
    traces are better served through :func:`repro.serve.serve_trace`,
    which amortizes kernel stores and double-buffers the staging area.
    """
    if len(samples) != WINDOW:
        raise ConfigurationError(
            f"the application window is {WINDOW} samples, got {len(samples)}"
        )
    if config not in CONFIGS:
        raise ConfigurationError(
            f"unknown configuration {config!r} (choose from {CONFIGS})"
        )
    from repro.serve import StreamScheduler, WindowStream

    scheduler = StreamScheduler(
        config=config, params=params, runner=runner,
        reset_sram=reset_sram, double_buffer=False,
    )
    report = scheduler.run(WindowStream(samples, window=WINDOW))
    return report.windows[0].app


@dataclass(frozen=True)
class WindowPipeline:
    """The MBioTracker window pipeline bound to a config + parameters.

    The stream scheduler's unit of work: calling it runs one window on
    the given runner and returns the :class:`AppResult`. A frozen
    dataclass rather than a closure so it pickles — pool workers
    (:class:`~repro.serve.PoolScheduler`) receive the pipeline by value
    and rebuild nothing, and its ``repr`` is restart-stable, which is
    what stream checkpoints fingerprint. Custom pipelines with the same
    ``(runner, samples)`` signature can be served through
    :class:`repro.serve.StreamScheduler` directly.
    """

    config: str
    params: AppParams

    def __call__(self, runner: KernelRunner, samples) -> AppResult:
        return _run_window(samples, self.config, runner, self.params)


def window_pipeline(config: str, params: AppParams = None) -> WindowPipeline:
    """Bind ``config``/``params`` into a picklable window pipeline."""
    if config not in CONFIGS:
        raise ConfigurationError(
            f"unknown configuration {config!r} (choose from {CONFIGS})"
        )
    return WindowPipeline(
        config=config, params=params if params is not None else AppParams()
    )


def _run_window(samples, config: str, runner: KernelRunner,
                params: AppParams) -> AppResult:
    """The four-step pipeline over one staged window (no SRAM rewind)."""
    if len(samples) != WINDOW:
        raise ConfigurationError(
            f"the application window is {WINDOW} samples, got {len(samples)}"
        )
    taps = lowpass_taps_q15(params.fir_taps, params.fir_cutoff)
    model = default_workload_model()
    soc = runner.soc
    steps = {}

    def step_window(name):
        return _StepWindow(name, soc, steps)

    if config in ("cpu", "cpu_fft_accel"):
        soc.without_accelerators()
        with step_window("preprocessing"):
            fir = fir_q15(samples, taps)
            soc.run_cpu(fir.cycles)
        with step_window("delineation"):
            delineation = delineate(
                fir.samples, params.delineation_threshold
            )
            soc.run_cpu(delineation.cycles)
        with step_window("features"):
            if config == "cpu":
                spectrum = rfft_q15(fir.samples)
                soc.run_cpu(spectrum.cycles)
                sp_re, sp_im = spectrum.re[:257], spectrum.im[:257]
                # rfft_q15 output is the true spectrum / 256.
                bands = [
                    band_power(sp_re, sp_im, lo, hi) >> 8
                    for lo, hi in params.bands
                ]
            else:
                soc.with_accelerators()
                accel = soc.fft_accel.real_fft(fir.samples)
                soc.cpu.sleep(accel.cycles)
                soc.power.advance(accel.cycles)
                soc.run_cpu(300)  # accelerator driver / IRQ handling
                soc.without_accelerators()
                sp_re, sp_im = accel.re, accel.im
                # Accelerator mantissas carry a block exponent.
                bands = [
                    (band_power(sp_re, sp_im, lo, hi)
                     << (2 * accel.scale)) >> 24
                    for lo, hi in params.bands
                ]
            features = _assemble_features(
                delineation.insp_times, delineation.exp_times, bands
            )
            feat = extract_features(
                delineation.insp_times, delineation.exp_times,
                sp_re, sp_im,
            )
            soc.run_cpu(feat.cycles)
            soc.run_cpu(FEAT_APP_CPU_LUMP)
            svm = predict(model, features)
            soc.run_cpu(svm.cycles)
        return AppResult(
            config=config, steps=steps, label=svm.label,
            score=svm.score, features=features,
        )

    # ---- cpu_vwr2a -----------------------------------------------------------
    soc.with_accelerators()
    arch = soc.params
    line_words = arch.line_words

    # High-SPM scratch area that no kernel layout touches: delineation
    # outputs, intervals, accumulator and SVM words live in the top 2048
    # words (the paper geometry's top 16 lines) regardless of line width.
    hi_base = arch.spm_words - 16 * 128

    with step_window("preprocessing"):
        fir = run_fir(runner, taps, samples, spm_x_line=0)
        filtered = fir.samples
        # Keep the filtered window resident in the SPM for the next steps
        # (compacted copy staged back through the DMA).
        layout = plan_fir(arch, WINDOW, params.fir_taps)
        compact_line = 2 * layout.n_lines
        runner.stage_in(filtered, compact_line * line_words)
        soc.run_cpu(60)  # kernel-parameter programming

    with step_window("delineation"):
        delineation = run_delineation(
            runner, filtered, params.delineation_threshold,
            x_word=compact_line * line_words, stage_input=False,
            out_word=hi_base,
        )
        maxima, minima = delineation.maxima, delineation.minima

    with step_window("features"):
        # 512-point real FFT of the resident filtered signal; spectrum
        # stays in the SPM.
        rfft = RfftEngine(runner, WINDOW)
        spec = rfft.run(filtered, collect=False)
        sp_re, sp_im = spec.re, spec.im
        # Interval extraction on the array (positions already in the SPM).
        insp_ref = _intervals(minima, maxima)
        exp_ref = _intervals(maxima, minima)
        max_word = hi_base
        min_word = max_word + WINDOW + 2
        iv_word = min_word + WINDOW + 2
        n_insp, n_exp = len(insp_ref), len(exp_ref)
        insp_off = 0 if (maxima and minima and minima[0] < maxima[0]) else 1
        exp_off = 0 if (maxima and minima and maxima[0] < minima[0]) else 1
        run_intervals(
            runner,
            insp_spec=(max_word + insp_off, min_word, iv_word, n_insp),
            exp_spec=(min_word + exp_off, max_word, iv_word + n_insp, n_exp),
        )
        spm = soc.vwr2a.spm
        insp = spm.peek_words(iv_word, n_insp) if n_insp else []
        exp = spm.peek_words(iv_word + n_insp, n_exp) if n_exp else []
        # Sum / sum-of-squares accumulations for mean and RMS.
        acc_word = iv_word + n_insp + n_exp + 4
        sums = {}
        for key, word, count, squares in (
            ("insp_sum", iv_word, n_insp, False),
            ("insp_sq", iv_word, n_insp, True),
            ("exp_sum", iv_word + n_insp, n_exp, False),
            ("exp_sq", iv_word + n_insp, n_exp, True),
        ):
            sums[key] = run_accumulate(
                runner, word, count, acc_word, squares=squares
            ).value
        # Band powers over the resident spectrum: normalize (>> 12, the
        # common feature scale and overflow headroom for the squares),
        # square and add with vector kernels, then per-band accumulations.
        spec_lines = -(-256 // line_words)  # 256 usable bins
        pow_line = rfft.w_line + (rfft.w_lines if rfft.w_resident else 2)
        pow_line = min(pow_line, arch.spm_lines - 2 * spec_lines)
        power_word = pow_line * line_words
        sq_word = power_word + spec_lines * line_words
        for name, op, a_line, b_line, scalar_arg, c_line in (
            ("nrm_re", RCOp.SRA, rfft.xre_line, None, 12, pow_line),
            ("nrm_im", RCOp.SRA, rfft.xim_line, None, 12,
             pow_line + spec_lines),
            ("sq_re", RCOp.SMUL, pow_line, pow_line, None, pow_line),
            ("sq_im", RCOp.SMUL, pow_line + spec_lines,
             pow_line + spec_lines, None, pow_line + spec_lines),
            ("sum", RCOp.SADD, pow_line, pow_line + spec_lines, None,
             pow_line),
        ):
            if scalar_arg is not None:
                cfg = scalar_kernel(
                    arch, op, spec_lines * line_words,
                    a_line=a_line, c_line=c_line, scalar=scalar_arg,
                    name=name,
                )
            else:
                cfg = elementwise_kernel(
                    arch, op, spec_lines * line_words,
                    a_line=a_line, b_line=b_line, c_line=c_line,
                    name=name,
                )
            runner.execute(cfg)
        bands = []
        for lo, hi in params.bands:
            bands.append(run_accumulate(
                runner, power_word + lo, hi - lo, acc_word
            ).value)
        # CPU epilogue: divides, isqrt, medians over ~10-element arrays.
        soc.run_cpu(_epilogue_cycles(n_insp, n_exp))
        # The unpublished remainder of the feature set (see cpu_cost):
        # VWR2A executes it at the measured kernel speed-up ratio.
        lump = int(FEAT_APP_CPU_LUMP / FEAT_APP_VWR2A_RATIO)
        soc.cpu.sleep(lump)
        soc.power.advance(lump)
        features = _assemble_features(insp, exp, bands)
        # SVM decision function on VWR2A: stage features + weights, MAC.
        svm_word = acc_word + 2
        runner.stage_in(features, svm_word)
        runner.stage_in(model.weights[0], svm_word + len(features))
        dot = run_accumulate(
            runner, svm_word, len(features), acc_word,
            b_word=svm_word + len(features),
        ).value
        score = dot + model.bias
        label = 1 if score >= 0 else -1
        soc.run_cpu(40)  # final thresholding + state copy-back

    return AppResult(
        config="cpu_vwr2a", steps=steps, label=label,
        score=score, features=features,
    )


class _StepWindow:
    """Context manager capturing cycles + events of one step."""

    def __init__(self, name: str, soc, steps: dict) -> None:
        self.name = name
        self.soc = soc
        self.steps = steps

    def __enter__(self):
        self._events = self.soc.events.snapshot()
        self._active = self.soc.cpu.active_cycles
        self._sleep = self.soc.cpu.sleep_cycles
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            return False
        active = self.soc.cpu.active_cycles - self._active
        sleep = self.soc.cpu.sleep_cycles - self._sleep
        self.steps[self.name] = StepResult(
            name=self.name,
            cycles=active + sleep,
            cpu_active=active,
            cpu_sleep=sleep,
            events=self.soc.events.diff(self._events),
        )
        return False
