"""Docs-as-tests: smoke-execute every fenced python block in the docs.

Code samples rot silently — an API rename leaves ``docs/*.md`` claiming
constructors that no longer exist. This runner makes the docs part of
CI (the ``docs`` job): it extracts every fenced ```` ```python ````
block from ``docs/*.md`` and ``README.md`` and executes it, so a sample
that stops importing or stops running fails the build next to lint.

Rules (documented for doc authors in docs/observability.md):

* blocks in one file run **cumulatively** in a shared namespace, top to
  bottom — later samples may use names earlier samples defined, exactly
  as a reader would type them into one session;
* each file runs in its own temporary working directory — samples that
  write artifacts (``run.ckpt``) stay self-contained;
* a block tagged ```` ```python fragment ```` is **syntax-checked
  only** — for deliberately incomplete sketches (``...`` placeholders,
  illustrative attribute listings on objects the sample doesn't build);
* any other fence language (``sh``, ``text``) is ignored.

Run locally with::

    PYTHONPATH=src python tools/docs_as_tests.py
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
import time
import traceback

#: Example scripts executed end-to-end alongside the doc blocks. Most
#: examples double as fenced blocks somewhere in docs/; the ones listed
#: here have no doc twin (multi-process orchestration does not fit a
#: cumulative doc namespace) and would otherwise rot unexecuted.
EXAMPLE_SCRIPTS = ("examples/fleet_serving.py",)

#: ```python ...\n<body>``` — the info string after "python" carries
#: flags (currently just "fragment"). The fence may be indented (a
#: block inside a markdown list); the body is dedented to match.
_FENCE = re.compile(
    r"^(?P<indent>[ \t]*)```python(?P<flags>[^\n`]*)\n"
    r"(?P<body>.*?)^(?P=indent)```[ \t]*$",
    re.S | re.M,
)


def extract_blocks(text: str) -> list:
    """``(flags, line_number, body)`` of every fenced python block."""
    blocks = []
    for match in _FENCE.finditer(text):
        flags = match.group("flags").split()
        line = text.count("\n", 0, match.start()) + 2
        indent = match.group("indent")
        body = match.group("body")
        if indent:
            body = "".join(
                raw[len(indent):] if raw.startswith(indent) else raw
                for raw in body.splitlines(keepends=True)
            )
        blocks.append((flags, line, body))
    return blocks


def doc_files(root: str) -> list:
    docs = sorted(
        os.path.join(root, "docs", name)
        for name in os.listdir(os.path.join(root, "docs"))
        if name.endswith(".md")
    )
    return [os.path.join(root, "README.md")] + docs


def run_file(path: str, verbose: bool = True) -> list:
    """Execute ``path``'s blocks; returns failures as (label, error)."""
    with open(path) as handle:
        blocks = extract_blocks(handle.read())
    failures = []
    if not blocks:
        return failures
    namespace = {"__name__": f"docs_as_tests:{os.path.basename(path)}"}
    before = os.getcwd()
    with tempfile.TemporaryDirectory(prefix="docs-as-tests-") as scratch:
        os.chdir(scratch)
        try:
            for flags, line, body in blocks:
                label = f"{os.path.relpath(path, start=before)}:{line}"
                start = time.perf_counter()
                try:
                    code = compile(body, label, "exec")
                    if "fragment" not in flags:
                        exec(code, namespace)  # noqa: S102 - the point
                except Exception:
                    failures.append((label, traceback.format_exc()))
                    if verbose:
                        print(f"  FAIL {label}")
                    continue
                if verbose:
                    wall = time.perf_counter() - start
                    what = (
                        "syntax-ok" if "fragment" in flags
                        else f"ran in {wall:.2f}s"
                    )
                    print(f"  ok   {label} ({what})")
        finally:
            os.chdir(before)
    return failures


def run_example(root: str, rel: str, verbose: bool = True) -> list:
    """Execute one example script in a subprocess; failures as in
    :func:`run_file`."""
    script = os.path.join(root, rel)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(root, "src"),
                    env.get("PYTHONPATH", "")) if p
    )
    start = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="docs-as-tests-") as scratch:
        proc = subprocess.run(
            [sys.executable, script], cwd=scratch, env=env,
            capture_output=True, text=True, timeout=600,
        )
    if proc.returncode != 0:
        if verbose:
            print(f"  FAIL {rel}")
        return [(rel, f"exit code {proc.returncode}\n{proc.stdout}"
                      f"\n{proc.stderr}")]
    if verbose:
        print(f"  ok   {rel} (ran in {time.perf_counter() - start:.2f}s)")
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Smoke-execute fenced python blocks in docs/ + README."
    )
    parser.add_argument(
        "paths", nargs="*",
        help="markdown files to check (default: README.md + docs/*.md)",
    )
    parser.add_argument(
        "--root", default=os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        ),
        help="repository root (default: this script's parent)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="only report failures",
    )
    args = parser.parse_args(argv)

    paths = args.paths or doc_files(args.root)
    all_failures = []
    checked = 0
    for path in paths:
        if not args.quiet:
            print(f"{os.path.relpath(path, start=args.root)}:")
        checked += 1
        all_failures.extend(run_file(path, verbose=not args.quiet))
    if not args.paths:
        for rel in EXAMPLE_SCRIPTS:
            if not args.quiet:
                print(f"{rel}:")
            checked += 1
            all_failures.extend(
                run_example(args.root, rel, verbose=not args.quiet)
            )
    if all_failures:
        print(f"\n{len(all_failures)} doc block(s) failed:")
        for label, trace in all_failures:
            print(f"\n--- {label} ---\n{trace}")
        return 1
    if not args.quiet:
        print(f"\nall python blocks across {checked} file(s) pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
