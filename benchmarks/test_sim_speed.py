"""Simulator cycle-throughput benchmark: compiled engine vs reference.

Runs the paper's largest transform (the split 2048-point complex FFT,
Table 2) on both execution engines, measures wall time spent inside
``Vwr2a.run`` (kernel execution only — staging and configuration encode
are engine-independent), and writes ``BENCH_sim_speed.json`` at the repo
root. A separate guard test fails outright if the compiled throughput
multiple drops below :data:`MIN_SPEEDUP`.

Each engine's flow is measured :data:`REPEATS` times and the fastest run
is kept — the simulated work is identical per repetition, so the minimum
estimates the true cost with scheduler noise removed (single-core CI
runners share their host).

The compiled measurement also aggregates the **superblock** counters off
``RunResult.superblocks``: how many closed-form fused loops executed, the
total trips they covered without per-trip dispatch, and how many ran the
NumPy steady state (the FFT's 16/32-trip Table-1 loops sit below the
vectorization break-even and run as counted scalar loops — see
``repro.engine.superblocks.VEC_MIN_TRIPS_LANES``).

Also measures **short-kernel launch latency** — store + launch of a small
FIR, regenerated every iteration exactly like the FFT engines regenerate
their batch kernels — which exercises the configuration-store caches
(structural encode/hazard memoization) and the per-config SPM-conflict
verdict cache. The warm-path iterations must perform zero re-encodes,
zero hazard re-checks and zero conflict re-analyses.

Kept tier-1-bounded by design: one warm-up flow plus a handful of
measured flows (~3 s total, reference-dominated). The warm-up populates
the compile-once caches — the compiled engine's steady state is precisely
the compile-once / execute-many regime the engine exists for.
"""

from __future__ import annotations

import time

import pytest

from bench_io import update_bench
from repro.baselines import lowpass_taps_q15
from repro.kernels import KernelRunner, SplitFftEngine
from repro.kernels.fir import build_fir_kernel, plan_fir
from repro.soc.platform import BiosignalSoC

#: Acceptance floor: the compiled engine must simulate cycles at least
#: this many times faster than the reference interpreter.
MIN_SPEEDUP = 25.0

#: Measured repetitions per engine (fastest kept).
REPEATS = 3


def _signal(n: int, scale: int = 1000) -> list:
    return [((i * 37 + (i * i) % 211) % (2 * scale)) - scale
            for i in range(n)]


def _measure(engine: str, repeats: int = REPEATS) -> dict:
    runner = KernelRunner(soc=BiosignalSoC(engine=engine))
    vwr2a = runner.soc.vwr2a
    fft = SplitFftEngine(runner, 2048)
    re = _signal(2048)
    im = _signal(2048, scale=700)
    fft.run(re, im)  # warm-up: compile/analysis caches, twiddle staging

    original_run = vwr2a.run
    best = None
    first_spectrum = None
    for _ in range(repeats):
        runner.reset_sram()  # staging buffers are transient per flow
        acc = {
            "wall": 0.0, "cycles": 0, "launches": 0,
            "superblocks": {
                "accelerated_loops": 0,
                "accelerated_trips": 0,
                "vectorized_loops": 0,
                "vector_rejections": {},
            },
        }

        def timed_run(name, max_cycles=None, acc=acc):
            start = time.perf_counter()
            result = original_run(name, max_cycles=max_cycles)
            acc["wall"] += time.perf_counter() - start
            acc["cycles"] += result.cycles
            acc["launches"] += 1
            if result.superblocks:
                for key, value in result.superblocks.items():
                    if key == "vector_rejections":
                        rejections = acc["superblocks"][key]
                        for reason, count in value.items():
                            rejections[reason] = \
                                rejections.get(reason, 0) + count
                    else:
                        acc["superblocks"][key] += value
            return result

        vwr2a.run = timed_run
        try:
            out = fft.run(re, im)
        finally:
            vwr2a.run = original_run
        if first_spectrum is None:
            # The FFT flow reuses SPM-resident state across repetitions,
            # so spectra are only comparable at equal repetition index;
            # the engines must agree on the first measured flow.
            first_spectrum = (out.re[:4], out.im[:4])
        if best is None or acc["wall"] < best["wall"]:
            best = acc
    return {
        "engine": engine,
        "kernel_cycles": best["cycles"],
        "kernel_launches": best["launches"],
        "wall_seconds": best["wall"],
        "cycles_per_second": best["cycles"] / best["wall"],
        "measured_repeats": repeats,
        "superblocks": best["superblocks"],
        "spectrum_head": first_spectrum,
    }


@pytest.fixture(scope="module")
def fft_measurements() -> dict:
    return {
        "reference": _measure("reference", repeats=2),
        "compiled": _measure("compiled"),
    }


def test_sim_speed_fft2048(fft_measurements):
    reference = fft_measurements["reference"]
    compiled = fft_measurements["compiled"]

    # Equivalence first: same simulated work, same results.
    assert compiled["kernel_cycles"] == reference["kernel_cycles"]
    assert compiled["kernel_launches"] == reference["kernel_launches"]
    assert compiled["spectrum_head"] == reference["spectrum_head"]

    # The superblock tier must actually engage: every Table-1 loop in the
    # FFT flow is provably closed-form.
    superblocks = compiled["superblocks"]
    assert superblocks["accelerated_loops"] > 0
    assert superblocks["accelerated_trips"] \
        >= superblocks["accelerated_loops"]

    speedup = (
        compiled["cycles_per_second"] / reference["cycles_per_second"]
    )
    drop = ("spectrum_head", "superblocks")
    update_bench({
        "benchmark": "fft2048_split",
        "metric": "simulated cycles per wall-clock second (Vwr2a.run only)",
        "reference": {
            k: v for k, v in reference.items() if k not in drop
        },
        "compiled": {
            k: v for k, v in compiled.items() if k not in drop
        },
        "speedup": speedup,
        "min_speedup_required": MIN_SPEEDUP,
        "superblock": {
            "metric": "closed-form fused-loop executions in the compiled "
                      "FFT-2048 flow (one dispatch per loop run)",
            "accelerated_loops": superblocks["accelerated_loops"],
            "accelerated_trips": superblocks["accelerated_trips"],
            "vectorized_loops": superblocks["vectorized_loops"],
            "vector_rejections": superblocks["vector_rejections"],
            "kernel_launches": compiled["kernel_launches"],
        },
    })


def test_fft2048_speedup_guard(fft_measurements):
    """Hard floor: compiled FFT-2048 throughput must stay >= 25x."""
    speedup = (
        fft_measurements["compiled"]["cycles_per_second"]
        / fft_measurements["reference"]["cycles_per_second"]
    )
    assert speedup >= MIN_SPEEDUP, (
        f"compiled engine only {speedup:.1f}x faster than reference "
        f"(need >= {MIN_SPEEDUP}x); see BENCH_sim_speed.json"
    )


def test_short_kernel_launch_latency():
    """Store+launch latency of a small FIR under the config-store cache.

    The kernel is regenerated every iteration (fresh objects, identical
    code and addresses — the FFT engines' per-launch pattern), so after
    the cold first store every iteration must dedupe: zero re-encodes,
    zero hazard re-checks, and a per-config conflict-verdict cache hit
    (``analysis_hits``) instead of a re-analysis.
    """
    runner = KernelRunner()  # engine="auto", the default
    vwr2a = runner.soc.vwr2a
    taps = lowpass_taps_q15(11, 0.1)
    samples = _signal(128)
    layout = plan_fir(vwr2a.params, len(samples), len(taps))

    def store_and_launch():
        config = build_fir_kernel(
            vwr2a.params, taps, layout, 0, layout.n_lines,
            name="bench_short_fir",
        )
        start = time.perf_counter()
        runner.store(config)
        result = runner.launch(config.name)
        return time.perf_counter() - start, result

    cold_wall, cold_result = store_and_launch()
    assert cold_result.engine == "compiled"

    stats = vwr2a.config_mem.stats
    cold = stats.as_dict()

    iterations = 50
    warm_wall = 0.0
    for _ in range(iterations):
        wall, result = store_and_launch()
        warm_wall += wall
        assert result.engine == "compiled"
    warm_launch = warm_wall / iterations

    # Warm path: the config cache absorbed every re-store, and the
    # conflict verdict rode on the stored config object.
    warm = stats.as_dict()
    assert warm["encode_misses"] == cold["encode_misses"]
    assert warm["hazard_misses"] == cold["hazard_misses"]
    assert warm["analysis_misses"] == cold["analysis_misses"]
    assert warm["dedup_hits"] >= iterations
    assert warm["analysis_hits"] >= iterations

    update_bench({
        "short_kernel_launch": {
            "kernel": f"fir_{len(samples)}_{len(taps)}",
            "metric": "store+launch wall seconds (config cache warm)",
            "cold_launch_seconds": cold_wall,
            "warm_launch_seconds": warm_launch,
            "warm_iterations": iterations,
            "kernel_cycles": cold_result.cycles,
            "store_stats_after_warm": warm,
        },
    })
