"""Simulator cycle-throughput benchmark: compiled engine vs reference.

Runs the paper's largest transform (the split 2048-point complex FFT,
Table 2) on both execution engines, measures wall time spent inside
``Vwr2a.run`` (kernel execution only — staging and configuration encode
are engine-independent), and writes ``BENCH_sim_speed.json`` at the repo
root.

Kept tier-1-bounded by design: one warm-up flow plus one measured flow
per engine (~3 s total). The warm-up populates the compile-once caches —
the compiled engine's steady state is precisely the compile-once /
execute-many regime the engine exists for.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.kernels import KernelRunner, SplitFftEngine
from repro.soc.platform import BiosignalSoC

#: Acceptance floor: the compiled engine must simulate cycles at least
#: this many times faster than the reference interpreter.
MIN_SPEEDUP = 10.0

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _signal(n: int, scale: int = 1000) -> list:
    return [((i * 37 + (i * i) % 211) % (2 * scale)) - scale
            for i in range(n)]


def _measure(engine: str) -> dict:
    runner = KernelRunner(soc=BiosignalSoC(engine=engine))
    vwr2a = runner.soc.vwr2a
    fft = SplitFftEngine(runner, 2048)
    re = _signal(2048)
    im = _signal(2048, scale=700)
    fft.run(re, im)  # warm-up: compile-once caches, twiddle staging

    acc = {"wall": 0.0, "cycles": 0, "launches": 0}
    original_run = vwr2a.run

    def timed_run(name, max_cycles=None):
        start = time.perf_counter()
        result = original_run(name, max_cycles=max_cycles)
        acc["wall"] += time.perf_counter() - start
        acc["cycles"] += result.cycles
        acc["launches"] += 1
        return result

    vwr2a.run = timed_run
    try:
        out = fft.run(re, im)
    finally:
        vwr2a.run = original_run
    return {
        "engine": engine,
        "kernel_cycles": acc["cycles"],
        "kernel_launches": acc["launches"],
        "wall_seconds": acc["wall"],
        "cycles_per_second": acc["cycles"] / acc["wall"],
        "spectrum_head": (out.re[:4], out.im[:4]),
    }


def test_sim_speed_fft2048():
    reference = _measure("reference")
    compiled = _measure("compiled")

    # Equivalence first: same simulated work, same results.
    assert compiled["kernel_cycles"] == reference["kernel_cycles"]
    assert compiled["kernel_launches"] == reference["kernel_launches"]
    assert compiled["spectrum_head"] == reference["spectrum_head"]

    speedup = (
        compiled["cycles_per_second"] / reference["cycles_per_second"]
    )
    payload = {
        "benchmark": "fft2048_split",
        "metric": "simulated cycles per wall-clock second (Vwr2a.run only)",
        "reference": {
            k: v for k, v in reference.items() if k != "spectrum_head"
        },
        "compiled": {
            k: v for k, v in compiled.items() if k != "spectrum_head"
        },
        "speedup": speedup,
        "min_speedup_required": MIN_SPEEDUP,
    }
    (_REPO_ROOT / "BENCH_sim_speed.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"compiled engine only {speedup:.1f}x faster than reference "
        f"(need >= {MIN_SPEEDUP}x); see BENCH_sim_speed.json"
    )
