"""Simulator cycle-throughput benchmark: compiled engine vs reference.

Runs the paper's largest transform (the split 2048-point complex FFT,
Table 2) on both execution engines, measures wall time spent inside
``Vwr2a.run`` (kernel execution only — staging and configuration encode
are engine-independent), and writes ``BENCH_sim_speed.json`` at the repo
root. A separate guard test fails outright if the compiled throughput
multiple drops below :data:`MIN_SPEEDUP`.

Also measures **short-kernel launch latency** — store + launch of a small
FIR, regenerated every iteration exactly like the FFT engines regenerate
their batch kernels — which exercises the configuration-store caches
(structural encode/hazard memoization) and the memoized SPM-conflict
analysis. The warm-path iterations must perform zero re-encodes and zero
hazard re-checks.

Kept tier-1-bounded by design: one warm-up flow plus one measured flow
per engine (~3 s total). The warm-up populates the compile-once caches —
the compiled engine's steady state is precisely the compile-once /
execute-many regime the engine exists for.
"""

from __future__ import annotations

import time

import pytest

from bench_io import update_bench
from repro.baselines import lowpass_taps_q15
from repro.kernels import KernelRunner, SplitFftEngine
from repro.kernels.fir import build_fir_kernel, plan_fir
from repro.soc.platform import BiosignalSoC

#: Acceptance floor: the compiled engine must simulate cycles at least
#: this many times faster than the reference interpreter.
MIN_SPEEDUP = 10.0


def _signal(n: int, scale: int = 1000) -> list:
    return [((i * 37 + (i * i) % 211) % (2 * scale)) - scale
            for i in range(n)]


def _measure(engine: str) -> dict:
    runner = KernelRunner(soc=BiosignalSoC(engine=engine))
    vwr2a = runner.soc.vwr2a
    fft = SplitFftEngine(runner, 2048)
    re = _signal(2048)
    im = _signal(2048, scale=700)
    fft.run(re, im)  # warm-up: compile/analysis caches, twiddle staging

    acc = {"wall": 0.0, "cycles": 0, "launches": 0}
    original_run = vwr2a.run

    def timed_run(name, max_cycles=None):
        start = time.perf_counter()
        result = original_run(name, max_cycles=max_cycles)
        acc["wall"] += time.perf_counter() - start
        acc["cycles"] += result.cycles
        acc["launches"] += 1
        return result

    vwr2a.run = timed_run
    try:
        out = fft.run(re, im)
    finally:
        vwr2a.run = original_run
    return {
        "engine": engine,
        "kernel_cycles": acc["cycles"],
        "kernel_launches": acc["launches"],
        "wall_seconds": acc["wall"],
        "cycles_per_second": acc["cycles"] / acc["wall"],
        "spectrum_head": (out.re[:4], out.im[:4]),
    }


@pytest.fixture(scope="module")
def fft_measurements() -> dict:
    return {
        "reference": _measure("reference"),
        "compiled": _measure("compiled"),
    }


def test_sim_speed_fft2048(fft_measurements):
    reference = fft_measurements["reference"]
    compiled = fft_measurements["compiled"]

    # Equivalence first: same simulated work, same results.
    assert compiled["kernel_cycles"] == reference["kernel_cycles"]
    assert compiled["kernel_launches"] == reference["kernel_launches"]
    assert compiled["spectrum_head"] == reference["spectrum_head"]

    speedup = (
        compiled["cycles_per_second"] / reference["cycles_per_second"]
    )
    update_bench({
        "benchmark": "fft2048_split",
        "metric": "simulated cycles per wall-clock second (Vwr2a.run only)",
        "reference": {
            k: v for k, v in reference.items() if k != "spectrum_head"
        },
        "compiled": {
            k: v for k, v in compiled.items() if k != "spectrum_head"
        },
        "speedup": speedup,
        "min_speedup_required": MIN_SPEEDUP,
    })


def test_fft2048_speedup_guard(fft_measurements):
    """Hard floor: compiled FFT-2048 throughput must stay >= 10x."""
    speedup = (
        fft_measurements["compiled"]["cycles_per_second"]
        / fft_measurements["reference"]["cycles_per_second"]
    )
    assert speedup >= MIN_SPEEDUP, (
        f"compiled engine only {speedup:.1f}x faster than reference "
        f"(need >= {MIN_SPEEDUP}x); see BENCH_sim_speed.json"
    )


def test_short_kernel_launch_latency():
    """Store+launch latency of a small FIR under the config-store cache.

    The kernel is regenerated every iteration (fresh objects, identical
    code and addresses — the FFT engines' per-launch pattern), so after
    the cold first store every iteration must dedupe: zero re-encodes,
    zero hazard re-checks, and the SPM-conflict analysis memo-hits.
    """
    runner = KernelRunner()  # engine="auto", the default
    vwr2a = runner.soc.vwr2a
    taps = lowpass_taps_q15(11, 0.1)
    samples = _signal(128)
    layout = plan_fir(vwr2a.params, len(samples), len(taps))

    def store_and_launch():
        config = build_fir_kernel(
            vwr2a.params, taps, layout, 0, layout.n_lines,
            name="bench_short_fir",
        )
        start = time.perf_counter()
        runner.store(config)
        result = runner.launch(config.name)
        return time.perf_counter() - start, result

    cold_wall, cold_result = store_and_launch()
    assert cold_result.engine == "compiled"

    stats = vwr2a.config_mem.stats
    encode_misses = stats.encode_misses
    hazard_misses = stats.hazard_misses

    iterations = 50
    warm_wall = 0.0
    for _ in range(iterations):
        wall, result = store_and_launch()
        warm_wall += wall
        assert result.engine == "compiled"
    warm_launch = warm_wall / iterations

    # Warm path: the config cache absorbed every re-store.
    assert stats.encode_misses == encode_misses
    assert stats.hazard_misses == hazard_misses
    assert stats.dedup_hits >= iterations

    update_bench({
        "short_kernel_launch": {
            "kernel": f"fir_{len(samples)}_{len(taps)}",
            "metric": "store+launch wall seconds (config cache warm)",
            "cold_launch_seconds": cold_wall,
            "warm_launch_seconds": warm_launch,
            "warm_iterations": iterations,
            "kernel_cycles": cold_result.cycles,
            "store_dedup_hits": stats.dedup_hits,
            "encode_misses_after_warm": stats.encode_misses,
            "hazard_misses_after_warm": stats.hazard_misses,
        },
    })
