"""Table 5: the MBioTracker application — cycles and energy per step.

The paper's central claim: at application level the programmable VWR2A
saves ~90% cycles and ~66% energy vs the CPU, while CPU + fixed-function
FFT accelerator barely moves (9.8% / 3.9%) because only the FFT offloads.
"""

from __future__ import annotations

import pytest

from repro.app import WINDOW, respiration_signal, run_application
from repro.energy import default_model
from repro.kernels.runner import KernelRunner

PAPER_CYCLES = {
    "cpu": {"preprocessing": 49760, "delineation": 46268,
            "features": 70639, "total": 166667},
    "cpu_fft_accel": {"total": 150283},
    "cpu_vwr2a": {"preprocessing": 3763, "delineation": 2723,
                  "features": 8627, "total": 15113},
}


def _step_energy_uj(model, config, step):
    """Energy of one step window from its event diff + CPU accounting."""
    if config == "cpu_vwr2a":
        vwr2a = model.vwr2a_report(step.events, step.cycles).total_uj
    else:
        vwr2a = 0.0
    accel = model.accel_report(step.events, 0).total_uj
    cpu = (
        step.cpu_active * model.table.cpu_pj_per_cycle
        + step.cpu_sleep * model.table.cpu_sleep_pj_per_cycle
    ) * 1e-6
    return vwr2a + accel + cpu


def _run_all():
    signal = respiration_signal(WINDOW)
    return {
        config: run_application(signal, config, KernelRunner())
        for config in ("cpu", "cpu_fft_accel", "cpu_vwr2a")
    }


def test_table5_application(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    model = default_model()
    lines = ["Table 5 (cycles / uJ per step):"]
    energy = {}
    for config, result in results.items():
        total_uj = 0.0
        cells = []
        for name, step in result.steps.items():
            uj = _step_energy_uj(model, config, step)
            total_uj += uj
            cells.append(f"{name} {step.cycles} / {uj:.2f}")
        energy[config] = total_uj
        lines.append(
            f"  {config:15s} {'; '.join(cells)}; "
            f"TOTAL {result.total_cycles} / {total_uj:.2f} uJ"
        )
    table = "\n".join(lines)
    print(table)
    benchmark.extra_info["table"] = table

    cpu = results["cpu"]
    accel = results["cpu_fft_accel"]
    vwr2a = results["cpu_vwr2a"]
    # All configurations agree on the prediction.
    assert cpu.label == accel.label == vwr2a.label
    # Cycle shape: CPU total within 5% of the paper's.
    assert cpu.total_cycles == pytest.approx(166667, rel=0.05)
    # The accelerator helps only a little (paper: 9.8%).
    accel_savings = 1 - accel.total_cycles / cpu.total_cycles
    assert 0.03 < accel_savings < 0.25
    # VWR2A transforms the application (paper: 90.9%).
    vwr2a_savings = 1 - vwr2a.total_cycles / cpu.total_cycles
    assert vwr2a_savings > 0.78
    # Energy: accelerator config ~flat, VWR2A config saves most (66.3%).
    accel_e_savings = 1 - energy["cpu_fft_accel"] / energy["cpu"]
    vwr2a_e_savings = 1 - energy["cpu_vwr2a"] / energy["cpu"]
    assert accel_e_savings < 0.20
    assert vwr2a_e_savings > 0.45
    # Per-step: the accelerator cannot touch preprocessing/delineation.
    for step in ("preprocessing", "delineation"):
        assert accel.steps[step].cycles == cpu.steps[step].cycles
