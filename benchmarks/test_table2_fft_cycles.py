"""Table 2: FFT kernel cycle counts — CPU vs FFT accelerator vs VWR2A.

Regenerates every row of the paper's Table 2: complex- and real-valued
FFTs of 512/1024/2048 points on the three engines, asserting the paper's
shape: VWR2A lands in the same class as the fixed-function accelerator
(within 2.2x across all sizes) while both beat the Cortex-M4 by large
factors.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import q15_noise
from repro.baselines import cfft_cycles, rfft_cycles
from repro.kernels.fft import FftEngine
from repro.kernels.fft2048 import SplitFftEngine
from repro.kernels.rfft import RfftEngine
from repro.kernels.runner import KernelRunner
from repro.soc.fft_accel import FftAccelerator

PAPER = {
    ("complex", 512): (47926, 7099, 7125),
    ("complex", 1024): (84753, 13629, 12405),
    ("complex", 2048): (219667, 31299, 30217),
    ("real", 512): (24927, 3523, 3666),
    ("real", 1024): (62326, 8007, 7133),
    ("real", 2048): (113489, 16490, 14427),
}


def _vwr2a_cycles(kind: str, n: int, data) -> int:
    runner = KernelRunner()
    if kind == "real":
        return RfftEngine(runner, n).run(data).run.total_cycles
    if n == 2048:
        return SplitFftEngine(runner).run(data, [0] * n).run.total_cycles
    return FftEngine(runner, n).run(data, [0] * n).run.total_cycles


@pytest.mark.parametrize("kind", ["complex", "real"])
@pytest.mark.parametrize("n", [512, 1024, 2048])
def test_table2_row(benchmark, rng, kind, n):
    data = q15_noise(rng, n)
    cpu = cfft_cycles(n) if kind == "complex" else rfft_cycles(n)
    accel = (
        FftAccelerator().complex_fft(data, [0] * n).cycles
        if kind == "complex"
        else FftAccelerator().real_fft(data).cycles
    )
    vwr2a = benchmark.pedantic(
        _vwr2a_cycles, args=(kind, n, data), rounds=1, iterations=1
    )
    paper_cpu, paper_accel, paper_vwr2a = PAPER[(kind, n)]
    row = (
        f"Table2 {kind} {n}: CPU {cpu} (paper {paper_cpu}), "
        f"ACCEL {accel} (paper {paper_accel}), "
        f"VWR2A {vwr2a} (paper {paper_vwr2a}), "
        f"speedup {cpu / vwr2a:.1f}x (paper {paper_cpu / paper_vwr2a:.1f}x)"
    )
    print(row)
    benchmark.extra_info["row"] = row
    # Shape assertions: engines in the same class, both >> CPU.
    assert cpu / vwr2a > 3.0, "VWR2A must clearly beat the CPU"
    assert cpu / accel > 5.0
    assert vwr2a / accel < 2.5, (
        "VWR2A should be in the accelerator's performance class"
    )
    # Absolute anchoring: our cycle counts within ~2.3x of the paper's
    # (the overage concentrates in the table-streaming / split-transform
    # sizes; see EXPERIMENTS.md).
    assert 0.45 < vwr2a / paper_vwr2a < 2.3
    assert 0.9 < cpu / paper_cpu < 1.1
    assert 0.9 < accel / paper_accel < 1.1
