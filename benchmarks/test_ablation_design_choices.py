"""Ablations of VWR2A's design choices (Sec. 2/3 rationale).

Three claims the paper argues qualitatively, quantified on our model:

1. **VWR width** (Sec. 3.2: wide VWRs amortize memory traffic): the same
   FIR on a half-width (2048-bit) variant pays more SPM traffic and
   control per output.
2. **Bus sensitivity** (Sec. 2: "the performance of algorithms with many
   data accesses is dependent on the system bus latency and bandwidth"):
   a slower AHB visibly inflates total kernel time through the DMA.
3. **Shuffle unit** (Sec. 3.3.1: reordering "is possible through the RCs
   connection matrix, but it is highly inefficient"): de-interleaving a
   vector with the shuffle unit vs. a datapath-only two-pass copy.
"""

from __future__ import annotations

from repro.arch import ArchParams, SocParams
from repro.baselines import lowpass_taps_q15
from repro.isa import KernelConfig, Vwr
from repro.isa.fields import DST_VWR_C, VWR_A, ShuffleMode
from repro.isa.lsu import ld_vwr, shuf, st_vwr
from repro.isa.mxcu import setk
from repro.isa.rc import RCOp, rc
from repro.kernels.fir import run_fir
from repro.kernels.macro import ColumnKernelBuilder
from repro.kernels.runner import KernelRunner
from repro.soc.platform import BiosignalSoC


def _fir_cycles(params: ArchParams, soc_params: SocParams = None) -> int:
    soc = BiosignalSoC(params, soc_params or SocParams())
    runner = KernelRunner(soc)
    taps = lowpass_taps_q15(11, 0.1)
    x = [(37 * i) % 2000 - 1000 for i in range(256)]
    return run_fir(runner, taps, x).run.total_cycles


def test_ablation_vwr_width(benchmark):
    """Halving the VWR width costs throughput on the same FIR."""
    wide = ArchParams()                      # 4096-bit VWRs
    narrow = ArchParams(vwr_words=64)        # 2048-bit VWRs
    wide_cycles = _fir_cycles(wide)
    narrow_cycles = benchmark.pedantic(
        _fir_cycles, args=(narrow,), rounds=1, iterations=1
    )
    row = (
        f"Ablation VWR width, FIR-256: 4096-bit {wide_cycles} cyc vs "
        f"2048-bit {narrow_cycles} cyc "
        f"({narrow_cycles / wide_cycles:.2f}x slower)"
    )
    print(row)
    benchmark.extra_info["row"] = row
    # Narrower VWRs mean smaller slices (more halo waste) and more
    # per-line control: measurably worse.
    assert narrow_cycles > wide_cycles * 1.1


def test_ablation_bus_latency(benchmark):
    """A slower system bus inflates DMA-bound kernel time (Sec. 2)."""
    fast = SocParams()
    slow = SocParams(bus_setup_cycles=16, bus_burst_len=4)
    fast_cycles = _fir_cycles(ArchParams(), fast)
    slow_cycles = benchmark.pedantic(
        _fir_cycles, args=(ArchParams(), slow), rounds=1, iterations=1
    )
    row = (
        f"Ablation bus, FIR-256: fast AHB {fast_cycles} cyc vs slow AHB "
        f"{slow_cycles} cyc ({slow_cycles / fast_cycles:.2f}x)"
    )
    print(row)
    benchmark.extra_info["row"] = row
    assert slow_cycles > fast_cycles * 1.2


def _deinterleave_with_shuffle() -> int:
    runner = KernelRunner()
    runner.stage_in(list(range(256)), 0)
    kb = ColumnKernelBuilder(runner.soc.params)
    kb.srf(0, 0)
    kb.srf(1, 1)
    kb.srf(2, 2)
    kb.emit(lsu=ld_vwr(Vwr.A, 0))
    kb.emit(lsu=ld_vwr(Vwr.B, 1))
    kb.emit(lsu=shuf(ShuffleMode.ODD_PRUNE))
    kb.emit(lsu=st_vwr(Vwr.C, 2))
    kb.exit()
    cfg = KernelConfig(name="shuf_deint", columns={0: kb.build()})
    result = runner.execute(cfg)
    evens = runner.soc.vwr2a.spm.peek_words(256, 128)
    assert evens == list(range(0, 256, 2))
    return result.cycles


def _deinterleave_with_datapath() -> int:
    """Datapath-only extraction: the RCs walk even indices (2 VWR passes
    since each source VWR's evens land in half the output positions)."""
    runner = KernelRunner()
    runner.stage_in(list(range(256)), 0)
    kb = ColumnKernelBuilder(runner.soc.params)
    kb.srf(0, 0)
    kb.srf(1, 1)
    kb.srf(2, 2)
    for src_line in (0, 1):
        kb.emit(lsu=ld_vwr(Vwr.A, src_line))
        # Read even positions: k steps by 2; two sub-passes cover reads
        # and the compacting write positions need a second walk.
        kb.emit(mxcu=setk(30))
        kb.vector_pass(rc(RCOp.MOV, DST_VWR_C, VWR_A), positions=32)
        kb.emit(lsu=st_vwr(Vwr.C, 2, inc=1))
    kb.exit()
    cfg = KernelConfig(name="dp_deint", columns={0: kb.build()})
    return runner.execute(cfg).cycles


def test_ablation_shuffle_unit(benchmark):
    shuffle_cycles = benchmark.pedantic(
        _deinterleave_with_shuffle, rounds=1, iterations=1
    )
    datapath_cycles = _deinterleave_with_datapath()
    row = (
        "Ablation shuffle unit, 256-word de-interleave: shuffle "
        f"{shuffle_cycles} cyc vs datapath-copy {datapath_cycles}+ cyc "
        f"(>= {datapath_cycles / shuffle_cycles:.0f}x; and the datapath "
        "version still needs a second reorder pass)"
    )
    print(row)
    benchmark.extra_info["row"] = row
    # One shuffle op replaces tens of datapath cycles.
    assert shuffle_cycles * 5 < datapath_cycles
