"""Shared fixtures for the table/figure reproduction benchmarks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import lowpass_taps_q15


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2022)


@pytest.fixture(scope="session")
def taps11():
    return lowpass_taps_q15(11, 0.1)


def q15_noise(rng, n, scale=0.4):
    return (rng.uniform(-scale, scale, n) * 32768).astype(int).tolist()
