"""Deterministic maintenance of ``BENCH_sim_speed.json``.

All speed benchmarks merge their entries into one JSON file at the repo
root through :func:`update_bench`. The output is canonicalized — keys
sorted, floats clamped to :data:`FLOAT_DIGITS` significant digits — so
committed snapshots and CI build artifacts diff stably: a re-run changes
only the measurements that actually moved, never the formatting.
"""

from __future__ import annotations

import json
from pathlib import Path

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim_speed.json"

#: Significant digits kept for floats — far more than timing noise
#: resolves, few enough that the JSON stays readable and diffable.
FLOAT_DIGITS = 6


def canonical(value):
    """Recursively normalize a payload for deterministic serialization."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return float(f"{value:.{FLOAT_DIGITS}g}")
    if isinstance(value, dict):
        return {str(key): canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    return value


def update_bench(update: dict) -> None:
    """Merge ``update`` into BENCH_sim_speed.json (test-order agnostic)."""
    payload = {}
    if BENCH_PATH.exists():
        try:
            payload = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            payload = {}
    payload.update(update)
    BENCH_PATH.write_text(
        json.dumps(canonical(payload), indent=2, sort_keys=True) + "\n"
    )
