"""Parallel serving throughput: process pool vs one stream scheduler.

Serves the same long respiration trace through the full MBioTracker
``cpu_vwr2a`` pipeline twice:

* **single** — one :class:`~repro.serve.StreamScheduler` on one runner
  (the PR-3 batched flow, already store-once amortized);
* **pooled** — a :class:`~repro.serve.PoolScheduler` with
  :data:`POOL_WORKERS` worker processes, each owning its own simulated
  platform instance, fed by the async feeder thread.

Writes the ``pool_windows_per_s`` entry into ``BENCH_sim_speed.json``
and guards that the pool beats single-process serving by
:data:`MIN_POOL_SPEEDUP` on hosts with at least :data:`POOL_WORKERS`
usable CPUs (the simulation is pure-Python CPU-bound; with fewer cores
the pool cannot win by construction, so the guard skips — the CI bench
job runs on multi-core runners where it is enforced). Bit-identity of
the pooled report is asserted unconditionally, on every host.

Kept tier-1-bounded: ~2x :data:`N_WINDOWS` application windows (~4 s
single-core, less on multi-core).
"""

from __future__ import annotations

import os
import time

import pytest

from bench_io import update_bench
from repro.app import WINDOW, respiration_signal
from repro.serve import PoolScheduler, StreamScheduler, WindowStream

#: Windows in the measured stream — long enough to amortize worker
#: start-up (fork + per-worker cold stores) across several windows each
#: (6 per worker at 4 workers).
N_WINDOWS = 24

#: Worker processes in the measured pool.
POOL_WORKERS = 4

#: Acceptance floor: the pool must beat one scheduler by this much when
#: the host actually has POOL_WORKERS CPUs to run it on.
MIN_POOL_SPEEDUP = 1.5


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux hosts
        return os.cpu_count() or 1


def _skip_reason() -> str:
    """Why the speedup guard is not enforced on this host (or None).

    Recorded verbatim in ``BENCH_sim_speed.json`` so a committed
    ``speedup`` below the floor with ``guard_enforced: false`` reads as
    what it is — a host without enough CPUs to run the pool — and not as
    a performance regression.
    """
    cpus = _usable_cpus()
    if cpus >= POOL_WORKERS:
        return None
    return (
        f"host exposes {cpus} usable CPU(s); a {POOL_WORKERS}-worker "
        "pool cannot beat single-process serving of a CPU-bound "
        "simulation by construction (guard enforced on >= "
        f"{POOL_WORKERS}-CPU hosts, e.g. the CI bench job)"
    )


@pytest.fixture(scope="module")
def measurements():
    trace = respiration_signal(N_WINDOWS * WINDOW)
    stream = WindowStream(trace, window=WINDOW)

    # Warm the process-wide structural caches (compile memo, conflict
    # verdicts); forked workers inherit them, so both flows start warm.
    StreamScheduler(config="cpu_vwr2a", energy_model=None).run(
        WindowStream(trace[:WINDOW], window=WINDOW)
    )

    start = time.perf_counter()
    single = StreamScheduler(config="cpu_vwr2a", energy_model=None) \
        .run(stream)
    single_wall = time.perf_counter() - start

    start = time.perf_counter()
    pooled = PoolScheduler(
        config="cpu_vwr2a", workers=POOL_WORKERS, energy_model=None,
    ).run(stream)
    pooled_wall = time.perf_counter() - start

    return {
        "single": single, "single_wall": single_wall,
        "pooled": pooled, "pooled_wall": pooled_wall,
    }


def test_pool_throughput_vs_single_scheduler(measurements):
    single = measurements["single"]
    pooled = measurements["pooled"]

    # Same served inference, window for window, however sharded.
    assert pooled.n_windows == single.n_windows == N_WINDOWS
    assert pooled.labels == single.labels
    assert [w.cycles for w in pooled.windows] \
        == [w.cycles for w in single.windows]
    assert [w.events for w in pooled.windows] \
        == [w.events for w in single.windows]
    assert pooled.engine_counts == single.engine_counts

    single_wall = measurements["single_wall"]
    pooled_wall = measurements["pooled_wall"]
    speedup = single_wall / pooled_wall
    skip_reason = _skip_reason()
    if skip_reason is not None:
        print(f"\npool speedup guard not enforced: {skip_reason}")
    update_bench({
        "pool_windows_per_s": {
            "benchmark": "mbiotracker cpu_vwr2a window stream, "
                         f"{POOL_WORKERS}-worker process pool",
            "metric": "application windows served per wall-clock second",
            "n_windows": N_WINDOWS,
            "workers": POOL_WORKERS,
            "usable_cpus": _usable_cpus(),
            "single_windows_per_s": N_WINDOWS / single_wall,
            "pool_windows_per_s": N_WINDOWS / pooled_wall,
            "single_wall_seconds": single_wall,
            "pool_wall_seconds": pooled_wall,
            "speedup": speedup,
            "min_speedup_required": MIN_POOL_SPEEDUP,
            "guard_enforced": skip_reason is None,
            "skip_reason": skip_reason,
            "simulated_cycles_per_window":
                single.total_cycles // N_WINDOWS,
        },
    })


def test_pool_speedup_guard(measurements):
    """Hard floor: the 4-worker pool must serve >= 1.5x faster."""
    skip_reason = _skip_reason()
    if skip_reason is not None:
        pytest.skip(skip_reason)
    speedup = measurements["single_wall"] / measurements["pooled_wall"]
    assert speedup >= MIN_POOL_SPEEDUP, (
        f"{POOL_WORKERS}-worker pool only {speedup:.2f}x faster than one "
        f"scheduler (need >= {MIN_POOL_SPEEDUP}x); see BENCH_sim_speed.json"
    )
