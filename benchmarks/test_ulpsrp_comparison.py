"""Sec. 5.1.1: comparison against ULP-SRP (ADRES instantiation).

Paper: the ULP-SRP executes a 256-point FFT in 839.1 us / 19.9 uJ; VWR2A
does it in 35.6 us / 0.3 uJ — 23x faster, 66x less energy. We reproduce
VWR2A's side by measurement and compare to the published ULP-SRP numbers.
"""

from __future__ import annotations

from benchmarks.conftest import q15_noise
from repro.energy import default_model
from repro.energy.anchors import (
    ULP_SRP_FFT256_ENERGY_UJ,
    ULP_SRP_FFT256_TIME_US,
)
from repro.kernels.fft import FftEngine
from repro.kernels.runner import KernelRunner


def _measure(data):
    model = default_model()
    runner = KernelRunner()
    engine = FftEngine(runner, 256)
    engine.prepare()
    before = runner.events_snapshot()
    result = engine.run(data, [0] * 256)
    cycles = result.run.total_cycles
    uj = model.vwr2a_report(runner.events_since(before), cycles).total_uj
    return cycles, uj


def test_ulpsrp_comparison(benchmark, rng):
    data = q15_noise(rng, 256)
    cycles, uj = benchmark.pedantic(
        _measure, args=(data,), rounds=1, iterations=1
    )
    us = cycles / 80e6 * 1e6
    perf_gain = ULP_SRP_FFT256_TIME_US / us
    energy_gain = ULP_SRP_FFT256_ENERGY_UJ / uj
    row = (
        f"ULP-SRP comparison, 256-pt complex FFT: VWR2A {us:.1f} us / "
        f"{uj:.2f} uJ vs ULP-SRP {ULP_SRP_FFT256_TIME_US} us / "
        f"{ULP_SRP_FFT256_ENERGY_UJ} uJ -> {perf_gain:.0f}x perf "
        f"(paper 23x), {energy_gain:.0f}x energy (paper 66x)"
    )
    print(row)
    benchmark.extra_info["row"] = row
    # Order-of-magnitude gains must hold even with our conservative
    # single-column 256-point mapping.
    assert perf_gain > 8
    assert energy_gain > 25
