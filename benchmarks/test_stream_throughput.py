"""Batched serving throughput: stream scheduler vs independent runners.

Serves the same long respiration trace twice through the full MBioTracker
``cpu_vwr2a`` pipeline:

* **independent** — the pre-serving pattern: a fresh
  :class:`KernelRunner` (fresh SoC, fresh configuration memory, fresh
  engine bindings) per window, one ``run_application`` call each;
* **batched** — one :func:`repro.serve.serve_trace` call: a single runner
  whose kernel stores dedupe structurally, whose SRAM staging area is
  recycled and double-buffered, and whose compiled programs/bindings are
  reused across windows.

Writes the ``stream_windows_per_s`` entry into ``BENCH_sim_speed.json``
and guards that batched serving beats the N-independent-launch flow.
Process-wide structural caches (compile memos, hazard checks) are warmed
first so the comparison is steady-state amortization, not cold-start
compilation. Both flows are timed best-of-:data:`N_REPEATS` so one
descheduled pass cannot trip the speedup floor or the CI bench-trend
gate (``bench_trend.py`` fails on a >10% drop vs the committed
snapshot). Kept bench-job-bounded: ~40 application windows total.
"""

from __future__ import annotations

import time

from bench_io import update_bench
from repro.app import WINDOW, respiration_signal, run_application
from repro.kernels import KernelRunner
from repro.serve import serve_trace

#: Windows in the measured stream (one extra window warms the caches).
N_WINDOWS = 6

#: Timed passes per flow; the best (minimum) wall time is kept.
N_REPEATS = 5

#: Acceptance floor: batched serving must beat independent runners.
MIN_STREAM_SPEEDUP = 1.1


def test_stream_throughput_vs_independent_runners():
    trace = respiration_signal(N_WINDOWS * WINDOW)
    # Warm the process-wide structural caches (compile memo, hazard
    # cache, conflict analysis) so both flows measure steady state.
    run_application(trace[:WINDOW], "cpu_vwr2a", KernelRunner())

    # The flows are interleaved within each repeat so a transiently
    # loaded host slows both sides of the same round; the per-flow
    # minima then come from the same quiet stretch and the ratio stays
    # fair even when half the passes are descheduled.
    independent_wall = batched_wall = float("inf")
    for _ in range(N_REPEATS):
        # -- independent: a fresh runner per window ----------------------
        independent = []
        start = time.perf_counter()
        for i in range(N_WINDOWS):
            window = trace[i * WINDOW:(i + 1) * WINDOW]
            independent.append(run_application(window, "cpu_vwr2a"))
        independent_wall = min(
            independent_wall, time.perf_counter() - start)

        # -- batched: one stream through one runner ----------------------
        start = time.perf_counter()
        report = serve_trace(trace, "cpu_vwr2a", energy_model=None)
        batched_wall = min(batched_wall, time.perf_counter() - start)

    # Same served inference, window for window.
    assert report.n_windows == N_WINDOWS
    assert report.labels == [app.label for app in independent]
    assert [w.app.features for w in report.windows] \
        == [app.features for app in independent]
    assert [w.cycles for w in report.windows] \
        == [app.total_cycles for app in independent]

    speedup = independent_wall / batched_wall
    update_bench({
        "stream_windows_per_s": {
            "benchmark": "mbiotracker cpu_vwr2a window stream",
            "metric": "application windows served per wall-clock second",
            "n_windows": N_WINDOWS,
            "independent_windows_per_s": N_WINDOWS / independent_wall,
            "batched_windows_per_s": report.n_windows / batched_wall,
            "independent_wall_seconds": independent_wall,
            "batched_wall_seconds": batched_wall,
            "speedup": speedup,
            "measured_repeats": N_REPEATS,
            "min_speedup_required": MIN_STREAM_SPEEDUP,
            "store_dedup_hits": report.store_stats["dedup_hits"],
            "store_encode_misses": report.store_stats["encode_misses"],
            "simulated_cycles_per_window":
                report.total_cycles // N_WINDOWS,
            "overlap_saved_cycles": report.overlap_saved_cycles,
        },
    })
    assert speedup >= MIN_STREAM_SPEEDUP, (
        f"batched stream only {speedup:.2f}x faster than independent "
        f"runners (need >= {MIN_STREAM_SPEEDUP}x); see BENCH_sim_speed.json"
    )
