"""Bench-trend gate: regenerated vs committed ``BENCH_sim_speed.json``.

CI's bench job snapshots the committed benchmark file, reruns the
benchmarks (which rewrite it), then calls::

    python benchmarks/bench_trend.py <committed.json> <regenerated.json>

Any **guarded metric** that regressed by more than
:data:`MAX_REGRESSION` fails the build with a per-metric report. Guarded
metrics are the ones a guard test enforces a floor for — the FFT-2048
engine speedup, the batched-stream speedup, and the pool speedup (the
latter only when *both* snapshots were measured with the guard enforced,
so a 1-CPU laptop snapshot can never trip the trend gate; the
``skip_reason`` field says why a side was unenforced). Improvements and
new metrics always pass — the committed file is a floor, not a pin.

The same comparison is published on the metrics bus
(:func:`publish_rows` — ``repro_bench_guarded_metric`` /
``repro_bench_regression`` gauges), so the guarded ratios are observable
live through the obs layer, not only in CI logs; ``--prom FILE`` writes
the Prometheus text exposition next to the report (``-`` for stdout).
"""

from __future__ import annotations

import json
import sys

#: Maximum tolerated relative drop of a guarded metric.
MAX_REGRESSION = 0.10

#: path into the JSON -> condition path that must be truthy on BOTH
#: sides for the metric to be compared (None = always compared).
GUARDED_METRICS = {
    ("speedup",): None,
    ("stream_windows_per_s", "speedup"): None,
    ("pool_windows_per_s", "speedup"):
        ("pool_windows_per_s", "guard_enforced"),
}


def _lookup(payload: dict, path: tuple):
    value = payload
    for key in path:
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return value


def compare(committed: dict, regenerated: dict) -> list:
    """Regression report rows: (metric, old, new, drop, failed)."""
    rows = []
    for path, condition in GUARDED_METRICS.items():
        old = _lookup(committed, path)
        new = _lookup(regenerated, path)
        if not isinstance(old, (int, float)) \
                or not isinstance(new, (int, float)) or old <= 0:
            continue
        if condition is not None and not (
            _lookup(committed, condition) and _lookup(regenerated, condition)
        ):
            continue
        drop = (old - new) / old
        rows.append((
            ".".join(path), float(old), float(new), drop,
            drop > MAX_REGRESSION,
        ))
    return rows


def publish_rows(bus, rows) -> None:
    """Publish the comparison on a metrics bus (gauges, per metric)."""
    for metric, old, new, drop, _ in rows:
        bus.set_gauge(
            "repro_bench_guarded_metric", old,
            metric=metric, side="committed",
        )
        bus.set_gauge(
            "repro_bench_guarded_metric", new,
            metric=metric, side="regenerated",
        )
        bus.set_gauge("repro_bench_regression", drop, metric=metric)


def main(argv: list) -> int:
    prom_path = None
    if "--prom" in argv:
        at = argv.index("--prom")
        try:
            prom_path = argv[at + 1]
        except IndexError:
            print("--prom needs a file path (or - for stdout)")
            return 2
        argv = argv[:at] + argv[at + 2:]
    if len(argv) != 3:
        print(__doc__)
        return 2
    committed = json.loads(open(argv[1]).read())
    regenerated = json.loads(open(argv[2]).read())
    rows = compare(committed, regenerated)
    try:
        from repro.obs import MetricsBus, get_bus, render_prometheus
    except ImportError:
        # Standalone invocation without the package on sys.path: the
        # gate still works, only the live/exposition side is off.
        if prom_path is not None:
            print("--prom needs the repro package importable "
                  "(PYTHONPATH=src or pip install -e .)")
            return 2
    else:
        bus = get_bus()  # publish into an installed bus when one is live
        if bus is None and prom_path is not None:
            bus = MetricsBus()
        if bus is not None:
            publish_rows(bus, rows)
        if prom_path is not None:
            text = render_prometheus(bus)
            if prom_path == "-":
                sys.stdout.write(text)
            else:
                with open(prom_path, "w") as handle:
                    handle.write(text)
    failed = False
    for metric, old, new, drop, bad in rows:
        verdict = "FAIL" if bad else "ok"
        print(
            f"[{verdict}] {metric}: committed {old:.4g} -> measured "
            f"{new:.4g} ({-drop * 100:+.1f}%)"
        )
        failed |= bad
    if not rows:
        print("no guarded metrics comparable; trend gate passes")
    if failed:
        print(
            "bench-trend: guarded metric regressed more than "
            f"{MAX_REGRESSION:.0%} vs the committed BENCH_sim_speed.json"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
