"""Bench-trend gate: regenerated vs committed ``BENCH_sim_speed.json``.

CI's bench job snapshots the committed benchmark file, reruns the
benchmarks (which rewrite it), then calls::

    python benchmarks/bench_trend.py <committed.json> <regenerated.json>

Any **guarded metric** that regressed by more than
:data:`MAX_REGRESSION` fails the build with a per-metric report. Guarded
metrics are the ones a guard test enforces a floor for — the FFT-2048
engine speedup, the batched-stream speedup, and the pool speedup (the
latter only when *both* snapshots were measured with the guard enforced,
so a 1-CPU laptop snapshot can never trip the trend gate; the
``skip_reason`` field says why a side was unenforced). Improvements and
new metrics always pass — the committed file is a floor, not a pin.
"""

from __future__ import annotations

import json
import sys

#: Maximum tolerated relative drop of a guarded metric.
MAX_REGRESSION = 0.10

#: path into the JSON -> condition path that must be truthy on BOTH
#: sides for the metric to be compared (None = always compared).
GUARDED_METRICS = {
    ("speedup",): None,
    ("stream_windows_per_s", "speedup"): None,
    ("pool_windows_per_s", "speedup"):
        ("pool_windows_per_s", "guard_enforced"),
}


def _lookup(payload: dict, path: tuple):
    value = payload
    for key in path:
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return value


def compare(committed: dict, regenerated: dict) -> list:
    """Regression report rows: (metric, old, new, drop, failed)."""
    rows = []
    for path, condition in GUARDED_METRICS.items():
        old = _lookup(committed, path)
        new = _lookup(regenerated, path)
        if not isinstance(old, (int, float)) \
                or not isinstance(new, (int, float)) or old <= 0:
            continue
        if condition is not None and not (
            _lookup(committed, condition) and _lookup(regenerated, condition)
        ):
            continue
        drop = (old - new) / old
        rows.append((
            ".".join(path), float(old), float(new), drop,
            drop > MAX_REGRESSION,
        ))
    return rows


def main(argv: list) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    committed = json.loads(open(argv[1]).read())
    regenerated = json.loads(open(argv[2]).read())
    rows = compare(committed, regenerated)
    failed = False
    for metric, old, new, drop, bad in rows:
        verdict = "FAIL" if bad else "ok"
        print(
            f"[{verdict}] {metric}: committed {old:.4g} -> measured "
            f"{new:.4g} ({-drop * 100:+.1f}%)"
        )
        failed |= bad
    if not rows:
        print("no guarded metrics comparable; trend gate passes")
    if failed:
        print(
            "bench-trend: guarded metric regressed more than "
            f"{MAX_REGRESSION:.0%} vs the committed BENCH_sim_speed.json"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
