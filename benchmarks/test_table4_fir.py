"""Table 4: 11-tap FIR — cycles and energy, CPU vs VWR2A.

Paper: 13.4-16.1x speed-up and 69.9-72.4% energy savings across
256/512/1024 points.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import q15_noise
from repro.baselines import fir_cycles
from repro.energy import default_model
from repro.kernels.fir import run_fir
from repro.kernels.runner import KernelRunner

PAPER = {
    256: (24747, 0.37, 1849, 0.11),
    512: (49253, 0.73, 3260, 0.21),
    1024: (98283, 1.45, 6091, 0.40),
}


def _measure(taps, data):
    model = default_model()
    runner = KernelRunner()
    before = runner.events_snapshot()
    result = run_fir(runner, taps, data)
    uj = model.vwr2a_report(
        runner.events_since(before), result.run.total_cycles
    ).total_uj
    return result.run.total_cycles, uj


@pytest.mark.parametrize("n", [256, 512, 1024])
def test_table4_row(benchmark, rng, taps11, n):
    data = q15_noise(rng, n)
    cycles, uj = benchmark.pedantic(
        _measure, args=(taps11, data), rounds=1, iterations=1
    )
    cpu_cycles = fir_cycles(n, 11)
    cpu_uj = default_model().cpu_energy_uj(cpu_cycles)
    paper_cpu_c, paper_cpu_e, paper_v_c, paper_v_e = PAPER[n]
    speedup = cpu_cycles / cycles
    savings = 1 - uj / cpu_uj
    row = (
        f"Table4 {n} pts: CPU {cpu_cycles} cyc / {cpu_uj:.2f} uJ, "
        f"VWR2A {cycles} cyc / {uj:.2f} uJ -> {speedup:.1f}x "
        f"(paper {paper_cpu_c / paper_v_c:.1f}x), savings "
        f"{savings * 100:.0f}% (paper {(1 - paper_v_e / paper_cpu_e) * 100:.0f}%)"
    )
    print(row)
    benchmark.extra_info["row"] = row
    assert speedup > 8.0, "double-digit class speed-up expected"
    assert savings > 0.55, "majority energy savings expected"
    assert 0.7 < cycles / paper_v_c < 1.5
    assert cpu_cycles == pytest.approx(paper_cpu_c, rel=0.02)
