"""Table 3: per-component power breakdown @ 512-point real-valued FFT.

The calibration anchors each component's power to the paper's number, so
the totals match by construction; what this bench *checks* is the
consistency of the whole pipeline — that rerunning the anchor workload
through the simulator + energy model reproduces every row and the 5.5x
total ratio.
"""

from __future__ import annotations

from benchmarks.conftest import q15_noise
from repro.core.events import EventCounters
from repro.energy import default_model, render_table3, table3_breakdown
from repro.kernels.rfft import RfftEngine
from repro.kernels.runner import KernelRunner
from repro.soc.fft_accel import FftAccelerator

PAPER_ROWS = {
    "DMA": (0.0107, 0.0947),
    "Memories": (0.668, 3.49),
    "Control": (0.0625, 0.100),
    "Datapath": (0.242, 1.72),
    "Total": (0.983, 5.41),
}


def _measure(data):
    model = default_model()
    runner = KernelRunner()
    engine = RfftEngine(runner, 512)
    engine.prepare()
    before = runner.events_snapshot()
    result = engine.run(data)
    vwr2a = model.vwr2a_report(
        runner.events_since(before), result.run.total_cycles
    )
    events = EventCounters()
    accel_result = FftAccelerator(events).real_fft(data)
    accel = model.accel_report(events.snapshot(), accel_result.cycles)
    return vwr2a, accel


def test_table3_breakdown(benchmark, rng):
    data = q15_noise(rng, 512)
    vwr2a, accel = benchmark.pedantic(
        _measure, args=(data,), rounds=1, iterations=1
    )
    rows = table3_breakdown(vwr2a)
    accel_map = {
        "DMA": "accel_dma",
        "Memories": "accel_memories",
        "Control": "accel_control",
        "Datapath": "accel_datapath",
    }
    accel_rows = {
        label: {"mw": accel.power_mw(component), "share": 0.0}
        for label, component in accel_map.items()
    }
    total = sum(row["mw"] for row in accel_rows.values())
    for row in accel_rows.values():
        row["share"] = row["mw"] / total
    accel_rows["Total"] = {"mw": total, "share": 1.0}
    table = render_table3(
        rows, accel_rows,
        title="Table 3: power @ 512-pt real FFT (measured)",
    )
    print(table)
    benchmark.extra_info["table"] = table
    for label, (paper_accel, paper_vwr2a) in PAPER_ROWS.items():
        assert rows[label]["mw"] == __import__("pytest").approx(
            paper_vwr2a, rel=0.15
        ), f"VWR2A {label}"
        assert accel_rows[label]["mw"] == __import__("pytest").approx(
            paper_accel, rel=0.15
        ), f"ACCEL {label}"
    ratio = rows["Total"]["mw"] / accel_rows["Total"]["mw"]
    assert 4.5 < ratio < 6.5  # paper: 5.5
