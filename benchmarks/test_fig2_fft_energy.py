"""Fig. 2: FFT kernel energy — accelerator vs VWR2A across sizes.

The figure's content: per-kernel energy of the FFT accelerator is ~4-6x
below VWR2A's (varying with size because the accelerator's mixed-radix
flow changes), and (Sec. 5.1.1) both save energy vs the CMSIS CPU flow —
86.0% for the accelerator, 40.8% for VWR2A.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import q15_noise
from repro.baselines import cfft_cycles
from repro.core.events import EventCounters
from repro.energy import default_model
from repro.kernels.fft import FftEngine
from repro.kernels.fft2048 import SplitFftEngine
from repro.kernels.runner import KernelRunner
from repro.soc.fft_accel import FftAccelerator


def _measure(n, data):
    model = default_model()
    runner = KernelRunner()
    if n == 2048:
        engine = SplitFftEngine(runner)
    else:
        engine = FftEngine(runner, n)
    engine.prepare()
    before = runner.events_snapshot()
    result = engine.run(data, [0] * n)
    vwr2a_uj = model.vwr2a_report(
        runner.events_since(before), result.run.total_cycles
    ).total_uj

    events = EventCounters()
    accel = FftAccelerator(events)
    accel_result = accel.complex_fft(data, [0] * n)
    accel_uj = model.accel_report(
        events.snapshot(), accel_result.cycles
    ).total_uj
    cpu_uj = model.cpu_energy_uj(cfft_cycles(n))
    return vwr2a_uj, accel_uj, cpu_uj


#: Per-size expectations. Our VWR2A energy savings vs the CPU on isolated
#: FFTs are smaller than the paper's 40.8% — 12% at the 512 point where
#: our cycle count matches the paper, and negative at the sizes paying
#: table-streaming / split-transform DMA overheads (EXPERIMENTS.md
#: quantifies this divergence). The accelerator-vs-VWR2A ratio — the
#: figure's actual content — reproduces at every size.
BOUNDS = {
    512: (3.0, 9.0, 0.02),
    1024: (3.0, 11.0, -0.35),
    2048: (3.0, 11.0, -0.25),
}


@pytest.mark.parametrize("n", [512, 1024, 2048])
def test_fig2_energy_ratio(benchmark, rng, n):
    data = q15_noise(rng, n)
    vwr2a_uj, accel_uj, cpu_uj = benchmark.pedantic(
        _measure, args=(n, data), rounds=1, iterations=1
    )
    ratio = vwr2a_uj / accel_uj
    row = (
        f"Fig2 complex-{n}: ACCEL {accel_uj:.3f} uJ, VWR2A {vwr2a_uj:.3f} "
        f"uJ (ratio {ratio:.1f}, paper ~4-6), CPU {cpu_uj:.2f} uJ; "
        f"savings vs CPU: accel {(1 - accel_uj / cpu_uj) * 100:.0f}% "
        f"(paper 86.0%), vwr2a {(1 - vwr2a_uj / cpu_uj) * 100:.0f}% "
        "(paper 40.8%)"
    )
    print(row)
    benchmark.extra_info["row"] = row
    lo, hi, min_savings = BOUNDS[n]
    # The isolated-kernel energy gap: the accelerator wins clearly.
    assert lo < ratio < hi
    assert accel_uj < vwr2a_uj
    assert (1 - accel_uj / cpu_uj) > 0.75
    assert (1 - vwr2a_uj / cpu_uj) > min_savings
