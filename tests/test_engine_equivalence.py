"""Differential tests: compiled engine vs the reference interpreter.

Every seed kernel runs twice — once on ``engine="reference"`` (the
golden per-cycle interpreter) and once on ``engine="compiled"`` — through
identical staging flows, and the results must agree **exactly**: kernel
outputs, cycle ledgers, per-column executed-bundle counts, and the full
platform event snapshot (which the calibrated energy model consumes, so
event equality implies energy equality).
"""

from __future__ import annotations

import pytest

from repro.arch import ArchParams
from repro.asm.builder import ProgramBuilder
from repro.baselines import lowpass_taps_q15
from repro.core.cgra import Vwr2a
from repro.core.errors import ConfigurationError, ProgramError
from repro.isa.fields import (
    DST_R0,
    DST_R1,
    DST_VWR_B,
    DST_VWR_C,
    R0,
    R1,
    RCB,
    RCT,
    VWR_A,
    ShuffleMode,
    Vwr,
    dst_srf,
    imm,
    srf,
)
from repro.isa.lcu import addi, beq, bge, blt, jump, ldsrf, seti
from repro.isa.lsu import ld_srf, ld_vwr, shuf, st_srf, st_vwr
from repro.isa.mxcu import MXCUInstr, MXCUOp, inck, setk
from repro.isa.program import ColumnProgram, KernelConfig
from repro.isa.rc import RCOp, rc
from repro.kernels import (
    FftEngine,
    KernelRunner,
    RfftEngine,
    SplitFftEngine,
    run_accumulate,
    run_delineation,
    run_fir,
    run_intervals,
)
from repro.soc.platform import BiosignalSoC

ENGINES = ("reference", "compiled")


def _runner(engine: str) -> KernelRunner:
    return KernelRunner(soc=BiosignalSoC(engine=engine))


def _signal(n: int, scale: int = 2000) -> list:
    """Deterministic pseudo-biosignal (no RNG dependencies)."""
    return [((i * 37 + (i * i) % 211) % (2 * scale)) - scale
            for i in range(n)]


def _run_both(flow):
    """Run ``flow(runner)`` on both engines; return (payloads, runners)."""
    payloads = {}
    runners = {}
    for engine in ENGINES:
        runner = _runner(engine)
        payloads[engine] = flow(runner)
        runners[engine] = runner
    return payloads, runners


def _assert_platform_equal(runners) -> None:
    ref, cmp_ = runners["reference"], runners["compiled"]
    assert ref.soc.events.snapshot() == cmp_.soc.events.snapshot()
    assert ref.soc.cpu.active_cycles == cmp_.soc.cpu.active_cycles
    assert ref.soc.cpu.sleep_cycles == cmp_.soc.cpu.sleep_cycles


def _assert_kernel_run_equal(a, b) -> None:
    assert a.dma_in_cycles == b.dma_in_cycles
    assert a.config_cycles == b.config_cycles
    assert a.compute_cycles == b.compute_cycles
    assert a.dma_out_cycles == b.dma_out_cycles


class TestKernelEquivalence:
    def test_fir(self):
        taps = lowpass_taps_q15(11, 0.1)
        samples = _signal(512)

        payloads, runners = _run_both(
            lambda r: run_fir(r, taps, samples)
        )
        ref, cmp_ = payloads["reference"], payloads["compiled"]
        assert ref.samples == cmp_.samples
        _assert_kernel_run_equal(ref.run, cmp_.run)
        _assert_platform_equal(runners)

    def test_delineation(self):
        samples = _signal(512)

        payloads, runners = _run_both(
            lambda r: run_delineation(r, samples, 600)
        )
        ref, cmp_ = payloads["reference"], payloads["compiled"]
        assert ref.maxima == cmp_.maxima
        assert ref.minima == cmp_.minima
        _assert_kernel_run_equal(ref.run, cmp_.run)
        _assert_platform_equal(runners)

    @pytest.mark.parametrize("n", [256, 512])
    def test_complex_fft(self, n):
        re = _signal(n)
        im = _signal(n, scale=1500)

        def flow(runner):
            return FftEngine(runner, n).run(re, im)

        payloads, runners = _run_both(flow)
        ref, cmp_ = payloads["reference"], payloads["compiled"]
        assert ref.re == cmp_.re and ref.im == cmp_.im
        _assert_kernel_run_equal(ref.run, cmp_.run)
        _assert_platform_equal(runners)

    def test_rfft(self):
        x = _signal(512)

        def flow(runner):
            return RfftEngine(runner, 512).run(x)

        payloads, runners = _run_both(flow)
        ref, cmp_ = payloads["reference"], payloads["compiled"]
        assert ref.re == cmp_.re and ref.im == cmp_.im
        _assert_kernel_run_equal(ref.run, cmp_.run)
        _assert_platform_equal(runners)

    def test_split_fft_2048(self):
        re = _signal(2048)
        im = _signal(2048, scale=900)

        def flow(runner):
            return SplitFftEngine(runner, 2048).run(re, im)

        payloads, runners = _run_both(flow)
        ref, cmp_ = payloads["reference"], payloads["compiled"]
        assert ref.re == cmp_.re and ref.im == cmp_.im
        _assert_kernel_run_equal(ref.run, cmp_.run)
        _assert_platform_equal(runners)

    def test_features_accumulate_and_intervals(self):
        values = [v % 97 for v in _signal(64)]
        weights = [(v % 13) - 6 for v in _signal(64)]
        maxima = [3, 20, 41, 60]
        minima = [1, 11, 33, 52]

        def flow(runner):
            runner.stage_in(values, 0)
            runner.stage_in(weights, 64)
            spm = runner.soc.vwr2a.spm
            hi = 4096
            runner.stage_in(maxima, hi)
            runner.stage_in(minima, hi + 8)
            out = {}
            out["sum"] = run_accumulate(runner, 0, 64, 200).value
            out["sq"] = run_accumulate(runner, 0, 64, 200, squares=True).value
            out["dot"] = run_accumulate(runner, 0, 64, 200, b_word=64).value
            run_intervals(
                runner,
                insp_spec=(hi, hi + 8, hi + 16, 3),
                exp_spec=(hi + 8 + 1, hi, hi + 24, 3),
            )
            out["intervals"] = spm.peek_words(hi + 16, 12)
            return out

        payloads, runners = _run_both(flow)
        assert payloads["reference"] == payloads["compiled"]
        _assert_platform_equal(runners)


def _asymmetric_config(params: ArchParams) -> KernelConfig:
    """Two columns with identical code but different SRF loop bounds, so
    their control flow diverges — exercises the virtual-time scheduler."""
    columns = {}
    for col, (bound, line) in enumerate(((5, 0), (11, 1))):
        b = ProgramBuilder(n_rcs=params.rcs_per_column)
        b.srf(0, bound)
        b.srf(1, line)
        b.emit(lcu=seti(0, 0), mxcu=setk(0),
               lsu=ld_vwr(VWR_A.vwr(), 1))
        b.label("loop")
        b.emit(
            rcs=[rc(RCOp.SADD, DST_VWR_B, VWR_A, srf(0))] * 4,
            mxcu=inck(1, and_mask=params.slice_words - 1),
            lcu=addi(0, 1),
        )
        b.emit(lcu=bge(0, ("srf", 0), "done"))
        b.emit(lcu=seti(1, 7))
        b.emit(lcu=addi(1, -1), mxcu=inck(1))
        b.emit(lcu=bge(0, 999, "loop"))  # never taken: falls into loop
        b.label("loop2")
        b.emit(lcu=bge(1, 0, "loop"))
        b.label("done")
        b.emit(lsu=st_vwr(VWR_A.vwr(), 1))
        b.exit()
        columns[col] = b.build()
    return KernelConfig(name="asym", columns=columns)


def _torture_program(params: ArchParams) -> ColumnProgram:
    """Single column exercising every operand kind, ALU op class, LSU op,
    shuffle mode, MXCU variant and LCU compare kind."""
    b = ProgramBuilder(n_rcs=params.rcs_per_column)
    b.srf(0, 2)       # SPM line address (LD/ST_VWR)
    b.srf(1, 5)       # SPM word address (LD/ST_SRF)
    b.srf(2, 3)       # loop bound / compare value / UPD and-mask
    b.srf(3, -7)      # broadcast RC operand
    b.emit(lsu=ld_vwr(Vwr.A, 0, inc=1))
    b.emit(mxcu=setk(3), rcs=[
        rc(RCOp.SADD, DST_R0, VWR_A, imm(123)),
        rc(RCOp.SSUB, DST_R1, imm(-5), VWR_A),
        rc(RCOp.SMUL, DST_VWR_B, VWR_A, imm(3)),
        rc(RCOp.MOV, DST_VWR_C, VWR_A),
    ])
    b.emit(mxcu=inck(2, and_mask=31), rcs=[
        rc(RCOp.SMAX, DST_R0, RCT, R0),
        rc(RCOp.SMIN, DST_R1, RCB, R1),
        rc(RCOp.LNOT, dst_srf(4), R0),
        rc(RCOp.LXOR, DST_VWR_B, R0, R1),
    ])
    b.emit(rcs=[
        rc(RCOp.SLL, DST_VWR_C, srf(3), imm(2)),
        rc(RCOp.SRL, DST_VWR_C, srf(3), imm(1)),
        rc(RCOp.SRA, DST_VWR_C, srf(3), imm(3)),
        rc(RCOp.LAND, DST_VWR_C, srf(3), imm(0xFF)),
    ])
    b.emit(rcs=[
        rc(RCOp.SADD16, DST_VWR_B, VWR_A, imm(-321)),
        rc(RCOp.SSUB16, DST_VWR_B, VWR_A, imm(777)),
        rc(RCOp.FXPMUL16, DST_VWR_B, VWR_A, imm(1 << 14)),
        rc(RCOp.FXPMUL, DST_VWR_B, VWR_A, imm(12345)),
    ])
    b.emit(lsu=st_vwr(Vwr.B, 0, inc=-1))
    for mode in (ShuffleMode.INTERLEAVE_LO, ShuffleMode.BITREV_HI,
                 ShuffleMode.CSHIFT_LO, ShuffleMode.EVEN_PRUNE):
        b.emit(lsu=shuf(mode))
    b.emit(lsu=ld_srf(5, 1, inc=2))
    b.emit(lsu=st_srf(5, 1, inc=1))
    b.emit(lcu=ldsrf(1, 2))
    b.emit(lcu=seti(0, 0))
    b.label("lp")
    b.emit(lcu=addi(0, 1), mxcu=inck(1, and_mask=7, xor_mask=1))
    b.emit(lcu=blt(0, ("reg", 1), "lp"))
    b.emit(lcu=jump("j"))
    b.label("j")
    b.emit(lcu=beq(0, ("srf", 2), "skip"))   # taken: L0 == SRF[2] == 3
    b.emit(lcu=jump("end"))                  # not executed
    b.label("skip")
    b.emit(rcs=[rc(RCOp.LOR, DST_VWR_C, R1, imm(1))] * 4)
    b.label("end")
    b.emit(mxcu=MXCUInstr(op=MXCUOp.UPD, inc=3, xor_mask=2, srf_and=2))
    b.exit()
    return b.build()


class TestEngineSemantics:
    def test_torture_program_full_state_equivalence(self):
        states = {}
        for engine in ENGINES:
            sim = Vwr2a(engine=engine)
            sim.spm.poke_words(0, [((i * 73) % 4001) - 2000
                                   for i in range(1024)])
            config = KernelConfig(
                name="torture",
                columns={0: _torture_program(sim.params)},
            )
            result = sim.execute(config)
            col = sim.columns[0]
            states[engine] = {
                "cycles": result.cycles,
                "steps": result.column_steps,
                "events": sim.events.snapshot(),
                "spm": sim.spm.peek_words(0, 1024),
                "vwrs": {v: col.vwr_words(v) for v in col.vwrs},
                "srf": [col.srf.peek(e)
                        for e in range(sim.params.srf_entries)],
                "rc_regs": col.rc_regs,
                "rc_out": col.rc_out,
                "lcu_regs": col.lcu_regs,
                "k": col.k,
                "pc": col.pc,
            }
        assert states["reference"] == states["compiled"]

    def test_multi_column_divergent_control_flow(self):
        results = {}
        snapshots = {}
        for engine in ENGINES:
            sim = Vwr2a(engine=engine)
            sim.spm.poke_words(0, list(range(256)))
            result = sim.execute(_asymmetric_config(sim.params))
            results[engine] = result
            snapshots[engine] = (
                sim.events.snapshot(),
                sim.spm.peek_words(0, 256),
                {v: sim.columns[0].vwr_words(v) for v in sim.columns[0].vwrs},
            )
        ref, cmp_ = results["reference"], results["compiled"]
        assert ref.cycles == cmp_.cycles
        assert ref.config_cycles == cmp_.config_cycles
        assert ref.column_steps == cmp_.column_steps
        assert snapshots["reference"] == snapshots["compiled"]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_max_cycles_guard(self, engine):
        params = ArchParams()
        b = ProgramBuilder(n_rcs=params.rcs_per_column)
        b.label("spin")
        b.emit(lcu=seti(0, 0))
        b.emit(lcu=bge(0, 0, "spin"))
        b.exit()  # unreachable: the loop above spins forever
        sim = Vwr2a(engine=engine)
        sim.store_kernel(KernelConfig(name="spin", columns={0: b.build()}))
        with pytest.raises(ProgramError, match="exceeded 100 cycles"):
            sim.run("spin", max_cycles=100)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_run_past_end_guard(self, engine):
        from repro.isa.bundle import make_bundle

        # No EXIT anywhere: the PC falls off the end of the program
        # (bypasses ProgramBuilder, which insists on an EXIT).
        program = ColumnProgram(bundles=[
            make_bundle(lcu=seti(0, 0)),
            make_bundle(lcu=addi(0, 1)),
        ])
        sim = Vwr2a(engine=engine)
        sim.store_kernel(KernelConfig(name="noexit", columns={0: program}))
        with pytest.raises(ProgramError, match="ran past the program"):
            sim.run("noexit", max_cycles=100)

    def test_engine_selection(self):
        assert Vwr2a().engine == "auto"
        assert Vwr2a(engine="compiled").engine == "compiled"
        assert Vwr2a(engine="reference").engine == "reference"
        with pytest.raises(ConfigurationError, match="unknown engine"):
            Vwr2a(engine="turbo")
        with pytest.raises(ConfigurationError, match="conflicts"):
            KernelRunner(
                soc=BiosignalSoC(engine="reference"), engine="compiled"
            )

    def test_compiled_programs_are_memoized_structurally(self):
        sim = Vwr2a(engine="compiled")
        run1 = sim.execute(_asymmetric_config(sim.params))
        # A fresh, structurally identical config (new objects, same code)
        # must reuse the compiled form via the fingerprint memo.
        config = _asymmetric_config(sim.params)
        sim.store_kernel(config)
        compiled = {
            col: program.compiled(sim.params)
            for col, program in config.columns.items()
        }
        for col in config.columns:
            assert compiled[col] is sim.columns[col].program.compiled(
                sim.params
            )
        run2 = sim.run("asym")
        assert run2.cycles == run1.cycles

    def test_pc_histogram_matches_column_steps(self):
        sim = Vwr2a(engine="compiled")
        config = _asymmetric_config(sim.params)
        result = sim.execute(config)
        engine = sim._engine
        for col_index, steps in result.column_steps.items():
            bound = engine._bind(sim.columns[col_index])
            assert sum(bound.pc_histogram()) == steps
