"""Differential tests for the superblock tier.

Closed-form fused loops, the NumPy steady state (lane-broadcast and
per-cell), the runtime guards that drop back to the exact scalar loop
(counter wrap-around, read-modify-write index reuse), straight-line chain
fusion, and the RunResult superblock counters — every scenario asserted
bit-identical against the reference interpreter.
"""

from __future__ import annotations

import pytest

from repro.arch import ArchParams
from repro.asm.builder import ProgramBuilder
from repro.core.cgra import Vwr2a
from repro.engine import superblocks
from repro.engine.compiler import compile_program, superblock_chains
from repro.isa.fields import (
    DST_R0,
    DST_VWR_B,
    DST_VWR_C,
    R0,
    VWR_A,
    VWR_B,
    VWR_C,
    Vwr,
    imm,
    srf,
)
from repro.isa.lcu import addi, bge, blt, jump, ldsrf, seti
from repro.isa.lsu import ld_vwr, st_vwr
from repro.isa.mxcu import inck, setk
from repro.isa.program import KernelConfig
from repro.isa.rc import RCOp, rc

ENGINES = ("reference", "compiled")


@pytest.fixture
def low_vec_threshold(monkeypatch):
    """Drop the lane vectorization floor below one slice lap.

    The default 32-word slice cannot host >= 96 distinct trips, so the
    read-modify-write guard would always fall back; lowering the floor
    (a compile-time constant read while planning) lets short hazard
    loops take the vector path. The compile memo is cleared so plans are
    regenerated under the patched threshold, and again afterwards so no
    low-threshold compilation leaks into other tests.
    """
    from repro.engine import compiler

    monkeypatch.setattr(superblocks, "VEC_MIN_TRIPS_LANES", 4)
    compiler._MEMO.clear()
    yield
    compiler._MEMO.clear()


def _full_state(sim: Vwr2a) -> dict:
    col = sim.columns[0]
    return {
        "events": sim.events.snapshot(),
        "spm": sim.spm.peek_words(0, sim.params.spm_words // 4),
        "vwrs": {v: col.vwr_words(v) for v in col.vwrs},
        "srf": [col.srf.peek(e) for e in range(sim.params.srf_entries)],
        "rc_regs": [list(r) for r in col.rc_regs],
        "rc_out": list(col.rc_out),
        "lcu_regs": list(col.lcu_regs),
        "k": col.k,
        "pc": col.pc,
    }


def _run_both(config_builder, params=None, poke=None):
    """Execute one kernel on both engines; return per-engine states."""
    states = {}
    results = {}
    for engine in ENGINES:
        sim = Vwr2a(engine=engine) if params is None \
            else Vwr2a(params=params, engine=engine)
        if poke is not None:
            poke(sim)
        config = config_builder(sim.params)
        results[engine] = sim.execute(config)
        states[engine] = _full_state(sim)
    assert states["reference"] == states["compiled"]
    ref, cmp_ = results["reference"], results["compiled"]
    assert ref.cycles == cmp_.cycles
    assert ref.column_steps == cmp_.column_steps
    return results["compiled"]


def _poke_ramp(sim: Vwr2a) -> None:
    sim.spm.poke_words(
        0, [((i * 31) % 2001) - 1000 for i in range(1024)]
    )


def _broadcast_loop(params, trips, op=RCOp.SADD, dst=DST_VWR_C,
                    update=None, extra_rcs=None):
    """One fused self-loop: load A/B, run `trips` broadcast trips, store."""
    b = ProgramBuilder(n_rcs=params.rcs_per_column)
    b.srf(0, 0)
    b.srf(1, 1)
    b.srf(2, 2)
    b.emit(lsu=ld_vwr(Vwr.A, 0))
    b.emit(lsu=ld_vwr(Vwr.B, 1), lcu=seti(0, 0),
           mxcu=setk(params.slice_words - 1))
    b.label("loop")
    rcs = extra_rcs if extra_rcs is not None \
        else [rc(op, dst, VWR_A, VWR_B)] * params.rcs_per_column
    b.emit(rcs=rcs, mxcu=update if update is not None else inck(
        1, and_mask=params.slice_words - 1), lcu=addi(0, 1))
    b.emit(lcu=blt(0, trips, "loop"))
    b.emit(lsu=st_vwr(Vwr.C, 2))
    b.exit()
    return KernelConfig(name="sbloop", columns={0: b.build()})


class TestClosedFormLoops:
    def test_counted_scalar_loop_bit_identity(self):
        # 16 trips: below every vectorization threshold — the counted
        # scalar path (no per-trip branch evaluation) must be exact.
        result = _run_both(
            lambda p: _broadcast_loop(p, 16), poke=_poke_ramp
        )
        assert result.superblocks["accelerated_loops"] == 1
        assert result.superblocks["accelerated_trips"] == 16
        assert result.superblocks["vectorized_loops"] == 0

    def test_lane_vectorized_loop_bit_identity(self):
        # 128 trips on the default 32-word slice: the index sequence laps
        # the slice 4x, so the scatter carries duplicate indices — NumPy's
        # in-order assignment must reproduce last-write-wins exactly.
        result = _run_both(
            lambda p: _broadcast_loop(p, 128), poke=_poke_ramp
        )
        assert result.superblocks["vectorized_loops"] == 1
        assert result.superblocks["accelerated_trips"] == 128

    def test_lane_vectorized_simd16_and_xor_orbit(self):
        # Non-affine index update (AND+XOR masks) exercises the orbit
        # walk; FXPMUL16 exercises the vectorized SIMD16 lanes.
        result = _run_both(
            lambda p: _broadcast_loop(
                p, 100, op=RCOp.FXPMUL16,
                update=inck(3, and_mask=29, xor_mask=5),
            ),
            poke=_poke_ramp,
        )
        assert result.superblocks["vectorized_loops"] == 1

    def test_per_cell_vectorized_loop_bit_identity(self):
        # Distinct per-cell instructions: the lane lift bails, the
        # per-cell generator takes over above its higher threshold.
        def rcs(params):
            return [
                rc(RCOp.SADD, DST_VWR_C, VWR_A, VWR_B),
                rc(RCOp.SSUB, DST_VWR_C, VWR_A, VWR_B),
                rc(RCOp.SMAX, DST_VWR_C, VWR_A, VWR_B),
                rc(RCOp.LXOR, DST_VWR_C, VWR_A, VWR_B),
            ]

        result = _run_both(
            lambda p: _broadcast_loop(
                p, superblocks.VEC_MIN_TRIPS + 10, extra_rcs=rcs(p)
            ),
            poke=_poke_ramp,
        )
        assert result.superblocks["vectorized_loops"] == 1

    def test_hazard_guard_vector_path_executes(self, low_vec_threshold):
        # Butterfly shape (reads VB, writes VB), 20 trips on the 32-word
        # slice: every trip touches a fresh index, so the distinctness
        # guard admits the gather of loop-entry state.
        result = _run_both(
            lambda p: _broadcast_loop(p, 20, dst=DST_VWR_B),
            poke=_poke_ramp,
        )
        assert result.superblocks["vectorized_loops"] == 1

    def test_hazard_guard_falls_back_on_index_reuse(
        self, low_vec_threshold
    ):
        # Same butterfly, 48 trips: the index sequence laps the slice,
        # the guard must reject the gather and the scalar loop runs.
        result = _run_both(
            lambda p: _broadcast_loop(p, 48, dst=DST_VWR_B),
            poke=_poke_ramp,
        )
        assert result.superblocks["vectorized_loops"] == 0
        assert result.superblocks["accelerated_trips"] == 48

    def test_counter_wrap_falls_back_to_exact_loop(self):
        # The counter starts near INT32_MAX and wraps mid-loop: the
        # closed form is invalid, the runtime range guard must route the
        # run through the per-trip loop (which wraps exactly).
        def config(params):
            b = ProgramBuilder(n_rcs=params.rcs_per_column)
            b.srf(4, 2**31 - 40)  # SETI immediates are narrow; SRF isn't
            b.emit(lcu=ldsrf(0, 4))
            b.label("loop")
            b.emit(rcs=[rc(RCOp.SADD, DST_R0, R0, imm(1))]
                   * params.rcs_per_column, lcu=addi(0, 7))
            b.emit(lcu=bge(0, 100, "loop"))  # wraps negative, then exits
            b.exit()
            return KernelConfig(name="wrap", columns={0: b.build()})

        result = _run_both(config)
        assert result.superblocks["accelerated_loops"] == 1

    def test_data_dependent_loop_bails_out_mid_kernel(self):
        # First loop closed-form; second loop's bound is loaded from the
        # SPM via LDSRF every trip — unprovable, runs per-trip, and the
        # whole kernel stays bit-identical.
        def config(params):
            b = ProgramBuilder(n_rcs=params.rcs_per_column)
            b.srf(0, 0)
            b.srf(1, 1)
            b.srf(2, 2)
            b.srf(3, 5)  # SPM word holding the data-dependent bound
            b.emit(lsu=ld_vwr(Vwr.A, 0))
            b.emit(lsu=ld_vwr(Vwr.B, 1), lcu=seti(0, 0),
                   mxcu=setk(params.slice_words - 1))
            b.label("fast")
            b.emit(rcs=[rc(RCOp.SADD, DST_VWR_C, VWR_A, VWR_B)]
                   * params.rcs_per_column, mxcu=inck(1), lcu=addi(0, 1))
            b.emit(lcu=blt(0, 16, "fast"))
            b.emit(lcu=seti(0, 0))
            b.label("slow")
            b.emit(lcu=ldsrf(1, 3))     # bound <- SRF[3] (data-derived)
            b.emit(rcs=[rc(RCOp.SSUB, DST_VWR_C, VWR_C, imm(1))]
                   * params.rcs_per_column, mxcu=inck(1), lcu=addi(0, 1))
            b.emit(lcu=blt(0, ("reg", 1), "slow"))
            b.emit(lsu=st_vwr(Vwr.C, 2))
            b.exit()
            return KernelConfig(name="mixed", columns={0: b.build()})

        def poke(sim):
            _poke_ramp(sim)
            sim.spm.poke_words(5, [9])

        result = _run_both(config, poke=poke)
        # Only the first loop is provable; the LDSRF loop ran per-trip.
        assert result.superblocks["accelerated_loops"] == 1

    def test_srf_bound_loop_is_closed_form(self):
        def config(params):
            b = ProgramBuilder(n_rcs=params.rcs_per_column)
            b.srf(0, 0)
            b.srf(1, 1)
            b.srf(2, 2)
            b.srf(3, 21)  # loop bound held in the SRF (loop-invariant)
            b.emit(lsu=ld_vwr(Vwr.A, 0))
            b.emit(lsu=ld_vwr(Vwr.B, 1), lcu=seti(0, 0),
                   mxcu=setk(params.slice_words - 1))
            b.label("loop")
            b.emit(rcs=[rc(RCOp.SMIN, DST_VWR_C, VWR_A, srf(3))]
                   * params.rcs_per_column, mxcu=inck(1), lcu=addi(0, 1))
            b.emit(lcu=blt(0, ("srf", 3), "loop"))
            b.emit(lsu=st_vwr(Vwr.C, 2))
            b.exit()
            return KernelConfig(name="srfbound", columns={0: b.build()})

        result = _run_both(config, poke=_poke_ramp)
        assert result.superblocks["accelerated_trips"] == 21


class TestChainFusion:
    def test_jump_chain_fuses_into_one_superblock(self):
        params = ArchParams()
        b = ProgramBuilder(n_rcs=params.rcs_per_column)
        b.emit(rcs=[rc(RCOp.MOV, DST_R0, imm(3))] * 4, lcu=jump("mid"))
        b.label("end")
        b.emit(rcs=[rc(RCOp.SADD, DST_R0, R0, imm(5))] * 4)
        b.exit()
        b.label("mid")
        b.emit(rcs=[rc(RCOp.SMUL, DST_R0, R0, imm(2))] * 4,
               lcu=jump("end"))
        program = b.build()
        compiled = compile_program(program, params)
        # Three basic blocks, one fused superblock spanning all of them.
        assert len(compiled.blocks) == 1
        assert len(compiled.blocks[0].members) == 3

        states = {}
        for engine in ENGINES:
            sim = Vwr2a(engine=engine)
            sim.execute(KernelConfig(name="chain", columns={0: program}))
            states[engine] = _full_state(sim)
        assert states["reference"] == states["compiled"]

    def test_branch_target_blocks_stay_dispatchable(self):
        # A chain must not swallow a block that another branch targets:
        # the loop back-edge lands on "head", so "head" cannot be fused
        # into its predecessor.
        params = ArchParams()
        b = ProgramBuilder(n_rcs=params.rcs_per_column)
        b.emit(lcu=seti(0, 0))
        b.label("head")
        b.emit(rcs=[rc(RCOp.SADD, DST_R0, R0, imm(1))] * 4)
        b.emit(lcu=addi(0, 1))
        b.emit(lcu=blt(0, 5, "head"))
        b.exit()
        program = b.build()
        chains = superblock_chains(tuple(program.bundles))
        leaders = [chain[0][0] for chain in chains]
        assert 1 in leaders  # "head" leads its own (loop) superblock

        states = {}
        for engine in ENGINES:
            sim = Vwr2a(engine=engine)
            sim.execute(KernelConfig(name="multi", columns={0: program}))
            states[engine] = _full_state(sim)
        assert states["reference"] == states["compiled"]

    def test_multi_block_loop_fuses_and_accelerates(self):
        # Tail branches back to the chain head: the whole chain becomes
        # one fused self-loop with a closed-form plan.
        params = ArchParams()
        b = ProgramBuilder(n_rcs=params.rcs_per_column)
        b.emit(lcu=seti(0, 0), mxcu=setk(0))
        b.label("head")
        b.emit(rcs=[rc(RCOp.SADD, DST_R0, R0, imm(2))] * 4,
               lcu=jump("tail"))
        b.label("tail")
        b.emit(rcs=[rc(RCOp.SSUB, DST_R0, R0, imm(1))] * 4,
               lcu=addi(0, 1))
        b.emit(lcu=blt(0, 40, "head"))
        b.exit()
        program = b.build()
        compiled = compile_program(program, params)
        loops = [blk for blk in compiled.blocks if blk.is_loop]
        assert len(loops) == 1
        assert len(loops[0].members) == 2
        assert loops[0].closed_form

        results = {}
        states = {}
        for engine in ENGINES:
            sim = Vwr2a(engine=engine)
            results[engine] = sim.execute(
                KernelConfig(name="nest", columns={0: program})
            )
            states[engine] = _full_state(sim)
        assert states["reference"] == states["compiled"]
        assert results["compiled"].superblocks["accelerated_trips"] == 40

    def test_pc_histogram_covers_superblock_members(self):
        sim = Vwr2a(engine="compiled")
        config = _broadcast_loop(sim.params, 16)
        result = sim.execute(config)
        bound = sim._engine._bind(sim.columns[0])
        assert sum(bound.pc_histogram()) == result.column_steps[0]


class TestRunResultSuperblocks:
    def test_reference_runs_carry_no_superblock_data(self):
        sim = Vwr2a(engine="reference")
        result = sim.execute(_broadcast_loop(sim.params, 16))
        assert result.superblocks is None
        assert result.block_histogram == ()

    def test_block_histogram_counts_match_column_steps(self):
        sim = Vwr2a(engine="compiled")
        result = sim.execute(_broadcast_loop(sim.params, 16))
        total = sum(
            count * dict(delta).get("column.cycle", 0)
            for _, _, count, delta in result.block_histogram
        )
        assert total == result.column_steps[0]
