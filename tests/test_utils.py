"""Unit + property tests for the fixed-point and bit utilities."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.bits import (
    bit_reverse,
    bit_reverse_indices,
    clog2,
    is_power_of_two,
    sign_extend,
    to_signed32,
    to_unsigned32,
)
from repro.utils.fixed_point import (
    FX_FRAC_BITS,
    Q15_MAX,
    Q15_MIN,
    float_to_fx,
    float_to_q15,
    fx_mul,
    fx_to_float,
    q15_add_sat,
    q15_mul,
    sat32,
    wrap32,
)

int32s = st.integers(min_value=-(2**31), max_value=2**31 - 1)
q15s = st.integers(min_value=Q15_MIN, max_value=Q15_MAX)


class TestBits:
    def test_signed_unsigned_roundtrip_examples(self):
        assert to_signed32(0xFFFFFFFF) == -1
        assert to_unsigned32(-1) == 0xFFFFFFFF
        assert to_signed32(0x7FFFFFFF) == 2**31 - 1

    @given(int32s)
    def test_signed_unsigned_roundtrip(self, x):
        assert to_signed32(to_unsigned32(x)) == x

    def test_sign_extend(self):
        assert sign_extend(0b1000, 4) == -8
        assert sign_extend(0b0111, 4) == 7
        with pytest.raises(ValueError):
            sign_extend(1, 0)

    def test_clog2(self):
        assert clog2(1) == 0
        assert clog2(2) == 1
        assert clog2(1024) == 10
        assert clog2(1025) == 11
        with pytest.raises(ValueError):
            clog2(0)

    def test_is_power_of_two(self):
        assert is_power_of_two(1) and is_power_of_two(4096)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)

    def test_bit_reverse_examples(self):
        assert bit_reverse(1, 3) == 4
        assert bit_reverse(0b0011, 4) == 0b1100

    @given(st.integers(1, 12), st.data())
    def test_bit_reverse_involution(self, bits, data):
        x = data.draw(st.integers(0, 2**bits - 1))
        assert bit_reverse(bit_reverse(x, bits), bits) == x

    @given(st.sampled_from([2, 4, 8, 64, 256]))
    def test_bit_reverse_indices_permutation(self, n):
        order = bit_reverse_indices(n)
        assert sorted(order) == list(range(n))

    def test_bit_reverse_indices_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            bit_reverse_indices(12)


class TestFixedPoint:
    @given(st.integers(-(2**40), 2**40))
    def test_wrap32_range(self, x):
        assert -(2**31) <= wrap32(x) <= 2**31 - 1

    @given(int32s)
    def test_wrap32_identity_in_range(self, x):
        assert wrap32(x) == x

    def test_sat32(self):
        assert sat32(2**40) == 2**31 - 1
        assert sat32(-(2**40)) == -(2**31)

    def test_fx_mul_one(self):
        one = 1 << FX_FRAC_BITS
        assert fx_mul(one, one) == one
        assert fx_mul(one, -one) == -one

    @given(st.floats(-100, 100), st.floats(-100, 100))
    def test_fx_mul_approximates_float(self, a, b):
        fa, fb = float_to_fx(a), float_to_fx(b)
        got = fx_to_float(fx_mul(fa, fb))
        assert got == pytest.approx(a * b, abs=200 * 2**-15)

    @given(q15s, q15s)
    def test_q15_mul_bounds(self, a, b):
        assert Q15_MIN <= q15_mul(a, b) <= Q15_MAX

    def test_q15_mul_identity_ish(self):
        assert q15_mul(Q15_MAX, Q15_MAX) == pytest.approx(Q15_MAX, abs=2)

    @given(q15s, q15s)
    def test_q15_add_sat_monotone(self, a, b):
        assert Q15_MIN <= q15_add_sat(a, b) <= Q15_MAX

    def test_float_to_q15_saturates(self):
        assert float_to_q15(2.0) == Q15_MAX
        assert float_to_q15(-2.0) == Q15_MIN
