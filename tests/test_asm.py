"""Assembler tests: builder, textual parser, disassembler round-trips."""

import pytest

from repro.asm import (
    AsmError,
    ProgramBuilder,
    disassemble_listing,
    disassemble_words,
    listing,
    parse_program,
)
from repro.core import Vwr2a
from repro.core.errors import ProgramError
from repro.isa import KernelConfig, LCUOp, LSUOp, MXCUOp, RCOp, ShuffleMode
from repro.isa.encoding import encode_bundle
from repro.isa.lcu import blt, seti


class TestBuilder:
    def test_labels_resolve(self):
        b = ProgramBuilder()
        b.label("start")
        b.emit(lcu=seti(0, 0))
        b.emit(lcu=blt(0, 10, "start"))
        b.exit()
        program = b.build()
        assert program.bundles[1].lcu.target == 0

    def test_undefined_label(self):
        b = ProgramBuilder()
        b.emit(lcu=blt(0, 1, "nowhere"))
        b.exit()
        with pytest.raises(ProgramError, match="undefined label"):
            b.build()

    def test_duplicate_label(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(ProgramError, match="twice"):
            b.label("x")

    def test_requires_exit(self):
        b = ProgramBuilder()
        b.emit()
        with pytest.raises(ProgramError, match="EXIT"):
            b.build()


ASM_SOURCE = """
; vector add with the Table-1 loop shape
.srf 0 0
.srf 1 1
.srf 2 2
    LCU SETI R0, 0 | LSU LD.VWR A, 0 | MXCU SETK 31
    LSU LD.VWR B, 1
loop:
    LCU ADDI R0, 1 | MXCU UPD 1 | RC* SADD VWRC, VWRA, VWRB
    LCU BLT R0, 16, loop | MXCU UPD 1 | RC* SADD VWRC, VWRA, VWRB
    LSU ST.VWR C, 2
    LCU EXIT
"""


class TestParser:
    def test_parse_and_execute(self):
        program = parse_program(ASM_SOURCE)
        sim = Vwr2a()
        sim.spm.poke_words(0, list(range(128)))
        sim.spm.poke_words(128, [5] * 128)
        result = sim.execute(KernelConfig(name="a", columns={0: program}))
        assert sim.spm.peek_words(256, 128) == [v + 5 for v in range(128)]
        assert result.cycles == 36

    def test_parse_units(self):
        program = parse_program(ASM_SOURCE)
        b0 = program.bundles[0]
        assert b0.lcu.op is LCUOp.SETI
        assert b0.lsu.op is LSUOp.LD_VWR
        assert b0.mxcu.op is MXCUOp.SETK
        assert program.srf_init == {0: 0, 1: 1, 2: 2}

    def test_parse_shuffle_and_immediates(self):
        program = parse_program(
            "    LSU SHUF BITREV_LO | RC2 FXPMUL R0, VWRA, #-1234\n"
            "    LCU EXIT\n"
        )
        b0 = program.bundles[0]
        assert b0.lsu.mode is ShuffleMode.BITREV_LO
        assert b0.rcs[2].op is RCOp.FXPMUL
        assert b0.rcs[2].b.index == -1234

    @pytest.mark.parametrize("bad", [
        "    LCU FROB R0, 1\n",
        "    LSU LD.VWR Q, 0\n",
        "    RC9 SADD R0, R0, R1\n",
        "    MXCU WIBBLE\n",
        "    RC0 SADD ??, R0, R1\n",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(AsmError):
            parse_program(bad + "    LCU EXIT\n")


class TestDisassembler:
    def test_listing_contains_ops(self):
        program = parse_program(ASM_SOURCE)
        text = listing(program)
        assert "SADD" in text and "LD.VWR" in text and "EXIT" in text
        assert "SRF init" in text

    def test_encode_decode_listing_roundtrip(self):
        program = parse_program(ASM_SOURCE)
        words = [encode_bundle(b) for b in program.bundles]
        decoded = disassemble_words(words)
        assert decoded == program.bundles
        assert "SADD" in disassemble_listing(words)


class TestConfigMemory:
    def test_capacity_accounting(self):
        sim = Vwr2a()
        program = parse_program(ASM_SOURCE)
        sim.store_kernel(KernelConfig(name="a", columns={0: program}))
        assert "a" in sim.config_mem
        assert sim.config_mem.total_bits() > 0
        assert sim.config_mem.kernels() == ["a"]
