"""Runner staging, macro idioms, synchronizer, and small-config variants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import ArchParams, DEFAULT_PARAMS
from repro.core import Vwr2a
from repro.core.errors import ConfigurationError, ProgramError
from repro.core.synchronizer import Synchronizer
from repro.isa import KernelConfig, Vwr
from repro.isa.fields import DST_VWR_C, VWR_A, imm
from repro.isa.lsu import ld_vwr, st_vwr
from repro.isa.rc import RCOp, rc
from repro.kernels.macro import ColumnKernelBuilder
from repro.kernels.runner import KernelRunner


class TestRunnerStaging:
    def test_sram_alloc_bump(self):
        r = KernelRunner()
        a = r.sram_alloc(100)
        b = r.sram_alloc(50)
        assert b == a + 100
        with pytest.raises(ConfigurationError):
            r.sram_alloc(10**9)

    def test_stage_roundtrip_identity(self):
        r = KernelRunner()
        data = list(range(-100, 156))
        c_in = r.stage_in(data, 0)
        out, c_out = r.stage_out(0, len(data))
        assert out == data
        assert c_in > len(data) and c_out > len(data)

    @given(st.lists(st.integers(-(2**31), 2**31 - 1),
                    min_size=1, max_size=300))
    @settings(max_examples=20, deadline=None)
    def test_permuted_stage_in(self, data):
        r = KernelRunner()
        order = list(reversed(range(len(data))))
        r.stage_in(data, 0, order=order)
        got = r.soc.vwr2a.spm.peek_words(0, len(data))
        assert got == list(reversed(data))

    def test_event_windows(self):
        r = KernelRunner()
        snap = r.events_snapshot()
        r.stage_in([1, 2, 3], 0)
        diff = r.events_since(snap)
        assert any("dma" in k for k in diff)


class TestMacroIdioms:
    def test_vector_pass_rejects_odd_positions(self):
        kb = ColumnKernelBuilder(DEFAULT_PARAMS)
        with pytest.raises(ProgramError):
            kb.vector_pass(rc(RCOp.MOV, DST_VWR_C, VWR_A), positions=7)

    def test_multi_pass_needs_body(self):
        kb = ColumnKernelBuilder(DEFAULT_PARAMS)
        with pytest.raises(ProgramError):
            kb.multi_pass([(rc(RCOp.MOV, DST_VWR_C, VWR_A), None)])

    def test_partial_positions(self):
        """vector_pass over a sub-slice leaves the tail untouched."""
        sim = Vwr2a()
        sim.spm.poke_words(0, [7] * 128)
        kb = ColumnKernelBuilder(DEFAULT_PARAMS)
        kb.srf(0, 0)
        kb.srf(1, 1)
        kb.emit(lsu=ld_vwr(Vwr.A, 0))
        kb.vector_pass(
            rc(RCOp.SADD, DST_VWR_C, VWR_A, imm(1)), positions=8
        )
        kb.emit(lsu=st_vwr(Vwr.C, 1))
        kb.exit()
        sim.execute(KernelConfig(name="p", columns={0: kb.build()}))
        out = sim.spm.peek_words(128, 128)
        for s in range(4):
            # Positions iterate k = 0..7 within each slice.
            assert out[32 * s: 32 * s + 8] == [8] * 8

    def test_counted_loop_bounds(self):
        sim = Vwr2a()
        kb = ColumnKernelBuilder(DEFAULT_PARAMS)
        with kb.counted_loop(reg=1, count=5):
            kb.emit()
        kb.exit()
        result = sim.execute(KernelConfig(name="c", columns={0: kb.build()}))
        # init + 5 * (body + addi + blt) + exit
        assert result.cycles == 1 + 5 * 3 + 1

    def test_fresh_labels_unique(self):
        kb = ColumnKernelBuilder(DEFAULT_PARAMS)
        labels = {kb.fresh_label() for _ in range(100)}
        assert len(labels) == 100


class TestSmallConfigs:
    """The simulator scales down: a 1-column, 32-word-VWR variant."""

    PARAMS = ArchParams(
        n_columns=1, vwr_words=32, spm_bytes=4096, srf_entries=8
    )

    def test_vector_kernel_on_small_array(self):
        from repro.kernels.vector import elementwise_kernel

        sim = Vwr2a(self.PARAMS)
        sim.spm.poke_words(0, list(range(32)))
        sim.spm.poke_words(32, [2] * 32)
        cfg = elementwise_kernel(
            self.PARAMS, RCOp.SMUL, 32, a_line=0, b_line=1, c_line=2
        )
        sim.execute(cfg)
        assert sim.spm.peek_words(64, 32) == [2 * v for v in range(32)]

    def test_slice_width(self):
        assert self.PARAMS.slice_words == 8
        assert self.PARAMS.spm_lines == 32


class TestSynchronizer:
    def test_completion_and_irq(self):
        sync = Synchronizer()
        fired = []
        sync.on_irq(fired.append)
        sync.kernel_started("k", [0, 1])
        sync.kernel_finished("k", 123, [0, 1])
        assert sync.irq_pending
        assert fired[0].cycles == 123
        assert sync.total_kernel_cycles == 123
        sync.acknowledge()
        assert not sync.irq_pending

    def test_platform_irq_wiring(self):
        from repro.asm.builder import ProgramBuilder

        r = KernelRunner()
        b = ProgramBuilder()
        b.exit()
        r.store(KernelConfig(name="noop", columns={0: b.build()}))
        r.launch("noop")
        # The platform acknowledged the IRQ after the CPU "woke up".
        assert not r.soc.irq.pending("vwr2a")
        assert r.soc.vwr2a.synchronizer.completions[0].name == "noop"
